"""Test package (keeps pytest module names unique across directories)."""
