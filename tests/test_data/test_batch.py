"""Tests for jagged batch structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batch import JaggedBatch, JaggedFeature


def feature_from_lists(lists):
    return JaggedFeature.from_lists(lists)


class TestJaggedFeature:
    def test_from_lists_roundtrip(self):
        f = feature_from_lists([[1, 2], [], [3]])
        assert f.batch_size == 3
        assert f.total_lookups == 3
        assert list(f.lengths) == [2, 0, 1]
        assert list(f.sample(0)) == [1, 2]
        assert list(f.sample(1)) == []
        assert list(f.sample(2)) == [3]

    def test_null_sample_is_zero_length(self):
        # Figure 3: a NULL feature sample has no lookups.
        f = feature_from_lists([[], [], []])
        assert f.total_lookups == 0
        assert f.batch_size == 3

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            JaggedFeature(np.array([1, 2]), np.array([0, 1]))  # end != len
        with pytest.raises(ValueError):
            JaggedFeature(np.array([1]), np.array([1, 1]))  # start != 0
        with pytest.raises(ValueError):
            JaggedFeature(np.array([1, 2]), np.array([0, 2, 1, 2]))  # decreasing

    def test_take_subset(self):
        f = feature_from_lists([[1, 2], [3], [], [4, 5, 6]])
        sub = f.take(np.array([3, 0]))
        assert sub.batch_size == 2
        assert list(sub.sample(0)) == [4, 5, 6]
        assert list(sub.sample(1)) == [1, 2]

    def test_take_empty_selection(self):
        f = feature_from_lists([[1], [2]])
        sub = f.take(np.array([], dtype=np.int64))
        assert sub.batch_size == 0
        assert sub.total_lookups == 0

    def test_take_from_all_null(self):
        f = feature_from_lists([[], []])
        sub = f.take(np.array([1]))
        assert sub.batch_size == 1
        assert sub.total_lookups == 0

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=99), max_size=5),
            min_size=1,
            max_size=12,
        ),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_take_preserves_samples(self, lists, data):
        f = feature_from_lists(lists)
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(lists) - 1),
                min_size=0,
                max_size=len(lists),
            )
        )
        sub = f.take(np.array(indices, dtype=np.int64))
        for out_pos, src in enumerate(indices):
            assert list(sub.sample(out_pos)) == lists[src]


class TestJaggedBatch:
    def test_batch_size_consistency_enforced(self):
        f1 = feature_from_lists([[1], [2]])
        f2 = feature_from_lists([[1]])
        with pytest.raises(ValueError):
            JaggedBatch([f1, f2])

    def test_total_lookups(self):
        f1 = feature_from_lists([[1, 2], []])
        f2 = feature_from_lists([[5], [6]])
        batch = JaggedBatch([f1, f2])
        assert batch.total_lookups == 4
        assert batch.num_features == 2
        assert batch.batch_size == 2

    def test_take_applies_to_all_features(self):
        f1 = feature_from_lists([[1], [2], [3]])
        f2 = feature_from_lists([[9, 9], [], [7]])
        sub = JaggedBatch([f1, f2]).take(np.array([2]))
        assert list(sub[0].sample(0)) == [3]
        assert list(sub[1].sample(0)) == [7]

    def test_empty_batch(self):
        batch = JaggedBatch([])
        assert batch.batch_size == 0
        assert batch.total_lookups == 0
