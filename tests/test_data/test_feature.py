"""Tests for sparse feature specs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.feature import FeatureKind, SparseFeatureSpec


def make_feature(**overrides):
    base = dict(
        name="f",
        cardinality=1000,
        hash_size=600,
        alpha=1.1,
        avg_pooling=10.0,
        coverage=0.5,
    )
    base.update(overrides)
    return SparseFeatureSpec(**base)


class TestValidation:
    def test_valid_feature(self):
        f = make_feature()
        assert f.kind is FeatureKind.CONTENT

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cardinality", 0),
            ("hash_size", 0),
            ("coverage", 1.5),
            ("coverage", -0.1),
            ("avg_pooling", 0.5),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            make_feature(**{field: value})


class TestHashing:
    def test_hash_values_in_range(self):
        f = make_feature()
        hashed = f.hash_values(np.arange(1000))
        assert hashed.min() >= 0
        assert hashed.max() < f.hash_size

    def test_hash_deterministic(self):
        f = make_feature()
        a = f.hash_values(np.arange(100))
        b = f.hash_values(np.arange(100))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_feature(hash_seed=1).hash_values(np.arange(100))
        b = make_feature(hash_seed=2).hash_values(np.arange(100))
        assert not np.array_equal(a, b)


class TestPostHashPmf:
    def test_pmf_normalized(self):
        f = make_feature()
        pmf = f.post_hash_pmf()
        assert pmf.shape == (600,)
        assert pmf.sum() == pytest.approx(1.0)

    def test_dead_rows_exist_when_hash_exceeds_cardinality(self):
        # Birthday paradox: H > N still leaves slots empty.
        f = make_feature(cardinality=100, hash_size=150)
        pmf = f.post_hash_pmf()
        assert np.count_nonzero(pmf == 0) > 0

    def test_collisions_merge_mass(self):
        # H < N forces collisions: fewer live rows than raw values.
        f = make_feature(cardinality=1000, hash_size=100)
        pmf = f.post_hash_pmf()
        assert np.count_nonzero(pmf) <= 100

    @given(
        cardinality=st.integers(min_value=1, max_value=3000),
        hash_size=st.integers(min_value=1, max_value=3000),
    )
    @settings(max_examples=30, deadline=None)
    def test_pmf_mass_conserved(self, cardinality, hash_size):
        f = make_feature(cardinality=cardinality, hash_size=hash_size)
        assert f.post_hash_pmf().sum() == pytest.approx(1.0)


class TestDerived:
    def test_expected_lookups(self):
        f = make_feature(avg_pooling=20.0, coverage=0.25)
        assert f.expected_lookups_per_sample() == pytest.approx(5.0)

    def test_scaled_hash_size(self):
        f = make_feature(hash_size=600)
        assert f.scaled_hash_size(2.0).hash_size == 1200
        assert f.scaled_hash_size(1e-9).hash_size == 1  # floor at 1

    def test_with_pooling(self):
        f = make_feature(avg_pooling=10.0)
        g = f.with_pooling(12.5)
        assert g.avg_pooling == 12.5
        assert f.avg_pooling == 10.0  # original untouched (frozen)
