"""Tests for temporal drift (Figure 9) and growth trends (Figure 1)."""

import pytest

from repro.data import trends
from repro.data.drift import DriftModel
from repro.data.feature import FeatureKind
from repro.data.model import rm1


class TestDriftModel:
    def test_baseline_month_zero(self):
        drift = DriftModel()
        assert drift.percent_change(FeatureKind.USER, 0) == pytest.approx(0.0, abs=1.0)

    def test_user_features_climb(self):
        # Figure 9: user features trend toward ~+10%.
        drift = DriftModel()
        series = drift.series(FeatureKind.USER, months=20)
        assert series[-1] > 7.0
        assert max(series) < 15.0

    def test_content_features_dip_then_recover(self):
        drift = DriftModel()
        series = drift.series(FeatureKind.CONTENT, months=20)
        assert min(series[:6]) < 0.0  # early dip below baseline
        assert series[-1] > 2.0  # late recovery

    def test_series_length(self):
        assert len(DriftModel().series(FeatureKind.USER, months=7)) == 7

    def test_negative_month_rejected(self):
        with pytest.raises(ValueError):
            DriftModel().percent_change(FeatureKind.USER, -1)

    def test_drift_feature_scales_pooling(self):
        drift = DriftModel(user_plateau=10.0, wobble=0.0)
        model = rm1(num_features=10)
        feature = model.tables[0].feature
        drifted = drift.drift_feature(feature, month=20)
        expected = feature.avg_pooling * (
            1 + drift.percent_change(feature.kind, 20) / 100
        )
        assert drifted.avg_pooling == pytest.approx(expected)

    def test_drift_model_spec(self):
        drift = DriftModel()
        model = rm1(num_features=10)
        drifted = drift.drift_model(model, month=12)
        assert drifted.name == "RM1@month12"
        assert drifted.num_tables == model.num_tables
        # Hash sizes untouched; only pooling moves.
        assert drifted.total_hash_size == model.total_hash_size
        changed = sum(
            d.feature.avg_pooling != o.feature.avg_pooling
            for d, o in zip(drifted.tables, model.tables)
        )
        assert changed == model.num_tables

    def test_pooling_floor(self):
        drift = DriftModel(content_dip=-99.9, content_plateau=0.0, wobble=0.0)
        model = rm1(num_features=10)
        drifted = drift.drift_model(model, month=3)
        assert all(t.feature.avg_pooling >= 1.0 for t in drifted.tables)


class TestTrends:
    def test_capacity_growth_endpoints(self):
        data = trends.capacity_growth()
        assert data["years"] == [2017, 2018, 2019, 2020, 2021]
        assert data["model_capacity"][0] == pytest.approx(1.0)
        assert data["model_capacity"][-1] == pytest.approx(16.0)
        # Paper: GPU HBM grew less than 6x over the same window.
        assert data["gpu_hbm_capacity"][-1] < 6.0

    def test_capacity_series_monotone(self):
        data = trends.capacity_growth()
        for key in ("model_capacity", "emb_rows", "gpu_hbm_capacity"):
            series = data[key]
            assert all(a <= b for a, b in zip(series, series[1:]))

    def test_bandwidth_growth_endpoints(self):
        data = trends.bandwidth_growth()
        assert data["model_bandwidth"][-1] == pytest.approx(28.35)
        assert data["interconnect_bw_gbs"]["NVLINK3.0"] == 600.0

    def test_summary_multiples(self):
        summary = trends.summary()
        assert summary["model_capacity_growth"] == 16.0
        assert summary["model_bandwidth_growth"] == pytest.approx(28.35)
        assert summary["hbm_bandwidth_growth"] == pytest.approx(2.26)
        assert summary["interconnect_bandwidth_growth"] == 2.0
        # The paper's central tension: demand growth outpaces hardware.
        assert summary["model_capacity_growth"] > summary["gpu_hbm_capacity_growth"]
        assert summary["model_bandwidth_growth"] > summary["hbm_bandwidth_growth"]

    def test_gpu_generations_table(self):
        names = [g.name for g in trends.GPU_GENERATIONS]
        assert "A100 (40GB)" in names
        bandwidths = [g.hbm_bw_gbs for g in trends.GPU_GENERATIONS]
        assert bandwidths == sorted(bandwidths)
