"""Tests for the synthetic distribution substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distributions import (
    LogNormalPooling,
    UniformCategorical,
    ZipfCategorical,
    log_uniform,
)


class TestZipf:
    def test_pmf_sums_to_one(self):
        z = ZipfCategorical(1000, alpha=1.1)
        assert z.pmf.sum() == pytest.approx(1.0)

    def test_pmf_descending(self):
        z = ZipfCategorical(500, alpha=0.9)
        assert np.all(np.diff(z.pmf) <= 0)

    def test_alpha_zero_is_uniform(self):
        z = ZipfCategorical(100, alpha=0.0)
        assert np.allclose(z.pmf, 0.01)

    def test_higher_alpha_more_skewed(self):
        mild = ZipfCategorical(1000, alpha=0.5)
        strong = ZipfCategorical(1000, alpha=1.5)
        assert strong.pmf[0] > mild.pmf[0]

    def test_samples_within_range(self):
        z = ZipfCategorical(50, alpha=1.0)
        samples = z.sample(10_000, np.random.default_rng(0))
        assert samples.min() >= 0
        assert samples.max() < 50

    def test_sample_head_frequency_matches_pmf(self):
        z = ZipfCategorical(100, alpha=1.2)
        samples = z.sample(200_000, np.random.default_rng(1))
        freq0 = np.mean(samples == 0)
        assert freq0 == pytest.approx(z.pmf[0], rel=0.05)

    def test_empty_sample(self):
        z = ZipfCategorical(10, alpha=1.0)
        assert z.sample(0, np.random.default_rng(0)).size == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ZipfCategorical(0, alpha=1.0)
        with pytest.raises(ValueError):
            ZipfCategorical(10, alpha=-0.5)

    @given(
        cardinality=st.integers(min_value=1, max_value=2000),
        alpha=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_cdf_properties(self, cardinality, alpha):
        z = ZipfCategorical(cardinality, alpha)
        cdf = z.cdf
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= -1e-15)


class TestUniform:
    def test_uniform_sampling_covers_range(self):
        u = UniformCategorical(20)
        samples = u.sample(5000, np.random.default_rng(2))
        assert set(np.unique(samples)) == set(range(20))


class TestPooling:
    def test_mean_approximately_preserved(self):
        dist = LogNormalPooling(mean=20.0, sigma=0.75)
        samples = dist.sample(200_000, np.random.default_rng(3))
        assert samples.mean() == pytest.approx(20.0, rel=0.05)

    def test_minimum_pooling_is_one(self):
        dist = LogNormalPooling(mean=1.0, sigma=1.5)
        samples = dist.sample(10_000, np.random.default_rng(4))
        assert samples.min() >= 1

    def test_max_pool_clipping(self):
        dist = LogNormalPooling(mean=50.0, sigma=1.5, max_pool=64)
        samples = dist.sample(10_000, np.random.default_rng(5))
        assert samples.max() <= 64

    def test_integer_samples(self):
        dist = LogNormalPooling(mean=5.0)
        samples = dist.sample(100, np.random.default_rng(6))
        assert samples.dtype == np.int64

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            LogNormalPooling(mean=0.5)

    @given(mean=st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=25, deadline=None)
    def test_sigma_zero_is_deterministic(self, mean):
        dist = LogNormalPooling(mean=mean, sigma=0.0)
        samples = dist.sample(50, np.random.default_rng(7))
        assert np.all(samples == max(1, round(mean)))


class TestLogUniform:
    def test_within_bounds(self):
        vals = log_uniform(10, 1000, 1000, np.random.default_rng(8))
        assert vals.min() >= 10
        assert vals.max() <= 1000

    def test_log_spread(self):
        vals = log_uniform(1, 10_000, 50_000, np.random.default_rng(9))
        # Log-uniform: ~half the mass below sqrt(low*high).
        assert np.mean(vals < 100) == pytest.approx(0.5, abs=0.02)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            log_uniform(0, 10, 5, np.random.default_rng(0))
