"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.data.feature import SparseFeatureSpec
from repro.data.model import EmbeddingTableSpec, ModelSpec
from repro.data.synthetic import TraceGenerator


def small_model(num_features=3, coverage=0.6, pooling=4.0):
    tables = tuple(
        EmbeddingTableSpec(
            feature=SparseFeatureSpec(
                name=f"f{i}",
                cardinality=500,
                hash_size=400,
                alpha=1.0,
                avg_pooling=pooling,
                coverage=coverage,
                hash_seed=i,
            ),
            dim=8,
        )
        for i in range(num_features)
    )
    return ModelSpec(name="tiny", tables=tables)


class TestTraceGenerator:
    def test_batch_shape(self):
        gen = TraceGenerator(small_model(), batch_size=64, seed=0)
        batch = gen.next_batch()
        assert batch.batch_size == 64
        assert batch.num_features == 3

    def test_values_within_hash_space(self):
        gen = TraceGenerator(small_model(), batch_size=128, seed=1)
        batch = gen.next_batch()
        for feature in batch:
            if feature.values.size:
                assert feature.values.min() >= 0
                assert feature.values.max() < 400

    def test_reproducible_by_seed(self):
        g1 = TraceGenerator(small_model(), batch_size=32, seed=9)
        g2 = TraceGenerator(small_model(), batch_size=32, seed=9)
        b1, b2 = g1.next_batch(), g2.next_batch()
        for f1, f2 in zip(b1, b2):
            assert np.array_equal(f1.values, f2.values)
            assert np.array_equal(f1.offsets, f2.offsets)

    def test_reset_rewinds_stream(self):
        gen = TraceGenerator(small_model(), batch_size=32, seed=4)
        first = gen.next_batch()
        gen.next_batch()
        gen.reset()
        again = gen.next_batch()
        assert np.array_equal(first[0].values, again[0].values)

    def test_coverage_respected(self):
        model = small_model(coverage=0.3)
        gen = TraceGenerator(model, batch_size=4000, seed=5)
        batch = gen.next_batch()
        present = np.mean(batch[0].lengths > 0)
        assert present == pytest.approx(0.3, abs=0.03)

    def test_zero_coverage_produces_all_nulls(self):
        model = small_model(coverage=0.0)
        gen = TraceGenerator(model, batch_size=100, seed=6)
        batch = gen.next_batch()
        assert batch.total_lookups == 0

    def test_pooling_mean(self):
        model = small_model(coverage=1.0, pooling=6.0)
        gen = TraceGenerator(model, batch_size=5000, seed=7)
        batch = gen.next_batch()
        lengths = batch[0].lengths
        assert lengths.mean() == pytest.approx(6.0, rel=0.1)

    def test_hot_rows_dominant(self):
        # Zipf skew must survive generation: top rows get most accesses.
        model = small_model(coverage=1.0, pooling=10.0)
        gen = TraceGenerator(model, batch_size=4000, seed=8)
        batch = gen.next_batch()
        counts = np.bincount(batch[0].values, minlength=400)
        top_40 = np.sort(counts)[::-1][:40].sum()
        assert top_40 / counts.sum() > 0.4

    def test_batches_iterator_count(self):
        gen = TraceGenerator(small_model(), batch_size=16, seed=0)
        assert sum(1 for _ in gen.batches(5)) == 5

    def test_expected_lookups_estimate(self):
        model = small_model(coverage=0.5, pooling=4.0)
        gen = TraceGenerator(model, batch_size=2000, seed=11)
        expected = gen.expected_lookups_per_batch()
        measured = np.mean([gen.next_batch().total_lookups for _ in range(5)])
        assert measured == pytest.approx(expected, rel=0.1)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            TraceGenerator(small_model(), batch_size=0)
