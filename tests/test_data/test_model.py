"""Tests for model specs and the RM1/RM2/RM3 workloads (Table 2)."""

import pytest

from repro.data.feature import SparseFeatureSpec
from repro.data.model import (
    PAPER_TOTAL_HASH_SIZE,
    EmbeddingTableSpec,
    generate_feature_population,
    rm1,
    rm2,
    rm3,
)


class TestEmbeddingTableSpec:
    def test_geometry(self):
        feature = SparseFeatureSpec(
            name="f", cardinality=100, hash_size=64, alpha=1.0, avg_pooling=3
        )
        table = EmbeddingTableSpec(feature=feature, dim=8, dtype_bytes=4)
        assert table.num_rows == 64
        assert table.row_bytes == 32
        assert table.total_bytes == 64 * 32

    def test_invalid_dim(self):
        feature = SparseFeatureSpec(
            name="f", cardinality=10, hash_size=10, alpha=1.0, avg_pooling=1
        )
        with pytest.raises(ValueError):
            EmbeddingTableSpec(feature=feature, dim=0)


class TestFeaturePopulation:
    def test_population_size(self):
        feats = generate_feature_population(num_features=50, seed=1)
        assert len(feats) == 50

    def test_deterministic_by_seed(self):
        a = generate_feature_population(num_features=20, seed=5)
        b = generate_feature_population(num_features=20, seed=5)
        assert [f.hash_size for f in a] == [f.hash_size for f in b]

    def test_coverage_spread_matches_figure6b(self):
        feats = generate_feature_population(num_features=400, seed=2)
        coverages = [f.coverage for f in feats]
        assert min(coverages) < 0.05  # sub-1% coverage exists
        assert sum(c == 1.0 for c in coverages) > 10  # full-coverage mass

    def test_pooling_spread_matches_figure6a(self):
        feats = generate_feature_population(num_features=400, seed=2)
        poolings = [f.avg_pooling for f in feats]
        assert max(poolings) > 100  # long tail toward ~200
        assert min(poolings) >= 1

    def test_unique_hash_seeds(self):
        feats = generate_feature_population(num_features=30, seed=3)
        assert len({f.hash_seed for f in feats}) == 30


class TestRMSpecs:
    @pytest.mark.parametrize(
        "builder,name", [(rm1, "RM1"), (rm2, "RM2"), (rm3, "RM3")]
    )
    def test_total_hash_size_matches_table2(self, builder, name):
        model = builder(row_scale=1e-3, num_features=97)
        expected = round(PAPER_TOTAL_HASH_SIZE[name] * 1e-3)
        assert model.total_hash_size == expected
        assert model.name == name

    def test_rm2_rm3_share_rm1_features(self):
        m1, m2, m3 = rm1(num_features=40), rm2(num_features=40), rm3(num_features=40)
        for t1, t2, t3 in zip(m1.tables, m2.tables, m3.tables):
            assert t1.feature.cardinality == t2.feature.cardinality
            assert t1.feature.alpha == t3.feature.alpha
            assert t1.feature.coverage == t2.feature.coverage
            # hash sizes approximately double then quadruple
            assert t2.num_rows == pytest.approx(2 * t1.num_rows, rel=0.2, abs=4)
            assert t3.num_rows == pytest.approx(4 * t1.num_rows, rel=0.2, abs=8)

    def test_table2_row(self):
        model = rm1(num_features=30)
        row = model.table2_row()
        assert row["model"] == "RM1"
        assert row["num_sparse_features"] == 30
        assert row["emb_dim"] == 64

    def test_size_ratio_matches_paper(self):
        # Paper: 318 GB -> 635 GB -> 1270 GB (x2 then x4 of RM1).
        g1, g2, g3 = rm1().total_gib, rm2().total_gib, rm3().total_gib
        assert g2 / g1 == pytest.approx(2.0, rel=0.01)
        assert g3 / g1 == pytest.approx(4.0, rel=0.01)

    def test_scaled_hash_sizes_helper(self):
        model = rm1(num_features=10)
        bigger = model.scaled_hash_sizes(2.0, "RM1x2")
        assert bigger.total_hash_size == pytest.approx(
            2 * model.total_hash_size, rel=0.01
        )
        assert bigger.name == "RM1x2"

    def test_row_scale_floor(self):
        # Tiny scales must still produce at least one row per table.
        model = rm1(row_scale=1e-9, num_features=10)
        assert all(t.num_rows >= 1 for t in model.tables)
