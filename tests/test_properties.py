"""Cross-module property-based tests on randomized worlds.

These use hypothesis to generate random models, statistics, and
topologies, asserting the system-level invariants from DESIGN.md §6.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import make_baseline
from repro.core import RecShardFastSharder
from repro.core.evaluate import expected_device_costs_ms
from repro.core.plan import PlanError
from repro.data.feature import SparseFeatureSpec
from repro.data.model import EmbeddingTableSpec, ModelSpec
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile

BATCH = 64


@st.composite
def random_world(draw):
    """A random (model, topology) pair that is always feasible."""
    num_tables = draw(st.integers(min_value=1, max_value=8))
    rng_seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(rng_seed)
    tables = []
    for i in range(num_tables):
        hash_size = int(rng.integers(8, 600))
        tables.append(
            EmbeddingTableSpec(
                feature=SparseFeatureSpec(
                    name=f"t{i}",
                    cardinality=max(1, hash_size * 2),
                    hash_size=hash_size,
                    alpha=float(rng.uniform(0, 1.8)),
                    avg_pooling=float(rng.uniform(1, 20)),
                    coverage=float(rng.uniform(0.0, 1.0)),
                    hash_seed=i,
                ),
                dim=4,
            )
        )
    model = ModelSpec(name="rand", tables=tuple(tables))
    num_devices = draw(st.integers(min_value=1, max_value=4))
    hbm_fraction = draw(st.floats(min_value=0.05, max_value=1.2))
    total = model.total_bytes
    # Host large enough that any whole table always fits somewhere.
    topology = SystemTopology.two_tier(
        num_devices=num_devices,
        hbm_capacity=int(total * hbm_fraction / num_devices) + 64,
        hbm_bandwidth=100e9,
        uvm_capacity=total + 1024,
        uvm_bandwidth=5e9,
    )
    return model, topology


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(world=random_world())
def test_fast_sharder_always_feasible(world):
    model, topology = world
    profile = analytic_profile(model)
    plan = RecShardFastSharder(batch_size=BATCH, steps=20).shard(
        model, profile, topology
    )
    plan.validate(model, topology)
    # Device costs are non-negative and finite.
    costs = expected_device_costs_ms(plan, model, profile, topology, BATCH)
    assert np.all(np.isfinite(costs))
    assert np.all(costs >= 0)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(world=random_world())
def test_greedy_baseline_always_feasible_or_explicit(world):
    model, topology = world
    profile = analytic_profile(model)
    sharder = make_baseline("Size-Based")
    try:
        plan = sharder.shard(model, profile, topology)
    except PlanError:
        # Acceptable only when some whole table exceeds every host slice.
        biggest = max(t.total_bytes for t in model.tables)
        assert biggest > topology.uvm.capacity_bytes
        return
    plan.validate(model, topology)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(world=random_world())
def test_recshard_never_worse_than_all_uvm(world):
    """Any RecShard plan beats the degenerate everything-in-UVM plan."""
    from repro.core.plan import ShardingPlan, TablePlacement

    model, topology = world
    profile = analytic_profile(model)
    plan = RecShardFastSharder(batch_size=BATCH, steps=20).shard(
        model, profile, topology
    )
    all_uvm = ShardingPlan(
        strategy="all-uvm",
        placements=[
            TablePlacement(j, j % topology.num_devices, (0, t.num_rows))
            for j, t in enumerate(model.tables)
        ],
    )
    cost_plan = expected_device_costs_ms(plan, model, profile, topology, BATCH)
    cost_uvm = expected_device_costs_ms(all_uvm, model, profile, topology, BATCH)
    assert cost_plan.sum() <= cost_uvm.sum() + 1e-9


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(world=random_world(), seed=st.integers(min_value=0, max_value=100))
def test_executor_conservation_random(world, seed):
    """HBM + UVM accesses always equal the trace's total lookups."""
    from repro.data.synthetic import TraceGenerator
    from repro.engine import ShardedExecutor

    model, topology = world
    profile = analytic_profile(model)
    plan = RecShardFastSharder(batch_size=BATCH, steps=20).shard(
        model, profile, topology
    )
    executor = ShardedExecutor(model, plan, profile, topology)
    batch = TraceGenerator(model, batch_size=BATCH, seed=seed).next_batch()
    _, accesses, _, _ = executor.run_batch(batch)
    assert accesses.sum() == batch.total_lookups


def test_public_api_exports_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None

    # The engine.trace re-exports stay aligned with data.batch.
    from repro.data.batch import JaggedBatch as A
    from repro.engine.trace import JaggedBatch as B

    assert A is B
