"""Tests for repo tooling scripts (bench trajectory guard)."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "scripts" / "check_bench_trajectory.py"


@pytest.fixture(scope="module")
def guard():
    spec = importlib.util.spec_from_file_location("bench_trajectory", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestTrackedKeys:
    def test_matches_headline_gain_keys(self, guard):
        doc = {
            "speedup": 12.0,
            "scaling": 0.9,
            "gain": 2.5,
            "goodput_gain": 5.0,
            "imbalance_gain": 3.1,
            "capacity_gain_fp16": 2.0,
        }
        assert guard.tracked_keys(doc) == doc

    def test_skips_floors_configs_and_nonnumerics(self, guard):
        doc = {
            "speedup": 12.0,
            "speedup_floor": 10.0,
            "min_capacity_gain": 1.8,
            "max_auc_delta": 0.02,
            "imbalance_gain_floor": 2.0,
            "scaling_enforced": True,
            "scalar_plans_per_s": 3.0,
            "parity": "exact",
            "workload": {"gpus": 16},
            "fast_wall_s": 0.1,
        }
        assert guard.tracked_keys(doc) == {"speedup": 12.0}


class TestCompare:
    def test_ok_above_ratio(self, guard):
        rows = guard.compare({"speedup": 9.0}, {"speedup": 10.0}, 0.5)
        assert rows == [
            {
                "key": "speedup",
                "current": 9.0,
                "base": 10.0,
                "ratio": 0.9,
                "ok": True,
            }
        ]

    def test_flags_regression_below_ratio(self, guard):
        rows = guard.compare({"speedup": 2.0}, {"speedup": 10.0}, 0.5)
        assert rows[0]["ok"] is False

    def test_new_key_is_skipped_not_failed(self, guard):
        rows = guard.compare({"gain": 2.0}, {"speedup": 10.0}, 0.5)
        assert rows == [
            {"key": "gain", "current": 2.0, "base": None, "ok": True}
        ]


class TestEndToEnd:
    def run(self, repo, *extra):
        return subprocess.run(
            [sys.executable, str(_SCRIPT), *extra],
            cwd=repo, capture_output=True, text=True,
        )

    @pytest.fixture
    def repo(self, tmp_path):
        reports = tmp_path / "benchmarks" / "reports"
        reports.mkdir(parents=True)
        payload = {"bench": "demo", "speedup": 10.0, "workload": {"gpus": 2}}
        (reports / "BENCH_demo.json").write_text(json.dumps(payload))
        env_git = ["git", "-C", str(tmp_path)]
        subprocess.run(env_git + ["init", "-q"], check=True)
        subprocess.run(env_git + ["add", "-A"], check=True)
        subprocess.run(
            env_git
            + ["-c", "user.email=t@t", "-c", "user.name=t",
               "commit", "-q", "-m", "baseline"],
            check=True,
        )
        return tmp_path

    def test_unchanged_reports_pass(self, repo):
        proc = self.run(repo, "--min-ratio", "0.5")
        assert proc.returncode == 0, proc.stderr
        assert "bench trajectory OK" in proc.stdout

    def test_regression_fails_with_diff_row(self, repo):
        path = repo / "benchmarks" / "reports" / "BENCH_demo.json"
        doc = json.loads(path.read_text())
        doc["speedup"] = 1.0
        path.write_text(json.dumps(doc))
        proc = self.run(repo, "--min-ratio", "0.5")
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout
        assert "fell below" in proc.stderr

    def test_new_bench_is_skipped(self, repo):
        extra = repo / "benchmarks" / "reports" / "BENCH_new.json"
        extra.write_text(json.dumps({"bench": "new", "speedup": 3.0}))
        proc = self.run(repo, "--min-ratio", "0.5")
        assert proc.returncode == 0, proc.stderr
        assert "(new bench)" in proc.stdout

    def test_named_bench_selection_and_missing(self, repo):
        proc = self.run(repo, "demo")
        assert proc.returncode == 0
        proc = self.run(repo, "nosuch")
        assert proc.returncode == 2
        assert "no fresh report" in proc.stderr

    def test_rejects_nonpositive_ratio(self, repo):
        proc = self.run(repo, "--min-ratio", "0")
        assert proc.returncode == 2
