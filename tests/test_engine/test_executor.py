"""Tests for the trace-driven execution engine."""

import numpy as np
import pytest

from repro.core import RecShardFastSharder
from repro.core.plan import ShardingPlan, TablePlacement
from repro.data.synthetic import TraceGenerator
from repro.engine import ShardedExecutor
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

from repro.memory.topology import SystemTopology

BATCH = 128


@pytest.fixture
def world():
    model = build_model(num_tables=5, seed=11)
    profile = analytic_profile(model)
    total = model.total_bytes
    topology = SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=int(total * 0.4 / 2),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    plan = RecShardFastSharder(batch_size=BATCH).shard(model, profile, topology)
    return model, profile, topology, plan


class TestShardedExecutor:
    def test_conservation_of_accesses(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=5)
        batch = gen.next_batch()
        times, accesses, _, _ = executor.run_batch(batch)
        assert accesses.sum() == batch.total_lookups
        assert times.shape == (2,)
        assert np.all(times >= 0)

    def test_times_match_bandwidth_model(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=6)
        batch = gen.next_batch()
        times, accesses, _, _ = executor.run_batch(batch)
        # Recompute manually per device.
        for device in range(topology.num_devices):
            expected = 0.0
            for j, feature in enumerate(batch):
                if plan[j].device != device or feature.values.size == 0:
                    continue
                counts = executor.remap_tables[j].tier_counts(feature.values)
                row_bytes = model.tables[j].row_bytes
                expected += counts[0] * row_bytes / topology.hbm.bandwidth
                expected += counts[1] * row_bytes / topology.uvm.bandwidth
            assert times[device] == pytest.approx(expected * 1e3, rel=1e-9)

    def test_run_collects_metrics(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=7)
        metrics = executor.run(gen.batches(3))
        assert metrics.num_iterations == 3
        assert metrics.num_devices == 2
        assert set(metrics.tier_accesses) == {"hbm", "uvm"}

    def test_invalid_plan_rejected(self, world):
        model, profile, topology, _ = world
        bad = ShardingPlan(
            strategy="bad",
            placements=[
                TablePlacement(j, 0, (t.num_rows, 0))
                for j, t in enumerate(model.tables)
            ],
        )
        from repro.core.plan import PlanError

        with pytest.raises(PlanError):
            ShardedExecutor(model, bad, profile, topology)

    def test_validation_can_be_skipped(self, world):
        model, profile, topology, _ = world
        bad = ShardingPlan(
            strategy="what-if",
            placements=[
                TablePlacement(j, 0, (t.num_rows, 0))
                for j, t in enumerate(model.tables)
            ],
        )
        executor = ShardedExecutor(model, bad, profile, topology, validate=False)
        gen = TraceGenerator(model, batch_size=BATCH, seed=8)
        times, _, _, _ = executor.run_batch(gen.next_batch())
        assert times[1] == 0.0  # everything on device 0

    def test_expected_costs_close_to_measured(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=9)
        metrics = executor.run(gen.batches(8))
        expected = executor.expected_device_costs_ms(BATCH)
        measured = metrics.per_device_avg_times()
        for e, m in zip(expected, measured):
            assert m == pytest.approx(e, rel=0.35)  # trace noise

    def test_hot_rows_hit_hbm(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=10)
        metrics = executor.run(gen.batches(4))
        hbm = sum(counts.sum() for counts in [metrics.tier_accesses["hbm"]])
        uvm = metrics.tier_accesses["uvm"].sum()
        # RecShard puts the hot mass in HBM: HBM accesses dominate.
        assert hbm > 5 * uvm


class TestRunMetrics:
    def test_iteration_stats(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=12)
        metrics = executor.run(gen.batches(4))
        stats = metrics.iteration_stats()
        assert stats.min <= stats.mean <= stats.max
        assert stats.std >= 0
        row = stats.as_row()
        assert row.count("/") == 3

    def test_bound_time_is_max(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=13)
        metrics = executor.run(gen.batches(2))
        assert metrics.bound_time_ms() == pytest.approx(
            metrics.per_device_avg_times().max()
        )

    def test_tier_access_fraction_sums_to_one(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=14)
        metrics = executor.run(gen.batches(2))
        total = sum(
            metrics.tier_access_fraction(t) for t in ("hbm", "uvm")
        )
        assert total == pytest.approx(1.0)
