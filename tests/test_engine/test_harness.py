"""Tests for the experiment harness (profile -> shard -> execute)."""

import pytest

from repro.baselines import make_baseline
from repro.core import RecShardFastSharder
from repro.engine import compare_strategies, run_experiment
from repro.engine.harness import build_profile, speedup_table
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

BATCH = 128


@pytest.fixture
def model():
    return build_model(num_tables=6, seed=21)


@pytest.fixture
def topology(model):
    total = model.total_bytes
    return SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=int(total * 0.4 / 2),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )


class TestBuildProfile:
    def test_analytic_path(self, model):
        profile = build_profile(model, batch_size=BATCH, analytic=True)
        assert len(profile) == model.num_tables

    def test_trace_path(self, model):
        profile = build_profile(
            model, batch_size=BATCH, profile_batches=2, sample_rate=0.5, seed=1
        )
        assert profile.samples_profiled > 0
        assert profile.sample_rate == 0.5


class TestRunExperiment:
    def test_result_structure(self, model, topology):
        result = run_experiment(
            model,
            RecShardFastSharder(batch_size=BATCH),
            topology,
            batch_size=BATCH,
            iterations=2,
        )
        assert result.model_name == model.name
        assert result.metrics.num_iterations == 2
        assert result.shard_seconds >= 0
        assert result.table3_row().count("/") == 3

    def test_shared_batches_reused(self, model, topology):
        profile = analytic_profile(model)
        from repro.data.synthetic import TraceGenerator

        batches = list(
            TraceGenerator(model, batch_size=BATCH, seed=3).batches(2)
        )
        r1 = run_experiment(
            model,
            RecShardFastSharder(batch_size=BATCH),
            topology,
            batch_size=BATCH,
            profile=profile,
            shared_batches=batches,
        )
        r2 = run_experiment(
            model,
            RecShardFastSharder(batch_size=BATCH),
            topology,
            batch_size=BATCH,
            profile=profile,
            shared_batches=batches,
        )
        assert r1.metrics.times_ms.tolist() == r2.metrics.times_ms.tolist()


class TestCompareStrategies:
    def test_all_strategies_measured_on_same_trace(self, model, topology):
        results = compare_strategies(
            model,
            [
                make_baseline("Size-Based"),
                RecShardFastSharder(batch_size=BATCH, name="RecShard"),
            ],
            topology,
            batch_size=BATCH,
            iterations=2,
        )
        assert set(results) == {"Size-Based", "RecShard"}
        sb = results["Size-Based"].metrics
        rs = results["RecShard"].metrics
        total_sb = sum(a.sum() for a in sb.tier_accesses.values())
        total_rs = sum(a.sum() for a in rs.tier_accesses.values())
        assert total_sb == total_rs  # identical traffic

    def test_recshard_wins_under_pressure(self, model, topology):
        results = compare_strategies(
            model,
            [
                make_baseline("Size-Based"),
                RecShardFastSharder(batch_size=BATCH, name="RecShard"),
            ],
            topology,
            batch_size=BATCH,
            iterations=3,
        )
        speedups = speedup_table(results)
        assert speedups["RecShard"] >= speedups["Size-Based"]
        assert results["RecShard"].metrics.tier_access_fraction(
            "uvm"
        ) <= results["Size-Based"].metrics.tier_access_fraction("uvm")

    def test_speedup_table_normalizes_to_slowest(self, model, topology):
        results = compare_strategies(
            model,
            [
                make_baseline("Size-Based"),
                make_baseline("Lookup-Based"),
            ],
            topology,
            batch_size=BATCH,
            iterations=2,
        )
        speedups = speedup_table(results)
        assert min(speedups.values()) == pytest.approx(1.0)
