"""Executor tests for strategy plans and the composable lane framework.

The lane registry promises that every registered lane gets a fused
vectorized fast path and a scalar parity reference for free, with
bit-identical metrics.  These tests pin that promise for the new
strategy lanes (column scatter, twrw cut lanes, table-wise rehoming),
the classify/reduce serving seam, ``replay_trace``, and the scoping
rules (no replication/cache composition, no brownout with twrw).
"""

import numpy as np
import pytest

from repro.core import (
    RecShardFastSharder,
    ReplicationPolicy,
    StrategyPlan,
    TablePlacement,
    TableStrategy,
    plan_with_replication,
)
from repro.core.plan import ShardingPlan
from repro.data.synthetic import TraceGenerator
from repro.engine import (
    CacheModel,
    ShardedExecutor,
    build_lanes,
    replay_trace,
)
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

BATCH = 128


@pytest.fixture(scope="module")
def strategy_world():
    model = build_model(num_tables=8, rows=512, dim=16, seed=3)
    profile = analytic_profile(model)
    total = model.total_bytes
    # Roomy per-device HBM: capacity is not under test here, and the
    # hand-built column/twrw shards stack extra bytes on devices 0-2.
    topology = SystemTopology.two_tier(
        num_devices=4,
        hbm_capacity=total,
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    plan = RecShardFastSharder(batch_size=BATCH, steps=40).shard(
        model, profile, topology
    )
    return model, profile, topology, plan


def _mixed_plan(model, plan, num_devices):
    strategies = [TableStrategy("row") for _ in range(len(plan))]
    t0 = model.tables[0]
    strategies[0] = TableStrategy(
        "column", devices=(0, 1), dims=(t0.dim // 2, t0.dim - t0.dim // 2)
    )
    t1 = model.tables[1]
    third = t1.num_rows // 3
    strategies[1] = TableStrategy(
        "twrw", devices=(0, 1, 2), row_cuts=(third, 2 * third)
    )
    strategies[2] = TableStrategy("table")
    placements = list(plan)
    p2 = placements[2]
    rows = [0] * len(p2.rows_per_tier)
    rows[0] = p2.total_rows
    placements[2] = TablePlacement(
        table_index=p2.table_index,
        device=(p2.device + 1) % num_devices,
        rows_per_tier=tuple(rows),
    )
    base = ShardingPlan(
        placements=tuple(placements),
        strategy=plan.strategy,
        metadata=dict(plan.metadata),
    )
    return StrategyPlan(base, tuple(strategies))


def _batches(model, n=4, seed=9):
    gen = TraceGenerator(model, batch_size=BATCH, seed=seed)
    return [gen.next_batch() for _ in range(n)]


class TestStrategyExecution:
    def test_scalar_vectorized_bit_parity(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = _mixed_plan(model, plan, topology.num_devices)
        fast = ShardedExecutor(model, sp, profile, topology)
        slow = ShardedExecutor(model, sp, profile, topology, vectorized=False)
        for batch in _batches(model):
            ft, fa, fh, fr = fast.run_batch(batch)
            st, sa, sh, sr = slow.run_batch(batch)
            np.testing.assert_array_equal(fa, sa)
            np.testing.assert_array_equal(fh, sh)
            np.testing.assert_array_equal(fr, sr)
            np.testing.assert_array_equal(ft, st)

    def test_lookup_counts_conserved(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = _mixed_plan(model, plan, topology.num_devices)
        executor = ShardedExecutor(model, sp, profile, topology)
        for batch in _batches(model):
            _, accesses, _, _ = executor.run_batch(batch)
            assert accesses.sum() == batch.total_lookups

    def test_all_row_matches_plain_executor(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = StrategyPlan(
            plan, tuple(TableStrategy("row") for _ in range(len(plan)))
        )
        wrapped = ShardedExecutor(model, sp, profile, topology)
        plain = ShardedExecutor(model, plan, profile, topology)
        for batch in _batches(model):
            wt, wa, wh, wr = wrapped.run_batch(batch)
            pt, pa, ph, pr = plain.run_batch(batch)
            np.testing.assert_array_equal(wa, pa)
            np.testing.assert_array_equal(wt, pt)
            np.testing.assert_array_equal(wh, ph)
            np.testing.assert_array_equal(wr, pr)

    def test_classify_reduce_seam_parity(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = _mixed_plan(model, plan, topology.num_devices)
        direct = ShardedExecutor(model, sp, profile, topology)
        split = ShardedExecutor(model, sp, profile, topology)
        for batch in _batches(model):
            dt, da, dh, dr = direct.run_batch(batch)
            counts, hits, replicas, cuts = split.classify_batch(batch)
            assert cuts is not None and cuts.shape == (len(plan), 2)
            st, sa, sh, sr = split.reduce_classified(
                counts, hits, replicas, cuts
            )
            np.testing.assert_array_equal(da, sa)
            np.testing.assert_array_equal(dt, st)
            np.testing.assert_array_equal(dh, sh)
            np.testing.assert_array_equal(dr, sr)

    def test_scalar_classify_seam_matches_vectorized(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = _mixed_plan(model, plan, topology.num_devices)
        fast = ShardedExecutor(model, sp, profile, topology)
        slow = ShardedExecutor(model, sp, profile, topology, vectorized=False)
        for batch in _batches(model, n=2):
            fc, fh, fr, fcuts = fast.classify_batch(batch)
            sc, sh, sr, scuts = slow.classify_batch(batch)
            np.testing.assert_array_equal(fc, sc)
            np.testing.assert_array_equal(fh, sh)
            np.testing.assert_array_equal(fcuts, scuts)
            assert fr is None and sr is None

    def test_replay_trace_matches_individual_runs(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = _mixed_plan(model, plan, topology.num_devices)
        row_only = StrategyPlan(
            plan, tuple(TableStrategy("row") for _ in range(len(plan)))
        )
        ex_mixed = ShardedExecutor(model, sp, profile, topology)
        ex_row = ShardedExecutor(model, row_only, profile, topology)
        batches = _batches(model)
        fused = replay_trace([ex_mixed, ex_row], batches)
        solo = [
            ShardedExecutor(model, sp, profile, topology).run(batches),
            ShardedExecutor(model, row_only, profile, topology).run(batches),
        ]
        for merged, alone in zip(fused, solo):
            np.testing.assert_array_equal(merged.times_ms, alone.times_ms)
            assert merged.tier_accesses.keys() == alone.tier_accesses.keys()
            for tier in merged.tier_accesses:
                np.testing.assert_array_equal(
                    merged.tier_accesses[tier], alone.tier_accesses[tier]
                )

    def test_expected_costs_use_strategy_model(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = _mixed_plan(model, plan, topology.num_devices)
        wrapped = ShardedExecutor(model, sp, profile, topology)
        plain = ShardedExecutor(model, plan, profile, topology)
        wc = wrapped.expected_device_costs_ms(BATCH)
        pc = plain.expected_device_costs_ms(BATCH)
        assert wc.shape == pc.shape
        # The split tables move traffic off their home device, so the
        # two cost vectors must differ (while conserving the total).
        assert not np.array_equal(wc, pc)
        assert wc.sum() == pytest.approx(pc.sum(), rel=1e-6)


class TestStrategyScoping:
    def test_rejects_replication(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = StrategyPlan(
            plan, tuple(TableStrategy("row") for _ in range(len(plan)))
        )
        replicated = plan_with_replication(
            RecShardFastSharder(batch_size=BATCH, steps=40),
            model, profile, topology,
            ReplicationPolicy(capacity_bytes=4096),
        )
        with pytest.raises(ValueError, match="replication"):
            ShardedExecutor(
                model, sp, profile, topology, replication=replicated
            )

    def test_rejects_cache_and_staging(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = StrategyPlan(
            plan, tuple(TableStrategy("row") for _ in range(len(plan)))
        )
        with pytest.raises(ValueError, match="cache/staging"):
            ShardedExecutor(
                model, sp, profile, topology,
                cache=CacheModel(capacity_bytes=4096, bandwidth=400e9),
            )

    def test_brownout_rejected_with_twrw(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = _mixed_plan(model, plan, topology.num_devices)
        executor = ShardedExecutor(model, sp, profile, topology)
        with pytest.raises(ValueError, match="table-wise-row-wise"):
            executor.set_brownout(True)

    def test_brownout_allowed_with_column_only(self, strategy_world):
        model, profile, topology, plan = strategy_world
        strategies = [TableStrategy("row") for _ in range(len(plan))]
        t0 = model.tables[0]
        strategies[0] = TableStrategy(
            "column", devices=(0, 1), dims=(t0.dim // 2, t0.dim - t0.dim // 2)
        )
        sp = StrategyPlan(plan, tuple(strategies))
        fast = ShardedExecutor(model, sp, profile, topology)
        slow = ShardedExecutor(model, sp, profile, topology, vectorized=False)
        fast.set_brownout(True)
        slow.set_brownout(True)
        for batch in _batches(model, n=2):
            ft, fa, fh, fr = fast.run_batch(batch)
            st, sa, sh, sr = slow.run_batch(batch)
            np.testing.assert_array_equal(fa, sa)
            np.testing.assert_array_equal(ft, st)
            np.testing.assert_array_equal(
                fast.last_browned, slow.last_browned
            )
            # Browned lookups are dropped, the rest still conserve.
            assert fa.sum() + fast.last_browned.sum() == batch.total_lookups


class TestLaneRegistry:
    def test_build_order_and_roles(self):
        bounds = np.array([[4, 10], [6, 12]], dtype=np.int64)
        cutoffs = np.array([[2, 0], [3, 0]], dtype=np.int64)
        cuts = np.array([[3], [0]], dtype=np.int64)
        replica = np.array([1, 2], dtype=np.int64)
        registry = build_lanes(
            bounds, cutoffs, hit_tiers=(0,),
            replica_cut=replica, strategy_cuts=cuts,
        )
        assert registry.names == ("replica", "cut:0", "hit:0", "bound:0")
        assert registry.replica is not None
        assert registry.replica.edges_list == (1, 2)
        assert len(registry.cuts) == 1
        assert registry.cuts[0].index == 0
        assert registry.hit(0).edges_list == (2, 3)
        assert registry.hit(1) is None
        assert registry.bound(0).edges_list == (4, 6)
        # The last tier never registers a bound lane: its count is the
        # remainder after all earlier bounds.
        assert registry.bound(1) is None

    def test_minimal_registry(self):
        bounds = np.array([[5, 9]], dtype=np.int64)
        cutoffs = np.zeros((1, 2), dtype=np.int64)
        registry = build_lanes(bounds, cutoffs, hit_tiers=())
        assert registry.names == ("bound:0",)
        assert registry.replica is None and registry.cuts == ()

    def test_cut_slots_sorted(self):
        bounds = np.array([[8, 16]], dtype=np.int64)
        cutoffs = np.zeros((1, 2), dtype=np.int64)
        cuts = np.array([[2, 5]], dtype=np.int64)
        registry = build_lanes(bounds, cutoffs, hit_tiers=(), strategy_cuts=cuts)
        assert [lane.index for lane in registry.cuts] == [0, 1]
        assert registry.names == ("cut:0", "cut:1", "bound:0")

    def test_executor_registers_strategy_cut_lanes(self, strategy_world):
        model, profile, topology, plan = strategy_world
        sp = _mixed_plan(model, plan, topology.num_devices)
        executor = ShardedExecutor(model, sp, profile, topology)
        names = executor._lanes.names
        assert "cut:0" in names and "cut:1" in names
        plain = ShardedExecutor(model, plan, profile, topology)
        assert not any(n.startswith("cut:") for n in plain._lanes.names)
