"""Seed-loop parity: the vectorized multi-tier executor vs the scalar
per-request reference.

The fused rank-space paths (``run_jagged``'s interleaved edge grid,
``run_ranked``'s threshold scans) must reproduce the per-lookup
remap-table reference *bit for bit* on hierarchies of any depth —
identical per-tier access counts, identical fast-lane hits, and, since
all paths share one reduction, identical device times — across tier
counts, seeds, batch sizes, and staging configurations.
"""

import numpy as np
import pytest

from repro.core import MultiTierSharder
from repro.data.synthetic import TraceGenerator
from repro.engine import (
    CacheModel,
    RankRemapper,
    ShardedExecutor,
    TierStagingModel,
    replay_trace,
    staged_rows_per_table,
)
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model


def build_topology(total_bytes: int, num_tiers: int, num_devices: int = 2):
    """An ``num_tiers``-deep hierarchy with pressure on every boundary."""
    names = ("hbm", "dram", "ssd", "hdd", "tape")
    bandwidths = (200e9, 20e9, 2e9, 0.5e9, 0.1e9)
    tiers = []
    for t in range(num_tiers):
        if t == num_tiers - 1:
            capacity = total_bytes  # the tail always fits the last tier
        else:
            # Shrinking per-tier budgets force rows into every level.
            capacity = int(total_bytes * 0.18 / num_devices)
        tiers.append(MemoryTier(names[t], capacity, bandwidths[t]))
    return SystemTopology(num_devices=num_devices, tiers=tuple(tiers))


def build_world(num_tiers: int, seed: int, batch_size: int):
    model = build_model(num_tables=6, seed=seed)
    profile = analytic_profile(model)
    topology = build_topology(model.total_bytes, num_tiers)
    plan = MultiTierSharder(batch_size=batch_size, steps=12).shard(
        model, profile, topology
    )
    return model, profile, topology, plan


def assert_exact_parity(vectorized, scalar, batch):
    """Times, per-tier accesses, and fast-lane hits all bit-identical."""
    tv, av, hv, rv = vectorized.run_batch(batch)
    ts, as_, hs, rs = scalar.run_batch(batch)
    np.testing.assert_array_equal(tv, ts)
    np.testing.assert_array_equal(av, as_)
    np.testing.assert_array_equal(hv, hs)
    np.testing.assert_array_equal(rv, rs)
    return tv, av, hv


class TestMultiTierParity:
    @pytest.mark.parametrize("num_tiers", [3, 4, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seed_loop_parity(self, num_tiers, seed):
        batch_size = 64
        model, profile, topology, plan = build_world(num_tiers, seed, batch_size)
        vectorized = ShardedExecutor(model, plan, profile, topology)
        scalar = ShardedExecutor(
            model, plan, profile, topology, vectorized=False
        )
        touched = np.zeros(num_tiers, dtype=np.int64)
        for batch in TraceGenerator(model, batch_size, seed=seed + 100).batches(3):
            _, accesses, _ = assert_exact_parity(vectorized, scalar, batch)
            touched += accesses.sum(axis=1)
        # The topology is engineered so the trace actually reaches
        # every tier — otherwise deep-tier parity would be vacuous.
        assert (touched > 0).all(), touched

    @pytest.mark.parametrize("batch_size", [1, 16, 256])
    def test_batch_size_sweep(self, batch_size):
        model, profile, topology, plan = build_world(3, 5, batch_size)
        vectorized = ShardedExecutor(model, plan, profile, topology)
        scalar = ShardedExecutor(
            model, plan, profile, topology, vectorized=False
        )
        for batch in TraceGenerator(model, batch_size, seed=77).batches(2):
            assert_exact_parity(vectorized, scalar, batch)

    @pytest.mark.parametrize("num_tiers", [3, 4])
    def test_staging_parity_and_speed(self, num_tiers):
        """Staged cold rows hit in both paths, identically, and help."""
        batch_size = 96
        model, profile, topology, plan = build_world(num_tiers, 3, batch_size)
        staging = TierStagingModel(capacity_bytes=model.total_bytes // 24)
        vectorized = ShardedExecutor(
            model, plan, profile, topology, staging=staging
        )
        scalar = ShardedExecutor(
            model, plan, profile, topology, staging=staging, vectorized=False
        )
        plain = ShardedExecutor(model, plan, profile, topology)
        staged_time = plain_time = 0.0
        staged_hits = 0
        for batch in TraceGenerator(model, batch_size, seed=9).batches(3):
            tv, av, hv = assert_exact_parity(vectorized, scalar, batch)
            tp, ap, _, _ = plain.run_batch(batch)
            # Staging is a bandwidth effect only: access counts match
            # the unstaged executor's exactly.
            np.testing.assert_array_equal(av, ap)
            staged_time += tv.sum()
            plain_time += tp.sum()
            staged_hits += hv[1:].sum()
            # The fastest tier's staging lane is CacheModel's job.
            assert hv[0].sum() == 0
        assert staged_hits > 0
        assert staged_time < plain_time

    def test_staging_with_cache_parity(self):
        model, profile, topology, plan = build_world(3, 4, 64)
        cache = CacheModel(capacity_bytes=4096, bandwidth=800e9)
        staging = TierStagingModel(capacity_bytes=model.total_bytes // 24)
        vectorized = ShardedExecutor(
            model, plan, profile, topology, cache=cache, staging=staging
        )
        scalar = ShardedExecutor(
            model, plan, profile, topology, cache=cache, staging=staging,
            vectorized=False,
        )
        for batch in TraceGenerator(model, 64, seed=11).batches(3):
            assert_exact_parity(vectorized, scalar, batch)

    def test_per_tier_staging_budgets(self):
        """A tuple budget stages only the tiers it names."""
        model, profile, topology, plan = build_world(3, 6, 64)
        only_mid = TierStagingModel(
            capacity_bytes=(model.total_bytes // 16,)
        )
        executor = ShardedExecutor(
            model, plan, profile, topology, staging=only_mid
        )
        scalar = ShardedExecutor(
            model, plan, profile, topology, staging=only_mid,
            vectorized=False,
        )
        got_mid = False
        for batch in TraceGenerator(model, 64, seed=12).batches(2):
            _, _, hits = assert_exact_parity(executor, scalar, batch)
            got_mid = got_mid or hits[1].sum() > 0
            assert hits[2].sum() == 0  # tier 2 had no budget
        assert got_mid

    def test_ranked_and_jagged_paths_agree(self):
        model, profile, topology, plan = build_world(4, 8, 64)
        staging = TierStagingModel(capacity_bytes=model.total_bytes // 24)
        executor = ShardedExecutor(
            model, plan, profile, topology, staging=staging
        )
        batches = list(TraceGenerator(model, 64, seed=13).batches(2))
        for batch, ranked in zip(batches, executor.prepare(batches)):
            tj, aj, hj, rj = executor.run_jagged(batch)
            tr, ar, hr, rr = executor.run_ranked(ranked)
            np.testing.assert_array_equal(tj, tr)
            np.testing.assert_array_equal(aj, ar)
            np.testing.assert_array_equal(hj, hr)
            np.testing.assert_array_equal(rj, rr)

    def test_fused_replay_matches_individual_runs(self):
        model, profile, topology, _ = build_world(3, 2, 64)[:4]
        profile = analytic_profile(model)
        plans = [
            MultiTierSharder(batch_size=b, steps=12).shard(
                model, profile, topology
            )
            for b in (64, 512)
        ]
        ranker = RankRemapper(profile)
        staging = TierStagingModel(capacity_bytes=model.total_bytes // 24)
        executors = [
            ShardedExecutor(
                model, p, profile, topology, ranker=ranker, staging=staging
            )
            for p in plans
        ]
        batches = list(TraceGenerator(model, 64, seed=14).batches(3))
        fused = replay_trace(executors, batches, ranker=ranker)
        for executor, metrics in zip(executors, fused):
            alone = executor.run(batches)
            np.testing.assert_array_equal(metrics.times_ms, alone.times_ms)
            for tier in alone.tier_accesses:
                np.testing.assert_array_equal(
                    metrics.tier_accesses[tier], alone.tier_accesses[tier]
                )
            np.testing.assert_array_equal(
                metrics.staged_hits, alone.staged_hits
            )

    def test_run_metrics_staged_views(self):
        model, profile, topology, plan = build_world(3, 1, 64)
        staging = TierStagingModel(capacity_bytes=model.total_bytes // 16)
        executor = ShardedExecutor(
            model, plan, profile, topology, staging=staging
        )
        metrics = executor.run(
            TraceGenerator(model, 64, seed=15).batches(2)
        )
        assert metrics.staged_hits is not None
        assert metrics.cache_hits is None  # no CacheModel configured
        fractions = [
            metrics.staged_fraction(t.name) for t in topology.tiers[1:]
        ]
        assert any(f > 0 for f in fractions)
        assert all(0.0 <= f <= 1.0 for f in fractions)


class TestStagedRowSelection:
    def test_budget_respected_per_tier(self):
        model, profile, topology, plan = build_world(3, 0, 64)
        staging = TierStagingModel(capacity_bytes=8192)
        for device in range(topology.num_devices):
            staged = staged_rows_per_table(
                staging, plan, profile, model, topology.num_tiers, device
            )
            assert (staged[:, 0] == 0).all()
            for tier in range(1, topology.num_tiers):
                used = sum(
                    int(staged[j, tier]) * model.tables[j].row_bytes
                    for j in range(model.num_tables)
                )
                assert used <= staging.capacity_for(tier)

    def test_staged_rows_stay_within_tier_blocks(self):
        model, profile, topology, plan = build_world(3, 0, 64)
        staging = TierStagingModel(capacity_bytes=model.total_bytes)
        for device in range(topology.num_devices):
            staged = staged_rows_per_table(
                staging, plan, profile, model, topology.num_tiers, device
            )
            for placement in plan.tables_on_device(device):
                j = placement.table_index
                for tier in range(1, topology.num_tiers):
                    assert staged[j, tier] <= placement.rows_per_tier[tier]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TierStagingModel(capacity_bytes=-1)
        with pytest.raises(ValueError):
            TierStagingModel(capacity_bytes=(8, -8))
        with pytest.raises(ValueError):
            TierStagingModel(capacity_bytes=8).capacity_for(0)

    def test_missing_tuple_entries_mean_no_staging(self):
        staging = TierStagingModel(capacity_bytes=(4096,))
        assert staging.capacity_for(1) == 4096
        assert staging.capacity_for(2) == 0
