"""Replica lane execution: routing parity, conservation, fused replay.

The executor's replica lane has three classification paths (fused
jagged, ranked threshold scans, per-lookup scalar remap) and two
routing disciplines (closed-form :func:`least_loaded_counts`, scalar
per-lookup argmin).  Every combination must produce bit-identical
metrics, and the routed accesses must conserve the batch's lookups.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MultiTierSharder,
    PlannerWorkspace,
    RecShardFastSharder,
    ReplicationPolicy,
    plan_with_replication,
)
from repro.data.synthetic import TraceGenerator
from repro.engine import (
    CacheModel,
    ShardedExecutor,
    TierStagingModel,
    least_loaded_counts,
    replay_trace,
)
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model


def two_tier(total: int, num_devices: int = 4):
    return SystemTopology.two_tier(
        num_devices=num_devices,
        hbm_capacity=int(total * 0.45 / num_devices),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )


def three_tier(total: int, num_devices: int = 4):
    return SystemTopology(
        num_devices=num_devices,
        tiers=(
            MemoryTier("hbm", int(total * 0.2 / num_devices), 200e9),
            MemoryTier("dram", int(total * 0.2 / num_devices), 20e9),
            MemoryTier("ssd", total, 2e9),
        ),
    )


def build_world(seed: int, tiers: int = 2, num_devices: int = 4):
    model = build_model(num_tables=8, seed=seed)
    profile = analytic_profile(model)
    topology = (
        two_tier(model.total_bytes, num_devices)
        if tiers == 2
        else three_tier(model.total_bytes, num_devices)
    )
    if tiers == 2:
        sharder = RecShardFastSharder(batch_size=64, steps=40)
        ws = PlannerWorkspace(model, profile, steps=40)
    else:
        sharder = MultiTierSharder(batch_size=64, steps=20)
        ws = PlannerWorkspace(model, profile, steps=20)
    policy = ReplicationPolicy(
        capacity_bytes=int(model.total_bytes * 0.04 / num_devices)
    )
    plan = plan_with_replication(
        sharder, model, profile, topology, policy, workspace=ws
    )
    assert plan.num_replicated_rows > 0
    return model, profile, topology, plan


class TestLeastLoadedCounts:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_per_item_greedy(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(100):
            devices = int(rng.integers(1, 10))
            load = rng.integers(0, 2000, size=devices).astype(np.int64)
            n = int(rng.integers(0, 80))
            w = int(rng.integers(1, 100))
            fast = least_loaded_counts(load, n, w)
            reference = np.zeros(devices, dtype=np.int64)
            running = load.copy()
            for _ in range(n):
                device = int(np.argmin(running))
                reference[device] += 1
                running[device] += w
            np.testing.assert_array_equal(fast, reference)
            assert fast.sum() == n

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            least_loaded_counts(np.zeros(2, dtype=np.int64), 1, 0)

    def test_ties_resolve_to_lowest_device(self):
        counts = least_loaded_counts(np.zeros(4, dtype=np.int64), 2, 8)
        np.testing.assert_array_equal(counts, [1, 1, 0, 0])


class TestReplicatedExecutionParity:
    @pytest.mark.parametrize("tiers", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scalar_vectorized_bit_parity(self, tiers, seed):
        model, profile, topology, plan = build_world(seed, tiers=tiers)
        vectorized = ShardedExecutor(model, plan, profile, topology)
        scalar = ShardedExecutor(
            model, plan, profile, topology, vectorized=False
        )
        routed_total = 0
        for batch in TraceGenerator(model, 64, seed=seed + 50).batches(3):
            tv, av, hv, rv = vectorized.run_batch(batch)
            ts, as_, hs, rs = scalar.run_batch(batch)
            np.testing.assert_array_equal(tv, ts)
            np.testing.assert_array_equal(av, as_)
            np.testing.assert_array_equal(hv, hs)
            np.testing.assert_array_equal(rv, rs)
            # Routed lookups are counted (on the fastest tier), never
            # duplicated or dropped.
            assert av.sum() == batch.total_lookups
            routed_total += rv.sum()
        # The stateful routing counters advanced identically.
        np.testing.assert_array_equal(
            vectorized._replica_load, scalar._replica_load
        )
        assert routed_total > 0

    def test_parity_with_cache_and_staging(self):
        model, profile, topology, plan = build_world(7, tiers=3)
        cache = CacheModel(capacity_bytes=2048, bandwidth=800e9)
        staging = TierStagingModel(capacity_bytes=model.total_bytes // 64)
        vectorized = ShardedExecutor(
            model, plan, profile, topology, cache=cache, staging=staging
        )
        scalar = ShardedExecutor(
            model, plan, profile, topology, cache=cache, staging=staging,
            vectorized=False,
        )
        for batch in TraceGenerator(model, 64, seed=99).batches(3):
            tv, av, hv, rv = vectorized.run_batch(batch)
            ts, as_, hs, rs = scalar.run_batch(batch)
            np.testing.assert_array_equal(tv, ts)
            np.testing.assert_array_equal(av, as_)
            np.testing.assert_array_equal(hv, hs)
            np.testing.assert_array_equal(rv, rs)

    def test_ranked_and_jagged_paths_agree(self):
        model, profile, topology, plan = build_world(3)
        executor = ShardedExecutor(model, plan, profile, topology)
        twin = ShardedExecutor(model, plan, profile, topology)
        batches = list(TraceGenerator(model, 64, seed=5).batches(2))
        for batch, ranked in zip(batches, executor.prepare(batches)):
            tj, aj, hj, rj = executor.run_jagged(batch)
            tr, ar, hr, rr = twin.run_ranked(ranked)
            np.testing.assert_array_equal(tj, tr)
            np.testing.assert_array_equal(aj, ar)
            np.testing.assert_array_equal(rj, rr)

    def test_fused_replay_matches_individual_runs(self):
        model, profile, topology, plan = build_world(4)
        batches = list(TraceGenerator(model, 64, seed=21).batches(2))
        executors = [
            ShardedExecutor(model, plan, profile, topology),
            ShardedExecutor(model, plan.plan, profile, topology),
        ]
        fused = replay_trace(executors, batches)
        singles = [
            ShardedExecutor(model, plan, profile, topology).run(batches),
            ShardedExecutor(model, plan.plan, profile, topology).run(batches),
        ]
        for merged, alone in zip(fused, singles):
            np.testing.assert_array_equal(merged.times_ms, alone.times_ms)
            for tier in merged.tier_accesses:
                np.testing.assert_array_equal(
                    merged.tier_accesses[tier], alone.tier_accesses[tier]
                )
            if alone.replica_hits is None:
                assert merged.replica_hits is None
            else:
                np.testing.assert_array_equal(
                    merged.replica_hits, alone.replica_hits
                )

    def test_replication_balances_device_accesses(self):
        """Routing spreads the replica lane: imbalance never worsens
        and replica metrics are populated."""
        model, profile, topology, plan = build_world(6)
        batches = list(TraceGenerator(model, 128, seed=8).batches(3))
        plain = ShardedExecutor(
            model, plan.plan, profile, topology
        ).run(batches)
        replicated = ShardedExecutor(
            model, plan, profile, topology
        ).run(batches)
        assert replicated.replica_hits is not None
        assert replicated.replica_hits.sum() > 0
        assert 0.0 < replicated.replica_fraction() < 1.0
        assert plain.replica_fraction() == 0.0
        assert (
            replicated.device_access_totals().sum()
            == plain.device_access_totals().sum()
        )
        assert replicated.load_imbalance() <= plain.load_imbalance() + 1e-9

    def test_replication_kwarg_equivalent_to_wrapped_plan(self):
        model, profile, topology, plan = build_world(1)
        via_plan = ShardedExecutor(model, plan, profile, topology)
        via_kwarg = ShardedExecutor(
            model, plan.plan, profile, topology, replication=plan
        )
        batch = TraceGenerator(model, 64, seed=77).next_batch()
        for a, b in zip(via_plan.run_batch(batch), via_kwarg.run_batch(batch)):
            np.testing.assert_array_equal(a, b)

    def test_mismatched_replication_rejected(self):
        model, profile, topology, plan = build_world(2)
        other = build_world(5)[3]
        with pytest.raises(ValueError):
            ShardedExecutor(
                model, other.plan, profile, topology, replication=plan
            )
