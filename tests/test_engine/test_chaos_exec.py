"""Degraded-mode execution: masked replica routing, drops, slowdowns.

When a device fails mid-run the executor (a) drops its home-lane
lookups — counted in ``last_dropped``, never silently lost — and (b)
reroutes replicated lookups by masking the dead device out of the
least-loaded lane.  The masked vectorized route (compact the load
vector to survivors, closed-form assign, scatter back) must stay
bit-identical to the scalar per-lookup argmin over survivors, for any
fail set, on 2- and 3-tier worlds.  Degradation multiplies a device's
service times without touching routing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import TraceGenerator
from repro.engine import ShardedExecutor, least_loaded_counts
from tests.test_engine.test_replication_exec import build_world


# ----------------------------------------------------------------------
# Masked least-loaded routing: compaction + scatter vs greedy survivors
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_masked_least_loaded_matches_greedy_over_survivors(seed):
    """The compact-assign-scatter identity under arbitrary masks: ties
    still resolve to the lowest surviving device id because compaction
    preserves ascending device order."""
    rng = np.random.default_rng(seed)
    for _ in range(100):
        devices = int(rng.integers(2, 10))
        alive = np.zeros(devices, dtype=bool)
        alive[rng.choice(devices, int(rng.integers(1, devices + 1)), False)] = (
            True
        )
        load = rng.integers(0, 2000, size=devices).astype(np.int64)
        n = int(rng.integers(0, 60))
        w = int(rng.integers(1, 50))
        alive_idx = np.flatnonzero(alive)
        masked = np.zeros(devices, dtype=np.int64)
        masked[alive_idx] = least_loaded_counts(load[alive_idx], n, w)
        reference = np.zeros(devices, dtype=np.int64)
        running = load.copy()
        for _ in range(n):
            device = int(alive_idx[np.argmin(running[alive_idx])])
            reference[device] += 1
            running[device] += w
        np.testing.assert_array_equal(masked, reference)
        assert masked[~alive].sum() == 0 and masked.sum() == n


# ----------------------------------------------------------------------
# Executor parity under random fail sets
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tiers", [2, 3])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_masked_routing_parity_random_fail_sets(tiers, seed):
    """Vectorized vs scalar bit parity batch by batch while the fail
    set changes between batches; conservation with drops counted."""
    model, profile, topology, plan = build_world(seed, tiers=tiers)
    rng = np.random.default_rng(seed + 100)
    vectorized = ShardedExecutor(model, plan, profile, topology)
    scalar = ShardedExecutor(model, plan, profile, topology, vectorized=False)
    rerouted = 0
    for batch in TraceGenerator(model, 64, seed=seed + 7).batches(6):
        num_dead = int(rng.integers(0, topology.num_devices))  # never all
        dead = rng.choice(topology.num_devices, size=num_dead, replace=False)
        for executor in (vectorized, scalar):
            executor._device_alive[:] = True
            for device in dead:
                executor.fail_device(int(device))
        tv, av, hv, rv = vectorized.run_batch(batch)
        ts, as_, hs, rs = scalar.run_batch(batch)
        np.testing.assert_array_equal(tv, ts)
        np.testing.assert_array_equal(av, as_)
        np.testing.assert_array_equal(hv, hs)
        np.testing.assert_array_equal(rv, rs)
        np.testing.assert_array_equal(
            vectorized.last_dropped, scalar.last_dropped
        )
        # Dead devices serve nothing; drops close the books exactly.
        if num_dead:
            assert av[:, dead].sum() == 0
            assert rv[dead].sum() == 0
        assert av.sum() + vectorized.last_dropped.sum() == batch.total_lookups
        rerouted += rv.sum()
    np.testing.assert_array_equal(
        vectorized._replica_load, scalar._replica_load
    )
    assert rerouted > 0


def test_single_survivor_takes_all_replicated_traffic():
    model, profile, topology, plan = build_world(1, tiers=2)
    executor = ShardedExecutor(model, plan, profile, topology)
    survivor = 2
    for device in range(topology.num_devices):
        if device != survivor:
            executor.fail_device(device)
    batch = next(iter(TraceGenerator(model, 64, seed=3).batches(1)))
    _, accesses, _, replicas = executor.run_batch(batch)
    assert replicas.sum() > 0
    assert replicas[survivor] == replicas.sum()
    assert accesses.sum() + executor.last_dropped.sum() == batch.total_lookups


def test_all_devices_dead_drops_everything():
    model, profile, topology, plan = build_world(2, tiers=2)
    executor = ShardedExecutor(model, plan, profile, topology)
    for device in range(topology.num_devices):
        executor.fail_device(device)
    batch = next(iter(TraceGenerator(model, 64, seed=4).batches(1)))
    _, accesses, _, replicas = executor.run_batch(batch)
    assert accesses.sum() == 0 and replicas.sum() == 0
    assert executor.last_dropped.sum() == batch.total_lookups


# ----------------------------------------------------------------------
# Degrade and recover
# ----------------------------------------------------------------------
def test_degrade_scales_service_time_only_on_target():
    model, profile, topology, plan = build_world(3, tiers=3)
    healthy = ShardedExecutor(model, plan, profile, topology)
    slow = ShardedExecutor(model, plan, profile, topology)
    slow.degrade_device(1, 4.0)
    batch = next(iter(TraceGenerator(model, 64, seed=5).batches(1)))
    t_healthy, a_healthy, _, _ = healthy.run_batch(batch)
    t_slow, a_slow, _, _ = slow.run_batch(batch)
    np.testing.assert_array_equal(a_healthy, a_slow)  # routing untouched
    np.testing.assert_allclose(t_slow[1], 4.0 * t_healthy[1])
    mask = np.arange(topology.num_devices) != 1
    np.testing.assert_array_equal(t_slow[mask], t_healthy[mask])
    assert slow.last_dropped.sum() == 0  # degraded, not failed


def test_recover_and_clear_restore_healthy_state():
    model, profile, topology, plan = build_world(4, tiers=2)
    executor = ShardedExecutor(model, plan, profile, topology)
    executor.fail_device(0)
    executor.degrade_device(1, 2.0)
    assert executor.has_faults and executor.dead_devices == (0,)
    executor.recover_device(0)
    executor.recover_device(1)
    assert not executor.has_faults and executor.dead_devices == ()
    executor.fail_device(2)
    executor.clear_faults()
    assert not executor.has_faults
    # Post-recovery batches match a never-faulted executor bit for bit
    # (routing counters were never perturbed by the fail/recover pair).
    fresh = ShardedExecutor(model, plan, profile, topology)
    batch = next(iter(TraceGenerator(model, 64, seed=6).batches(1)))
    for left, right in zip(executor.run_batch(batch), fresh.run_batch(batch)):
        np.testing.assert_array_equal(left, right)


def test_fault_api_validation():
    model, profile, topology, plan = build_world(5, tiers=2)
    executor = ShardedExecutor(model, plan, profile, topology)
    with pytest.raises(ValueError, match="out of range"):
        executor.fail_device(topology.num_devices)
    with pytest.raises(ValueError, match="slowdown must be > 0"):
        executor.degrade_device(0, 0.0)
    executor.fail_device(0)
    with pytest.raises(ValueError, match="failed, not degradable"):
        executor.degrade_device(0, 2.0)
