"""Tests for the optional GPU cache model."""

import pytest

from repro.core import RecShardFastSharder
from repro.core.plan import ShardingPlan, TablePlacement
from repro.data.synthetic import TraceGenerator
from repro.engine import ShardedExecutor
from repro.engine.cache import CacheModel, cached_rows_per_table
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

BATCH = 128


@pytest.fixture
def world():
    model = build_model(num_tables=5, seed=31)
    profile = analytic_profile(model)
    total = model.total_bytes
    topology = SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=total,
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    plan = RecShardFastSharder(batch_size=BATCH).shard(model, profile, topology)
    return model, profile, topology, plan


class TestCacheModel:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CacheModel(capacity_bytes=-1, bandwidth=1.0)
        with pytest.raises(ValueError):
            CacheModel(capacity_bytes=10, bandwidth=0.0)

    def test_zero_capacity_caches_nothing(self, world):
        model, profile, topology, plan = world
        cache = CacheModel(capacity_bytes=0, bandwidth=1e12)
        for device in range(topology.num_devices):
            cached = cached_rows_per_table(cache, plan, profile, model, device)
            assert all(rows == 0 for rows in cached.values())

    def test_capacity_bound_respected(self, world):
        model, profile, topology, plan = world
        cache = CacheModel(capacity_bytes=4096, bandwidth=1e12)
        for device in range(topology.num_devices):
            cached = cached_rows_per_table(cache, plan, profile, model, device)
            used = sum(
                rows * model.tables[j].row_bytes for j, rows in cached.items()
            )
            assert used <= cache.capacity_bytes

    def test_hottest_rows_selected_first(self, world):
        # With capacity for exactly one row, the single globally hottest
        # row on the device must be the one cached.
        model, profile, topology, plan = world
        row_bytes = model.tables[0].row_bytes
        cache = CacheModel(capacity_bytes=row_bytes, bandwidth=1e12)
        for device in range(topology.num_devices):
            cached = cached_rows_per_table(cache, plan, profile, model, device)
            chosen = [j for j, rows in cached.items() if rows > 0]
            if not chosen:
                continue
            assert len(chosen) == 1
            top_counts = {
                p.table_index: profile[p.table_index].counts.max()
                for p in plan.tables_on_device(device)
            }
            assert top_counts[chosen[0]] == max(top_counts.values())

    def test_huge_capacity_caches_all_hbm_rows(self, world):
        model, profile, topology, plan = world
        cache = CacheModel(capacity_bytes=model.total_bytes * 2, bandwidth=1e12)
        for device in range(topology.num_devices):
            cached = cached_rows_per_table(cache, plan, profile, model, device)
            for placement in plan.tables_on_device(device):
                stats = profile[placement.table_index]
                live_in_hbm = min(
                    placement.rows_per_tier[0], stats.cdf.live_rows
                )
                # Only rows with nonzero expected counts compete.
                assert cached[placement.table_index] >= live_in_hbm


class TestExecutorWithCache:
    def test_cache_reduces_time(self, world):
        model, profile, topology, plan = world
        batches = list(TraceGenerator(model, batch_size=BATCH, seed=1).batches(3))
        plain = ShardedExecutor(model, plan, profile, topology).run(batches)
        cached = ShardedExecutor(
            model, plan, profile, topology,
            cache=CacheModel(model.total_bytes // 8, bandwidth=2e12),
        ).run(batches)
        assert cached.times_ms.sum() < plain.times_ms.sum()
        # Access conservation is unaffected by caching.
        assert (
            sum(a.sum() for a in cached.tier_accesses.values())
            == sum(a.sum() for a in plain.tier_accesses.values())
        )

    def test_cache_hit_fraction_reported(self, world):
        model, profile, topology, plan = world
        executor = ShardedExecutor(
            model, plan, profile, topology,
            cache=CacheModel(model.total_bytes // 8, bandwidth=2e12),
        )
        metrics = executor.run(
            TraceGenerator(model, batch_size=BATCH, seed=2).batches(2)
        )
        assert metrics.cache_hits is not None
        assert 0.0 < metrics.cache_hit_fraction() < 1.0

    def test_no_cache_reports_zero(self, world):
        model, profile, topology, plan = world
        metrics = ShardedExecutor(model, plan, profile, topology).run(
            TraceGenerator(model, batch_size=BATCH, seed=3).batches(1)
        )
        assert metrics.cache_hits is None
        assert metrics.cache_hit_fraction() == 0.0

    def test_skewed_tables_cache_better_when_concentrated(self):
        """A device serving few hot tables out-caches a scattered one.

        This is the mechanism behind the paper's RM1 mean-time gains:
        remapped, well-placed hot rows fit the cache.
        """
        model = build_model(num_tables=4, seed=33)
        profile = analytic_profile(model)
        total = model.total_bytes
        topology = SystemTopology.two_tier(
            2, total, 200e9, total, 10e9
        )
        cache = CacheModel(capacity_bytes=total // 10, bandwidth=2e12)
        # Concentrated: hottest two tables together on device 0.
        mass = [
            profile[j].coverage * profile[j].avg_pooling
            for j in range(model.num_tables)
        ]
        order = sorted(range(model.num_tables), key=lambda j: -mass[j])
        concentrated = ShardingPlan(
            strategy="conc",
            placements=[
                TablePlacement(
                    j, 0 if j in order[:2] else 1, (model.tables[j].num_rows, 0)
                )
                for j in range(model.num_tables)
            ],
        )
        batches = list(TraceGenerator(model, batch_size=BATCH, seed=4).batches(3))
        metrics = ShardedExecutor(
            model, concentrated, profile, topology, cache=cache
        ).run(batches)
        assert metrics.cache_hit_fraction() > 0.2
