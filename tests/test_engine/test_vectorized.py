"""Parity tests: the vectorized rank-space engine vs the scalar reference.

The vectorized path (frequency-rank translation + threshold counting)
must reproduce the scalar per-feature remap path exactly — same access
counts, same cache hits, and times equal to float tolerance — across
cache configurations, tier counts, and degenerate batches.
"""

import numpy as np
import pytest

from repro.core import MultiTierSharder, RecShardFastSharder
from repro.data.batch import JaggedBatch, JaggedFeature
from repro.data.synthetic import TraceGenerator
from repro.engine import (
    CacheModel,
    RankRemapper,
    ShardedExecutor,
    replay_trace,
)
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

BATCH = 128


@pytest.fixture
def world():
    model = build_model(num_tables=6, seed=21)
    profile = analytic_profile(model)
    total = model.total_bytes
    topology = SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=int(total * 0.4 / 2),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    plan = RecShardFastSharder(batch_size=BATCH).shard(model, profile, topology)
    return model, profile, topology, plan


def _pair(world, cache=None):
    model, profile, topology, plan = world
    vectorized = ShardedExecutor(
        model, plan, profile, topology, cache=cache, vectorized=True
    )
    scalar = ShardedExecutor(
        model, plan, profile, topology, cache=cache, vectorized=False
    )
    return vectorized, scalar


def assert_batch_parity(vectorized, scalar, batch):
    tv, av, hv, rv = vectorized.run_batch(batch)
    ts, as_, hs, rs = scalar.run_batch(batch)
    np.testing.assert_allclose(tv, ts, rtol=1e-9)
    assert np.array_equal(av, as_)
    assert np.array_equal(hv, hs)
    assert np.array_equal(rv, rs)


class TestVectorizedParity:
    def test_matches_scalar_on_seeded_trace(self, world):
        vectorized, scalar = _pair(world)
        gen = TraceGenerator(world[0], batch_size=BATCH, seed=31)
        for batch in gen.batches(3):
            assert_batch_parity(vectorized, scalar, batch)

    def test_matches_scalar_with_cache(self, world):
        cache = CacheModel(capacity_bytes=4096, bandwidth=800e9)
        vectorized, scalar = _pair(world, cache=cache)
        gen = TraceGenerator(world[0], batch_size=BATCH, seed=32)
        for batch in gen.batches(3):
            assert_batch_parity(vectorized, scalar, batch)
        # The cache must actually be exercised for this test to mean much.
        metrics = vectorized.run(TraceGenerator(world[0], BATCH, seed=33).batches(2))
        assert metrics.cache_hits.sum() > 0

    def test_matches_scalar_three_tier(self):
        model = build_model(num_tables=6, seed=22)
        profile = analytic_profile(model)
        total = model.total_bytes
        topology = SystemTopology(
            num_devices=2,
            tiers=(
                MemoryTier("hbm", int(total * 0.2 / 2), 200e9),
                MemoryTier("uvm", int(total * 0.4 / 2), 10e9),
                MemoryTier("ssd", total, 1e9),
            ),
        )
        plan = MultiTierSharder(batch_size=BATCH, steps=10).shard(
            model, profile, topology
        )
        vectorized = ShardedExecutor(model, plan, profile, topology)
        scalar = ShardedExecutor(
            model, plan, profile, topology, vectorized=False
        )
        gen = TraceGenerator(model, batch_size=BATCH, seed=34)
        for batch in gen.batches(2):
            assert_batch_parity(vectorized, scalar, batch)

    def test_empty_and_null_features(self, world):
        model, profile, topology, plan = world
        vectorized, scalar = _pair(world)
        features = []
        for table in model.tables:
            features.append(
                JaggedFeature(
                    np.empty(0, dtype=np.int64),
                    np.zeros(5, dtype=np.int64),
                )
            )
        batch = JaggedBatch(features)
        assert_batch_parity(vectorized, scalar, batch)
        times, accesses, hits, _ = vectorized.run_batch(batch)
        assert accesses.sum() == 0
        assert np.all(times == 0)

    def test_run_metrics_parity(self, world):
        vectorized, scalar = _pair(world)
        batches = list(TraceGenerator(world[0], BATCH, seed=35).batches(4))
        mv = vectorized.run(batches)
        ms = scalar.run(batches)
        np.testing.assert_allclose(mv.times_ms, ms.times_ms, rtol=1e-9)
        for tier in ms.tier_accesses:
            assert np.array_equal(mv.tier_accesses[tier], ms.tier_accesses[tier])

    def test_pre_ranked_batches_match(self, world):
        model, profile, topology, plan = world
        vectorized, scalar = _pair(world)
        batches = list(TraceGenerator(model, BATCH, seed=36).batches(2))
        ranked = vectorized.prepare(batches)
        for batch, ranked_batch in zip(batches, ranked):
            tv, av, _, _ = vectorized.run_batch(ranked_batch)
            ts, as_, _, _ = scalar.run_batch(batch)
            np.testing.assert_allclose(tv, ts, rtol=1e-9)
            assert np.array_equal(av, as_)


class TestReplayTrace:
    def test_fused_replay_matches_individual_runs(self, world):
        model, profile, topology, _ = world
        sharders = [
            RecShardFastSharder(batch_size=BATCH, name="A"),
            RecShardFastSharder(batch_size=4 * BATCH, name="B"),
        ]
        plans = [s.shard(model, profile, topology) for s in sharders]
        ranker = RankRemapper(profile)
        executors = [
            ShardedExecutor(model, p, profile, topology, ranker=ranker)
            for p in plans
        ]
        batches = list(TraceGenerator(model, BATCH, seed=37).batches(3))
        fused = replay_trace(executors, batches, ranker=ranker)
        for executor, metrics in zip(executors, fused):
            alone = executor.run(batches)
            np.testing.assert_allclose(metrics.times_ms, alone.times_ms, rtol=1e-9)
            for tier in alone.tier_accesses:
                assert np.array_equal(
                    metrics.tier_accesses[tier], alone.tier_accesses[tier]
                )

    def test_empty_executor_list(self, world):
        assert replay_trace([], []) == []

    def test_mismatched_tier_counts_rejected(self, world):
        model, profile, topology, plan = world
        total = model.total_bytes
        ex = ShardedExecutor(model, plan, profile, topology)
        three = SystemTopology(
            num_devices=2,
            tiers=(
                MemoryTier("hbm", total, 200e9),
                MemoryTier("uvm", total, 10e9),
                MemoryTier("ssd", total, 1e9),
            ),
        )
        plan3 = MultiTierSharder(batch_size=BATCH, steps=10).shard(
            model, profile, three
        )
        ex3 = ShardedExecutor(model, plan3, profile, three)
        with pytest.raises(ValueError):
            replay_trace([ex, ex3], [])


class TestRankRemapper:
    def test_rank_of_hottest_row_is_zero(self, world):
        model, profile, _, _ = world
        remapper = RankRemapper(profile)
        for j, stats in enumerate(profile):
            hottest = int(stats.cdf.row_order[0])
            feature = JaggedFeature(
                np.array([hottest], dtype=np.int64),
                np.array([0, 1], dtype=np.int64),
            )
            ranked = remapper.rank_feature(j, feature)
            assert ranked.ranks[0] == 0

    def test_ranks_are_a_permutation(self, world):
        model, profile, _, _ = world
        remapper = RankRemapper(profile)
        j = 0
        num_rows = model.tables[j].num_rows
        all_rows = JaggedFeature(
            np.arange(num_rows, dtype=np.int64),
            np.array([0, num_rows], dtype=np.int64),
        )
        ranked = remapper.rank_feature(j, all_rows)
        assert sorted(ranked.ranks.tolist()) == list(range(num_rows))

    def test_int32_storage_for_normal_tables(self, world):
        _, profile, _, _ = world
        remapper = RankRemapper(profile)
        for j in range(remapper.num_tables):
            assert remapper.rank_dtype(j) == np.int32

    def test_feature_count_mismatch_rejected(self, world):
        model, profile, _, _ = world
        remapper = RankRemapper(profile)
        bad = JaggedBatch(
            [
                JaggedFeature(
                    np.empty(0, dtype=np.int64), np.zeros(2, dtype=np.int64)
                )
            ]
        )
        with pytest.raises(ValueError):
            remapper.rank_batch(bad)
