"""Tests for the trace profiler (Section 4.1), including Figure 3."""

import numpy as np
import pytest

from repro.data.batch import JaggedBatch, JaggedFeature
from repro.data.feature import SparseFeatureSpec
from repro.data.model import EmbeddingTableSpec, ModelSpec
from repro.data.synthetic import TraceGenerator
from repro.stats import TraceProfiler, analytic_profile, profile_trace


def tiny_model(hash_sizes=(100, 500), coverage=1.0):
    tables = tuple(
        EmbeddingTableSpec(
            feature=SparseFeatureSpec(
                name=f"f{i}",
                cardinality=h * 2,
                hash_size=h,
                alpha=1.0,
                avg_pooling=3.0,
                coverage=coverage,
                hash_seed=i,
            ),
            dim=4,
        )
        for i, h in enumerate(hash_sizes)
    )
    return ModelSpec(name="tiny", tables=tables)


class TestFigure3WorkedExample:
    def test_figure3_worked_example(self):
        """The paper's Figure 3: features A (hash 100) and B (hash 500).

        Three samples; A has pooling factors 4, 3, 4 -> avg 3.66; B is
        present once with pooling 3 -> avg 3, coverage 1/3 vs 1.0.
        """
        feature_a = JaggedFeature.from_lists(
            [[7345, 3241, 234, 8091], [523, 12, 6234], [3452, 452, 2345, 1342]]
        )
        feature_b = JaggedFeature.from_lists([[241, 104123, 63642], [], []])
        # Hash raw ids into table spaces as the paper's example does.
        a_hashed = JaggedFeature(feature_a.values % 100, feature_a.offsets)
        b_hashed = JaggedFeature(feature_b.values % 500, feature_b.offsets)
        model = tiny_model(hash_sizes=(100, 500))
        profiler = TraceProfiler(model, sample_rate=1.0, seed=0)
        profiler.consume(JaggedBatch([a_hashed, b_hashed]))
        profile = profiler.finish()

        assert profile[0].avg_pooling == pytest.approx(11 / 3, abs=1e-9)  # 3.66
        assert profile[1].avg_pooling == pytest.approx(3.0)
        assert profile[0].coverage == pytest.approx(1.0)
        assert profile[1].coverage == pytest.approx(1 / 3)  # .33


class TestTraceProfiler:
    def test_counts_accumulate(self):
        model = tiny_model()
        profiler = TraceProfiler(model, sample_rate=1.0, seed=0)
        gen = TraceGenerator(model, batch_size=64, seed=1)
        total = sum(profiler.consume(gen.next_batch()) for _ in range(3))
        profile = profiler.finish()
        assert total == 192
        assert profile.samples_profiled == 192
        assert profile[0].total_accesses > 0

    def test_sampling_rate_reduces_samples(self):
        model = tiny_model()
        gen = TraceGenerator(model, batch_size=1000, seed=2)
        batch = gen.next_batch()
        profiler = TraceProfiler(model, sample_rate=0.1, seed=3)
        accepted = profiler.consume(batch)
        assert 40 < accepted < 200  # ~100 expected

    def test_sampled_stats_match_full_stats(self):
        # The paper's claim: ~1% sampling estimates the stats well.  At
        # our scale we use 10% over a large batch for tight tolerance.
        model = tiny_model(coverage=0.7)
        gen = TraceGenerator(model, batch_size=20_000, seed=4)
        batch = gen.next_batch()
        full = TraceProfiler(model, sample_rate=1.0, seed=0)
        full.consume(batch)
        sampled = TraceProfiler(model, sample_rate=0.1, seed=5)
        sampled.consume(batch)
        p_full, p_sub = full.finish(), sampled.finish()
        assert p_sub[0].avg_pooling == pytest.approx(p_full[0].avg_pooling, rel=0.05)
        assert p_sub[0].coverage == pytest.approx(p_full[0].coverage, rel=0.05)
        # Head of the CDF agrees: rows covering 80% of accesses are close.
        r_full = p_full[0].cdf.rows_for_coverage(0.8)
        r_sub = p_sub[0].cdf.rows_for_coverage(0.8)
        assert abs(r_full - r_sub) <= max(5, 0.3 * r_full)

    def test_mismatched_batch_rejected(self):
        model = tiny_model()
        profiler = TraceProfiler(model, sample_rate=1.0, seed=0)
        with pytest.raises(ValueError):
            profiler.consume(JaggedBatch([JaggedFeature.from_lists([[1]])]))

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            TraceProfiler(tiny_model(), sample_rate=0.0)
        with pytest.raises(ValueError):
            TraceProfiler(tiny_model(), sample_rate=1.5)

    def test_profile_trace_helper(self):
        model = tiny_model()
        gen = TraceGenerator(model, batch_size=128, seed=6)
        profile = profile_trace(model, gen, num_batches=2, sample_rate=1.0)
        assert profile.samples_profiled == 256
        assert len(profile) == 2


class TestAnalyticProfile:
    def test_matches_spec_statistics(self):
        model = tiny_model(coverage=0.4)
        profile = analytic_profile(model, virtual_samples=1_000_000)
        assert profile[0].coverage == pytest.approx(0.4, abs=1e-6)
        assert profile[0].avg_pooling == pytest.approx(3.0, rel=1e-6)

    def test_counts_follow_post_hash_pmf(self):
        model = tiny_model()
        profile = analytic_profile(model)
        pmf = model.tables[0].feature.post_hash_pmf()
        counts = profile[0].counts
        assert counts.sum() > 0
        np.testing.assert_allclose(counts / counts.sum(), pmf, atol=1e-12)

    def test_analytic_close_to_empirical(self):
        model = tiny_model(coverage=0.8)
        analytic = analytic_profile(model)
        gen = TraceGenerator(model, batch_size=30_000, seed=7)
        empirical = profile_trace(model, gen, num_batches=1, sample_rate=1.0)
        assert empirical[0].avg_pooling == pytest.approx(
            analytic[0].avg_pooling, rel=0.05
        )
        assert empirical[0].coverage == pytest.approx(analytic[0].coverage, rel=0.05)
        # Hot-row sets largely agree.
        hot_a = set(analytic[0].cdf.top_rows(20))
        hot_e = set(empirical[0].cdf.top_rows(20))
        assert len(hot_a & hot_e) >= 12
