"""Tests for frequency CDFs and their piecewise inverse (Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.cdf import FrequencyCDF, PiecewiseICDF

counts_arrays = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
).map(lambda xs: np.array(xs))


class TestFrequencyCDF:
    def test_simple_ranking(self):
        cdf = FrequencyCDF(np.array([1.0, 10.0, 5.0, 0.0]))
        assert list(cdf.row_order[:3]) == [1, 2, 0]
        assert cdf.live_rows == 3
        assert cdf.total == 16.0

    def test_coverage_of_rows(self):
        cdf = FrequencyCDF(np.array([1.0, 10.0, 5.0, 0.0]))
        assert cdf.coverage_of_rows(0) == 0.0
        assert cdf.coverage_of_rows(1) == pytest.approx(10 / 16)
        assert cdf.coverage_of_rows(2) == pytest.approx(15 / 16)
        assert cdf.coverage_of_rows(4) == 1.0
        assert cdf.coverage_of_rows(100) == 1.0

    def test_rows_for_coverage_inverse(self):
        cdf = FrequencyCDF(np.array([1.0, 10.0, 5.0, 0.0]))
        assert cdf.rows_for_coverage(0.0) == 0
        assert cdf.rows_for_coverage(0.5) == 1
        assert cdf.rows_for_coverage(10 / 16) == 1
        assert cdf.rows_for_coverage(0.7) == 2
        assert cdf.rows_for_coverage(1.0) == 3  # dead row never needed

    def test_all_zero_counts(self):
        cdf = FrequencyCDF(np.zeros(5))
        assert cdf.live_rows == 0
        assert cdf.rows_for_coverage(1.0) == 0
        assert cdf.coverage_of_rows(3) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            FrequencyCDF(np.array([1.0, -1.0]))

    def test_ranking_stable_for_ties(self):
        cdf = FrequencyCDF(np.array([2.0, 2.0, 2.0]))
        assert list(cdf.row_order) == [0, 1, 2]

    def test_top_rows(self):
        cdf = FrequencyCDF(np.array([1.0, 10.0, 5.0]))
        assert list(cdf.top_rows(2)) == [1, 2]
        assert cdf.top_rows(0).size == 0

    @given(counts=counts_arrays)
    @settings(max_examples=60, deadline=None)
    def test_monotone_and_bounded(self, counts):
        cdf = FrequencyCDF(counts)
        fractions = np.linspace(0, 1, 11)
        rows = [cdf.rows_for_coverage(f) for f in fractions]
        assert rows == sorted(rows)
        assert all(0 <= r <= cdf.live_rows for r in rows)
        covs = [cdf.coverage_of_rows(k) for k in range(len(counts) + 1)]
        assert covs == sorted(covs)

    @given(counts=counts_arrays)
    @settings(max_examples=60, deadline=None)
    def test_galois_connection(self, counts):
        # rows_for_coverage(f) is the least k with coverage_of_rows(k) >= f.
        cdf = FrequencyCDF(counts)
        if cdf.total == 0:
            return
        for f in (0.1, 0.5, 0.9, 1.0):
            k = cdf.rows_for_coverage(f)
            assert cdf.coverage_of_rows(k) >= f - 1e-12
            if k > 0:
                assert cdf.coverage_of_rows(k - 1) < f

    def test_curve_is_monotone(self):
        rng = np.random.default_rng(0)
        cdf = FrequencyCDF(rng.pareto(1.2, size=500))
        xs, ys = cdf.curve(50)
        assert np.all(np.diff(xs) > 0)
        assert np.all(np.diff(ys) >= 0)


class TestPiecewiseICDF:
    def build(self, counts, steps=10):
        return FrequencyCDF(np.asarray(counts, dtype=float)).icdf_points(steps)

    def test_endpoints(self):
        icdf = self.build([5, 3, 1, 0], steps=10)
        assert icdf.fractions[0] == 0.0
        assert icdf.fractions[-1] == 1.0
        assert icdf.rows[0] == 0
        assert icdf.rows[-1] == 3  # live rows only

    def test_rows_non_decreasing(self):
        icdf = self.build(np.random.default_rng(1).pareto(1.0, 300), steps=50)
        assert np.all(np.diff(icdf.rows) >= 0)

    @given(counts=counts_arrays, steps=st.integers(min_value=2, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_convexity_of_sampled_points(self, counts, steps):
        # Marginal rows per coverage step never decrease: the property the
        # convex formulation relies on.
        icdf = FrequencyCDF(counts).icdf_points(steps)
        diffs = np.diff(icdf.rows)
        # Convexity in the exact ICDF can be broken by <1-row rounding at
        # grid points; allow that slack.
        assert np.all(np.diff(diffs) >= -1.0 - 1e-9)

    def test_convex_cuts_reproduce_interpolation(self):
        rng = np.random.default_rng(2)
        icdf = FrequencyCDF(rng.pareto(1.5, 400)).icdf_points(20)
        cuts = icdf.convex_cuts()
        for frac in np.linspace(0, 1, 33):
            envelope = max(slope * frac + intercept for slope, intercept in cuts)
            assert envelope <= icdf.interpolate_rows(frac) + 1.0

    def test_cuts_lower_bound_grid_points(self):
        rng = np.random.default_rng(3)
        icdf = FrequencyCDF(rng.pareto(0.8, 200)).icdf_points(25)
        cuts = icdf.convex_cuts()
        for frac, rows in zip(icdf.fractions, icdf.rows):
            for slope, intercept in cuts:
                assert slope * frac + intercept <= rows + 1e-6

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PiecewiseICDF(
                fractions=np.array([0.0, 0.5]), rows=np.array([2, 1])
            )  # decreasing rows
        with pytest.raises(ValueError):
            PiecewiseICDF(
                fractions=np.array([0.5, 0.5]), rows=np.array([0, 1])
            )  # non-increasing fractions

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            FrequencyCDF(np.ones(4)).icdf_points(0)
