"""Property-style randomized tests for the vectorized CDF queries.

``FrequencyCDF.fractional_rows_for_coverage_many`` and
``coverage_of_rows_many`` are the planner workspace's foundation: every
ICDF grid and coverage prefix the vectorized sharders consume comes
from them.  These tests draw randomized count vectors (heavy tails,
ties, dead rows, degenerate shapes) and check, for each:

* element-for-element agreement with the scalar methods;
* monotonicity in the query argument (a CDF/ICDF structural property);
* the inverse round-trip: covering the fraction the hottest ``k`` rows
  cover needs at most ``k`` rows, and the (ceil'd) rows returned for a
  fraction really cover it;
* the 0/1 coverage edges (0 rows ↔ 0 coverage, ``live_rows`` ↔ full
  coverage).
"""

import numpy as np
import pytest

from repro.stats.cdf import FrequencyCDF


def random_counts(rng: np.random.Generator) -> np.ndarray:
    """A randomized per-row count vector with adversarial structure."""
    size = int(rng.integers(1, 400))
    style = rng.integers(4)
    if style == 0:
        # Zipf-ish heavy tail (the realistic case).
        counts = rng.zipf(float(rng.uniform(1.2, 2.5)), size=size).astype(
            np.float64
        )
    elif style == 1:
        # Heavy ties: few distinct values.
        counts = rng.choice([0.0, 1.0, 2.0, 5.0], size=size)
    elif style == 2:
        # Uniform floats, some exact zeros (dead rows).
        counts = rng.uniform(0.0, 3.0, size=size)
        counts[rng.uniform(size=size) < 0.3] = 0.0
    else:
        # One hot row dominating everything.
        counts = np.zeros(size)
        counts[rng.integers(size)] = float(rng.uniform(1.0, 100.0))
    return counts


SEEDS = list(range(25))


@pytest.fixture(params=SEEDS)
def cdf(request):
    rng = np.random.default_rng(request.param)
    return FrequencyCDF(random_counts(rng)), rng


class TestFractionalRowsMany:
    def test_matches_scalar_pointwise(self, cdf):
        cdf, rng = cdf
        fractions = np.sort(
            np.concatenate(
                [
                    rng.uniform(0.0, 1.0, size=64),
                    [0.0, 1.0],
                    # Exact grid values of the CDF itself: the
                    # searchsorted tie cases.
                    cdf.cum_fraction[
                        rng.integers(0, cdf.hash_size, size=8)
                    ],
                ]
            )
        )
        many = cdf.fractional_rows_for_coverage_many(fractions)
        scalar = np.array(
            [cdf.fractional_rows_for_coverage(float(f)) for f in fractions]
        )
        np.testing.assert_array_equal(many, scalar)

    def test_monotone_in_fraction(self, cdf):
        cdf, rng = cdf
        fractions = np.sort(rng.uniform(0.0, 1.0, size=128))
        rows = cdf.fractional_rows_for_coverage_many(fractions)
        assert np.all(np.diff(rows) >= 0)

    def test_edges(self, cdf):
        cdf, _ = cdf
        rows = cdf.fractional_rows_for_coverage_many(np.array([0.0, 1.0]))
        assert rows[0] == 0.0
        if cdf.total > 0:
            assert rows[1] == pytest.approx(cdf.live_rows)
        else:
            assert rows[1] == 0.0

    def test_rejects_out_of_range(self, cdf):
        cdf, _ = cdf
        with pytest.raises(ValueError):
            cdf.fractional_rows_for_coverage_many(np.array([-0.1]))
        with pytest.raises(ValueError):
            cdf.fractional_rows_for_coverage_many(np.array([1.0 + 1e-9]))


class TestCoverageOfRowsMany:
    def test_matches_scalar_pointwise(self, cdf):
        cdf, rng = cdf
        rows = np.concatenate(
            [
                rng.integers(-3, cdf.hash_size + 3, size=64),
                [0, 1, cdf.live_rows, cdf.hash_size, cdf.hash_size + 1],
            ]
        )
        many = cdf.coverage_of_rows_many(rows)
        scalar = np.array([cdf.coverage_of_rows(int(r)) for r in rows])
        np.testing.assert_array_equal(many, scalar)

    def test_monotone_in_rows(self, cdf):
        cdf, _ = cdf
        rows = np.arange(0, cdf.hash_size + 1)
        cov = cdf.coverage_of_rows_many(rows)
        assert np.all(np.diff(cov) >= 0)
        assert np.all((cov >= 0.0) & (cov <= 1.0))

    def test_preserves_query_shape(self, cdf):
        cdf, rng = cdf
        rows = rng.integers(0, cdf.hash_size + 1, size=(3, 5))
        assert cdf.coverage_of_rows_many(rows).shape == (3, 5)


class TestInverseRoundTrip:
    def test_rows_of_coverage_of_rows(self, cdf):
        """The hottest ``k`` rows' coverage needs at most ``k`` rows."""
        cdf, rng = cdf
        ks = np.unique(rng.integers(0, cdf.hash_size + 1, size=32))
        cov = cdf.coverage_of_rows_many(ks)
        back = cdf.fractional_rows_for_coverage_many(cov)
        assert np.all(back <= ks + 1e-9)

    def test_coverage_of_rows_for_coverage(self, cdf):
        """Ceil'd rows for a fraction really cover that fraction."""
        cdf, rng = cdf
        fractions = rng.uniform(0.0, 1.0, size=32)
        rows = np.ceil(
            cdf.fractional_rows_for_coverage_many(fractions) - 1e-9
        ).astype(np.int64)
        cov = cdf.coverage_of_rows_many(rows)
        if cdf.total > 0:
            assert np.all(cov >= fractions - 1e-12)
        else:
            assert np.all(cov == 0.0)


class TestDegenerateShapes:
    def test_all_zero_counts(self):
        cdf = FrequencyCDF(np.zeros(10))
        fractions = np.linspace(0.0, 1.0, 7)
        np.testing.assert_array_equal(
            cdf.fractional_rows_for_coverage_many(fractions), np.zeros(7)
        )
        np.testing.assert_array_equal(
            cdf.coverage_of_rows_many(np.arange(12)), np.zeros(12)
        )

    def test_single_row(self):
        cdf = FrequencyCDF(np.array([3.0]))
        rows = cdf.fractional_rows_for_coverage_many(
            np.array([0.0, 0.25, 1.0])
        )
        scalar = [
            cdf.fractional_rows_for_coverage(f) for f in (0.0, 0.25, 1.0)
        ]
        np.testing.assert_array_equal(rows, scalar)
        assert cdf.coverage_of_rows_many(np.array([0, 1, 2])).tolist() == [
            0.0,
            1.0,
            1.0,
        ]
