"""Tests for the characterization summary helpers."""

import math

import pytest

from repro.stats import analytic_profile, characterization_summary, quantiles
from repro.stats.summary import format_summary
from tests.test_core.conftest import build_model


class TestQuantiles:
    def test_basic(self):
        qs = quantiles([1, 2, 3, 4, 5], qs=(0.0, 0.5, 1.0))
        assert qs[0.0] == 1
        assert qs[0.5] == 3
        assert qs[1.0] == 5

    def test_empty_input(self):
        qs = quantiles([], qs=(0.5,))
        assert math.isnan(qs[0.5])

    def test_generator_input(self):
        qs = quantiles((x * 2 for x in range(10)), qs=(1.0,))
        assert qs[1.0] == 18


class TestCharacterizationSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        model = build_model(num_tables=8, seed=17)
        return characterization_summary(analytic_profile(model))

    def test_fields_present(self, summary):
        assert summary["num_tables"] == 8
        for key in (
            "avg_pooling",
            "coverage",
            "top10pct_rows_access_share",
            "dead_row_fraction",
        ):
            assert 0.5 in summary[key]

    def test_value_ranges(self, summary):
        assert 0.0 <= summary["coverage"][0.5] <= 1.0
        assert 0.0 <= summary["dead_row_fraction"][0.5] <= 1.0
        assert summary["avg_pooling"][0.5] >= 1.0
        # Skew: top 10% of rows covers far more than 10% of accesses.
        assert summary["top10pct_rows_access_share"][0.5] > 0.15

    def test_format_summary_renders(self, summary):
        text = format_summary(summary)
        assert "tables: 8" in text
        assert "avg_pooling" in text
        assert "p50=" in text
