"""Tests for the Section 5 baseline sharders."""

import math

import pytest

from repro.baselines import (
    GreedySharder,
    lookup_cost,
    make_baseline,
    size_cost,
    size_lookup_cost,
)
from repro.core.plan import PlanError
from repro.memory.topology import SystemTopology

# Reuse the core fixtures.
pytest_plugins = []
from tests.test_core.conftest import build_model  # noqa: E402

from repro.stats import analytic_profile  # noqa: E402


@pytest.fixture
def model():
    return build_model(num_tables=8, seed=3)


@pytest.fixture
def profile(model):
    return analytic_profile(model)


class TestCostFunctions:
    def test_size_cost(self, model, profile):
        table, stats = model.tables[0], profile[0]
        assert size_cost(table, stats) == table.num_rows * table.dim

    def test_lookup_cost(self, model, profile):
        table, stats = model.tables[0], profile[0]
        assert lookup_cost(table, stats) == pytest.approx(
            stats.avg_pooling * table.dim
        )

    def test_size_lookup_cost(self, model, profile):
        table, stats = model.tables[0], profile[0]
        expected = lookup_cost(table, stats) * math.log10(table.num_rows)
        assert size_lookup_cost(table, stats) == pytest.approx(expected)

    def test_size_cost_ignores_stats(self, model, profile):
        # Size's blind spot: identical for hot and cold tables.
        table = model.tables[0]
        assert (
            size_cost(table, profile[0]) == size_cost(table, profile[1 % len(profile)])
            or True
        )
        assert size_cost(table, None) == table.num_rows * table.dim


class TestGreedySharder:
    def topo(self, model, hbm_fraction, devices=2):
        total = model.total_bytes
        return SystemTopology.two_tier(
            num_devices=devices,
            hbm_capacity=int(total * hbm_fraction / devices),
            hbm_bandwidth=200e9,
            uvm_capacity=total,
            uvm_bandwidth=10e9,
        )

    @pytest.mark.parametrize(
        "name", ["Size-Based", "Lookup-Based", "Size-Based-Lookup"]
    )
    def test_named_baselines_produce_valid_plans(self, model, profile, name):
        topo = self.topo(model, hbm_fraction=0.6)
        plan = make_baseline(name).shard(model, profile, topo)
        plan.validate(model, topo)
        assert plan.strategy == name

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            make_baseline("Oracle")

    def test_whole_table_placements_only(self, model, profile):
        topo = self.topo(model, hbm_fraction=0.6)
        plan = make_baseline("Size-Based").shard(model, profile, topo)
        for placement, table in zip(plan, model.tables):
            assert placement.rows_per_tier in (
                (table.num_rows, 0),
                (0, table.num_rows),
            )

    def test_everything_in_hbm_when_roomy(self, model, profile):
        topo = self.topo(model, hbm_fraction=2.0)
        plan = make_baseline("Size-Based").shard(model, profile, topo)
        assert plan.tier_rows_total(1) == 0

    def test_spills_under_pressure(self, model, profile):
        topo = self.topo(model, hbm_fraction=0.4)
        plan = make_baseline("Size-Based").shard(model, profile, topo)
        assert plan.tier_rows_total(1) > 0

    def test_load_balancing_on_costs(self, model, profile):
        # The heuristic balances its own cost metric across devices.
        topo = self.topo(model, hbm_fraction=2.0, devices=2)
        sharder = make_baseline("Lookup-Based")
        plan = sharder.shard(model, profile, topo)
        loads = plan.metadata["heuristic_loads"]
        costs = sorted(
            lookup_cost(t, s) for t, s in zip(model.tables, profile)
        )
        assert abs(loads[0] - loads[1]) <= costs[-1]  # LPT bound

    def test_custom_cost_function(self, model, profile):
        topo = self.topo(model, hbm_fraction=2.0)
        sharder = GreedySharder(lambda table, stats: 1.0, name="Uniform")
        plan = sharder.shard(model, profile, topo)
        counts = [len(plan.tables_on_device(m)) for m in range(2)]
        assert counts == [4, 4]  # equal costs round-robin evenly

    def test_infeasible_raises(self, model, profile):
        topo = SystemTopology.two_tier(1, 10, 200e9, 10, 10e9)
        with pytest.raises(PlanError):
            make_baseline("Size-Based").shard(model, profile, topo)

    def test_non_two_tier_rejected(self, model, profile):
        from repro.memory import three_tier_node

        with pytest.raises(ValueError):
            make_baseline("Size-Based").shard(model, profile, three_tier_node())
