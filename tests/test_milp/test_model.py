"""Unit tests for the MILP modeling layer."""

import pytest

from repro.milp import Model
from repro.milp.model import LinExpr, lin_sum


class TestVariables:
    def test_continuous_var_defaults(self):
        m = Model()
        x = m.continuous_var(name="x")
        assert x.lb == 0.0
        assert x.ub == float("inf")
        assert not x.integer

    def test_binary_var_bounds(self):
        m = Model()
        b = m.binary_var(name="b")
        assert (b.lb, b.ub, b.integer) == (0.0, 1.0, True)

    def test_invalid_bounds_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            m.continuous_var(lb=2.0, ub=1.0)

    def test_indices_are_sequential(self):
        m = Model()
        names = [m.continuous_var(name=f"v{i}").index for i in range(5)]
        assert names == list(range(5))

    def test_num_binary_counts_only_binaries(self):
        m = Model()
        m.binary_var()
        m.integer_var(lb=0, ub=5)
        m.continuous_var()
        assert m.num_binary == 1


class TestExpressions:
    def test_addition_merges_coefficients(self):
        m = Model()
        x, y = m.continuous_var(name="x"), m.continuous_var(name="y")
        expr = x + y + x
        assert expr.coeffs[x.index] == 2.0
        assert expr.coeffs[y.index] == 1.0

    def test_scalar_multiplication(self):
        m = Model()
        x = m.continuous_var(name="x")
        expr = 3 * x - 1
        assert expr.coeffs[x.index] == 3.0
        assert expr.constant == -1.0

    def test_subtraction_and_negation(self):
        m = Model()
        x, y = m.continuous_var(), m.continuous_var()
        expr = x - 2 * y
        assert expr.coeffs[x.index] == 1.0
        assert expr.coeffs[y.index] == -2.0
        neg = -expr
        assert neg.coeffs[x.index] == -1.0

    def test_rsub(self):
        m = Model()
        x = m.continuous_var()
        expr = 5 - x
        assert expr.constant == 5.0
        assert expr.coeffs[x.index] == -1.0

    def test_lin_sum_matches_naive_sum(self):
        m = Model()
        xs = [m.continuous_var() for _ in range(10)]
        fast = lin_sum(x * (i + 1) for i, x in enumerate(xs))
        for i, x in enumerate(xs):
            assert fast.coeffs[x.index] == i + 1

    def test_expression_value(self):
        m = Model()
        x, y = m.continuous_var(), m.continuous_var()
        expr = 2 * x + 3 * y + 1
        assert expr.value([2.0, 1.0]) == pytest.approx(8.0)

    def test_non_scalar_multiplication_rejected(self):
        m = Model()
        x, y = m.continuous_var(), m.continuous_var()
        with pytest.raises(TypeError):
            (x + y) * y  # bilinear terms are not allowed

    def test_coerce_rejects_strings(self):
        with pytest.raises(TypeError):
            LinExpr._coerce("nope")


class TestConstraints:
    def test_constraint_senses(self):
        m = Model()
        x = m.continuous_var()
        assert (x <= 1).sense == "<="
        assert (x >= 1).sense == ">="
        assert (x == 1).sense == "=="

    def test_violation_measured(self):
        m = Model()
        x = m.continuous_var()
        con = x <= 1
        assert con.violation([2.0]) == pytest.approx(1.0)
        assert con.violation([0.5]) == 0.0

    def test_add_requires_constraint(self):
        m = Model()
        x = m.continuous_var()
        with pytest.raises(TypeError):
            m.add(x + 1)  # an expression, not a constraint

    def test_check_feasible_honours_integrality(self):
        m = Model()
        b = m.binary_var()
        m.add(b + 0.0 <= 1)
        assert m.check_feasible([1.0])
        assert not m.check_feasible([0.5])


class TestCompile:
    def test_compile_shapes(self):
        m = Model()
        x = m.continuous_var(ub=5)
        b = m.binary_var()
        m.add(x + 2 * b <= 4)
        m.add(x - b >= 0)
        m.minimize(x + b)
        compiled = m.compile()
        assert compiled.num_vars == 2
        assert len(compiled.rows) == 2
        assert compiled.integrality == [0, 1]
        assert compiled.objective == [1.0, 1.0]

    def test_rhs_folding(self):
        m = Model()
        x = m.continuous_var()
        m.add(x + 3 <= 10)  # => x <= 7
        compiled = m.compile()
        coeffs, lb, ub = compiled.rows[0]
        assert ub == pytest.approx(7.0)
