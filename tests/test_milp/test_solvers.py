"""Solver backend tests: HiGHS and the branch-and-bound cross-check."""

import pytest

from repro.milp import Model, SolveStatus

BACKENDS = ["highs", "branch_bound"]


def knapsack_model():
    """max 10a + 6b + 4c s.t. a+b+c<=2 (binary) => min of negative."""
    m = Model("knapsack")
    a, b, c = (m.binary_var(name=n) for n in "abc")
    m.add(a + b + c <= 2)
    m.minimize(-10 * a - 6 * b - 4 * c)
    return m, (a, b, c)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBothBackends:
    def test_lp_only(self, backend):
        m = Model()
        x = m.continuous_var(ub=10)
        y = m.continuous_var(ub=10)
        m.add(x + y <= 8)
        m.minimize(-x - 2 * y)
        res = m.solve(backend=backend)
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-16.0)  # y=8, x=0 maximizes
        assert res.value(y) == pytest.approx(8.0)

    def test_knapsack(self, backend):
        m, (a, b, c) = knapsack_model()
        res = m.solve(backend=backend)
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-16.0)
        assert res.value(a) == pytest.approx(1.0)
        assert res.value(b) == pytest.approx(1.0)
        assert res.value(c) == pytest.approx(0.0)

    def test_infeasible_detected(self, backend):
        m = Model()
        x = m.continuous_var(ub=1)
        m.add(x >= 2)
        m.minimize(x)
        res = m.solve(backend=backend)
        assert res.status == SolveStatus.INFEASIBLE
        with pytest.raises(ValueError):
            res.value(x)

    def test_equality_constraints(self, backend):
        m = Model()
        x = m.integer_var(lb=0, ub=10)
        y = m.integer_var(lb=0, ub=10)
        m.add(x + y == 7)
        m.add(x - y == 1)
        m.minimize(x)
        res = m.solve(backend=backend)
        assert res.status == SolveStatus.OPTIMAL
        assert res.value(x) == pytest.approx(4.0)
        assert res.value(y) == pytest.approx(3.0)

    def test_integer_rounding_forced(self, backend):
        # LP relaxation optimum is fractional; MILP must branch.
        m = Model()
        x = m.integer_var(lb=0, ub=10)
        m.add(2 * x <= 7)
        m.minimize(-x)
        res = m.solve(backend=backend)
        assert res.status == SolveStatus.OPTIMAL
        assert res.value(x) == pytest.approx(3.0)

    def test_feasible_solution_satisfies_model(self, backend):
        m, _ = knapsack_model()
        res = m.solve(backend=backend)
        assert m.check_feasible(res.values)


class TestBackendAgreement:
    def test_random_small_milps_agree(self):
        import numpy as np

        rng = np.random.default_rng(42)
        for trial in range(8):
            m1 = Model(f"t{trial}")
            num_vars = 6
            xs = [m1.binary_var(name=f"x{i}") for i in range(num_vars)]
            weights = rng.integers(1, 10, size=num_vars)
            values = rng.integers(1, 10, size=num_vars)
            cap = int(weights.sum() // 2)
            m1.add(
                sum(int(w) * x for w, x in zip(weights, xs)) <= cap
            )
            m1.minimize(sum(-int(v) * x for v, x in zip(values, xs)))
            res_highs = m1.solve(backend="highs")
            res_bb = m1.solve(backend="branch_bound")
            assert res_highs.status == SolveStatus.OPTIMAL
            assert res_bb.status == SolveStatus.OPTIMAL
            assert res_highs.objective == pytest.approx(res_bb.objective, abs=1e-6)


class TestSolveControls:
    def test_time_limit_returns_quickly(self):
        m, _ = knapsack_model()
        res = m.solve(backend="branch_bound", time_limit=0.001)
        # Either finished instantly or stopped; never raises.
        assert res.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.TIME_LIMIT,
        )

    def test_node_limit_respected(self):
        m, _ = knapsack_model()
        res = m.solve(backend="branch_bound", node_limit=1)
        assert res.nodes is not None
        assert res.nodes <= 1

    def test_unknown_backend_rejected(self):
        m, _ = knapsack_model()
        with pytest.raises(ValueError):
            m.solve(backend="cplex")
