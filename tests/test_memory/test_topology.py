"""Tests for the tiered memory model."""

import pytest

from repro.memory import GIB, MemoryTier, SystemTopology, paper_node, three_tier_node


class TestMemoryTier:
    def test_transfer_time(self):
        tier = MemoryTier("hbm", 1000, bandwidth=500.0)
        assert tier.seconds_for_bytes(1000) == pytest.approx(2.0)

    def test_capacity_gib(self):
        tier = MemoryTier("hbm", 2 * GIB, bandwidth=1.0)
        assert tier.capacity_gib == pytest.approx(2.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            MemoryTier("x", 10, bandwidth=0.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryTier("x", -1, bandwidth=1.0)


class TestSystemTopology:
    def test_two_tier_constructor(self):
        topo = SystemTopology.two_tier(4, 100, 10.0, 1000, 1.0)
        assert topo.num_devices == 4
        assert topo.num_tiers == 2
        assert topo.hbm.capacity_bytes == 100
        assert topo.uvm.bandwidth == 1.0
        assert topo.tier_names == ("hbm", "uvm")

    def test_tier_lookup_by_name(self):
        topo = SystemTopology.two_tier(2, 100, 10.0, 1000, 1.0)
        assert topo.tier("uvm").capacity_bytes == 1000
        with pytest.raises(KeyError):
            topo.tier("ssd")

    def test_tier_ordering_enforced(self):
        with pytest.raises(ValueError):
            SystemTopology.two_tier(2, 100, 1.0, 1000, 10.0)  # uvm faster

    def test_total_capacity(self):
        topo = SystemTopology.two_tier(8, 100, 10.0, 1000, 1.0)
        assert topo.total_capacity_bytes(0) == 800
        assert topo.total_capacity_bytes(1) == 8000

    def test_single_tier_has_no_uvm(self):
        topo = SystemTopology(num_devices=1, tiers=(MemoryTier("hbm", 10, 1.0),))
        with pytest.raises(ValueError):
            _ = topo.uvm

    def test_at_least_one_device(self):
        with pytest.raises(ValueError):
            SystemTopology(num_devices=0, tiers=(MemoryTier("hbm", 10, 1.0),))


class TestPresets:
    def test_paper_node_dimensions(self):
        topo = paper_node(num_gpus=16, scale=1.0)
        assert topo.num_devices == 16
        assert topo.hbm.capacity_bytes == 24 * GIB
        assert topo.uvm.capacity_bytes == 128 * GIB
        # Effective HBM:UVM gather cost ratio is ~20x (see presets doc).
        assert topo.hbm.bandwidth / topo.uvm.bandwidth == pytest.approx(20.0)

    def test_paper_node_scaling(self):
        full = paper_node(num_gpus=4, scale=1.0)
        scaled = paper_node(num_gpus=4, scale=1e-3)
        ratio = full.hbm.capacity_bytes / scaled.hbm.capacity_bytes
        assert ratio == pytest.approx(1000, rel=0.01)

    def test_three_tier_node(self):
        topo = three_tier_node(num_gpus=2)
        assert topo.num_tiers == 3
        assert topo.tier_names == ("hbm", "uvm", "ssd")
        bandwidths = [t.bandwidth for t in topo.tiers]
        assert bandwidths == sorted(bandwidths, reverse=True)
