"""Tests for per-tier storage precisions in the memory model."""

import pytest

from repro.memory import MemoryTier, quantized_row_bytes, three_tier_node
from repro.memory.precision import parse_precisions_spec, validate_precision


class TestQuantizedRowBytes:
    def test_fp32_is_identity(self):
        assert quantized_row_bytes(256, "fp32") == 256
        # Even with a non-default element width fp32 stays untouched.
        assert quantized_row_bytes(256, "fp32", elem_bytes=2) == 256

    def test_known_widths(self):
        # dim = 64 fp32 elements.
        assert quantized_row_bytes(256, "fp16") == 128
        assert quantized_row_bytes(256, "int8") == 64 + 4
        assert quantized_row_bytes(256, "int4") == 32 + 4

    def test_odd_dim_rounds_up(self):
        # dim = 7: int4 packs 7 nibbles into 4 bytes.
        assert quantized_row_bytes(28, "int4") == 4 + 4

    def test_monotone_ladder(self):
        widths = [
            quantized_row_bytes(512, p) for p in ("fp32", "fp16", "int8", "int4")
        ]
        assert widths == sorted(widths, reverse=True)

    def test_unknown_precision(self):
        with pytest.raises(ValueError, match="unknown precision"):
            quantized_row_bytes(256, "int2")
        with pytest.raises(ValueError, match="unknown precision"):
            validate_precision("bf16")


class TestParsePrecisionsSpec:
    def test_string_spec(self):
        assert parse_precisions_spec("uvm=fp16,ssd=int8") == {
            "uvm": "fp16",
            "ssd": "int8",
        }

    def test_dict_passthrough(self):
        assert parse_precisions_spec({"uvm": "int4"}) == {"uvm": "int4"}

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_precisions_spec("")
        with pytest.raises(ValueError):
            parse_precisions_spec("uvm")
        with pytest.raises(ValueError):
            parse_precisions_spec("uvm=fp16,uvm=int8")
        with pytest.raises(ValueError, match="unknown precision"):
            parse_precisions_spec("uvm=fp12")


class TestTierPrecision:
    def test_default_is_fp32(self):
        tier = MemoryTier("hbm", 1000, bandwidth=1.0)
        assert tier.precision == "fp32"
        assert tier.row_bytes_for(256) == 256

    def test_quantized_tier_row_bytes(self):
        tier = MemoryTier("ssd", 1000, bandwidth=1.0, precision="int8")
        assert tier.row_bytes_for(256) == 68

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="unknown precision"):
            MemoryTier("ssd", 1000, bandwidth=1.0, precision="fp8")


class TestWithPrecisions:
    def test_applies_per_tier(self):
        topo = three_tier_node(num_gpus=2, scale=0.01)
        quant = topo.with_precisions("uvm=fp16,ssd=int8")
        assert topo.tier_precisions == ("fp32", "fp32", "fp32")
        assert quant.tier_precisions == ("fp32", "fp16", "int8")
        # Capacities, bandwidths, and device count carry over.
        assert quant.num_devices == topo.num_devices
        for a, b in zip(topo.tiers, quant.tiers):
            assert a.capacity_bytes == b.capacity_bytes
            assert a.bandwidth == b.bandwidth

    def test_unmentioned_tiers_keep_precision(self):
        topo = three_tier_node(num_gpus=2, scale=0.01)
        quant = topo.with_precisions({"ssd": "int4"})
        assert quant.tier_precisions == ("fp32", "fp32", "int4")

    def test_unknown_tier_name(self):
        topo = three_tier_node(num_gpus=2, scale=0.01)
        with pytest.raises(ValueError, match="no tier named"):
            topo.with_precisions("dram=fp16")

    def test_unknown_precision_name(self):
        topo = three_tier_node(num_gpus=2, scale=0.01)
        with pytest.raises(ValueError, match="unknown precision"):
            topo.with_precisions("ssd=fp64")
