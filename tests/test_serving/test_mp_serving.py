"""Cross-process serving parity: mp merged metrics == single-process.

The multi-process runtime splits each batch into parallel worker-side
classification and sequential front-end reduction; these tests pin the
contract that makes that split safe — the merged
:class:`~repro.serving.metrics.ServingMetrics` of a
:class:`~repro.serving.mp.MultiProcessServer` run must equal a
single-process :meth:`~repro.serving.server.LookupServer.serve_arenas`
run of the same seeded stream **bit for bit**: per-tier/per-device
access totals, replica-lane hits, batch counts, and every latency
figure, on 2- and 3-tier topologies with the staging cache and hot-row
replication lanes enabled, at multiple worker counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MultiTierSharder,
    RecShardFastSharder,
    ReplicationPolicy,
    plan_with_replication,
)
from repro.data.model import rm2, rm3
from repro.engine.cache import TierStagingModel
from repro.memory import node_from_tier_names, paper_node, paper_scales
from repro.serving import (
    LookupServer,
    MultiProcessServer,
    ServingConfig,
    synthetic_request_arenas,
)
from repro.stats import analytic_profile

FEATURES = 49
GPUS = 4
TOPO_SCALE, ROW_SCALE = paper_scales(FEATURES, GPUS)
REQUESTS = 640
GIB = 2**30

CONFIG = ServingConfig(max_batch_size=128, max_delay_ms=2.0)


def two_tier_world():
    model = rm2(num_features=FEATURES, row_scale=ROW_SCALE)
    profile = analytic_profile(model)
    topology = paper_node(num_gpus=GPUS, scale=TOPO_SCALE)
    sharder = RecShardFastSharder(batch_size=256)
    return model, profile, topology, sharder


def three_tier_world():
    model = rm3(num_features=FEATURES, row_scale=ROW_SCALE)
    profile = analytic_profile(model)
    topology = node_from_tier_names(
        ["hbm:8", "dram:24", "ssd"], num_gpus=GPUS, scale=TOPO_SCALE
    )
    sharder = MultiTierSharder(batch_size=256)
    return model, profile, topology, sharder


def replicated_world(world_builder):
    """A fixed plan with staging + replication on, plus its stream."""
    model, profile, topology, sharder = world_builder()
    policy = ReplicationPolicy(capacity_bytes=int(GIB * TOPO_SCALE))
    plan = plan_with_replication(sharder, model, profile, topology, policy)
    staging = TierStagingModel(capacity_bytes=model.total_bytes // 24)
    arenas = list(
        synthetic_request_arenas(model, REQUESTS, qps=1e9, seed=29)
    )
    return model, profile, topology, plan, staging, arenas


def assert_metrics_bit_identical(ref, got):
    assert ref.summary(deterministic_only=True) == got.summary(
        deterministic_only=True
    )
    assert ref.num_batches == got.num_batches
    assert ref.batch_sizes == got.batch_sizes
    np.testing.assert_array_equal(ref.arrival_ms, got.arrival_ms)
    np.testing.assert_array_equal(ref.latencies_ms(), got.latencies_ms())
    np.testing.assert_array_equal(
        ref.queue_waits_ms(), got.queue_waits_ms()
    )
    np.testing.assert_array_equal(ref.device_busy_ms, got.device_busy_ms)
    np.testing.assert_array_equal(
        ref.tier_access_totals, got.tier_access_totals
    )
    np.testing.assert_array_equal(
        ref.replica_access_totals, got.replica_access_totals
    )
    for a, b in zip(ref.tier_access_chunks, got.tier_access_chunks):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize(
    "world_builder", [two_tier_world, three_tier_world],
    ids=["two-tier", "three-tier"],
)
@pytest.mark.parametrize("workers", [1, 3])
def test_mp_matches_single_process(world_builder, workers):
    """Merged mp metrics == single-process serve_arenas, staging +
    replication on — the issue's headline parity, at a worker count
    that exercises out-of-order result merging."""
    model, profile, topology, plan, staging, arenas = replicated_world(
        world_builder
    )
    single = LookupServer(
        model, profile, topology, plan=plan, config=CONFIG, staging=staging
    )
    ref = single.serve_arenas(arenas)
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        staging=staging, workers=workers,
    ) as pool:
        got = pool.serve_arenas(arenas)
    assert ref.replica_access_totals.sum() > 0
    assert_metrics_bit_identical(ref, got)


def test_mp_worker_count_does_not_change_results():
    """The pool size is a throughput knob only: 1 and 3 workers merge
    to identical metrics (reduction order is pinned by seq)."""
    model, profile, topology, plan, staging, arenas = replicated_world(
        two_tier_world
    )
    merged = []
    for workers in (1, 3):
        with MultiProcessServer(
            model, profile, topology, plan=plan, config=CONFIG,
            staging=staging, workers=workers,
        ) as pool:
            merged.append(pool.serve_arenas(arenas))
    assert_metrics_bit_identical(merged[0], merged[1])


def test_mp_builds_initial_plan_from_sharder():
    """sharder= works like LookupServer's, but the plan is frozen: the
    pool serves the initial plan and never replans."""
    model, profile, topology, sharder = two_tier_world()
    arenas = list(synthetic_request_arenas(model, REQUESTS, qps=1e9, seed=7))
    single = LookupServer(
        model, profile, topology,
        plan=sharder.shard(model, profile, topology), config=CONFIG,
    )
    ref = single.serve_arenas(arenas)
    with MultiProcessServer(
        model, profile, topology, sharder=sharder, config=CONFIG, workers=2
    ) as pool:
        got = pool.serve_arenas(arenas)
    assert got.num_replans == 0
    assert_metrics_bit_identical(ref, got)


def test_mp_report_schema_matches_single_process():
    """Summaries and text reports come out in the single-process
    schema — same keys, same formatting — so downstream consumers
    cannot tell which runtime produced them."""
    model, profile, topology, plan, staging, arenas = replicated_world(
        two_tier_world
    )
    single = LookupServer(
        model, profile, topology, plan=plan, config=CONFIG, staging=staging
    )
    ref = single.serve_arenas(arenas)
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        staging=staging, workers=2,
    ) as pool:
        got = pool.serve_arenas(arenas)
    assert set(ref.summary().keys()) == set(got.summary().keys())
    assert ref.format_report() == got.format_report()


def test_mp_validates_arguments():
    model, profile, topology, sharder = two_tier_world()
    plan = sharder.shard(model, profile, topology)
    with pytest.raises(ValueError, match="workers"):
        MultiProcessServer(model, profile, topology, plan=plan, workers=0)
    with pytest.raises(ValueError, match="queue_depth"):
        MultiProcessServer(
            model, profile, topology, plan=plan, workers=1, queue_depth=0
        )
    with pytest.raises(ValueError, match="exactly one"):
        MultiProcessServer(model, profile, topology)
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, workers=1
    )
    with pytest.raises(ValueError, match="speed"):
        pool.serve_paced([], speed=0.0)
