"""Multi-tier serving runtime: end-to-end tests.

The capacity-scaling scenario of Section 4.4 run through the *online*
layer: a 3-tier (HBM/DRAM/SSD) topology planned by the multi-tier
greedy sharder, served by the vectorized engine, drift-replanned
mid-stream, with per-tier access counts surfaced in
:class:`~repro.serving.metrics.ServingMetrics` — and the whole fast
configuration pinned bit-for-bit against the scalar per-request
reference (object admission + per-lookup remap-table executor).
"""

import numpy as np
import pytest

from repro.core import MultiTierSharder
from repro.data.drift import DriftModel
from repro.engine import ShardedExecutor, TierStagingModel
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.serving import (
    LookupServer,
    ServingConfig,
    ServingMetrics,
    synthetic_request_arenas,
    synthetic_request_stream,
)
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

BATCH = 64


@pytest.fixture
def world():
    model = build_model(num_tables=6, seed=51)
    profile = analytic_profile(model)
    total = model.total_bytes
    topology = SystemTopology(
        num_devices=2,
        tiers=(
            MemoryTier("hbm", int(total * 0.15 / 2), 200e9),
            MemoryTier("dram", int(total * 0.3 / 2), 10e9),
            MemoryTier("ssd", total, 1e9),
        ),
    )
    return model, profile, topology


def make_server(world, staging=None, vectorized=True, **config_kwargs):
    model, profile, topology = world
    kwargs = dict(max_batch_size=16, max_delay_ms=1.0)
    kwargs.update(config_kwargs)
    return LookupServer(
        model, profile, topology,
        sharder=MultiTierSharder(batch_size=BATCH, steps=20),
        config=ServingConfig(**kwargs),
        staging=staging,
        vectorized=vectorized,
    )


def assert_bit_identical(ref: ServingMetrics, fast: ServingMetrics):
    assert ref.summary(deterministic_only=True) == fast.summary(
        deterministic_only=True
    )
    assert ref.batch_sizes == fast.batch_sizes
    assert ref.batch_lookups == fast.batch_lookups
    assert ref.replan_ms == fast.replan_ms
    np.testing.assert_array_equal(ref.latencies_ms(), fast.latencies_ms())
    np.testing.assert_array_equal(ref.device_busy_ms, fast.device_busy_ms)
    np.testing.assert_array_equal(
        ref.tier_access_totals, fast.tier_access_totals
    )
    for a, b in zip(ref.tier_access_chunks, fast.tier_access_chunks):
        np.testing.assert_array_equal(a, b)


class TestMultiTierEndToEnd:
    def test_three_tier_serving_touches_every_tier(self, world):
        server = make_server(world)
        metrics = server.serve_arenas(
            synthetic_request_arenas(world[0], 400, qps=30000, seed=1)
        )
        totals = metrics.tier_access_totals
        assert totals.shape == (3, 2)
        assert metrics.tier_names == ("hbm", "dram", "ssd")
        assert (totals.sum(axis=1) > 0).all(), totals
        assert totals.sum() == sum(metrics.batch_lookups)
        # The fastest tier holds the hottest rows: its share dominates.
        assert metrics.tier_access_fraction("hbm") > 0.5
        assert "tier_accesses" in metrics.summary(deterministic_only=True)
        assert "tier accesses" in metrics.format_report()

    def test_fast_path_matches_scalar_reference_with_drift(self, world):
        """Columnar admission + vectorized engine vs object admission +
        scalar engine: bit-identical metrics through drift replans."""
        kwargs = dict(
            num_requests=600, qps=30000, seed=5,
            drift=DriftModel(feature_noise=6.0, alpha_noise=4.0),
            months_per_request=0.05, chunk_size=128,
        )
        config = dict(
            drift_threshold_pct=1.0, drift_min_samples=128,
            drift_check_every_batches=4,
        )
        staging = TierStagingModel(
            capacity_bytes=world[0].total_bytes // 30
        )
        fast = make_server(world, staging=staging, **config)
        fast_metrics = fast.serve_arenas(
            synthetic_request_arenas(world[0], **kwargs)
        )
        ref = make_server(
            world, staging=staging, vectorized=False, **config
        )
        ref_metrics = ref.serve(
            synthetic_request_stream(world[0], **kwargs)
        )
        assert fast_metrics.num_replans >= 1
        assert_bit_identical(ref_metrics, fast_metrics)

    def test_staging_reduces_latency_not_counts(self, world):
        kwargs = dict(num_requests=400, qps=1e9, seed=3)
        plain = make_server(world)
        plain_metrics = plain.serve_arenas(
            synthetic_request_arenas(world[0], **kwargs)
        )
        staged = make_server(
            world,
            staging=TierStagingModel(
                capacity_bytes=world[0].total_bytes // 20
            ),
        )
        staged_metrics = staged.serve_arenas(
            synthetic_request_arenas(world[0], **kwargs)
        )
        # Identical placement and identical traffic...
        np.testing.assert_array_equal(
            plain_metrics.tier_access_totals,
            staged_metrics.tier_access_totals,
        )
        # ...but statically-staged hot cold rows serve faster.
        assert (
            staged_metrics.device_busy_ms.sum()
            < plain_metrics.device_busy_ms.sum()
        )
        assert staged_metrics.p50_ms <= plain_metrics.p50_ms + 1e-12

    def test_serving_counts_match_offline_replay(self, world):
        """Table 5 online: per-tier serving counts equal the offline
        replay of the same trace content, microbatching regardless."""
        model, profile, topology = world
        plan = MultiTierSharder(batch_size=BATCH, steps=20).shard(
            model, profile, topology
        )
        arenas = list(
            synthetic_request_arenas(model, 500, qps=40000, seed=9)
        )
        server = LookupServer(
            model, profile, topology, plan=plan,
            config=ServingConfig(max_batch_size=16, max_delay_ms=1.0),
        )
        metrics = server.serve_arenas(arenas)

        executor = ShardedExecutor(model, plan, profile, topology)
        offline = np.zeros(
            (topology.num_tiers, topology.num_devices), dtype=np.int64
        )
        for arena in arenas:
            _, accesses, _, _ = executor.run_batch(arena.batch)
            offline += accesses
        np.testing.assert_array_equal(metrics.tier_access_totals, offline)

    def test_two_tier_server_unchanged_by_tier_metrics(self, world):
        """The two-tier default path reports tier counts too."""
        model = build_model(num_tables=4, seed=52)
        profile = analytic_profile(model)
        total = model.total_bytes
        topology = SystemTopology.two_tier(
            2, int(total * 0.4 / 2), 200e9, total, 10e9
        )
        from repro.core import RecShardFastSharder

        server = LookupServer(
            model, profile, topology,
            sharder=RecShardFastSharder(batch_size=BATCH),
            config=ServingConfig(max_batch_size=16, max_delay_ms=1.0),
        )
        metrics = server.serve_arenas(
            synthetic_request_arenas(model, 200, qps=20000, seed=2)
        )
        assert metrics.tier_names == ("hbm", "uvm")
        assert metrics.tier_access_totals.sum() == sum(metrics.batch_lookups)


class TestServingMetricsTierChunks:
    def test_chunks_accumulate(self):
        metrics = ServingMetrics(num_devices=2, tier_names=("hbm", "uvm"))
        metrics.record_batch(
            arrivals_ms=[0.0], start_ms=0.0, finish_ms=1.0,
            device_times_ms=np.array([1.0, 0.5]), total_lookups=7,
            tier_accesses=np.array([[4, 2], [1, 0]]),
        )
        metrics.record_batch(
            arrivals_ms=[1.0], start_ms=1.0, finish_ms=2.0,
            device_times_ms=np.array([1.0, 0.5]), total_lookups=3,
            tier_accesses=np.array([[1, 1], [0, 1]]),
        )
        np.testing.assert_array_equal(
            metrics.tier_access_totals, [[5, 3], [1, 1]]
        )
        assert len(metrics.tier_access_chunks) == 2
        assert metrics.tier_access_fraction("hbm") == pytest.approx(0.8)
        assert metrics.tier_access_fraction(1) == pytest.approx(0.2)
        assert metrics.summary()["tier_accesses"] == {"hbm": 8, "uvm": 2}

    def test_without_tier_matrices(self):
        metrics = ServingMetrics(num_devices=2)
        metrics.record_batch(
            arrivals_ms=[0.0], start_ms=0.0, finish_ms=1.0,
            device_times_ms=np.array([1.0, 0.5]), total_lookups=7,
        )
        assert metrics.tier_access_totals.size == 0
        assert metrics.tier_access_fraction(0) == 0.0
        assert "tier_accesses" not in metrics.summary()

    def test_chunk_is_copied(self):
        metrics = ServingMetrics(num_devices=1, tier_names=("hbm",))
        chunk = np.array([[5]])
        metrics.record_batch(
            arrivals_ms=[0.0], start_ms=0.0, finish_ms=1.0,
            device_times_ms=np.array([1.0]), total_lookups=5,
            tier_accesses=chunk,
        )
        chunk[0, 0] = 999  # caller reuses its buffer (the executor does)
        assert metrics.tier_access_totals[0, 0] == 5
        assert metrics.tier_access_chunks[0][0, 0] == 5
