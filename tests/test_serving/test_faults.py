"""Unit tests for the fault-injection scripting layer.

Covers the pieces every chaos drill stands on: event validation,
schedule ordering and target validation, the injector's replay cursor,
and the ``--chaos`` spec grammar — all pure logic, no serving loop.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    device_degrade,
    device_fail,
    device_recover,
    parse_chaos_spec,
    worker_kill,
)


# ----------------------------------------------------------------------
# FaultEvent validation
# ----------------------------------------------------------------------
def test_event_constructors_round_trip():
    assert device_fail(250.0, 1) == FaultEvent(250.0, "device_fail", 1)
    assert device_recover(900.0, 1) == FaultEvent(900.0, "device_recover", 1)
    assert worker_kill(10.0, 0) == FaultEvent(10.0, "worker_kill", 0)
    degrade = device_degrade(100.0, 0, 4.0)
    assert degrade.slowdown == 4.0
    assert degrade.is_device_event
    assert not worker_kill(0.0, 0).is_device_event


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(at_ms=0.0, kind="device_melt", target=0), "unknown fault kind"),
        (dict(at_ms=-1.0, kind="device_fail", target=0), "time must be"),
        (dict(at_ms=0.0, kind="device_fail", target=-2), "target must be"),
        (
            dict(at_ms=0.0, kind="device_degrade", target=0, slowdown=1.0),
            "slowdown must be > 1",
        ),
        (
            dict(at_ms=0.0, kind="device_fail", target=0, slowdown=2.0),
            "takes no slowdown",
        ),
    ],
)
def test_event_rejects_bad_fields(kwargs, match):
    with pytest.raises(ValueError, match=match):
        FaultEvent(**kwargs)


def test_event_describe_is_human_readable():
    assert device_fail(250.0, 1).describe() == "t=250ms: device 1 fails"
    assert "degrades 4x" in device_degrade(100.0, 0, 4.0).describe()
    assert "worker 2 killed" in worker_kill(5.0, 2).describe()


# ----------------------------------------------------------------------
# FaultSchedule
# ----------------------------------------------------------------------
def test_schedule_sorts_by_time_stably():
    a, b, c = device_fail(50.0, 0), device_recover(50.0, 0), worker_kill(10.0, 1)
    schedule = FaultSchedule([a, b, c])
    assert schedule.events == (c, a, b)  # sorted; ties keep script order
    assert len(schedule) == 3 and bool(schedule)
    assert not FaultSchedule()


def test_schedule_splits_device_and_worker_events():
    schedule = FaultSchedule(
        [device_fail(1.0, 0), worker_kill(2.0, 1), device_recover(3.0, 0)]
    )
    assert all(e.is_device_event for e in schedule.device_events)
    assert [e.kind for e in schedule.worker_events] == ["worker_kill"]


def test_schedule_rejects_non_events():
    with pytest.raises(TypeError, match="FaultEvent"):
        FaultSchedule([("device_fail", 0)])


def test_validate_targets():
    schedule = FaultSchedule([device_fail(1.0, 3)])
    with pytest.raises(ValueError, match="only 2 devices"):
        schedule.validate_targets(num_devices=2)
    schedule.validate_targets(num_devices=4)  # fine

    kills = FaultSchedule([worker_kill(1.0, 2)])
    with pytest.raises(ValueError, match="multi-process runtime"):
        kills.validate_targets(num_devices=4, num_workers=0)
    with pytest.raises(ValueError, match="only 2 workers"):
        kills.validate_targets(num_devices=4, num_workers=2)
    kills.validate_targets(num_devices=4, num_workers=3)


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
def test_injector_delivers_each_event_once_in_order():
    events = [device_fail(10.0, 0), device_recover(20.0, 0), worker_kill(30.0, 1)]
    injector = FaultInjector(FaultSchedule(events))
    assert injector.pop_due(5.0) == []
    assert [e.kind for e in injector.pop_due(20.0)] == [
        "device_fail",
        "device_recover",
    ]
    assert injector.pop_due(20.0) == []  # delivered once
    assert [e.kind for e in injector.pop_due(float("inf"))] == ["worker_kill"]
    assert not injector.pending


def test_injector_reset_rewinds_the_cursor():
    injector = FaultInjector(FaultSchedule([device_fail(10.0, 0)]))
    assert len(injector.pop_due(100.0)) == 1
    injector.reset()
    assert injector.pending == 1
    assert len(injector.pop_due(100.0)) == 1


# ----------------------------------------------------------------------
# --chaos spec grammar
# ----------------------------------------------------------------------
def test_parse_chaos_spec_full_grammar():
    schedule = parse_chaos_spec(
        "degrade@100:0x4, fail@250:1, recover@900:1, kill@50:2"
    )
    kinds = [e.kind for e in schedule]
    assert kinds == [
        "worker_kill",
        "device_degrade",
        "device_fail",
        "device_recover",
    ]
    degrade = next(e for e in schedule if e.kind == "device_degrade")
    assert degrade.at_ms == 100.0 and degrade.target == 0
    assert degrade.slowdown == 4.0


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "fail@250",  # missing target
        "melt@10:0",  # unknown kind
        "fail@abc:0",  # bad time
        "fail@10:x",  # bad target
        "degrade@10:0",  # degrade without factor
        "fail@10:0x2",  # factor on non-degrade
        "degrade@10:0x0.5",  # slowdown must be > 1
    ],
)
def test_parse_chaos_spec_rejects_malformed(spec):
    with pytest.raises(ValueError):
        parse_chaos_spec(spec)


def test_parse_chaos_spec_error_quotes_offending_term():
    with pytest.raises(ValueError, match="melt@10:0"):
        parse_chaos_spec("fail@5:0,melt@10:0")
