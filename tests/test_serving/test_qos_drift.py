"""QoS × drift-replanning regression tests.

The serving CLI used to reject ``--deadline-ms``/``--priorities``
whenever ``--drift-months > 0``: the drifting synthetic stream could
not carry QoS columns, and nobody had pinned that overload-controller
state survives a replan.  These tests pin the lifted restriction at the
library layer:

* the drift-capable :func:`synthetic_request_arenas` emits the same QoS
  columns as the loadgen twin (bit-identical for ``months == 0``), from
  a dedicated RNG stream so arrivals and content never move when QoS is
  toggled — and the columns match the undrifted stream's under drift;
* a server with deadline/priority shedding *and* drift replanning keeps
  one :class:`OverloadController` across replans, its EWMA/admission
  state intact, and its accounting exact (offered == served + shed).
"""

import numpy as np
import pytest

from repro.core import RecShardFastSharder
from repro.data.drift import DriftModel
from repro.memory.topology import SystemTopology
from repro.serving import (
    LookupServer,
    OverloadControl,
    ServingConfig,
    synthetic_request_arenas,
)
from repro.serving.loadgen import PoissonArrivals, generate_request_arenas
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

QPS = 50_000
SHARES = (0.2, 0.8)


@pytest.fixture
def world():
    model = build_model(num_tables=5, seed=41)
    profile = analytic_profile(model)
    total = model.total_bytes
    topology = SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=int(total * 0.4 / 2),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    return model, profile, topology


def _assert_arena_streams_equal(ref, got, qos=True):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        np.testing.assert_array_equal(a.arrival_ms, b.arrival_ms)
        for fa, fb in zip(a.batch, b.batch):
            np.testing.assert_array_equal(fa.values, fb.values)
        if qos:
            np.testing.assert_array_equal(a.deadline_ms, b.deadline_ms)
            np.testing.assert_array_equal(a.priority, b.priority)


class TestQosStream:
    def test_matches_loadgen_twin_without_drift(self, world):
        model, _, _ = world
        ref = list(
            generate_request_arenas(
                model, 300, PoissonArrivals(QPS), seed=7,
                deadline_ms=8.0, priority_shares=SHARES,
            )
        )
        got = list(
            synthetic_request_arenas(
                model, 300, qps=QPS, seed=7,
                deadline_ms=8.0, priority_shares=SHARES,
            )
        )
        _assert_arena_streams_equal(ref, got)

    def test_qos_toggle_leaves_arrivals_and_content_unmoved(self, world):
        # QoS columns come from a dedicated RNG stream keyed off the
        # seed, so turning them on must not perturb the stream itself.
        model, _, _ = world
        plain = list(synthetic_request_arenas(model, 300, qps=QPS, seed=7))
        qos = list(
            synthetic_request_arenas(
                model, 300, qps=QPS, seed=7,
                deadline_ms=8.0, priority_shares=SHARES,
            )
        )
        _assert_arena_streams_equal(plain, qos, qos=False)
        for arena in plain:
            assert arena.deadline_ms is None and arena.priority is None
        for arena in qos:
            np.testing.assert_array_equal(
                arena.deadline_ms, arena.arrival_ms + 8.0
            )
            assert set(np.unique(arena.priority)) <= {0, 1}

    def test_qos_columns_bit_identical_under_drift(self, world):
        # Drift redraws lookup content per chunk, but deadlines track
        # arrivals and priorities replay the same dedicated stream —
        # the invariant that makes QoS × drift results comparable to
        # the no-drift baseline.
        model, _, _ = world
        base = list(
            synthetic_request_arenas(
                model, 300, qps=QPS, seed=7,
                deadline_ms=8.0, priority_shares=SHARES,
            )
        )
        drifted = list(
            synthetic_request_arenas(
                model, 300, qps=QPS, seed=7,
                deadline_ms=8.0, priority_shares=SHARES,
                drift=DriftModel(feature_noise=6.0),
                months_per_request=0.05,
            )
        )
        for a, b in zip(base, drifted):
            np.testing.assert_array_equal(a.arrival_ms, b.arrival_ms)
            np.testing.assert_array_equal(a.deadline_ms, b.deadline_ms)
            np.testing.assert_array_equal(a.priority, b.priority)

    def test_rejects_bad_qos_knobs(self, world):
        model, _, _ = world
        with pytest.raises(ValueError, match="deadline_ms"):
            next(
                synthetic_request_arenas(
                    model, 10, qps=QPS, deadline_ms=0.0
                )
            )
        with pytest.raises(ValueError, match="positive"):
            next(
                synthetic_request_arenas(
                    model, 10, qps=QPS, priority_shares=(0.5, -0.5)
                )
            )
        with pytest.raises(ValueError, match="sum to 1"):
            next(
                synthetic_request_arenas(
                    model, 10, qps=QPS, priority_shares=(0.5, 0.9)
                )
            )


class TestQosWithDriftReplan:
    def _serve(self, world, drift):
        model, profile, topology = world
        # Aggressive drift knobs only when the stream actually drifts;
        # the quiet baseline keeps the defaults (min_samples above the
        # stream length), so sampling noise cannot trip a replan.
        config = (
            ServingConfig(
                max_batch_size=32, max_delay_ms=1.0,
                drift_threshold_pct=2.0,
                drift_min_samples=128,
                drift_check_every_batches=2,
            )
            if drift
            else ServingConfig(max_batch_size=32, max_delay_ms=1.0)
        )
        server = LookupServer(
            model, profile, topology,
            sharder=RecShardFastSharder(batch_size=64),
            config=config,
            overload=OverloadControl(
                slo_ms=5.0,
                deadline_shedding=True,
                priority_shedding=True,
                priority_names=("gold", "bronze"),
            ),
        )
        controller = server._ovl
        arenas = synthetic_request_arenas(
            model, 600, qps=QPS, seed=6,
            deadline_ms=8.0, priority_shares=SHARES,
            drift=DriftModel(feature_noise=6.0) if drift else None,
            months_per_request=0.05 if drift else 0.0,
        )
        metrics = server.serve_arenas(arenas)
        return server, controller, metrics

    def test_replans_fire_and_accounting_stays_exact(self, world):
        server, controller, metrics = self._serve(world, drift=True)
        assert metrics.num_replans >= 1
        assert metrics.offered_requests == 600
        assert metrics.num_requests + metrics.shed_requests == 600
        # Per-class views survived the replans.
        classes = metrics.priority_class_stats()
        assert set(classes) == {"gold", "bronze"}

    def test_controller_state_survives_replans(self, world):
        server, controller, metrics = self._serve(world, drift=True)
        assert metrics.num_replans >= 1
        # The controller is constructed once and never replaced by
        # _install: EWMA state accumulated before a replan keeps
        # steering admission after it.
        assert server._ovl is controller
        assert controller.ms_per_lookup is not None
        assert controller.predict_service_ms(64) > 0.0

    def test_qos_metrics_defined_with_and_without_drift(self, world):
        _, _, still = self._serve(world, drift=False)
        _, _, drifted = self._serve(world, drift=True)
        assert still.num_replans == 0
        assert drifted.num_replans >= 1
        for metrics in (still, drifted):
            assert 0.0 <= metrics.goodput_fraction <= 1.0
            assert metrics.offered_requests == 600
