"""Serving parity for strategy plans (column / twrw / table-wise).

The multi-process seam ships per-``(table, slot)`` twrw cut-lane prefix
counts from the workers to the front-end aggregator alongside the tier
and fast-lane counts.  These tests pin that a
:class:`MultiProcessServer` run over a mixed strategy plan merges to
the single-process :meth:`serve_arenas` metrics bit for bit, and that a
fixed :class:`StrategyPlan` serves through the spine server at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RecShardFastSharder,
    StrategyPlan,
    TablePlacement,
    TableStrategy,
)
from repro.core.plan import ShardingPlan
from repro.memory.topology import SystemTopology
from repro.serving import (
    LookupServer,
    MultiProcessServer,
    ServingConfig,
    synthetic_request_arenas,
)
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

CONFIG = ServingConfig(max_batch_size=128, max_delay_ms=2.0)
REQUESTS = 400


@pytest.fixture(scope="module")
def strategy_serving_world():
    model = build_model(num_tables=8, rows=512, dim=16, seed=3)
    profile = analytic_profile(model)
    total = model.total_bytes
    topology = SystemTopology.two_tier(
        num_devices=4,
        hbm_capacity=total,
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    plan = RecShardFastSharder(batch_size=128, steps=40).shard(
        model, profile, topology
    )
    strategies = [TableStrategy("row") for _ in range(len(plan))]
    t0 = model.tables[0]
    strategies[0] = TableStrategy(
        "column", devices=(0, 1), dims=(t0.dim // 2, t0.dim - t0.dim // 2)
    )
    t1 = model.tables[1]
    third = t1.num_rows // 3
    strategies[1] = TableStrategy(
        "twrw", devices=(0, 1, 2), row_cuts=(third, 2 * third)
    )
    strategies[2] = TableStrategy("table")
    placements = list(plan)
    p2 = placements[2]
    rows = [0] * len(p2.rows_per_tier)
    rows[0] = p2.total_rows
    placements[2] = TablePlacement(
        table_index=p2.table_index,
        device=(p2.device + 1) % topology.num_devices,
        rows_per_tier=tuple(rows),
    )
    base = ShardingPlan(
        placements=tuple(placements),
        strategy=plan.strategy,
        metadata=dict(plan.metadata),
    )
    sp = StrategyPlan(base, tuple(strategies))
    sp.validate(model, topology)
    arenas = list(
        synthetic_request_arenas(model, REQUESTS, qps=1e8, seed=23)
    )
    return model, profile, topology, sp, arenas


def test_strategy_plan_serves(strategy_serving_world):
    model, profile, topology, sp, arenas = strategy_serving_world
    server = LookupServer(
        model, profile, topology, plan=sp, config=CONFIG
    )
    metrics = server.serve_arenas(arenas)
    assert metrics.num_requests == REQUESTS
    assert metrics.tier_access_totals.sum() > 0


@pytest.mark.parametrize("workers", [1, 3])
def test_mp_matches_single_process_on_strategy_plan(
    strategy_serving_world, workers
):
    model, profile, topology, sp, arenas = strategy_serving_world
    single = LookupServer(
        model, profile, topology, plan=sp, config=CONFIG
    )
    ref = single.serve_arenas(arenas)
    with MultiProcessServer(
        model, profile, topology, plan=sp, config=CONFIG, workers=workers,
    ) as pool:
        got = pool.serve_arenas(arenas)
    assert ref.summary(deterministic_only=True) == got.summary(
        deterministic_only=True
    )
    assert ref.num_batches == got.num_batches
    np.testing.assert_array_equal(ref.latencies_ms(), got.latencies_ms())
    np.testing.assert_array_equal(ref.device_busy_ms, got.device_busy_ms)
    np.testing.assert_array_equal(
        ref.tier_access_totals, got.tier_access_totals
    )
    for a, b in zip(ref.tier_access_chunks, got.tier_access_chunks):
        np.testing.assert_array_equal(a, b)
