"""Tests for the online lookup server, drift monitor, and metrics."""

import numpy as np
import pytest

from repro.core import RecShardFastSharder
from repro.data.drift import DriftModel
from repro.data.synthetic import TraceGenerator
from repro.memory.topology import SystemTopology
from repro.serving import (
    DriftMonitor,
    LookupServer,
    ServingConfig,
    ServingMetrics,
    synthetic_request_stream,
)
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

BATCH = 64


@pytest.fixture
def world():
    model = build_model(num_tables=5, seed=41)
    profile = analytic_profile(model)
    total = model.total_bytes
    topology = SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=int(total * 0.4 / 2),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    return model, profile, topology


class TestSyntheticStream:
    def test_deterministic_per_seed(self, world):
        model, _, _ = world
        a = list(synthetic_request_stream(model, num_requests=50, qps=1000, seed=3))
        b = list(synthetic_request_stream(model, num_requests=50, qps=1000, seed=3))
        assert len(a) == len(b) == 50
        for ra, rb in zip(a, b):
            assert ra.arrival_ms == rb.arrival_ms
            for fa, fb in zip(ra.features, rb.features):
                np.testing.assert_array_equal(fa, fb)

    def test_arrivals_monotone_and_rate_plausible(self, world):
        model, _, _ = world
        stream = list(
            synthetic_request_stream(model, num_requests=400, qps=10000, seed=5)
        )
        arrivals = [r.arrival_ms for r in stream]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        # 400 requests at 10k QPS span ~40 ms, give or take Poisson noise.
        assert 15.0 < arrivals[-1] < 120.0

    def test_request_shape(self, world):
        model, _, _ = world
        request = next(
            iter(synthetic_request_stream(model, num_requests=1, qps=100, seed=1))
        )
        assert request.num_features == model.num_tables


class TestLookupServer:
    def test_serves_every_request_once(self, world):
        model, profile, topology = world
        server = LookupServer(
            model, profile, topology,
            sharder=RecShardFastSharder(batch_size=BATCH),
            config=ServingConfig(max_batch_size=16, max_delay_ms=1.0),
        )
        metrics = server.serve(
            synthetic_request_stream(model, num_requests=300, qps=50000, seed=9)
        )
        assert metrics.num_requests == 300
        assert metrics.num_batches >= 300 // 16
        assert sum(metrics.batch_sizes) == 300

    def test_latency_includes_queue_wait(self, world):
        model, profile, topology = world
        # One request: it must wait out the full delay budget before the
        # (size-1'd) queue releases it.
        server = LookupServer(
            model, profile, topology,
            sharder=RecShardFastSharder(batch_size=BATCH),
            config=ServingConfig(max_batch_size=100, max_delay_ms=3.0),
        )
        metrics = server.serve(
            synthetic_request_stream(model, num_requests=1, qps=1000, seed=2)
        )
        assert metrics.num_requests == 1
        assert metrics.p50_ms >= 3.0

    def test_fixed_plan_never_replans(self, world):
        model, profile, topology = world
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            model, profile, topology
        )
        server = LookupServer(
            model, profile, topology, plan=plan,
            config=ServingConfig(
                max_batch_size=16, max_delay_ms=1.0,
                drift_threshold_pct=0.0, drift_min_samples=1,
            ),
        )
        metrics = server.serve(
            synthetic_request_stream(model, num_requests=200, qps=50000, seed=4)
        )
        assert metrics.num_replans == 0

    def test_drift_triggers_replan(self, world):
        model, profile, topology = world
        server = LookupServer(
            model, profile, topology,
            sharder=RecShardFastSharder(batch_size=BATCH),
            config=ServingConfig(
                max_batch_size=32, max_delay_ms=1.0,
                drift_threshold_pct=2.0,
                drift_min_samples=128,
                drift_check_every_batches=2,
            ),
        )
        replan_times = []
        stream = synthetic_request_stream(
            model, num_requests=600, qps=50000, seed=6,
            drift=DriftModel(feature_noise=6.0),
            months_per_request=0.05,
        )
        metrics = server.serve(stream, on_replan=replan_times.append)
        assert metrics.num_requests == 600
        assert metrics.num_replans >= 1
        assert replan_times == metrics.replan_ms

    def test_quantized_topology_surfaces_precisions(self, world):
        model, profile, topology = world
        server = LookupServer(
            model, profile, topology.with_precisions("uvm=int8"),
            sharder=RecShardFastSharder(batch_size=BATCH),
            config=ServingConfig(max_batch_size=16, max_delay_ms=1.0),
        )
        metrics = server.serve(
            synthetic_request_stream(model, num_requests=100, qps=50000, seed=9)
        )
        summary = metrics.summary()
        assert summary["tier_precisions"] == ["fp32", "int8"]
        assert summary["tier_expected_rel_error"][1] > 0.0
        assert "tier precisions:" in metrics.format_report()

    def test_fp32_summary_schema_unchanged(self, world):
        model, profile, topology = world
        server = LookupServer(
            model, profile, topology,
            sharder=RecShardFastSharder(batch_size=BATCH),
            config=ServingConfig(max_batch_size=16, max_delay_ms=1.0),
        )
        metrics = server.serve(
            synthetic_request_stream(model, num_requests=100, qps=50000, seed=9)
        )
        summary = metrics.summary()
        assert "tier_precisions" not in summary
        assert "tier_expected_rel_error" not in summary

    def test_requires_exactly_one_of_plan_or_sharder(self, world):
        model, profile, topology = world
        with pytest.raises(ValueError):
            LookupServer(model, profile, topology)
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            model, profile, topology
        )
        with pytest.raises(ValueError):
            LookupServer(
                model, profile, topology, plan=plan,
                sharder=RecShardFastSharder(batch_size=BATCH),
            )


class TestDriftMonitor:
    def test_no_drift_on_matching_traffic(self, world):
        model, profile, _ = world
        monitor = DriftMonitor(profile, threshold_pct=5.0, min_samples=64)
        generator = TraceGenerator(model, batch_size=256, seed=11)
        for batch in generator.batches(4):
            monitor.observe(batch)
        assert monitor.samples_observed == 1024
        assert monitor.drift_pct() < 5.0
        assert not monitor.should_replan()

    def test_detects_pooling_drift(self, world):
        model, profile, _ = world
        monitor = DriftMonitor(profile, threshold_pct=5.0, min_samples=64)
        drifted = DriftModel(user_plateau=40.0, content_plateau=40.0).drift_model(
            model, month=20
        )
        generator = TraceGenerator(drifted, batch_size=256, seed=12)
        for batch in generator.batches(4):
            monitor.observe(batch)
        assert monitor.drift_pct() > 5.0
        assert monitor.should_replan()

    def test_reset_rebaselines(self, world):
        model, profile, _ = world
        monitor = DriftMonitor(profile, threshold_pct=5.0, min_samples=64)
        drifted_model = DriftModel(user_plateau=40.0, content_plateau=40.0).drift_model(
            model, month=20
        )
        generator = TraceGenerator(drifted_model, batch_size=256, seed=13)
        for batch in generator.batches(2):
            monitor.observe(batch)
        monitor.reset(analytic_profile(drifted_model))
        assert monitor.samples_observed == 0
        for batch in generator.batches(2):
            monitor.observe(batch)
        assert monitor.drift_pct() < 5.0

    def test_min_samples_guard(self, world):
        model, profile, _ = world
        monitor = DriftMonitor(profile, threshold_pct=0.0, min_samples=10_000)
        generator = TraceGenerator(model, batch_size=64, seed=14)
        monitor.observe(next(generator.batches(1)))
        assert not monitor.should_replan()


class TestServingMetrics:
    def test_percentiles_and_qps(self):
        metrics = ServingMetrics(num_devices=2)
        metrics.record_batch(
            arrivals_ms=[0.0, 1.0], start_ms=2.0, finish_ms=4.0,
            device_times_ms=np.array([1.0, 2.0]), total_lookups=10,
        )
        metrics.record_batch(
            arrivals_ms=[5.0], start_ms=6.0, finish_ms=10.0,
            device_times_ms=np.array([4.0, 3.0]), total_lookups=5,
        )
        assert metrics.num_requests == 3
        # Latencies: 4, 3, 5 ms; horizon 0 -> 10 ms.
        assert metrics.latencies_ms().tolist() == [4.0, 3.0, 5.0]
        assert metrics.p50_ms == pytest.approx(4.0)
        assert metrics.qps == pytest.approx(3 / 10 * 1e3)
        assert metrics.lookups_per_second == pytest.approx(15 / 10 * 1e3)
        np.testing.assert_allclose(
            metrics.device_utilization(), [0.5, 0.5]
        )

    def test_empty_metrics(self):
        metrics = ServingMetrics(num_devices=2)
        assert metrics.qps == 0.0
        assert metrics.p99_ms == 0.0
        assert metrics.horizon_ms == 0.0
        summary = metrics.summary()
        assert summary["requests"] == 0
        assert "p99_ms" in summary

    def test_format_report_mentions_replans(self):
        metrics = ServingMetrics(num_devices=1)
        metrics.record_batch(
            arrivals_ms=[0.0], start_ms=0.0, finish_ms=1.0,
            device_times_ms=np.array([1.0]), total_lookups=1,
        )
        metrics.record_replan(1.0)
        report = metrics.format_report()
        assert "QPS" in report
        assert "replans" in report
