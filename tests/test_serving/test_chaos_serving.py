"""End-to-end chaos drills on the single-process serving loop.

The drill the tentpole is named for: fail a device mid-stream on a
replicated multi-tier world and check the three-stage recovery story —
(1) replicated lookups reroute immediately (masked least-loaded lane,
zero replicated lookups land on the dead device), (2) an emergency
warm-start replan onto the surviving topology commits after its build
latency and stops further drops, (3) the whole timeline is measured:
``time_to_reroute_ms``, ``time_to_replan_ms``, drops, and windowed
p50/p99 before/during/after the fault.  Parity drills pin the scalar
vs vectorized and replay-determinism contracts under faults, and the
reset drills pin the satellite requirement that
``reset_serving_state()`` after a drill reproduces the no-fault
baseline bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MultiTierSharder,
    ReplicationPolicy,
    plan_with_replication,
)
from repro.data.model import rm2
from repro.memory import node_from_tier_names, paper_node, paper_scales
from repro.serving import (
    FaultSchedule,
    LookupServer,
    ServingConfig,
    device_degrade,
    device_fail,
    device_recover,
    synthetic_request_arenas,
    worker_kill,
)
from repro.stats import analytic_profile

FEATURES = 25
GPUS = 2
TOPO_SCALE, ROW_SCALE = paper_scales(FEATURES, GPUS)
GIB = 1 << 30

CONFIG = ServingConfig(max_batch_size=64, max_delay_ms=1.0)
QPS = 50_000.0


def three_tier_world():
    model = rm2(num_features=FEATURES, row_scale=ROW_SCALE)
    profile = analytic_profile(model)
    topology = node_from_tier_names(
        ["hbm:8", "dram:24", "ssd"], num_gpus=GPUS, scale=TOPO_SCALE
    )
    return model, profile, topology


def replicated_server(chaos=None, with_sharder=True, **kwargs):
    model, profile, topology = three_tier_world()
    policy = ReplicationPolicy(capacity_bytes=int(GIB * TOPO_SCALE))
    sharder = MultiTierSharder(batch_size=256)
    if with_sharder:
        server = LookupServer(
            model, profile, topology, sharder=sharder, config=CONFIG,
            replication=policy, chaos=chaos, **kwargs,
        )
    else:
        plan = plan_with_replication(
            sharder, model, profile, topology, policy
        )
        server = LookupServer(
            model, profile, topology, plan=plan, config=CONFIG,
            chaos=chaos, **kwargs,
        )
    return model, server


def stream(model, n=2048, seed=3):
    return list(synthetic_request_arenas(model, n, qps=QPS, seed=seed))


FAIL_MS = 10.0


def drill():
    return FaultSchedule([device_fail(FAIL_MS, 1)])


# ----------------------------------------------------------------------
# The headline drill: fail -> reroute -> emergency replan -> measured
# ----------------------------------------------------------------------
def test_device_fail_drill_recovers_with_measured_timeline():
    model, server = replicated_server(chaos=drill())
    metrics = server.serve_arenas(stream(model))
    # Stage 1: the fault was detected with the next batch trigger and
    # rerouting was live from that batch on.
    assert len(metrics.fault_events) == 1
    assert metrics.fault_events[0]["kind"] == "device_fail"
    assert metrics.time_to_reroute_ms is not None
    assert 0.0 <= metrics.time_to_reroute_ms < 50.0
    # Stage 2: the emergency replan committed onto the survivors —
    # the active plan no longer places anything on device 1.
    assert metrics.time_to_replan_ms is not None
    assert metrics.num_replans == 1
    base = getattr(server.plan, "plan", server.plan)
    assert all(p.device != 1 for p in base.placements)
    # Stage 3: drops were counted (home-lane lookups on the dead
    # device between detection and replan commit), all on device 1.
    assert metrics.dropped_lookups > 0
    per_device = metrics.dropped_per_device
    assert per_device[1] == metrics.dropped_lookups
    # The windowed view has traffic in every phase and the summary
    # carries the fault block.
    phases = metrics.windowed_latency()
    assert all(phases[p]["requests"] > 0 for p in ("before", "during", "after"))
    summary = metrics.summary()
    assert summary["faults"] == 1
    assert summary["dropped_lookups"] == metrics.dropped_lookups
    assert "latency_phases" in summary
    report = metrics.format_report()
    assert "device 1 fails" in report
    assert "dropped" in report


def test_emergency_replan_stops_the_bleeding():
    """With a sharder the drops stop at replan commit; a frozen plan
    (reroute-only degraded mode) keeps dropping for the rest of the
    stream — strictly more than the self-healing server."""
    model, healing = replicated_server(chaos=drill())
    healed = healing.serve_arenas(stream(model))
    model, frozen = replicated_server(chaos=drill(), with_sharder=False)
    degraded = frozen.serve_arenas(stream(model))
    assert degraded.num_replans == 0
    assert healed.dropped_lookups < degraded.dropped_lookups
    assert healed.num_replans == 1


def test_replicated_lookups_never_land_on_dead_device():
    """The replica lane's reason to exist under failure: after the
    fault fires, zero replicated lookups route to the dead device."""
    model, server = replicated_server(chaos=drill(), with_sharder=False)
    metrics = server.serve_arenas(stream(model))
    starts = np.asarray(metrics._batch_start, dtype=np.float64)
    routed = np.stack(
        [chunk for chunk in metrics.replica_access_chunks], axis=0
    )
    fired = metrics.fault_events[0]
    after = starts >= fired["at_ms"]
    assert after.any()
    assert routed[after, 1].sum() == 0
    assert routed[after].sum() > 0  # still rerouting, not dropping


def test_deterministic_commit_override_pins_replan_time():
    model, server = replicated_server(chaos=drill(), emergency_commit_ms=2.5)
    metrics = server.serve_arenas(stream(model))
    assert metrics.time_to_replan_ms is not None
    assert metrics.time_to_replan_ms >= 2.5
    # commit lands with the first batch starting after fault+override
    assert metrics.time_to_replan_ms < 2.5 + 50.0


def test_degrade_drill_raises_tail_latency_without_drops():
    model, server = replicated_server(
        chaos=FaultSchedule([device_degrade(FAIL_MS, 0, 8.0)]),
        with_sharder=False,
    )
    metrics = server.serve_arenas(stream(model))
    assert metrics.dropped_lookups == 0
    phases = metrics.windowed_latency()
    # Degradation opens no fault window (service is degraded, not
    # interrupted), so the phase view keeps everything in "before";
    # the overall tail reflects the slowdown versus a healthy run.
    model, healthy = replicated_server(with_sharder=False)
    baseline = healthy.serve_arenas(stream(model))
    assert metrics.p99_ms > baseline.p99_ms
    assert len(metrics.fault_events) == 1


def test_recover_event_closes_the_window():
    recover_ms = 40.0
    schedule = FaultSchedule(
        [device_fail(FAIL_MS, 1), device_recover(recover_ms, 1)]
    )
    model, server = replicated_server(chaos=schedule, with_sharder=False)
    metrics = server.serve_arenas(stream(model))
    assert server.executor.dead_devices == ()
    assert len(metrics.fault_windows) == 1
    begin, end = metrics.fault_windows[0]
    assert begin == FAIL_MS and end is not None and end >= recover_ms
    # Drops happen only inside the window: batches starting after
    # recovery serve the full topology again.
    phases = metrics.windowed_latency()
    assert phases["after"]["requests"] > 0


# ----------------------------------------------------------------------
# Parity under chaos
# ----------------------------------------------------------------------
def test_scalar_vectorized_parity_under_chaos():
    # Pin the replan commit delay: by default it is the measured wall
    # build time, which is real but differs run to run — bit parity is
    # only defined on the simulated clock.
    model, fast = replicated_server(chaos=drill(), emergency_commit_ms=2.0)
    model, slow = replicated_server(
        chaos=drill(), emergency_commit_ms=2.0, vectorized=False
    )
    left = fast.serve_arenas(stream(model))
    right = slow.serve_arenas(stream(model))
    assert left.summary(deterministic_only=True) == right.summary(
        deterministic_only=True
    )
    np.testing.assert_array_equal(
        left.dropped_per_device, right.dropped_per_device
    )


def test_object_api_matches_arena_api_under_chaos():
    arenas_left, arenas_right = None, None
    model, arena_server = replicated_server(
        chaos=drill(), emergency_commit_ms=2.0
    )
    arenas = stream(model, n=1024)
    arena_metrics = arena_server.serve_arenas(arenas)
    model, object_server = replicated_server(
        chaos=drill(), emergency_commit_ms=2.0
    )
    object_metrics = object_server.serve(
        request for arena in arenas for request in arena
    )
    assert arena_metrics.summary(
        deterministic_only=True
    ) == object_metrics.summary(deterministic_only=True)


# ----------------------------------------------------------------------
# Reset satellite: drills are one-shot; reset reproduces the baseline
# ----------------------------------------------------------------------
def test_reset_after_drill_reproduces_no_fault_baseline():
    model, baseline_server = replicated_server()
    baseline = baseline_server.serve_arenas(stream(model))
    model, server = replicated_server(chaos=drill())
    first = server.serve_arenas(stream(model))
    assert first.dropped_lookups > 0
    server.reset_serving_state()
    second = server.serve_arenas(stream(model))
    assert second.dropped_lookups == 0 and not second.fault_events
    assert second.summary(deterministic_only=True) == baseline.summary(
        deterministic_only=True
    )


def test_rearm_replays_the_drill_bit_identically():
    model, server = replicated_server(chaos=drill(), emergency_commit_ms=2.0)
    first = server.serve_arenas(stream(model))
    server.reset_serving_state(rearm_chaos=True)
    replay = server.serve_arenas(stream(model))
    assert first.summary(deterministic_only=True) == replay.summary(
        deterministic_only=True
    )
    assert replay.dropped_lookups == first.dropped_lookups > 0


# ----------------------------------------------------------------------
# Validation at the serving boundary
# ----------------------------------------------------------------------
def test_single_process_server_rejects_worker_events():
    with pytest.raises(ValueError, match="multi-process runtime"):
        replicated_server(chaos=FaultSchedule([worker_kill(1.0, 0)]))


def test_server_rejects_out_of_range_device():
    with pytest.raises(ValueError, match="devices"):
        replicated_server(chaos=FaultSchedule([device_fail(1.0, GPUS)]))
