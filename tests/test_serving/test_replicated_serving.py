"""Serving with the hot-row replica lane: parity, replans, metrics.

End-to-end coverage of ``LookupServer(replication=...)``: the columnar
fast path and the per-request scalar reference must stay bit-identical
with replication on (three-tier topology included), drift replans must
recompute the replica set from the observed profile, and the serving
metrics must expose the replica lane and the device-load imbalance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MultiTierSharder,
    RecShardFastSharder,
    ReplicationPolicy,
    plan_with_replication,
)
from repro.data.drift import DriftModel
from repro.data.model import rm2, rm3
from repro.memory import node_from_tier_names, paper_node, paper_scales
from repro.serving import (
    LookupServer,
    ServingConfig,
    synthetic_request_arenas,
)
from repro.stats import analytic_profile

FEATURES = 49
GPUS = 4
TOPO_SCALE, ROW_SCALE = paper_scales(FEATURES, GPUS)
REQUESTS = 384
GIB = 2**30


def two_tier_world():
    model = rm2(num_features=FEATURES, row_scale=ROW_SCALE)
    profile = analytic_profile(model)
    topology = paper_node(num_gpus=GPUS, scale=TOPO_SCALE)
    return model, profile, topology


def three_tier_world():
    model = rm3(num_features=FEATURES, row_scale=ROW_SCALE)
    profile = analytic_profile(model)
    topology = node_from_tier_names(
        ["hbm:8", "dram:24", "ssd"], num_gpus=GPUS, scale=TOPO_SCALE
    )
    return model, profile, topology


def policy(gib: float = 1.0) -> ReplicationPolicy:
    return ReplicationPolicy(capacity_bytes=int(gib * GIB * TOPO_SCALE))


def arenas_for(model, seed: int):
    return list(
        synthetic_request_arenas(
            model, num_requests=REQUESTS, qps=1e9, seed=seed
        )
    )


@pytest.mark.parametrize("world_builder,sharder_cls", [
    (two_tier_world, RecShardFastSharder),
    (three_tier_world, MultiTierSharder),
])
def test_fast_and_reference_paths_bit_identical(world_builder, sharder_cls):
    """Columnar+fused vs objects+scalar, replica lane on — including
    the three-tier hierarchy the issue pins."""
    model, profile, topology, = world_builder()
    arenas = arenas_for(model, seed=31)

    def serve(vectorized):
        server = LookupServer(
            model, profile, topology,
            sharder=sharder_cls(batch_size=256),
            config=ServingConfig(max_batch_size=128, max_delay_ms=2.0),
            replication=policy(),
            vectorized=vectorized,
        )
        if vectorized:
            return server, server.serve_arenas(arenas)
        return server, server.serve(r for a in arenas for r in a)

    fast_server, fast = serve(True)
    _, reference = serve(False)
    assert fast.summary(deterministic_only=True) == (
        reference.summary(deterministic_only=True)
    )
    np.testing.assert_array_equal(
        fast.latencies_ms(), reference.latencies_ms()
    )
    np.testing.assert_array_equal(
        fast.tier_access_totals, reference.tier_access_totals
    )
    np.testing.assert_array_equal(
        fast.replica_access_totals, reference.replica_access_totals
    )
    assert fast.replica_access_totals.sum() > 0
    assert fast_server.executor.replication is not None
    summary = fast.summary()
    assert summary["replica_hits"] == int(fast.replica_access_totals.sum())
    assert summary["load_imbalance"] >= 1.0
    assert "replica lane" in fast.format_report()


def test_serving_counts_match_offline_replay_with_replication():
    """Table 5 online still holds with routing in play: serving-path
    per-tier/per-device counts equal an offline replay of the same
    trace through a fresh executor."""
    from repro.engine import ShardedExecutor

    model, profile, topology = two_tier_world()
    plan = plan_with_replication(
        RecShardFastSharder(batch_size=256), model, profile, topology,
        policy(),
    )
    arenas = arenas_for(model, seed=13)
    server = LookupServer(
        model, profile, topology, plan=plan,
        config=ServingConfig(max_batch_size=128, max_delay_ms=2.0),
    )
    metrics = server.serve_arenas(arenas)
    executor = ShardedExecutor(model, plan, profile, topology)
    offline = np.zeros(
        (topology.num_tiers, topology.num_devices), dtype=np.int64
    )
    offline_replicas = np.zeros(topology.num_devices, dtype=np.int64)
    for arena in arenas:
        _, accesses, _, replicas = executor.run_batch(arena.batch)
        offline += accesses
        offline_replicas += replicas
    np.testing.assert_array_equal(metrics.tier_access_totals, offline)
    np.testing.assert_array_equal(
        metrics.replica_access_totals, offline_replicas
    )


def test_fixed_plan_with_policy_wraps_once():
    model, profile, topology = two_tier_world()
    carved_plan = RecShardFastSharder(batch_size=256).shard(
        model, profile, topology
    )
    # A plan built on the full topology leaves no headroom; the server
    # must surface that as a validation error rather than oversubscribe.
    with pytest.raises(Exception):
        LookupServer(
            model, profile, topology, plan=carved_plan,
            replication=policy(8.0),
        )
    replicated = plan_with_replication(
        RecShardFastSharder(batch_size=256), model, profile, topology,
        policy(),
    )
    server = LookupServer(model, profile, topology, plan=replicated)
    metrics = server.serve_arenas(arenas_for(model, seed=3))
    assert metrics.replica_access_totals.sum() > 0


def test_drift_replans_recompute_replica_set():
    model, profile, topology = two_tier_world()
    server = LookupServer(
        model, profile, topology,
        sharder=RecShardFastSharder(batch_size=256),
        config=ServingConfig(
            max_batch_size=128, max_delay_ms=2.0,
            drift_threshold_pct=2.0, drift_min_samples=128,
            drift_check_every_batches=2,
        ),
        replication=policy(),
    )
    first_rows = server.executor.replication.replica_rows.copy()
    arenas = synthetic_request_arenas(
        model, num_requests=REQUESTS * 2, qps=1e9, seed=17,
        drift=DriftModel(feature_noise=4.0, alpha_noise=4.0),
        months_per_request=24.0 / (REQUESTS * 2),
    )
    metrics = server.serve_arenas(arenas)
    assert metrics.num_replans >= 1
    replication = server.executor.replication
    assert replication is not None
    assert replication.replica_rows.sum() > 0
    # The replica set was rebuilt from observed statistics (the drifted
    # profile virtually always moves at least one cutoff).
    assert not np.array_equal(first_rows, replication.replica_rows)
    # Replica budget still honored after every replan.
    replication.validate(model, topology)


def test_replication_reduces_imbalance_on_skewed_features():
    """A deliberately skewed mini-workload: the replica lane must
    strictly reduce max/mean device accesses."""
    from dataclasses import replace

    model, _, topology = two_tier_world()
    tables = list(model.tables)
    hot = max(range(len(tables)), key=lambda j: tables[j].num_rows)
    rest = sum(
        t.feature.coverage * t.feature.avg_pooling for t in tables
    )
    tables[hot] = replace(
        tables[hot],
        feature=replace(
            tables[hot].feature,
            coverage=1.0, avg_pooling=max(1.0, 0.8 * rest),
            pooling_sigma=0.4, alpha=1.2,
        ),
    )
    model = model.with_tables(tables)
    profile = analytic_profile(model)
    arenas = arenas_for(model, seed=23)
    sharder = RecShardFastSharder(batch_size=256)
    plain_plan = sharder.shard(model, profile, topology)
    replicated = plan_with_replication(
        sharder, model, profile, topology, policy(2.0)
    )
    config = ServingConfig(max_batch_size=128, max_delay_ms=2.0)
    plain = LookupServer(
        model, profile, topology, plan=plain_plan, config=config
    ).serve_arenas(arenas)
    balanced = LookupServer(
        model, profile, topology, plan=replicated, config=config
    ).serve_arenas(arenas)
    assert balanced.load_imbalance < plain.load_imbalance
    assert balanced.qps >= plain.qps
