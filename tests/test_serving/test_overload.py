"""SLO-driven overload control: admission, shedding, brownout.

Covers the whole overload stack bottom-up: QoS columns surviving the
arena transforms and the shared-memory handoff, the loadgen's
bit-compatibility guarantee (QoS on/off changes no arrival or lookup),
the EWMA service-time estimator and the admission decision procedure
(overflow / priority / deadline, with exact keep-or-shed partition),
the brownout hysteresis controller and the executor's degraded-mode
accounting, and finally the runtime integrations: single-process
object-vs-columnar parity and multi-process parity, both bit for bit
with the controller active.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MultiTierSharder, RecShardFastSharder
from repro.data.model import rm2, rm3
from repro.memory import node_from_tier_names, paper_node, paper_scales
from repro.serving import (
    BurstyArrivals,
    LookupRequest,
    LookupServer,
    MultiProcessServer,
    OverloadControl,
    OverloadController,
    PoissonArrivals,
    RequestArena,
    ServingConfig,
    ServingMetrics,
    generate_request_arenas,
    parse_priority_spec,
    synthetic_request_arenas,
)
from tests.test_serving.test_mp_serving import assert_metrics_bit_identical

FEATURES = 49
GPUS = 4
TOPO_SCALE, ROW_SCALE = paper_scales(FEATURES, GPUS)

CONFIG = ServingConfig(max_batch_size=64, max_delay_ms=0.5)


def two_tier_world():
    model = rm2(num_features=FEATURES, row_scale=ROW_SCALE)
    topology = paper_node(num_gpus=GPUS, scale=TOPO_SCALE)
    return model, topology, RecShardFastSharder(batch_size=256)


def three_tier_world():
    model = rm3(num_features=FEATURES, row_scale=ROW_SCALE)
    topology = node_from_tier_names(
        ["hbm:8", "dram:24", "ssd"], num_gpus=GPUS, scale=TOPO_SCALE
    )
    return model, topology, MultiTierSharder(batch_size=256)


def make_server(world, control=None, config=CONFIG):
    from repro.stats import analytic_profile

    model, topology, sharder = world()
    profile = analytic_profile(model)
    server = LookupServer(
        model, profile, topology, sharder=sharder, config=config,
        overload=control,
    )
    return model, profile, topology, server


def qos_stream(model, n, qps, seed, deadline_ms=None, shares=None):
    return list(
        generate_request_arenas(
            model, n, PoissonArrivals(qps), seed=seed,
            deadline_ms=deadline_ms, priority_shares=shares,
        )
    )


# ----------------------------------------------------------------------
# Priority spec / control validation
# ----------------------------------------------------------------------
class TestParsePrioritySpec:
    def test_parses_names_and_shares(self):
        names, shares = parse_priority_spec("gold=0.1,silver=0.3,bronze=0.6")
        assert names == ("gold", "silver", "bronze")
        assert shares == (0.1, 0.3, 0.6)

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "gold",
            "gold=zero",
            "gold=-0.5,bronze=1.5",
            "gold=0.5,gold=0.5",
            "gold=0.5,bronze=0.6",
        ],
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_priority_spec(spec)


class TestOverloadControl:
    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="slo_ms"):
            OverloadControl(slo_ms=0.0)
        with pytest.raises(ValueError, match="queue_limit_ms"):
            OverloadControl(queue_limit_ms=-1.0)
        with pytest.raises(ValueError, match="brownout requires"):
            OverloadControl(brownout=True)
        with pytest.raises(ValueError, match="hysteresis"):
            OverloadControl(
                slo_ms=1.0, brownout=True,
                brownout_enter=0.5, brownout_exit=0.5,
            )

    def test_admission_for(self):
        # A queue bound can shed any batch; deadline/priority shedding
        # only bites when the batch carries QoS columns.
        assert OverloadControl(queue_limit_ms=1.0).admission_for(False)
        assert not OverloadControl(slo_ms=1.0).admission_for(False)
        assert OverloadControl(slo_ms=1.0).admission_for(True)
        bare = OverloadControl(
            slo_ms=1.0, deadline_shedding=False, priority_shedding=False
        )
        assert not bare.admission_for(True)


# ----------------------------------------------------------------------
# QoS columns through the arena transforms
# ----------------------------------------------------------------------
def _qos_arena(n=8, seed=0):
    rng = np.random.default_rng(seed)
    requests = [
        LookupRequest(
            request_id=i,
            features=(np.arange(i, i + 3, dtype=np.int64),),
            arrival_ms=float(i),
            deadline_ms=float(i) + 5.0,
            priority=int(rng.integers(3)),
        )
        for i in range(n)
    ]
    return RequestArena.from_requests(requests)


class TestArenaQoS:
    def test_from_requests_materializes_only_nondefault(self):
        plain = RequestArena.from_requests(
            [
                LookupRequest(i, (np.arange(2, dtype=np.int64),), float(i))
                for i in range(4)
            ]
        )
        assert not plain.has_qos
        assert plain.deadline_ms is None and plain.priority is None
        arena = _qos_arena()
        assert arena.has_qos
        np.testing.assert_array_equal(
            arena.deadline_ms, arena.arrival_ms + 5.0
        )

    def test_partial_defaults_are_filled(self):
        arena = RequestArena.from_requests(
            [
                LookupRequest(0, (np.arange(2, dtype=np.int64),), 0.0),
                LookupRequest(
                    1, (np.arange(2, dtype=np.int64),), 1.0, priority=2
                ),
            ]
        )
        assert arena.has_qos
        assert arena.deadline_ms.tolist() == [np.inf, np.inf]
        assert arena.priority.tolist() == [0, 2]

    def test_slice_take_concat_carry_qos(self):
        arena = _qos_arena(10)
        part = arena.slice(2, 7)
        np.testing.assert_array_equal(part.deadline_ms, arena.deadline_ms[2:7])
        np.testing.assert_array_equal(part.priority, arena.priority[2:7])
        keep = np.zeros(10, dtype=bool)
        keep[[1, 4, 9]] = True
        kept = arena.take(keep)
        np.testing.assert_array_equal(
            kept.deadline_ms, arena.deadline_ms[keep]
        )
        np.testing.assert_array_equal(kept.priority, arena.priority[keep])
        merged = RequestArena.concat([arena.slice(0, 4), arena.slice(4, 10)])
        np.testing.assert_array_equal(merged.deadline_ms, arena.deadline_ms)
        np.testing.assert_array_equal(merged.priority, arena.priority)

    def test_concat_mixed_fills_defaults(self):
        plain = RequestArena.from_requests(
            [LookupRequest(100, (np.arange(2, dtype=np.int64),), 100.0)]
        )
        merged = RequestArena.concat([_qos_arena(3), plain])
        assert merged.has_qos
        assert merged.deadline_ms[-1] == np.inf
        assert merged.priority[-1] == 0

    def test_shm_round_trip_preserves_qos(self):
        arena = _qos_arena(6)
        shm = arena.to_shm()
        try:
            assert shm.handle.has_qos
            attached = RequestArena.from_shm(shm.handle)
            try:
                view = attached.arena
                np.testing.assert_array_equal(
                    view.deadline_ms, arena.deadline_ms
                )
                np.testing.assert_array_equal(view.priority, arena.priority)
                np.testing.assert_array_equal(
                    view.arrival_ms, arena.arrival_ms
                )
            finally:
                del view
                attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_request_view_exposes_qos(self):
        arena = _qos_arena(4)
        req = arena.request(2)
        assert req.deadline_ms == float(arena.deadline_ms[2])
        assert req.priority == int(arena.priority[2])


# ----------------------------------------------------------------------
# Loadgen QoS columns
# ----------------------------------------------------------------------
class TestLoadgenQoS:
    def _flatten(self, arenas):
        merged = RequestArena.concat(list(arenas))
        values = np.concatenate(
            [
                merged.batch[f].values
                for f in range(merged.num_features)
            ]
        )
        return merged, values

    def test_qos_off_and_on_share_arrivals_and_content(self):
        model = rm2(num_features=9, row_scale=1e-4)
        plain, plain_values = self._flatten(
            qos_stream(model, 300, qps=50000, seed=13)
        )
        qos, qos_values = self._flatten(
            qos_stream(
                model, 300, qps=50000, seed=13,
                deadline_ms=4.0, shares=(0.25, 0.75),
            )
        )
        assert not plain.has_qos and qos.has_qos
        np.testing.assert_array_equal(plain.arrival_ms, qos.arrival_ms)
        np.testing.assert_array_equal(plain_values, qos_values)
        np.testing.assert_array_equal(
            qos.deadline_ms, qos.arrival_ms + 4.0
        )
        assert set(np.unique(qos.priority)) <= {0, 1}

    def test_priority_draw_is_seed_deterministic(self):
        model = rm2(num_features=9, row_scale=1e-4)
        kwargs = dict(qps=50000, deadline_ms=4.0, shares=(0.5, 0.3, 0.2))
        a, _ = self._flatten(qos_stream(model, 200, seed=3, **kwargs))
        b, _ = self._flatten(qos_stream(model, 200, seed=3, **kwargs))
        c, _ = self._flatten(qos_stream(model, 200, seed=4, **kwargs))
        np.testing.assert_array_equal(a.priority, b.priority)
        assert not np.array_equal(a.priority, c.priority)

    def test_deadline_only_fills_priority_zero(self):
        model = rm2(num_features=9, row_scale=1e-4)
        merged, _ = self._flatten(
            qos_stream(model, 100, qps=50000, seed=1, deadline_ms=2.0)
        )
        assert merged.priority.tolist() == [0] * 100

    def test_rejects_bad_qos_parameters(self):
        model = rm2(num_features=9, row_scale=1e-4)
        with pytest.raises(ValueError, match="deadline_ms"):
            list(
                generate_request_arenas(
                    model, 10, PoissonArrivals(1000), deadline_ms=0.0
                )
            )
        with pytest.raises(ValueError, match="positive"):
            list(
                generate_request_arenas(
                    model, 10, PoissonArrivals(1000),
                    priority_shares=(0.5, -0.5),
                )
            )
        with pytest.raises(ValueError, match="sum to 1"):
            list(
                generate_request_arenas(
                    model, 10, PoissonArrivals(1000),
                    priority_shares=(0.5, 0.6),
                )
            )


class TestBurstyBoundaryRegression:
    def test_phase_boundary_rounding_cannot_stall(self):
        # At now_ms magnitudes where one ulp exceeds the cycle period,
        # ``t - (t % period) + period`` rounds back to ``t`` and the
        # draw loop used to spin forever; the nextafter guard forces
        # progress.  This returns (quickly) instead of hanging.
        process = BurstyArrivals(
            burst_qps=1e6, idle_qps=0.0, burst_ms=0.1, idle_ms=0.497
        )
        rng = np.random.default_rng(0)
        times = process.arrivals(rng, now_ms=1e16, count=4)
        assert times.shape == (4,)
        assert np.all(np.diff(times) >= 0)
        assert np.all(np.isfinite(times))

    def test_submillisecond_windows_draw_cleanly(self):
        process = BurstyArrivals(
            burst_qps=2e7, idle_qps=1e6, burst_ms=0.103, idle_ms=0.494
        )
        rng = np.random.default_rng(7)
        times = process.arrivals(rng, now_ms=0.0, count=5000)
        assert np.all(np.diff(times) >= 0)


# ----------------------------------------------------------------------
# Estimator and admission decisions (controller unit tests)
# ----------------------------------------------------------------------
def _assert_partition(n, keep, sheds):
    """keep plus the shed masks must tile the batch exactly."""
    union = keep.copy()
    for _, mask in sheds:
        assert not (union & mask).any()
        union |= mask
    assert union.all() and union.size == n


class TestEstimator:
    def test_optimistic_until_first_observation(self):
        ctrl = OverloadController(OverloadControl(), 0.05)
        assert ctrl.ms_per_lookup is None
        assert ctrl.predict_service_ms(10_000) == pytest.approx(0.05)

    def test_ewma_update(self):
        ctrl = OverloadController(OverloadControl(ewma_alpha=0.5), 0.05)
        ctrl.observe_batch(1.05, 100, np.empty(0))
        assert ctrl.ms_per_lookup == pytest.approx(0.01)
        ctrl.observe_batch(2.05, 100, np.empty(0))
        assert ctrl.ms_per_lookup == pytest.approx(0.5 * 0.02 + 0.5 * 0.01)
        assert ctrl.predict_service_ms(200) == pytest.approx(
            0.05 + 200 * 0.015
        )

    def test_zero_lookup_batch_leaves_estimate(self):
        ctrl = OverloadController(OverloadControl(), 0.05)
        ctrl.observe_batch(0.05, 0, np.empty(0))
        assert ctrl.ms_per_lookup is None

    def test_reset_clears_state(self):
        control = OverloadControl(slo_ms=1.0, brownout=True, min_window=1)
        ctrl = OverloadController(control, 0.05)
        ctrl.observe_batch(1.05, 100, np.full(8, 99.0))
        ctrl.notify_degrade()
        assert ctrl.update_brownout()
        ctrl.reset()
        assert ctrl.ms_per_lookup is None
        assert not ctrl.brownout_active
        assert ctrl.windowed_p99_ms() is None


class TestAdmit:
    def _batch(self, n, deadline=None, priorities=None):
        arrivals = np.zeros(n, dtype=np.float64)
        deadlines = (
            None if deadline is None
            else np.full(n, deadline, dtype=np.float64)
        )
        prios = (
            None if priorities is None
            else np.asarray(priorities, dtype=np.int64)
        )
        lookups = np.full(n, 10, dtype=np.int64)
        return arrivals, deadlines, prios, lookups

    def test_admits_everything_when_unloaded(self):
        ctrl = OverloadController(OverloadControl(slo_ms=5.0), 0.05)
        arrivals, deadlines, prios, lookups = self._batch(
            4, deadline=100.0, priorities=[0, 1, 2, 1]
        )
        keep, sheds = ctrl.admit(
            0.0, 0.0, arrivals, deadlines, prios, lookups
        )
        assert keep.all() and not sheds

    def test_overflow_sheds_whole_batch(self):
        ctrl = OverloadController(
            OverloadControl(queue_limit_ms=1.0), 0.05
        )
        arrivals, deadlines, prios, lookups = self._batch(3)
        # Engine backlogged 2 ms past the release: over the 1 ms bound.
        keep, sheds = ctrl.admit(
            10.0, 12.0, arrivals, deadlines, prios, lookups
        )
        assert not keep.any()
        assert [cause for cause, _ in sheds] == ["overflow"]
        _assert_partition(3, keep, sheds)

    def test_deadline_doom_sheds_only_doomed(self):
        ctrl = OverloadController(OverloadControl(), 0.0)
        ctrl.observe_batch(1.0, 10, np.empty(0))  # 0.1 ms per lookup
        arrivals = np.zeros(4)
        lookups = np.full(4, 10, dtype=np.int64)
        # Predicted finish = 10 (backlog) + 4*10*0.1 = 14.
        deadlines = np.array([20.0, 13.0, 15.0, 5.0])
        keep, sheds = ctrl.admit(
            0.0, 10.0, arrivals, deadlines, None, lookups
        )
        assert keep.tolist() == [True, False, True, False]
        assert [cause for cause, _ in sheds] == ["deadline"]
        _assert_partition(4, keep, sheds)

    def test_priority_sheds_lowest_class_first_never_gold(self):
        control = OverloadControl(slo_ms=1.0, slo_margin=1.0)
        ctrl = OverloadController(control, 0.0)
        ctrl.observe_batch(1.0, 10, np.empty(0))  # 0.1 ms per lookup
        arrivals = np.zeros(6)
        lookups = np.full(6, 10, dtype=np.int64)
        prios = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        # 6 requests would finish at 6.0 — way past the 1.0 SLO; even
        # gold alone (2.0) misses, but class 0 is never shed.
        keep, sheds = ctrl.admit(
            0.0, 0.0, arrivals, None, prios, lookups
        )
        assert keep.tolist() == [True, True, False, False, False, False]
        assert [cause for cause, _ in sheds] == ["priority", "priority"]
        assert prios[sheds[0][1]].tolist() == [2, 2]
        assert prios[sheds[1][1]].tolist() == [1, 1]
        _assert_partition(6, keep, sheds)

    def test_priority_then_deadline_compose(self):
        control = OverloadControl(slo_ms=3.05, slo_margin=1.0)
        ctrl = OverloadController(control, 0.0)
        ctrl.observe_batch(1.0, 10, np.empty(0))
        arrivals = np.zeros(4)
        lookups = np.full(4, 10, dtype=np.int64)
        prios = np.array([0, 0, 0, 1], dtype=np.int64)
        # Shedding class 1 brings predicted finish to 3.0 (fits the
        # SLO); request 1's deadline still dooms it.
        deadlines = np.array([10.0, 2.0, 10.0, 10.0])
        keep, sheds = ctrl.admit(
            0.0, 0.0, arrivals, deadlines, prios, lookups
        )
        assert keep.tolist() == [True, False, True, False]
        assert sorted(cause for cause, _ in sheds) == [
            "deadline", "priority",
        ]
        _assert_partition(4, keep, sheds)


# ----------------------------------------------------------------------
# Brownout hysteresis (controller unit tests)
# ----------------------------------------------------------------------
class TestBrownoutHysteresis:
    CONTROL = OverloadControl(
        slo_ms=1.0, brownout=True, brownout_enter=1.0, brownout_exit=0.6,
        window_requests=32, min_window=8,
    )

    def _feed(self, ctrl, latency, count=8):
        ctrl.observe_batch(0.0, 0, np.full(count, latency))

    def test_enters_and_exits_with_hysteresis(self):
        ctrl = OverloadController(self.CONTROL, 0.05)
        assert not ctrl.update_brownout()
        self._feed(ctrl, 2.0)
        assert ctrl.update_brownout()  # p99 2.0 >= 1.0
        # Between exit (0.6) and enter (1.0): stays browned out.
        self._feed(ctrl, 0.8, count=32)
        assert ctrl.update_brownout()
        self._feed(ctrl, 0.3, count=32)
        assert not ctrl.update_brownout()
        # And stays out until enter is crossed again.
        self._feed(ctrl, 0.8, count=32)
        assert not ctrl.update_brownout()

    def test_short_window_is_not_trusted(self):
        ctrl = OverloadController(self.CONTROL, 0.05)
        self._feed(ctrl, 5.0, count=4)  # below min_window=8
        assert not ctrl.update_brownout()
        self._feed(ctrl, 5.0, count=4)
        assert ctrl.update_brownout()

    def test_degrade_forces_and_pins_brownout(self):
        ctrl = OverloadController(self.CONTROL, 0.05)
        ctrl.notify_degrade()
        assert ctrl.update_brownout()  # forced, window empty
        self._feed(ctrl, 0.1, count=32)
        assert ctrl.update_brownout()  # recovered p99, still pinned
        ctrl.notify_recover()
        assert not ctrl.update_brownout()

    def test_disabled_control_never_activates(self):
        ctrl = OverloadController(OverloadControl(slo_ms=1.0), 0.05)
        ctrl.notify_degrade()
        self._feed(ctrl, 50.0, count=64)
        assert not ctrl.update_brownout()


# ----------------------------------------------------------------------
# Metrics accounting
# ----------------------------------------------------------------------
class TestMetricsOverload:
    def test_shed_accounting_and_conservation(self):
        m = ServingMetrics(2, priority_names=("gold", "bronze"))
        m.record_batch([0.0, 0.1], 1.0, 2.0, np.zeros(2), 10,
                       deadlines_ms=[2.0, 1.5], priorities=[0, 1])
        m.record_shed(2, cause="deadline", priorities=[1, 1])
        m.record_shed(1, cause="priority", priorities=[1])
        assert m.shed_requests == 3
        assert m.shed_by_cause == {"deadline": 2, "priority": 1}
        assert m.offered_requests == m.num_requests + m.shed_requests == 5
        # Request 1 finished at 2.0 > deadline 1.5: one goodput miss.
        assert m.served_within_deadline == 1
        assert m.goodput_fraction == pytest.approx(1 / 5)
        stats = m.priority_class_stats()
        assert stats["gold"]["requests"] == 1 and stats["gold"]["shed"] == 0
        assert stats["bronze"]["shed"] == 3
        summary = m.summary()
        assert summary["shed_by_cause"] == {"deadline": 2, "priority": 1}
        assert summary["goodput"] == 1
        assert "priority_classes" in summary

    def test_plain_run_schema_unchanged(self):
        m = ServingMetrics(2)
        m.record_batch([0.0], 0.5, 1.0, np.zeros(2), 5)
        summary = m.summary()
        for key in (
            "shed_requests", "goodput", "priority_classes",
            "browned_out_lookups", "brownout_windows",
        ):
            assert key not in summary

    def test_brownout_windows_pair_up(self):
        m = ServingMetrics(2, tier_names=("hbm", "uvm"))
        with pytest.raises(ValueError):
            m.record_brownout(1.0, active=False)
        m.record_brownout(1.0, active=True)
        m.record_batch([0.0], 0.5, 1.0, np.zeros(2), 5,
                       browned_lookups=np.array([[0, 0], [3, 4]]))
        m.record_brownout(2.0, active=False)
        assert m.brownout_windows == [[1.0, 2.0]]
        assert m.browned_out_lookups == 7
        np.testing.assert_array_equal(m.browned_per_device, [3, 4])
        summary = m.summary()
        assert summary["browned_out_lookups"] == 7
        assert summary["brownout_windows"] == 1

    def test_negative_shed_rejected(self):
        with pytest.raises(ValueError):
            ServingMetrics(1).record_shed(-1)


# ----------------------------------------------------------------------
# Single-process integration
# ----------------------------------------------------------------------
class TestSingleProcessOverload:
    def test_deadline_shedding_conserves_offered(self):
        control = OverloadControl(slo_ms=1.0)
        model, _, _, server = make_server(two_tier_world, control)
        # Everything arrives at once: the backlog builds immediately
        # and later batches are doomed against the tight deadline.
        arenas = qos_stream(model, 512, qps=1e9, seed=5, deadline_ms=0.4)
        metrics = server.serve_arenas(arenas)
        assert metrics.shed_requests > 0
        assert set(metrics.shed_by_cause) == {"deadline"}
        assert metrics.offered_requests == 512
        assert metrics.num_requests + metrics.shed_requests == 512
        # Early shedding keeps the served latencies near the deadline.
        assert metrics.served_within_deadline > 0
        assert "goodput" in metrics.summary()

    def test_priority_shedding_protects_gold(self):
        control = OverloadControl(
            slo_ms=0.3, deadline_shedding=False,
            priority_names=("gold", "silver", "bronze"),
        )
        model, _, _, server = make_server(two_tier_world, control)
        arenas = qos_stream(
            model, 512, qps=1e9, seed=6,
            deadline_ms=50.0, shares=(0.2, 0.3, 0.5),
        )
        metrics = server.serve_arenas(arenas)
        stats = metrics.priority_class_stats()
        assert metrics.shed_by_cause.get("priority", 0) > 0
        assert stats["gold"]["shed"] == 0
        assert stats["bronze"]["shed"] > 0
        assert metrics.num_requests + metrics.shed_requests == 512

    def test_queue_limit_emulates_tail_drop(self):
        control = OverloadControl(queue_limit_ms=0.2)
        model, _, _, server = make_server(two_tier_world, control)
        arenas = qos_stream(model, 512, qps=1e9, seed=7)
        metrics = server.serve_arenas(arenas)
        assert metrics.shed_by_cause.get("overflow", 0) > 0
        assert metrics.num_requests + metrics.shed_requests == 512

    def test_object_path_parity_with_controller(self):
        control = OverloadControl(
            slo_ms=0.45, priority_names=("gold", "silver")
        )
        model, _, _, columnar = make_server(two_tier_world, control)
        _, _, _, objects = make_server(two_tier_world, control)
        arenas = qos_stream(
            model, 768, qps=3e6, seed=9,
            deadline_ms=0.35, shares=(0.4, 0.6),
        )
        ref = columnar.serve_arenas(arenas)
        got = objects.serve(r for arena in arenas for r in arena)
        assert ref.shed_requests > 0
        assert ref.summary(deterministic_only=True) == got.summary(
            deterministic_only=True
        )
        assert ref.shed_by_cause == got.shed_by_cause

    def test_reset_clears_overload_state(self):
        control = OverloadControl(slo_ms=1.0)
        model, _, _, server = make_server(two_tier_world, control)
        arenas = qos_stream(model, 512, qps=1e9, seed=5, deadline_ms=0.4)
        first = server.serve_arenas(arenas)
        second = server.serve_arenas(arenas)
        assert first.shed_requests > 0
        assert first.summary(deterministic_only=True) == second.summary(
            deterministic_only=True
        )


class TestBrownoutServing:
    CONTROL = OverloadControl(
        slo_ms=1.0, brownout=True, deadline_shedding=False,
        priority_shedding=False, window_requests=64, min_window=32,
    )

    def _two_phase_stream(self, model):
        """An overloaded head (instant arrivals) then a calm tail, so
        brownout both enters and cleanly exits within the run."""
        head = list(
            synthetic_request_arenas(model, 2000, qps=1e9, seed=21)
        )
        tail = list(
            generate_request_arenas(
                model, 400, PoissonArrivals(500), seed=22, start_ms=50.0
            )
        )
        return head + tail

    def test_brownout_skips_cold_tiers_and_exits(self):
        config = ServingConfig(max_batch_size=64, max_delay_ms=0.2)
        model, _, _, browned = make_server(
            three_tier_world, self.CONTROL, config=config
        )
        _, _, _, baseline = make_server(
            three_tier_world, None, config=config
        )
        arenas = self._two_phase_stream(model)
        got = browned.serve_arenas(arenas)
        ref = baseline.serve_arenas(arenas)
        assert got.browned_out_lookups > 0
        # Fast tier is never browned; skipped + served cold lookups
        # reconstruct the undegraded run exactly (classification is
        # content-only, so the split is lossless).
        np.testing.assert_array_equal(
            got.browned_totals[0], np.zeros(GPUS, dtype=np.int64)
        )
        np.testing.assert_array_equal(
            got.tier_access_totals[1:] + got.browned_totals[1:],
            ref.tier_access_totals[1:],
        )
        np.testing.assert_array_equal(
            got.tier_access_totals[0], ref.tier_access_totals[0]
        )
        # The calm tail pulled p99 back under exit x slo: service
        # returned to full quality before the stream ended.
        assert got.brownout_windows
        assert all(end is not None for _, end in got.brownout_windows)
        assert not browned.executor.brownout_active
        summary = got.summary()
        assert summary["browned_out_lookups"] == got.browned_out_lookups
        assert summary["brownout_windows"] == len(got.brownout_windows)
        # Degraded mode buys back tail latency while it is active.
        assert got.p99_ms < ref.p99_ms

    def test_brownout_improves_p99_under_sustained_overload(self):
        model, _, _, browned = make_server(three_tier_world, self.CONTROL)
        _, _, _, baseline = make_server(three_tier_world, None)
        arenas = list(
            synthetic_request_arenas(model, 1500, qps=1e9, seed=23)
        )
        got = browned.serve_arenas(arenas)
        ref = baseline.serve_arenas(arenas)
        assert got.browned_out_lookups > 0
        assert got.p99_ms < ref.p99_ms

    def test_device_degrade_forces_brownout(self):
        from repro.serving import FaultSchedule, device_degrade

        chaos = FaultSchedule([device_degrade(0.05, 0, slowdown=4.0)])
        from repro.stats import analytic_profile

        model, topology, sharder = three_tier_world()
        profile = analytic_profile(model)
        server = LookupServer(
            model, profile, topology, sharder=sharder, config=CONFIG,
            chaos=chaos, overload=self.CONTROL,
        )
        arenas = list(
            synthetic_request_arenas(model, 600, qps=1e9, seed=24)
        )
        metrics = server.serve_arenas(arenas)
        # Forced by the chaos event, not by the p99 window.
        assert metrics.browned_out_lookups > 0
        assert metrics.brownout_windows


# ----------------------------------------------------------------------
# Multi-process parity
# ----------------------------------------------------------------------
class TestMultiProcessOverloadParity:
    def _mp_run(self, world, control, arenas, config=CONFIG, workers=2):
        from repro.stats import analytic_profile

        model, topology, sharder = world()
        profile = analytic_profile(model)
        plan = sharder.shard(model, profile, topology)
        single = LookupServer(
            model, profile, topology, plan=plan, config=config,
            overload=control,
        )
        ref = single.serve_arenas(arenas)
        with MultiProcessServer(
            model, profile, topology, plan=plan, config=config,
            workers=workers, overload=control,
        ) as pool:
            got = pool.serve_arenas(arenas)
        return ref, got

    def test_admission_control_parity(self):
        control = OverloadControl(
            slo_ms=0.4, priority_names=("gold", "silver", "bronze")
        )
        model, _, _ = two_tier_world()
        arenas = qos_stream(
            model, 512, qps=1e9, seed=31,
            deadline_ms=0.3, shares=(0.2, 0.3, 0.5),
        )
        ref, got = self._mp_run(two_tier_world, control, arenas)
        assert ref.shed_requests > 0
        assert_metrics_bit_identical(ref, got)
        assert ref.shed_by_cause == got.shed_by_cause
        assert ref.priority_class_stats() == got.priority_class_stats()

    def test_brownout_parity(self):
        control = OverloadControl(
            slo_ms=1.0, brownout=True, deadline_shedding=False,
            priority_shedding=False, window_requests=64, min_window=32,
        )
        model, _, _ = three_tier_world()
        arenas = list(
            synthetic_request_arenas(model, 1200, qps=1e9, seed=32)
        )
        ref, got = self._mp_run(three_tier_world, control, arenas)
        assert ref.browned_out_lookups > 0
        assert_metrics_bit_identical(ref, got)
        assert ref.browned_out_lookups == got.browned_out_lookups
        np.testing.assert_array_equal(
            ref.browned_totals, got.browned_totals
        )
        assert ref.brownout_windows == got.brownout_windows
