"""Self-healing worker pool: respawn, requeue, budget, chaos parity.

The supervisor contract under ``worker_kill`` drills (and real
crashes): dead workers are replaced with exponential backoff while the
respawn budget lasts, every batch still owed is requeued (duplicates
absorbed by the result protocol), and the merged metrics of a healed
run stay bit-identical to a single-process run of the same stream —
crashing and healing the pool must be invisible on the simulated
clock.  Device chaos on the pool runs the spine's reroute-only
degraded mode and must match the equivalent single-process server.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    RecShardFastSharder,
    ReplicationPolicy,
    plan_with_replication,
)
from repro.data.model import rm2
from repro.memory import paper_node, paper_scales
from repro.serving import (
    FaultSchedule,
    LookupServer,
    MultiProcessServer,
    ServingConfig,
    WorkerCrashError,
    device_fail,
    synthetic_request_arenas,
    worker_kill,
)
from repro.serving.arena import SHM_NAME_PREFIX
from repro.stats import analytic_profile

FEATURES = 25
GPUS = 2
TOPO_SCALE, ROW_SCALE = paper_scales(FEATURES, GPUS)
CONFIG = ServingConfig(max_batch_size=64, max_delay_ms=1.0)
QPS = 50_000.0


def small_world(replicated: bool = False):
    model = rm2(num_features=FEATURES, row_scale=ROW_SCALE)
    profile = analytic_profile(model)
    topology = paper_node(num_gpus=GPUS, scale=TOPO_SCALE)
    sharder = RecShardFastSharder(batch_size=256)
    if replicated:
        policy = ReplicationPolicy(
            capacity_bytes=int((1 << 30) * TOPO_SCALE)
        )
        plan = plan_with_replication(
            sharder, model, profile, topology, policy
        )
    else:
        plan = sharder.shard(model, profile, topology)
    return model, profile, topology, plan


def stream(model, n=1024, seed=3):
    return list(synthetic_request_arenas(model, n, qps=QPS, seed=seed))


def live_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover
        return set()
    return {
        n for n in os.listdir("/dev/shm") if n.startswith(SHM_NAME_PREFIX)
    }


# ----------------------------------------------------------------------
# Worker-kill drill: heal and stay bit-identical
# ----------------------------------------------------------------------
def test_worker_kill_drill_heals_and_matches_single_process():
    model, profile, topology, plan = small_world()
    arenas = stream(model)
    single = LookupServer(
        model, profile, topology, plan=plan, config=CONFIG
    ).serve_arenas(arenas)
    before = live_segments()
    chaos = FaultSchedule([worker_kill(5.0, 1)])
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, chaos=chaos, result_timeout_s=30.0,
    ) as pool:
        merged = pool.serve_arenas(arenas)
        assert pool.respawn_count == 1
        assert any("killed" in line for line in pool.worker_fault_log)
        assert any("respawned" in line for line in pool.worker_fault_log)
    # Healing is invisible on the simulated clock: merged metrics are
    # bit-identical to the single-process run, with no fault block
    # (worker deaths are wall-clock events, not simulated ones).
    assert merged.summary(deterministic_only=True) == single.summary(
        deterministic_only=True
    )
    assert not merged.fault_events
    assert live_segments() - before == set()


def test_repeated_kills_heal_within_budget():
    model, profile, topology, plan = small_world()
    chaos = FaultSchedule(
        [worker_kill(2.0, 0), worker_kill(8.0, 1), worker_kill(14.0, 0)]
    )
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, chaos=chaos, max_respawns=3, result_timeout_s=30.0,
        respawn_backoff_s=0.01,
    ) as pool:
        metrics = pool.serve_arenas(stream(model, n=2048))
        assert pool.respawn_count == 3
    assert metrics.num_requests == 2048


def test_budget_exhaustion_raises_with_context():
    model, profile, topology, plan = small_world()
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, chaos=FaultSchedule([worker_kill(0.0, 0)]),
        max_respawns=0, result_timeout_s=10.0,
    )
    with pytest.raises(WorkerCrashError, match="respawn budget exhausted"):
        pool.serve_arenas(stream(model))
    assert not pool.started
    assert live_segments() - before == set()


def test_real_crash_heals_like_a_scripted_one():
    """An unscripted SIGKILL mid-stream (not via chaos) is healed by
    the same supervisor path."""
    model, profile, topology, plan = small_world()
    arenas = stream(model, n=2048)
    single = LookupServer(
        model, profile, topology, plan=plan, config=CONFIG
    ).serve_arenas(arenas)
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, result_timeout_s=30.0,
    ) as pool:
        pool.start()
        pool.kill_worker(0)
        merged = pool.serve_arenas(arenas)
        assert pool.respawn_count >= 1
    assert merged.summary(deterministic_only=True) == single.summary(
        deterministic_only=True
    )


# ----------------------------------------------------------------------
# Device chaos on the pool (reroute-only degraded mode)
# ----------------------------------------------------------------------
def test_device_chaos_parity_with_single_process():
    model, profile, topology, plan = small_world(replicated=True)
    arenas = stream(model, n=2048)

    def schedule():
        return FaultSchedule([device_fail(10.0, 1)])

    single = LookupServer(
        model, profile, topology, plan=plan, config=CONFIG,
        chaos=schedule(),
    ).serve_arenas(arenas)
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, chaos=schedule(),
    ) as pool:
        merged = pool.serve_arenas(arenas)
    assert merged.summary(deterministic_only=True) == single.summary(
        deterministic_only=True
    )
    assert merged.dropped_lookups == single.dropped_lookups > 0
    np.testing.assert_array_equal(
        merged.dropped_per_device, single.dropped_per_device
    )
    assert merged.time_to_reroute_ms == single.time_to_reroute_ms


def test_mixed_drill_device_and_worker_faults_together():
    model, profile, topology, plan = small_world(replicated=True)
    arenas = stream(model, n=2048)
    chaos = FaultSchedule([device_fail(10.0, 1), worker_kill(6.0, 0)])
    single = LookupServer(
        model, profile, topology, plan=plan, config=CONFIG,
        chaos=FaultSchedule([device_fail(10.0, 1)]),
    ).serve_arenas(arenas)
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, chaos=chaos, result_timeout_s=30.0,
    ) as pool:
        merged = pool.serve_arenas(arenas)
        assert pool.respawn_count == 1
    assert merged.summary(deterministic_only=True) == single.summary(
        deterministic_only=True
    )


def test_pool_reset_disarms_then_rearm_replays():
    model, profile, topology, plan = small_world(replicated=True)
    arenas = stream(model)
    chaos = FaultSchedule([device_fail(10.0, 1), worker_kill(6.0, 1)])
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, chaos=chaos, result_timeout_s=30.0,
    ) as pool:
        first = pool.serve_arenas(arenas)
        assert first.dropped_lookups > 0
        pool.reset_serving_state()
        healthy = pool.serve_arenas(arenas)
        assert healthy.dropped_lookups == 0 and not healthy.fault_events
        pool.reset_serving_state(rearm_chaos=True)
        replay = pool.serve_arenas(arenas)
    assert replay.summary(deterministic_only=True) == first.summary(
        deterministic_only=True
    )


# ----------------------------------------------------------------------
# Constructor validation
# ----------------------------------------------------------------------
def test_pool_constructor_validation():
    model, profile, topology, plan = small_world()
    with pytest.raises(ValueError, match="max_respawns"):
        MultiProcessServer(
            model, profile, topology, plan=plan, config=CONFIG,
            workers=2, max_respawns=-1,
        )
    with pytest.raises(ValueError, match="respawn_backoff_s"):
        MultiProcessServer(
            model, profile, topology, plan=plan, config=CONFIG,
            workers=2, respawn_backoff_s=-0.1,
        )
    with pytest.raises(ValueError, match="only 2 workers"):
        MultiProcessServer(
            model, profile, topology, plan=plan, config=CONFIG,
            workers=2, chaos=FaultSchedule([worker_kill(1.0, 5)]),
        )
