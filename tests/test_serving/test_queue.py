"""Tests for the microbatching admission queue."""

import numpy as np
import pytest

from repro.serving import (
    LookupRequest,
    MicroBatchQueue,
    RequestArena,
    coalesce_requests,
    iter_microbatch_arenas,
)


def make_request(request_id, arrival_ms=0.0, lengths=(2, 0, 3)):
    features = tuple(
        np.arange(request_id, request_id + n, dtype=np.int64) for n in lengths
    )
    return LookupRequest(
        request_id=request_id, features=features, arrival_ms=arrival_ms
    )


class TestMicroBatchQueue:
    def test_releases_at_size_threshold(self):
        queue = MicroBatchQueue(max_batch_size=3, max_delay_ms=100.0)
        for i in range(2):
            queue.submit(make_request(i, arrival_ms=float(i)))
            assert not queue.ready(now_ms=float(i))
        queue.submit(make_request(2, arrival_ms=2.0))
        assert queue.ready(now_ms=2.0)
        batch = queue.pop_batch()
        assert [r.request_id for r in batch] == [0, 1, 2]
        assert len(queue) == 0

    def test_releases_at_deadline(self):
        queue = MicroBatchQueue(max_batch_size=100, max_delay_ms=5.0)
        queue.submit(make_request(0, arrival_ms=10.0))
        assert queue.deadline_ms() == pytest.approx(15.0)
        assert not queue.ready(now_ms=14.9)
        assert queue.ready(now_ms=15.0)

    def test_pop_caps_at_max_batch_size(self):
        queue = MicroBatchQueue(max_batch_size=2, max_delay_ms=1.0)
        for i in range(5):
            queue.submit(make_request(i, arrival_ms=0.0))
        first = queue.pop_batch()
        assert [r.request_id for r in first] == [0, 1]
        assert len(queue) == 3

    def test_fifo_order_preserved(self):
        queue = MicroBatchQueue(max_batch_size=4, max_delay_ms=1.0)
        for i in range(4):
            queue.submit(make_request(i, arrival_ms=float(i) / 10))
        batch = queue.pop_batch()
        assert [r.request_id for r in batch] == [0, 1, 2, 3]

    def test_out_of_order_arrivals_rejected(self):
        queue = MicroBatchQueue(max_batch_size=4, max_delay_ms=1.0)
        queue.submit(make_request(0, arrival_ms=5.0))
        with pytest.raises(ValueError):
            queue.submit(make_request(1, arrival_ms=4.0))

    def test_empty_queue_guards(self):
        queue = MicroBatchQueue(max_batch_size=2, max_delay_ms=1.0)
        assert not queue.ready(now_ms=1e9)
        assert queue.deadline_ms() == float("inf")
        with pytest.raises(ValueError):
            queue.pop_batch()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MicroBatchQueue(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchQueue(max_delay_ms=-1.0)


class TestCoalesce:
    def test_coalesce_builds_jagged_batch(self):
        requests = [
            make_request(0, lengths=(2, 0, 1)),
            make_request(10, lengths=(0, 3, 1)),
        ]
        batch = coalesce_requests(requests)
        assert batch.batch_size == 2
        assert batch.num_features == 3
        # Feature 0: request 0 contributed 2 lookups, request 1 none.
        assert batch[0].lengths.tolist() == [2, 0]
        assert batch[1].lengths.tolist() == [0, 3]
        # Sample slicing recovers each request's original indices.
        np.testing.assert_array_equal(
            batch[0].sample(0), requests[0].features[0]
        )
        np.testing.assert_array_equal(
            batch[1].sample(1), requests[1].features[1]
        )

    def test_coalesce_total_lookups(self):
        requests = [make_request(i, lengths=(1, 2, 3)) for i in range(4)]
        batch = coalesce_requests(requests)
        assert batch.total_lookups == sum(r.total_lookups for r in requests)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            coalesce_requests([])

    def test_feature_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coalesce_requests(
                [make_request(0, lengths=(1, 1)), make_request(1, lengths=(1,))]
            )


def arena_of(arrivals):
    return RequestArena.from_requests(
        [make_request(i, arrival_ms=t) for i, t in enumerate(arrivals)]
    )


def released(arenas, cap, delay):
    return [
        (batch.arrival_ms.tolist(), trigger)
        for batch, trigger in iter_microbatch_arenas(arenas, cap, delay)
    ]


class TestDeadlineFlushEdges:
    """max-delay edge cases, pinned identically on both admission paths."""

    def test_zero_max_delay_queue_flushes_each_request(self):
        # With no delay budget the head's deadline is its own arrival:
        # the serve loop checks ready() before each submit, so every
        # request releases as a singleton batch.
        queue = MicroBatchQueue(max_batch_size=100, max_delay_ms=0.0)
        for i, t in enumerate([1.0, 1.0, 2.5]):
            queue.submit(make_request(i, arrival_ms=t))
            assert queue.ready(now_ms=t)
            assert [r.request_id for r in queue.pop_batch()] == [i]

    def test_zero_max_delay_arenas_flush_each_request(self):
        got = released([arena_of([1.0, 1.0, 2.5])], cap=100, delay=0.0)
        assert got == [([1.0], 1.0), ([1.0], 1.0), ([2.5], 2.5)]

    def test_arrival_exactly_at_flush_boundary_is_excluded(self):
        # deadline <= now flushes *before* the boundary arrival is
        # admitted: the request landing exactly at head+delay starts
        # the next batch on both paths.
        arrivals = [0.0, 0.5, 1.0, 1.0, 1.2]
        queue = MicroBatchQueue(max_batch_size=100, max_delay_ms=1.0)
        batches = []
        for i, t in enumerate(arrivals):
            if queue.ready(now_ms=t):
                batches.append([r.arrival_ms for r in queue.pop_batch()])
            queue.submit(make_request(i, arrival_ms=t))
        batches.append([r.arrival_ms for r in queue.pop_batch()])
        assert batches == [[0.0, 0.5], [1.0, 1.0, 1.2]]
        got = released([arena_of(arrivals)], cap=100, delay=1.0)
        assert got == [([0.0, 0.5], 1.0), ([1.0, 1.0, 1.2], 2.0)]

    def test_simultaneous_arrivals_release_with_head(self):
        # Arrivals tied with the head (strictly before head+delay) ride
        # in the head's batch; searchsorted side="left" keeps only the
        # boundary ones out.
        got = released([arena_of([0.0, 0.0, 0.0, 0.7])], cap=100, delay=1.0)
        assert got == [([0.0, 0.0, 0.0, 0.7], 1.0)]

    def test_single_request_arenas_match_one_big_arena(self):
        arrivals = [0.0, 0.2, 0.9, 1.05, 3.0, 3.05]
        singles = [arena_of([t]) for t in arrivals]
        merged = [arena_of(arrivals)]
        for cap in (1, 2, 100):
            assert released(singles, cap, 1.0) == released(merged, cap, 1.0)

    def test_cap_one_releases_singletons_at_own_arrival(self):
        got = released([arena_of([0.0, 0.4, 0.8])], cap=1, delay=5.0)
        assert got == [([0.0], 0.0), ([0.4], 0.4), ([0.8], 0.8)]

    def test_tail_waits_out_delay_budget(self):
        got = released([arena_of([0.0, 0.1])], cap=100, delay=2.0)
        assert got == [([0.0, 0.1], 2.0)]

    def test_empty_arenas_are_skipped(self):
        arenas = [arena_of([0.0]), arena_of([0.5]).slice(0, 0)]
        assert released(arenas, cap=100, delay=1.0) == [([0.0], 1.0)]
