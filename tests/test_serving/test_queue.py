"""Tests for the microbatching admission queue."""

import numpy as np
import pytest

from repro.serving import LookupRequest, MicroBatchQueue, coalesce_requests


def make_request(request_id, arrival_ms=0.0, lengths=(2, 0, 3)):
    features = tuple(
        np.arange(request_id, request_id + n, dtype=np.int64) for n in lengths
    )
    return LookupRequest(
        request_id=request_id, features=features, arrival_ms=arrival_ms
    )


class TestMicroBatchQueue:
    def test_releases_at_size_threshold(self):
        queue = MicroBatchQueue(max_batch_size=3, max_delay_ms=100.0)
        for i in range(2):
            queue.submit(make_request(i, arrival_ms=float(i)))
            assert not queue.ready(now_ms=float(i))
        queue.submit(make_request(2, arrival_ms=2.0))
        assert queue.ready(now_ms=2.0)
        batch = queue.pop_batch()
        assert [r.request_id for r in batch] == [0, 1, 2]
        assert len(queue) == 0

    def test_releases_at_deadline(self):
        queue = MicroBatchQueue(max_batch_size=100, max_delay_ms=5.0)
        queue.submit(make_request(0, arrival_ms=10.0))
        assert queue.deadline_ms() == pytest.approx(15.0)
        assert not queue.ready(now_ms=14.9)
        assert queue.ready(now_ms=15.0)

    def test_pop_caps_at_max_batch_size(self):
        queue = MicroBatchQueue(max_batch_size=2, max_delay_ms=1.0)
        for i in range(5):
            queue.submit(make_request(i, arrival_ms=0.0))
        first = queue.pop_batch()
        assert [r.request_id for r in first] == [0, 1]
        assert len(queue) == 3

    def test_fifo_order_preserved(self):
        queue = MicroBatchQueue(max_batch_size=4, max_delay_ms=1.0)
        for i in range(4):
            queue.submit(make_request(i, arrival_ms=float(i) / 10))
        batch = queue.pop_batch()
        assert [r.request_id for r in batch] == [0, 1, 2, 3]

    def test_out_of_order_arrivals_rejected(self):
        queue = MicroBatchQueue(max_batch_size=4, max_delay_ms=1.0)
        queue.submit(make_request(0, arrival_ms=5.0))
        with pytest.raises(ValueError):
            queue.submit(make_request(1, arrival_ms=4.0))

    def test_empty_queue_guards(self):
        queue = MicroBatchQueue(max_batch_size=2, max_delay_ms=1.0)
        assert not queue.ready(now_ms=1e9)
        assert queue.deadline_ms() == float("inf")
        with pytest.raises(ValueError):
            queue.pop_batch()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MicroBatchQueue(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchQueue(max_delay_ms=-1.0)


class TestCoalesce:
    def test_coalesce_builds_jagged_batch(self):
        requests = [
            make_request(0, lengths=(2, 0, 1)),
            make_request(10, lengths=(0, 3, 1)),
        ]
        batch = coalesce_requests(requests)
        assert batch.batch_size == 2
        assert batch.num_features == 3
        # Feature 0: request 0 contributed 2 lookups, request 1 none.
        assert batch[0].lengths.tolist() == [2, 0]
        assert batch[1].lengths.tolist() == [0, 3]
        # Sample slicing recovers each request's original indices.
        np.testing.assert_array_equal(
            batch[0].sample(0), requests[0].features[0]
        )
        np.testing.assert_array_equal(
            batch[1].sample(1), requests[1].features[1]
        )

    def test_coalesce_total_lookups(self):
        requests = [make_request(i, lengths=(1, 2, 3)) for i in range(4)]
        batch = coalesce_requests(requests)
        assert batch.total_lookups == sum(r.total_lookups for r in requests)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            coalesce_requests([])

    def test_feature_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coalesce_requests(
                [make_request(0, lengths=(1, 1)), make_request(1, lengths=(1,))]
            )
