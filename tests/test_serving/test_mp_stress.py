"""Overload, soak, and failure behavior of the multi-process runtime.

Three properties a serving front-end must not lose under stress:

* **bounded overload** — offered load beyond the pool's capacity sheds
  at the bounded task queue instead of queueing without bound, with
  exact accounting (``offered == served + shed``);
* **clean shutdown** — after a soak the pool tears down promptly and
  leaves no worker processes or shared-memory segments behind;
* **fail loud** — with the respawn budget disabled
  (``max_respawns=0``) a dead worker surfaces as
  :class:`~repro.serving.mp.WorkerCrashError` instead of a hang (every
  wait in the front-end is timeout-guarded); the self-healing default
  path is exercised in ``test_mp_selfheal.py``.

The ~10 s bursty soak is marked ``slow`` (tier-1 excludes it; CI runs
it in the dedicated slow step); the crash and shutdown tests are fast
and run in tier-1.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import RecShardFastSharder
from repro.data.model import rm2
from repro.memory import paper_node, paper_scales
from repro.serving import (
    BurstyArrivals,
    MultiProcessServer,
    ServingConfig,
    WorkerCrashError,
    generate_request_arenas,
    synthetic_request_arenas,
)
from repro.serving.arena import SHM_NAME_PREFIX
from repro.stats import analytic_profile

FEATURES = 25
GPUS = 2
TOPO_SCALE, ROW_SCALE = paper_scales(FEATURES, GPUS)

CONFIG = ServingConfig(max_batch_size=64, max_delay_ms=1.0)


def small_world():
    model = rm2(num_features=FEATURES, row_scale=ROW_SCALE)
    profile = analytic_profile(model)
    topology = paper_node(num_gpus=GPUS, scale=TOPO_SCALE)
    plan = RecShardFastSharder(batch_size=256).shard(
        model, profile, topology
    )
    return model, profile, topology, plan


def live_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover
        return set()
    return {
        n for n in os.listdir("/dev/shm") if n.startswith(SHM_NAME_PREFIX)
    }


def test_worker_crash_surfaces_instead_of_hanging():
    """Kill the whole pool mid-stream with respawns disabled: the
    front-end must raise WorkerCrashError within its timeout, clean up
    every in-flight segment, and shut the pool down."""
    model, profile, topology, plan = small_world()
    arenas = list(
        synthetic_request_arenas(model, 512, qps=1e9, seed=3)
    )
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, result_timeout_s=10.0, max_respawns=0,
    )
    pool.start()
    pool.kill_worker(0)
    pool.kill_worker(1)
    started = time.perf_counter()
    with pytest.raises(WorkerCrashError, match="died"):
        pool.serve_arenas(arenas)
    # Guarded, not hung: the failure surfaced well inside the timeout
    # budget plus slack.
    assert time.perf_counter() - started < 30.0
    assert not pool.started
    assert live_segments() - before == set()


def test_worker_error_is_reported_with_context():
    """An err result for a batch still owed aborts the run with the
    worker's id and batch seq; stale errs (seq no longer owed, e.g.
    after a crash-triggered requeue duplicated the task) are dropped."""
    model, profile, topology, plan = small_world()
    arenas = list(synthetic_request_arenas(model, 256, qps=1e9, seed=5))
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=1, result_timeout_s=10.0,
    )
    pool.start()
    owner = arenas[0].to_shm()
    pending = {0: (owner, np.array(arenas[0].arrival_ms), 0.0)}
    pool._result_q.put(("err", 0, 0, "ValueError: boom"))
    with pytest.raises(RuntimeError, match="worker 0 failed on batch 0"):
        for _ in range(60):  # bounded wait for the err to feed through
            pool._drain(pending, {}, 0, block_s=0.5)
        pytest.fail("worker error never surfaced")
    # In the real loop _run's abort path retires pending segments; here
    # the test is the caller.
    owner.close()
    owner.unlink()
    # An err for a seq nobody owes is stale — ignored, not fatal.
    pool._result_q.put(("err", 99, 0, "ValueError: stale duplicate"))
    time.sleep(0.2)
    pool._drain({}, {}, 0, block_s=0.5)
    assert all(p.is_alive() for p in pool._procs)
    pool.close()
    assert live_segments() - before == set()


def test_vanished_segment_reports_gone_not_fatal():
    """A worker handed a handle whose segment was already unlinked
    reports ``gone`` and stays alive: the duplicate-tolerant protocol
    treats it as a stale requeue artifact, not an error."""
    model, profile, topology, plan = small_world()
    arenas = list(synthetic_request_arenas(model, 256, qps=1e9, seed=5))
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=1, result_timeout_s=10.0,
    )
    pool.start()
    owner = arenas[0].to_shm()
    handle = owner.handle
    owner.close()
    owner.unlink()
    pool._task_qs[0].put((0, handle))
    deadline = time.perf_counter() + 10.0
    gone = None
    while time.perf_counter() < deadline:
        try:
            gone = pool._result_q.get(timeout=0.5)
            break
        except Exception:
            continue
    assert gone is not None and gone[0] == "gone" and gone[1] == 0
    assert all(p.is_alive() for p in pool._procs)
    # And a normal stream still runs afterwards on the same pool.
    metrics = pool.serve_arenas(arenas)
    assert metrics.num_requests == 256
    pool.close()
    assert live_segments() - before == set()


def test_keyboard_interrupt_leaves_shm_clean():
    """Ctrl-C mid-stream (raised from the accounting hot path) must
    tear the pool down and unlink every in-flight segment."""
    model, profile, topology, plan = small_world()
    arenas = list(synthetic_request_arenas(model, 512, qps=1e9, seed=7))
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, result_timeout_s=10.0,
    )
    real_account = pool._account
    calls = {"n": 0}

    def interrupting(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] >= 3:
            raise KeyboardInterrupt
        return real_account(*args, **kwargs)

    pool._account = interrupting
    with pytest.raises(KeyboardInterrupt):
        pool.serve_arenas(arenas)
    assert calls["n"] >= 3
    assert not pool.started
    assert live_segments() - before == set()


def test_clean_shutdown_leaves_nothing_behind():
    """Idle start/stop and post-serve stop both leave no processes,
    no segments, and close() is idempotent."""
    model, profile, topology, plan = small_world()
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG, workers=2
    )
    pool.start()
    procs = list(pool._procs)
    arenas = list(synthetic_request_arenas(model, 256, qps=1e9, seed=9))
    metrics = pool.serve_arenas(arenas)
    assert metrics.num_requests == 256
    pool.close()
    pool.close()
    assert not pool.started
    for proc in procs:
        assert not proc.is_alive()
    assert live_segments() - before == set()


def test_paced_overload_sheds_exactly():
    """A burst far past pool capacity sheds at the bounded queue with
    exact accounting; a quick fast-mode version of the soak."""
    model, profile, topology, plan = small_world()
    arenas = list(synthetic_request_arenas(model, 1024, qps=1e9, seed=13))
    offered = sum(a.num_requests for a in arenas)
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=1, queue_depth=1,
    ) as pool:
        metrics = pool.serve_paced(arenas, speed=1e6)
    assert metrics.shed_requests > 0
    assert metrics.num_requests + metrics.shed_requests == offered
    assert "overload shedding" in metrics.format_report()
    assert metrics.summary()["shed_requests"] == metrics.shed_requests


@pytest.mark.slow
def test_bursty_soak_stays_bounded_and_sheds():
    """~10 s of bursty arrivals at ~2x the pool's sustainable rate:
    the queue stays bounded (by construction — shed beyond depth),
    some load is shed, served+shed accounting is exact, and shutdown
    is clean."""
    model, profile, topology, plan = small_world()

    # Calibrate the sustainable rate from a short closed-loop run, then
    # offer bursts at ~4x it (2x on average over the duty cycle).
    calib = list(synthetic_request_arenas(model, 2048, qps=1e9, seed=21))
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG, workers=2
    ) as pool:
        t0 = time.perf_counter()
        pool.serve_arenas(calib)
        sustainable_qps = 2048 / (time.perf_counter() - t0)

    process = BurstyArrivals(
        burst_qps=4.0 * sustainable_qps,
        idle_qps=0.05 * sustainable_qps,
        burst_ms=250.0,
        idle_ms=250.0,
    )
    soak_s = 10.0
    num_requests = int(process.mean_qps * soak_s)
    arenas = list(
        generate_request_arenas(
            model, num_requests, process, seed=23, chunk_size=256
        )
    )
    offered = sum(a.num_requests for a in arenas)
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, queue_depth=4, result_timeout_s=60.0,
    )
    procs = []
    with pool:
        procs = list(pool._procs)
        start = time.perf_counter()
        metrics = pool.serve_paced(arenas)
        elapsed = time.perf_counter() - start
    # Overloaded: shedding engaged, accounting exact, and the run took
    # roughly the offered stream's duration (bounded queueing — an
    # unbounded queue would stretch far past it draining backlog).
    assert metrics.shed_requests > 0
    assert metrics.num_requests + metrics.shed_requests == offered
    assert metrics.num_requests > 0
    assert elapsed < 4.0 * soak_s
    # Deterministic policy: reject-newest at batch granularity means
    # every recorded batch executed in full.
    assert sum(metrics.batch_sizes) == metrics.num_requests
    # Clean teardown after the soak.
    assert not pool.started
    for proc in procs:
        assert not proc.is_alive()
    assert live_segments() - before == set()
