"""Overload, soak, and failure behavior of the multi-process runtime.

Three properties a serving front-end must not lose under stress:

* **bounded overload** — offered load beyond the pool's capacity sheds
  at the bounded task queue instead of queueing without bound, with
  exact accounting (``offered == served + shed``);
* **clean shutdown** — after a soak the pool tears down promptly and
  leaves no worker processes or shared-memory segments behind;
* **fail loud** — a dead worker surfaces as
  :class:`~repro.serving.mp.WorkerCrashError` instead of a hang (every
  wait in the front-end is timeout-guarded).

The ~10 s bursty soak is marked ``slow`` (tier-1 excludes it; CI runs
it in the dedicated slow step); the crash and shutdown tests are fast
and run in tier-1.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import RecShardFastSharder
from repro.data.model import rm2
from repro.memory import paper_node, paper_scales
from repro.serving import (
    BurstyArrivals,
    MultiProcessServer,
    ServingConfig,
    WorkerCrashError,
    generate_request_arenas,
    synthetic_request_arenas,
)
from repro.serving.arena import SHM_NAME_PREFIX
from repro.stats import analytic_profile

FEATURES = 25
GPUS = 2
TOPO_SCALE, ROW_SCALE = paper_scales(FEATURES, GPUS)

CONFIG = ServingConfig(max_batch_size=64, max_delay_ms=1.0)


def small_world():
    model = rm2(num_features=FEATURES, row_scale=ROW_SCALE)
    profile = analytic_profile(model)
    topology = paper_node(num_gpus=GPUS, scale=TOPO_SCALE)
    plan = RecShardFastSharder(batch_size=256).shard(
        model, profile, topology
    )
    return model, profile, topology, plan


def live_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover
        return set()
    return {
        n for n in os.listdir("/dev/shm") if n.startswith(SHM_NAME_PREFIX)
    }


def test_worker_crash_surfaces_instead_of_hanging():
    """Kill the whole pool mid-stream: the front-end must raise
    WorkerCrashError within its timeout, clean up every in-flight
    segment, and shut the pool down."""
    model, profile, topology, plan = small_world()
    arenas = list(
        synthetic_request_arenas(model, 512, qps=1e9, seed=3)
    )
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, result_timeout_s=10.0,
    )
    pool.start()
    pool.kill_worker(0)
    pool.kill_worker(1)
    started = time.perf_counter()
    with pytest.raises(WorkerCrashError, match="died"):
        pool.serve_arenas(arenas)
    # Guarded, not hung: the failure surfaced well inside the timeout
    # budget plus slack.
    assert time.perf_counter() - started < 30.0
    assert not pool.started
    assert live_segments() - before == set()


def test_worker_error_is_reported_with_context():
    """A per-batch worker exception aborts the run with the worker's
    id and message, and still cleans up."""
    model, profile, topology, plan = small_world()
    arenas = list(synthetic_request_arenas(model, 256, qps=1e9, seed=5))
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=1, result_timeout_s=10.0,
    )
    pool.start()
    # Poison one task: its segment is unlinked before the worker can
    # attach, so the worker reports an err result instead of dying.
    owner = arenas[0].to_shm()
    handle = owner.handle
    owner.close()
    owner.unlink()
    pool._task_q.put((0, handle))
    with pytest.raises(RuntimeError, match="worker 0 failed on batch 0"):
        for _ in range(60):  # bounded wait for the err result
            pool._drain({}, {}, 0, block_s=0.5)
        pytest.fail("worker error never surfaced")
    # The worker survives a per-batch failure (errors are reported,
    # not fatal) and the pool still shuts down cleanly.
    assert all(p.is_alive() for p in pool._procs)
    pool.close()
    assert live_segments() - before == set()


def test_clean_shutdown_leaves_nothing_behind():
    """Idle start/stop and post-serve stop both leave no processes,
    no segments, and close() is idempotent."""
    model, profile, topology, plan = small_world()
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG, workers=2
    )
    pool.start()
    procs = list(pool._procs)
    arenas = list(synthetic_request_arenas(model, 256, qps=1e9, seed=9))
    metrics = pool.serve_arenas(arenas)
    assert metrics.num_requests == 256
    pool.close()
    pool.close()
    assert not pool.started
    for proc in procs:
        assert not proc.is_alive()
    assert live_segments() - before == set()


def test_paced_overload_sheds_exactly():
    """A burst far past pool capacity sheds at the bounded queue with
    exact accounting; a quick fast-mode version of the soak."""
    model, profile, topology, plan = small_world()
    arenas = list(synthetic_request_arenas(model, 1024, qps=1e9, seed=13))
    offered = sum(a.num_requests for a in arenas)
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=1, queue_depth=1,
    ) as pool:
        metrics = pool.serve_paced(arenas, speed=1e6)
    assert metrics.shed_requests > 0
    assert metrics.num_requests + metrics.shed_requests == offered
    assert "overload shedding" in metrics.format_report()
    assert metrics.summary()["shed_requests"] == metrics.shed_requests


@pytest.mark.slow
def test_bursty_soak_stays_bounded_and_sheds():
    """~10 s of bursty arrivals at ~2x the pool's sustainable rate:
    the queue stays bounded (by construction — shed beyond depth),
    some load is shed, served+shed accounting is exact, and shutdown
    is clean."""
    model, profile, topology, plan = small_world()

    # Calibrate the sustainable rate from a short closed-loop run, then
    # offer bursts at ~4x it (2x on average over the duty cycle).
    calib = list(synthetic_request_arenas(model, 2048, qps=1e9, seed=21))
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG, workers=2
    ) as pool:
        t0 = time.perf_counter()
        pool.serve_arenas(calib)
        sustainable_qps = 2048 / (time.perf_counter() - t0)

    process = BurstyArrivals(
        burst_qps=4.0 * sustainable_qps,
        idle_qps=0.05 * sustainable_qps,
        burst_ms=250.0,
        idle_ms=250.0,
    )
    soak_s = 10.0
    num_requests = int(process.mean_qps * soak_s)
    arenas = list(
        generate_request_arenas(
            model, num_requests, process, seed=23, chunk_size=256
        )
    )
    offered = sum(a.num_requests for a in arenas)
    before = live_segments()
    pool = MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, queue_depth=4, result_timeout_s=60.0,
    )
    procs = []
    with pool:
        procs = list(pool._procs)
        start = time.perf_counter()
        metrics = pool.serve_paced(arenas)
        elapsed = time.perf_counter() - start
    # Overloaded: shedding engaged, accounting exact, and the run took
    # roughly the offered stream's duration (bounded queueing — an
    # unbounded queue would stretch far past it draining backlog).
    assert metrics.shed_requests > 0
    assert metrics.num_requests + metrics.shed_requests == offered
    assert metrics.num_requests > 0
    assert elapsed < 4.0 * soak_s
    # Deterministic policy: reject-newest at batch granularity means
    # every recorded batch executed in full.
    assert sum(metrics.batch_sizes) == metrics.num_requests
    # Clean teardown after the soak.
    assert not pool.started
    for proc in procs:
        assert not proc.is_alive()
    assert live_segments() - before == set()
