"""Parity tests: columnar serving fast path vs the object reference path.

The fast path (arena-backed streams, vectorized admission in
``LookupServer.serve_arenas``) must be a pure representation change:
for a fixed seed it has to produce *bit-identical*
:class:`~repro.serving.metrics.ServingMetrics` to the per-request
object path — same QPS, same latency percentiles, same per-request
latencies, same simulated replan times — including when drift triggers
mid-stream re-sharding.
"""

import numpy as np
import pytest

from repro.core import RecShardFastSharder
from repro.data.drift import DriftModel
from repro.memory.topology import SystemTopology
from repro.serving import (
    LookupServer,
    RequestArena,
    ServingConfig,
    ServingMetrics,
    synthetic_request_arenas,
    synthetic_request_stream,
)
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

BATCH = 64


@pytest.fixture
def world():
    model = build_model(num_tables=5, seed=41)
    profile = analytic_profile(model)
    total = model.total_bytes
    topology = SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=int(total * 0.4 / 2),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    return model, profile, topology


def make_server(world, plan=None, **config_kwargs):
    model, profile, topology = world
    kwargs = dict(max_batch_size=16, max_delay_ms=1.0)
    kwargs.update(config_kwargs)
    if plan is not None:
        return LookupServer(
            model, profile, topology, plan=plan, config=ServingConfig(**kwargs)
        )
    return LookupServer(
        model, profile, topology,
        sharder=RecShardFastSharder(batch_size=BATCH),
        config=ServingConfig(**kwargs),
    )


def assert_bit_identical(ref: ServingMetrics, fast: ServingMetrics):
    """Every deterministic field of the two metrics matches exactly."""
    assert ref.summary(deterministic_only=True) == fast.summary(
        deterministic_only=True
    )
    assert ref.batch_sizes == fast.batch_sizes
    assert ref.batch_lookups == fast.batch_lookups
    assert ref.replan_ms == fast.replan_ms
    np.testing.assert_array_equal(ref.arrival_ms, fast.arrival_ms)
    np.testing.assert_array_equal(ref.start_ms, fast.start_ms)
    np.testing.assert_array_equal(ref.finish_ms, fast.finish_ms)
    np.testing.assert_array_equal(ref.latencies_ms(), fast.latencies_ms())
    np.testing.assert_array_equal(ref.device_busy_ms, fast.device_busy_ms)


class TestStreamParity:
    """Arena chunks and the object stream carry identical content."""

    def test_arenas_match_object_stream(self, world):
        model, _, _ = world
        kwargs = dict(num_requests=300, qps=20000, seed=9)
        objects = list(synthetic_request_stream(model, **kwargs))
        from_arenas = [
            r
            for arena in synthetic_request_arenas(model, **kwargs)
            for r in arena
        ]
        assert len(objects) == len(from_arenas) == 300
        for a, b in zip(objects, from_arenas):
            assert a.request_id == b.request_id
            assert a.arrival_ms == b.arrival_ms
            for fa, fb in zip(a.features, b.features):
                np.testing.assert_array_equal(fa, fb)

    def test_drifted_arenas_match_object_stream(self, world):
        model, _, _ = world
        kwargs = dict(
            num_requests=400, qps=30000, seed=3,
            drift=DriftModel(feature_noise=6.0, alpha_noise=4.0),
            months_per_request=0.05, chunk_size=128,
        )
        objects = list(synthetic_request_stream(model, **kwargs))
        arenas = list(synthetic_request_arenas(model, **kwargs))
        assert sum(a.num_requests for a in arenas) == 400
        i = 0
        for arena in arenas:
            assert arena.base_id == i
            for r in arena:
                assert r.arrival_ms == objects[i].arrival_ms
                for fa, fb in zip(r.features, objects[i].features):
                    np.testing.assert_array_equal(fa, fb)
                i += 1

    def test_request_views_are_zero_copy(self, world):
        model, _, _ = world
        arena = next(iter(synthetic_request_arenas(model, 50, qps=1000, seed=1)))
        request = arena.request(3)
        for j, values in enumerate(request.features):
            if values.size:
                assert values.base is arena.batch[j].values


class TestServeParity:
    def test_fixed_plan_parity(self, world):
        model, profile, topology = world
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            model, profile, topology
        )
        kwargs = dict(num_requests=500, qps=40000, seed=11)
        ref = make_server(world, plan=plan).serve(
            synthetic_request_stream(model, **kwargs)
        )
        fast = make_server(world, plan=plan).serve_arenas(
            synthetic_request_arenas(model, **kwargs)
        )
        assert ref.num_requests == 500
        assert_bit_identical(ref, fast)

    def test_drift_replan_parity(self, world):
        model, _, _ = world
        config = dict(
            max_batch_size=32,
            drift_threshold_pct=2.0,
            drift_min_samples=128,
            drift_check_every_batches=2,
        )
        kwargs = dict(
            num_requests=600, qps=50000, seed=6,
            drift=DriftModel(feature_noise=6.0),
            months_per_request=0.05,
        )
        ref_replans, fast_replans = [], []
        ref = make_server(world, **config).serve(
            synthetic_request_stream(model, **kwargs),
            on_replan=ref_replans.append,
        )
        fast = make_server(world, **config).serve_arenas(
            synthetic_request_arenas(model, **kwargs),
            on_replan=fast_replans.append,
        )
        assert ref.num_replans >= 1
        assert ref_replans == fast_replans == fast.replan_ms
        assert_bit_identical(ref, fast)
        # Build cost is wall-clock: recorded per replan, excluded from
        # the deterministic summary, surfaced in the full one.
        assert len(fast.replan_build_ms) == fast.num_replans
        assert all(b > 0 for b in fast.replan_build_ms)
        assert "replan_build_total_ms" in fast.summary()
        assert "replan_build_total_ms" not in fast.summary(deterministic_only=True)

    def test_parity_across_chunk_boundaries(self, world):
        """Microbatches straddling arena chunks release identically."""
        model, profile, topology = world
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            model, profile, topology
        )
        kwargs = dict(num_requests=211, qps=60000, seed=17)
        ref = make_server(world, plan=plan, max_batch_size=13).serve(
            synthetic_request_stream(model, **kwargs, chunk_size=7)
        )
        fast = make_server(world, plan=plan, max_batch_size=13).serve_arenas(
            synthetic_request_arenas(model, **kwargs, chunk_size=7)
        )
        assert ref.num_requests == 211
        assert_bit_identical(ref, fast)

    def test_parity_zero_delay(self, world):
        """max_delay_ms=0 releases every request alone, on both paths."""
        model, profile, topology = world
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            model, profile, topology
        )
        kwargs = dict(num_requests=40, qps=5000, seed=2)
        ref = make_server(world, plan=plan, max_delay_ms=0.0).serve(
            synthetic_request_stream(model, **kwargs)
        )
        fast = make_server(world, plan=plan, max_delay_ms=0.0).serve_arenas(
            synthetic_request_arenas(model, **kwargs)
        )
        assert ref.num_batches == 40
        assert_bit_identical(ref, fast)

    def test_empty_stream(self, world):
        model, profile, topology = world
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            model, profile, topology
        )
        fast = make_server(world, plan=plan).serve_arenas(
            synthetic_request_arenas(model, num_requests=0, qps=1000, seed=0)
        )
        assert fast.num_requests == 0
        assert fast.qps == 0.0


class TestRequestArena:
    def test_batch_view_slices_are_views(self, world):
        model, _, _ = world
        arena = next(iter(synthetic_request_arenas(model, 64, qps=1000, seed=5)))
        view = arena.batch_view(8, 24)
        assert view.batch_size == 16
        for j, feature in enumerate(view):
            assert feature.offsets[0] == 0
            if feature.values.size:
                assert feature.values.base is arena.batch[j].values
            np.testing.assert_array_equal(
                feature.sample(0), arena.batch[j].sample(8)
            )

    def test_concat_roundtrip(self, world):
        model, _, _ = world
        arena = next(iter(synthetic_request_arenas(model, 60, qps=1000, seed=8)))
        rejoined = RequestArena.concat(
            [arena.slice(0, 25), arena.slice(25, 60)]
        )
        assert rejoined.num_requests == 60
        assert rejoined.base_id == arena.base_id
        np.testing.assert_array_equal(rejoined.arrival_ms, arena.arrival_ms)
        for j in range(arena.num_features):
            np.testing.assert_array_equal(
                rejoined.batch[j].values, arena.batch[j].values
            )
            np.testing.assert_array_equal(
                rejoined.batch[j].offsets, arena.batch[j].offsets
            )

    def test_from_requests_roundtrip(self, world):
        model, _, _ = world
        requests = list(synthetic_request_stream(model, 20, qps=1000, seed=4))
        arena = RequestArena.from_requests(requests)
        assert arena.num_requests == 20
        for i, r in enumerate(arena):
            assert r.request_id == requests[i].request_id
            assert r.arrival_ms == requests[i].arrival_ms
            for fa, fb in zip(r.features, requests[i].features):
                np.testing.assert_array_equal(fa, fb)

    def test_rejects_decreasing_arrivals(self, world):
        model, _, _ = world
        arena = next(iter(synthetic_request_arenas(model, 4, qps=1000, seed=0)))
        with pytest.raises(ValueError):
            RequestArena(arena.batch, arena.arrival_ms[::-1].copy())

    def test_rejects_length_mismatch(self, world):
        model, _, _ = world
        arena = next(iter(synthetic_request_arenas(model, 4, qps=1000, seed=0)))
        with pytest.raises(ValueError):
            RequestArena(arena.batch, arena.arrival_ms[:-1])


class TestWarmStartReplan:
    def test_warm_start_matches_cold_on_same_profile(self, world):
        model, profile, topology = world
        sharder = RecShardFastSharder(batch_size=BATCH)
        cold = sharder.shard(model, profile, topology)
        warm = sharder.shard(model, profile, topology, warm_start=cold)
        warm.validate(model, topology)
        assert warm.metadata.get("warm_started") is True
        disparity = cold.placement_disparity(warm)
        assert disparity["uvm_to_hbm"] == 0.0
        assert disparity["hbm_to_uvm"] == 0.0
        assert [p.device for p in warm] == [p.device for p in cold]

    def test_warm_start_from_drifted_profile_is_valid(self, world):
        model, profile, topology = world
        sharder = RecShardFastSharder(batch_size=BATCH)
        cold = sharder.shard(model, profile, topology)
        drifted = analytic_profile(
            DriftModel(user_plateau=40.0, content_plateau=40.0).drift_model(
                model, month=20
            )
        )
        warm = sharder.shard(model, drifted, topology, warm_start=cold)
        warm.validate(model, topology)
