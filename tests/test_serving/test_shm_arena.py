"""Shared-memory arena round trip: zero-copy views, no leaks.

The mp runtime's handoff contract: a
:class:`~repro.serving.arena.RequestArena` packed with
:meth:`~repro.serving.arena.RequestArena.to_shm` and rebuilt with
:meth:`~repro.serving.arena.RequestArena.from_shm` must come back with
the same dtypes, shapes, and values; the rebuilt arrays must be *views*
of the shared segment (one physical copy, writes visible across
attachments); and the suite must leave no orphaned ``/dev/shm``
segments behind — the owner-unlinks/worker-closes protocol the
front-end relies on.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.serving import LookupRequest, RequestArena, ShmArena
from repro.serving.arena import SHM_NAME_PREFIX

SHM_DIR = "/dev/shm"


def shm_segments() -> set[str]:
    """Names of this module's live shared-memory segments."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-POSIX fallback
        return set()
    return {
        name
        for name in os.listdir(SHM_DIR)
        if name.startswith(SHM_NAME_PREFIX)
    }


@pytest.fixture(autouse=True)
def no_orphaned_segments():
    """Every test must unlink what it creates (the leak check)."""
    before = shm_segments()
    yield
    leaked = shm_segments() - before
    assert not leaked, f"orphaned shared-memory segments: {sorted(leaked)}"


def random_arena(rng: np.random.Generator) -> RequestArena:
    """A randomized arena: jagged features, NULL samples, empty edge."""
    num_requests = int(rng.integers(0, 40))
    num_features = int(rng.integers(1, 6))
    arrivals = np.cumsum(rng.uniform(0.0, 2.0, size=num_requests))
    requests = [
        LookupRequest(
            request_id=i,
            features=tuple(
                rng.integers(0, 10_000, size=int(rng.integers(0, 7)))
                for _ in range(num_features)
            ),
            arrival_ms=float(arrivals[i]),
        )
        for i in range(num_requests)
    ]
    if not requests:
        base = RequestArena.from_requests(
            [
                LookupRequest(
                    request_id=0,
                    features=tuple(
                        np.empty(0, dtype=np.int64)
                        for _ in range(num_features)
                    ),
                )
            ]
        )
        return base.slice(0, 0)
    return RequestArena.from_requests(requests)


def assert_same_content(ref: RequestArena, got: RequestArena):
    assert got.num_requests == ref.num_requests
    assert got.base_id == ref.base_id
    assert got.arrival_ms.dtype == np.float64
    np.testing.assert_array_equal(got.arrival_ms, ref.arrival_ms)
    assert got.batch.num_features == ref.batch.num_features
    for f_ref, f_got in zip(ref.batch, got.batch):
        assert f_got.values.dtype == np.int64
        assert f_got.offsets.dtype == np.int64
        assert f_got.values.shape == f_ref.values.shape
        assert f_got.offsets.shape == f_ref.offsets.shape
        np.testing.assert_array_equal(f_got.values, f_ref.values)
        np.testing.assert_array_equal(f_got.offsets, f_ref.offsets)


def test_round_trip_property():
    """Randomized chunks survive to_shm/from_shm bit-for-bit."""
    rng = np.random.default_rng(1234)
    for _ in range(25):
        arena = random_arena(rng)
        owner = arena.to_shm()
        try:
            attached = RequestArena.from_shm(pickle.loads(
                pickle.dumps(owner.handle)
            ))
            try:
                assert_same_content(arena, attached.arena)
            finally:
                attached.close()
        finally:
            owner.close()
            owner.unlink()


def test_views_are_zero_copy():
    """Rebuilt arrays alias the segment: one buffer, shared writes."""
    rng = np.random.default_rng(7)
    arena = random_arena(rng)
    while arena.num_requests < 2:
        arena = random_arena(rng)
    owner = arena.to_shm()
    try:
        attached = RequestArena.from_shm(owner.handle)
        try:
            mine = owner.arena
            theirs = attached.arena
            # No buffer duplication: every rebuilt array is a view.
            def assert_all_views(side):
                assert not side.arrival_ms.flags.owndata
                for feature in side.batch:
                    assert not feature.values.flags.owndata
                    assert not feature.offsets.flags.owndata

            assert_all_views(mine)
            assert_all_views(theirs)
            # Shared physical pages: a write through one attachment's
            # view is visible through the other.
            mine.arrival_ms[0] = 123456.0
            assert theirs.arrival_ms[0] == 123456.0
            if mine.batch[0].values.size:
                mine.batch[0].values[0] = 987
                assert theirs.batch[0].values[0] == 987
            # Protocol: drop views before closing the mapping.
            del mine, theirs
        finally:
            attached.close()
    finally:
        owner.close()
        owner.unlink()


def test_arena_property_is_cached_and_batch_views_slice():
    """The rebuilt arena is built once per attachment, and its
    microbatch slices stay zero-copy like any other arena's."""
    rng = np.random.default_rng(11)
    arena = random_arena(rng)
    while arena.num_requests < 4:
        arena = random_arena(rng)
    owner = arena.to_shm()
    try:
        rebuilt = owner.arena
        assert owner.arena is rebuilt
        part = rebuilt.slice(1, 3)
        assert part.num_requests == 2
        np.testing.assert_array_equal(
            part.arrival_ms, arena.arrival_ms[1:3]
        )
        assert not part.arrival_ms.flags.owndata
        del rebuilt, part  # drop views before closing the mapping
    finally:
        owner.close()
        owner.unlink()


@pytest.mark.filterwarnings(
    # Deliberately keeps views across close(): the deferred unmap
    # fires (harmlessly) at GC and pytest would flag the ignored
    # BufferError.
    "ignore::pytest.PytestUnraisableExceptionWarning"
)
def test_unlink_is_idempotent_and_close_tolerates_live_views():
    rng = np.random.default_rng(3)
    arena = random_arena(rng)
    owner = arena.to_shm()
    views = owner.arena  # keep views alive across close()
    owner.close()  # deferred unmap, not an exception
    assert views.num_requests == arena.num_requests
    owner.unlink()
    owner.unlink()  # second unlink is a no-op


def test_handle_layout_accounts_all_bytes():
    rng = np.random.default_rng(5)
    arena = random_arena(rng)
    owner = arena.to_shm()
    try:
        handle = owner.handle
        n = handle.num_requests
        expected = 8 * (
            n
            + handle.num_features * (n + 1)
            + sum(handle.feature_lookups)
        )
        assert handle.total_bytes == expected
        assert handle.feature_lookups == tuple(
            f.values.size for f in arena.batch
        )
        assert handle.name.startswith(SHM_NAME_PREFIX)
    finally:
        owner.close()
        owner.unlink()
