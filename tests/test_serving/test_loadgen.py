"""Arrival processes: Poisson equivalence, bursty shape, determinism.

:class:`~repro.serving.loadgen.PoissonArrivals` must reproduce the
inline generator's stream bit-for-bit (so the mp runtime and the
single-process simulator can share seeded streams), and
:class:`~repro.serving.loadgen.BurstyArrivals` must produce an on/off
profile that is deterministic per seed, time-ordered, and actually
bursty.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.model import rm2
from repro.memory import paper_scales
from repro.serving import (
    BurstyArrivals,
    PoissonArrivals,
    generate_request_arenas,
    synthetic_request_arenas,
)

_, ROW_SCALE = paper_scales(13, 2)


def model():
    return rm2(num_features=13, row_scale=ROW_SCALE)


def collect(arenas):
    arenas = list(arenas)
    arrival = np.concatenate([a.arrival_ms for a in arenas])
    values = [
        np.concatenate([a.batch[j].values for a in arenas])
        for j in range(arenas[0].batch.num_features)
    ]
    return arenas, arrival, values


def test_poisson_matches_inline_generator_bit_for_bit():
    """generate_request_arenas(PoissonArrivals(q)) ==
    synthetic_request_arenas(qps=q): same timestamps, same content,
    same chunking — on every chunk."""
    m = model()
    ref = list(
        synthetic_request_arenas(m, 2000, qps=7500.0, seed=42, chunk_size=256)
    )
    got = list(
        generate_request_arenas(
            m, 2000, PoissonArrivals(7500.0), seed=42, chunk_size=256
        )
    )
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert a.base_id == b.base_id
        np.testing.assert_array_equal(a.arrival_ms, b.arrival_ms)
        for fa, fb in zip(a.batch, b.batch):
            np.testing.assert_array_equal(fa.values, fb.values)
            np.testing.assert_array_equal(fa.offsets, fb.offsets)


def test_streams_are_deterministic_per_seed():
    m = model()
    process = BurstyArrivals(
        burst_qps=20000.0, idle_qps=200.0, burst_ms=40.0, idle_ms=60.0
    )
    _, first, first_vals = collect(
        generate_request_arenas(m, 1500, process, seed=5)
    )
    _, again, again_vals = collect(
        generate_request_arenas(m, 1500, process, seed=5)
    )
    _, other, _ = collect(generate_request_arenas(m, 1500, process, seed=6))
    np.testing.assert_array_equal(first, again)
    for a, b in zip(first_vals, again_vals):
        np.testing.assert_array_equal(a, b)
    assert not np.array_equal(first, other)


def test_bursty_arrivals_are_ordered_and_concentrated():
    """Arrivals are non-decreasing and overwhelmingly inside burst
    windows (phase from absolute time), at roughly the burst rate."""
    process = BurstyArrivals(
        burst_qps=50000.0, idle_qps=100.0, burst_ms=25.0, idle_ms=75.0
    )
    arrivals = process.arrivals(np.random.default_rng(0), 0.0, 20000)
    assert np.all(np.diff(arrivals) >= 0)
    phase = arrivals % process.period_ms
    in_burst = float((phase < process.burst_ms).mean())
    # Expected share: burst traffic dominates the duty cycle.
    expected = (
        process.burst_qps
        * process.burst_ms
        / (
            process.burst_qps * process.burst_ms
            + process.idle_qps * process.idle_ms
        )
    )
    assert in_burst == pytest.approx(expected, abs=0.05)
    # Mean rate over whole cycles approaches the analytic mean.
    horizon_s = (arrivals[-1] - arrivals[0]) / 1e3
    assert 20000 / horizon_s == pytest.approx(
        process.mean_qps, rel=0.15
    )


def test_mean_qps_blends_duty_cycle():
    process = BurstyArrivals(
        burst_qps=1000.0, idle_qps=100.0, burst_ms=30.0, idle_ms=70.0
    )
    assert process.mean_qps == pytest.approx(0.3 * 1000.0 + 0.7 * 100.0)
    assert PoissonArrivals(1234.0).mean_qps == 1234.0


def test_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)
    with pytest.raises(ValueError):
        BurstyArrivals(burst_qps=0.0)
    with pytest.raises(ValueError):
        BurstyArrivals(burst_qps=10.0, idle_qps=-1.0)
    with pytest.raises(ValueError):
        BurstyArrivals(burst_qps=10.0, burst_ms=0.0)
    m = model()
    with pytest.raises(ValueError):
        list(generate_request_arenas(m, -1, PoissonArrivals(10.0)))
    with pytest.raises(ValueError):
        list(
            generate_request_arenas(
                m, 10, PoissonArrivals(10.0), chunk_size=0
            )
        )


def test_zero_idle_rate_gives_silent_gaps():
    """idle_qps=0 produces true silence between bursts."""
    process = BurstyArrivals(
        burst_qps=10000.0, idle_qps=0.0, burst_ms=10.0, idle_ms=90.0
    )
    arrivals = process.arrivals(np.random.default_rng(2), 0.0, 2000)
    phase = arrivals % process.period_ms
    assert np.all(phase < process.burst_ms)
