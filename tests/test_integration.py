"""Integration tests: the full RecShard pipeline end to end (Figure 10).

These run the three phases together — trace profiling, MILP partitioning
and placement, remapping — and execute the result, asserting the paper's
qualitative claims at small scale.
"""

import pytest

from repro import (
    RecShardFastSharder,
    RecShardSharder,
    ShardedExecutor,
    TraceGenerator,
    compare_strategies,
    make_baseline,
    profile_trace,
    speedup_table,
)
from repro.core.evaluate import expected_device_costs_ms
from repro.core.remap import RemappingLayer
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

BATCH = 256


@pytest.fixture(scope="module")
def world():
    model = build_model(num_tables=10, rows=800, seed=42)
    total = model.total_bytes
    topology = SystemTopology.two_tier(
        num_devices=4,
        hbm_capacity=int(total * 0.5 / 4),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    return model, topology


class TestFullPipeline:
    @pytest.mark.slow
    def test_profile_shard_remap_execute(self, world):
        model, topology = world
        # Phase 1: profile a sampled trace (Section 4.1).
        gen = TraceGenerator(model, batch_size=2048, seed=1)
        profile = profile_trace(model, gen, num_batches=3, sample_rate=0.5, seed=2)
        # Phase 2: MILP partitioning and placement (Section 4.2).
        sharder = RecShardSharder(batch_size=BATCH, steps=15, time_limit=60)
        plan = sharder.shard(model, profile, topology)
        plan.validate(model, topology)
        # Phase 3: remapping (Section 4.3) happens inside the executor.
        layer = RemappingLayer.from_plan(plan, profile)
        assert layer.storage_bytes == 4 * model.total_hash_size
        # Execute out-of-sample and confirm UVM accesses are rare.
        executor = ShardedExecutor(model, plan, profile, topology)
        eval_gen = TraceGenerator(model, batch_size=BATCH, seed=99)
        metrics = executor.run(eval_gen.batches(4))
        assert metrics.tier_access_fraction("uvm") < 0.15

    def test_recshard_beats_baselines_under_pressure(self, world):
        model, topology = world
        profile = analytic_profile(model)
        results = compare_strategies(
            model,
            [
                make_baseline("Size-Based"),
                make_baseline("Lookup-Based"),
                make_baseline("Size-Based-Lookup"),
                RecShardFastSharder(batch_size=BATCH, name="RecShard"),
            ],
            topology,
            batch_size=BATCH,
            iterations=3,
            profile=profile,
        )
        speedups = speedup_table(results)
        best_baseline = max(
            v for k, v in speedups.items() if k != "RecShard"
        )
        assert speedups["RecShard"] >= best_baseline
        # RecShard is better load-balanced (Table 3's std column).
        rs_std = results["RecShard"].metrics.iteration_stats().std
        sb_std = results["Size-Based"].metrics.iteration_stats().std
        assert rs_std <= sb_std + 1e-9

    def test_uvm_access_reduction_claim(self, world):
        # Abstract of the paper: "reduced access to the slower memory".
        model, topology = world
        profile = analytic_profile(model)
        results = compare_strategies(
            model,
            [
                make_baseline("Size-Based"),
                RecShardFastSharder(batch_size=BATCH, name="RecShard"),
            ],
            topology,
            batch_size=BATCH,
            iterations=3,
            profile=profile,
        )
        sb_uvm = results["Size-Based"].metrics.tier_access_fraction("uvm")
        rs_uvm = results["RecShard"].metrics.tier_access_fraction("uvm")
        assert rs_uvm < sb_uvm

    def test_expected_vs_measured_costs(self, world):
        # The MILP's cost model (Constraints 11-12) predicts the
        # simulator's measurements.
        model, topology = world
        profile = analytic_profile(model)
        plan = RecShardFastSharder(batch_size=BATCH).shard(model, profile, topology)
        executor = ShardedExecutor(model, plan, profile, topology)
        gen = TraceGenerator(model, batch_size=BATCH, seed=5)
        metrics = executor.run(gen.batches(10))
        expected = expected_device_costs_ms(
            plan, model, profile, topology, BATCH
        )
        measured = metrics.per_device_avg_times()
        ratio = measured.sum() / expected.sum()
        assert ratio == pytest.approx(1.0, abs=0.25)

    def test_profiled_and_analytic_plans_agree(self, world):
        # Sampled statistics are good enough to shard with (Section 4.1).
        model, topology = world
        analytic = analytic_profile(model)
        gen = TraceGenerator(model, batch_size=4096, seed=7)
        sampled = profile_trace(model, gen, num_batches=2, sample_rate=0.25, seed=8)
        plan_a = RecShardFastSharder(batch_size=BATCH).shard(model, analytic, topology)
        plan_s = RecShardFastSharder(batch_size=BATCH).shard(model, sampled, topology)
        # Same trace, both plans measured: times within 25%.
        eval_batches = list(
            TraceGenerator(model, batch_size=BATCH, seed=11).batches(3)
        )
        time_a = (
            ShardedExecutor(model, plan_a, analytic, topology)
            .run(eval_batches)
            .bound_time_ms()
        )
        time_s = (
            ShardedExecutor(model, plan_s, sampled, topology)
            .run(eval_batches)
            .bound_time_ms()
        )
        assert time_s == pytest.approx(time_a, rel=0.25)


class TestScalingBehaviour:
    def test_recshard_insensitive_to_hash_scaling(self, world):
        """Section 6.3: doubling hash sizes barely slows RecShard."""
        model, topology = world
        doubled = model.scaled_hash_sizes(2.0, "2x")
        times = {}
        for spec in (model, doubled):
            profile = analytic_profile(spec)
            plan = RecShardFastSharder(batch_size=BATCH).shard(
                spec, profile, topology
            )
            executor = ShardedExecutor(spec, plan, profile, topology)
            gen = TraceGenerator(spec, batch_size=BATCH, seed=13)
            times[spec.name] = executor.run(gen.batches(3)).bound_time_ms()
        assert times["2x"] <= times[model.name] * 1.6
