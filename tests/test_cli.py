"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "rm2"
        assert args.gpus == 16
        assert args.milp_time == 15.0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "--model", "rm9"])


class TestCommands:
    COMMON = ["--features", "40", "--gpus", "2", "--batch", "256"]

    def test_characterize(self, capsys):
        assert main(["characterize", "--model", "rm1"] + self.COMMON) == 0
        out = capsys.readouterr().out
        assert "avg_pooling" in out
        assert "coverage" in out

    def test_shard_fast(self, capsys):
        argv = ["shard", "--model", "rm2", "--milp-time", "0"] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "rows on UVM" in out
        assert "tables per GPU" in out

    def test_shard_milp(self, capsys):
        argv = [
            "shard", "--model", "rm1", "--milp-time", "10", "--steps", "10",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "plan for RM1" in out

    def test_compare(self, capsys):
        argv = [
            "compare", "--model", "rm2", "--milp-time", "0", "--iters", "2",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "RecShard speedup vs next best" in out
        assert "Size-Based" in out

    def test_shard_reclaim_dead(self, capsys):
        argv = [
            "shard", "--model", "rm3", "--milp-time", "0", "--reclaim-dead",
        ] + self.COMMON
        assert main(argv) == 0
        assert "rows on UVM" in capsys.readouterr().out

    def test_replay_vectorized_default(self, capsys):
        argv = [
            "replay", "--model", "rm2", "--milp-time", "0", "--iters", "2",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "vectorized engine" in out
        assert "replay wall-clock" in out

    def test_replay_scalar_flag(self, capsys):
        argv = [
            "replay", "--scalar", "--model", "rm2", "--milp-time", "0",
            "--iters", "2",
        ] + self.COMMON
        assert main(argv) == 0
        assert "scalar engine" in capsys.readouterr().out

    def test_serve(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "20000", "--requests", "400", "--batch-requests", "64",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "QPS" in out
        assert "p50" in out and "p99" in out

    def test_serve_with_drift(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "20000", "--requests", "600", "--batch-requests", "64",
            "--drift-months", "20", "--drift-threshold", "2",
            "--drift-min-samples", "128",
        ] + self.COMMON
        assert main(argv) == 0
        assert "QPS" in capsys.readouterr().out
