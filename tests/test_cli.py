"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "rm2"
        assert args.gpus == 16
        assert args.milp_time == 15.0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "--model", "rm9"])


class TestCommands:
    COMMON = ["--features", "40", "--gpus", "2", "--batch", "256"]

    def test_characterize(self, capsys):
        assert main(["characterize", "--model", "rm1"] + self.COMMON) == 0
        out = capsys.readouterr().out
        assert "avg_pooling" in out
        assert "coverage" in out

    def test_shard_fast(self, capsys):
        argv = ["shard", "--model", "rm2", "--milp-time", "0"] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "rows on UVM" in out
        assert "tables per GPU" in out

    def test_shard_milp(self, capsys):
        argv = [
            "shard", "--model", "rm1", "--milp-time", "10", "--steps", "10",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "plan for RM1" in out

    def test_compare(self, capsys):
        argv = [
            "compare", "--model", "rm2", "--milp-time", "0", "--iters", "2",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "RecShard speedup vs next best" in out
        assert "Size-Based" in out

    def test_shard_reclaim_dead(self, capsys):
        argv = [
            "shard", "--model", "rm3", "--milp-time", "0", "--reclaim-dead",
        ] + self.COMMON
        assert main(argv) == 0
        assert "rows on UVM" in capsys.readouterr().out
