"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "rm2"
        assert args.gpus == 16
        assert args.milp_time == 15.0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "--model", "rm9"])


class TestCommands:
    COMMON = ["--features", "40", "--gpus", "2", "--batch", "256"]

    def test_characterize(self, capsys):
        assert main(["characterize", "--model", "rm1"] + self.COMMON) == 0
        out = capsys.readouterr().out
        assert "avg_pooling" in out
        assert "coverage" in out

    def test_shard_fast(self, capsys):
        argv = ["shard", "--model", "rm2", "--milp-time", "0"] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "rows on UVM" in out
        assert "tables per GPU" in out

    def test_shard_milp(self, capsys):
        argv = [
            "shard", "--model", "rm1", "--milp-time", "10", "--steps", "10",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "plan for RM1" in out

    def test_plan_vectorized_default(self, capsys):
        argv = ["plan", "--model", "rm2"] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "vectorized planner" in out
        assert "plan build wall-clock" in out

    def test_plan_scalar_flag(self, capsys):
        argv = ["plan", "--scalar", "--model", "rm2"] + self.COMMON
        assert main(argv) == 0
        assert "scalar reference planner" in capsys.readouterr().out

    def test_plan_sweep_hbm(self, capsys):
        argv = ["plan", "--model", "rm2", "--sweep", "hbm=0.5,1,2"] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "hbm sweep" in out
        assert "hbm_scale=0.5" in out
        assert "one shared workspace" in out

    def test_plan_sweep_gpus(self, capsys):
        argv = ["plan", "--model", "rm1", "--sweep", "gpus=2,4"] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "gpus=2" in out and "gpus=4" in out

    def test_plan_sweep_infeasible_point_reports_cleanly(self, capsys):
        # The workload is row-scaled to --gpus; a much smaller sweep
        # point cannot hold it and must error, not traceback.
        argv = [
            "plan", "--model", "rm2", "--features", "40", "--gpus", "8",
            "--batch", "256", "--sweep", "gpus=2",
        ]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "sweep point gpus=2" in err
        assert "sized for --gpus 8" in err

    def test_plan_sweep_rejects_bad_grid(self, capsys):
        argv = ["plan", "--sweep", "volts=1,2"] + self.COMMON
        assert main(argv) == 2
        assert "--sweep expects" in capsys.readouterr().err

    def test_plan_sweep_rejects_scalar_path(self, capsys):
        argv = ["plan", "--scalar", "--sweep", "hbm=1"] + self.COMMON
        assert main(argv) == 2
        assert "vectorized" in capsys.readouterr().err

    def test_plan_sweep_rejects_zero_grid_point(self, capsys):
        # Regression: hbm=0 used to crash deep in the planner instead
        # of failing validation with sweep-point context.
        argv = ["plan", "--model", "rm2", "--sweep", "hbm=0,1"] + self.COMMON
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "hbm_scale=0" in err
        assert "must be finite" in err

    def test_plan_sweep_rejects_zero_gpus_point(self, capsys):
        argv = ["plan", "--model", "rm2", "--sweep", "gpus=0,2"] + self.COMMON
        assert main(argv) == 2
        assert "gpus=0" in capsys.readouterr().err

    def test_plan_strategies_auto(self, capsys):
        argv = ["plan", "--model", "rm2", "--strategies", "auto"] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "strategy plan for" in out
        assert "per-table strategies" in out
        assert "row-only est. max GPU cost" in out

    def test_plan_strategies_rejects_unknown_kind(self, capsys):
        argv = ["plan", "--strategies", "diagonal"] + self.COMMON
        assert main(argv) == 2
        assert "diagonal" in capsys.readouterr().err

    def test_plan_strategies_rejects_scalar(self, capsys):
        argv = ["plan", "--scalar", "--strategies", "auto"] + self.COMMON
        assert main(argv) == 2
        assert "vectorized" in capsys.readouterr().err

    def test_plan_sweep_strategies(self, capsys):
        argv = [
            "plan", "--model", "rm2", "--sweep", "strategies=row,auto",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "strategies=row" in out and "strategies=auto" in out

    def test_plan_precisions_flag(self, capsys):
        argv = [
            "plan", "--model", "rm2", "--precisions", "uvm=fp16",
        ] + self.COMMON
        assert main(argv) == 0
        assert "plan for RM2" in capsys.readouterr().out

    def test_plan_precisions_rejects_unknown_name(self, capsys):
        argv = [
            "plan", "--model", "rm2", "--precisions", "uvm=fp12",
        ] + self.COMMON
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--precisions" in err and "unknown precision" in err

    def test_plan_precisions_rejects_unknown_tier(self, capsys):
        argv = [
            "plan", "--model", "rm2", "--precisions", "dram=fp16",
        ] + self.COMMON
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "no tier named" in capsys.readouterr().err

    def test_plan_sweep_precisions(self, capsys):
        argv = [
            "plan", "--model", "rm2", "--sweep", "precisions=fp32,fp16,int8",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "precisions sweep" in out
        assert "precisions=fp32" in out
        assert "precisions=int8" in out

    def test_plan_sweep_precisions_rejects_unknown_name(self, capsys):
        argv = [
            "plan", "--model", "rm2", "--sweep", "precisions=fp32,fp12",
        ] + self.COMMON
        assert main(argv) == 2
        assert "precisions=fp12" in capsys.readouterr().err

    def test_plan_sweep_unknown_axis_lists_valid_axes(self, capsys):
        # The axis-name error must name every valid axis so a typo'd
        # grid is self-correcting from the message alone.
        argv = ["plan", "--sweep", "precision=fp16"] + self.COMMON
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "--sweep expects" in err
        for axis in ("hbm=", "gpus=", "tiers=", "replicate=",
                     "strategies=", "precisions="):
            assert axis in err

    def test_serve_precisions_flag(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "20000", "--requests", "400", "--batch-requests", "64",
            "--precisions", "uvm=int8",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "tier precisions" in out
        assert "uvm int8" in out

    def test_compare(self, capsys):
        argv = [
            "compare", "--model", "rm2", "--milp-time", "0", "--iters", "2",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "RecShard speedup vs next best" in out
        assert "Size-Based" in out

    def test_shard_reclaim_dead(self, capsys):
        argv = [
            "shard", "--model", "rm3", "--milp-time", "0", "--reclaim-dead",
        ] + self.COMMON
        assert main(argv) == 0
        assert "rows on UVM" in capsys.readouterr().out

    def test_replay_vectorized_default(self, capsys):
        argv = [
            "replay", "--model", "rm2", "--milp-time", "0", "--iters", "2",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "vectorized engine" in out
        assert "replay wall-clock" in out

    def test_replay_scalar_flag(self, capsys):
        argv = [
            "replay", "--scalar", "--model", "rm2", "--milp-time", "0",
            "--iters", "2",
        ] + self.COMMON
        assert main(argv) == 0
        assert "scalar engine" in capsys.readouterr().out

    def test_serve(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "20000", "--requests", "400", "--batch-requests", "64",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "QPS" in out
        assert "p50" in out and "p99" in out

    def test_serve_with_drift(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "20000", "--requests", "600", "--batch-requests", "64",
            "--drift-months", "20", "--drift-threshold", "2",
            "--drift-min-samples", "128",
        ] + self.COMMON
        assert main(argv) == 0
        assert "QPS" in capsys.readouterr().out

    def test_serve_with_chaos_drill(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "50000", "--requests", "600", "--batch-requests", "64",
            "--replicate-gib", "1", "--chaos", "fail@4:1",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "device 1 fails" in out
        assert "dropped" in out

    def test_serve_worker_kill_drill(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "50000", "--requests", "600", "--batch-requests", "64",
            "--workers", "2", "--chaos", "kill@2:1",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[supervisor]" in out
        assert "respawned worker 1" in out

    def test_serve_with_slo_and_priorities(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "50000", "--requests", "600", "--batch-requests", "64",
            "--slo-ms", "5", "--deadline-ms", "8",
            "--priorities", "gold=0.1,silver=0.3,bronze=0.6",
        ] + self.COMMON
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "class gold" in out and "class bronze" in out

    def test_serve_with_brownout(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "50000", "--requests", "600", "--batch-requests", "64",
            "--slo-ms", "5", "--brownout",
        ] + self.COMMON
        assert main(argv) == 0
        assert "QPS" in capsys.readouterr().out

    def test_serve_report_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "50000", "--requests", "600", "--batch-requests", "64",
            "--deadline-ms", "8", "--report-json", str(path),
        ] + self.COMMON
        assert main(argv) == 0
        assert f"wrote metrics summary to {path}" in capsys.readouterr().out
        summary = json.loads(path.read_text())
        assert summary["requests"] == 600
        assert "p99_ms" in summary and "goodput" in summary

    def test_serve_workers_with_qos(self, capsys):
        argv = [
            "serve", "--model", "rm2", "--milp-time", "0",
            "--qps", "50000", "--requests", "400", "--batch-requests", "64",
            "--workers", "2", "--slo-ms", "5", "--deadline-ms", "8",
        ] + self.COMMON
        assert main(argv) == 0
        assert "goodput" in capsys.readouterr().out


class TestServeValidation:
    COMMON = ["--features", "40", "--gpus", "2", "--batch", "256"]

    def run(self, extra, capsys):
        code = main(["serve", "--model", "rm2"] + self.COMMON + extra)
        return code, capsys.readouterr().err

    def test_rejects_nonpositive_arrival_rate(self, capsys):
        code, err = self.run(["--arrival-rate", "-5"], capsys)
        assert code == 2 and "--arrival-rate" in err

    def test_rejects_nonpositive_queue_depth(self, capsys):
        code, err = self.run(
            ["--workers", "2", "--queue-depth", "0"], capsys
        )
        assert code == 2 and "--queue-depth" in err

    def test_rejects_negative_workers(self, capsys):
        code, err = self.run(["--workers", "-1"], capsys)
        assert code == 2 and "--workers" in err

    def test_rejects_malformed_chaos_spec(self, capsys):
        code, err = self.run(["--chaos", "melt@10:0"], capsys)
        assert code == 2 and "melt@10:0" in err

    def test_rejects_worker_kill_without_workers(self, capsys):
        code, err = self.run(["--chaos", "kill@10:0"], capsys)
        assert code == 2 and "--workers" in err

    def test_rejects_chaos_device_out_of_range(self, capsys):
        code, err = self.run(["--chaos", "fail@10:7"], capsys)
        assert code == 2 and "only 2 devices" in err

    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--max-delay-ms", "0"),
            ("--burst-qps", "0"),
            ("--burst-qps", "-10"),
            ("--idle-qps", "-1"),
            ("--burst-ms", "0"),
            ("--idle-ms", "-2"),
            ("--slo-ms", "0"),
            ("--deadline-ms", "-1"),
            ("--queue-limit-ms", "0"),
        ],
    )
    def test_rejects_nonpositive_serve_knobs(self, flag, value, capsys):
        code, err = self.run([flag, value], capsys)
        assert code == 2 and flag in err

    def test_rejects_brownout_without_slo(self, capsys):
        code, err = self.run(["--brownout"], capsys)
        assert code == 2 and "--slo-ms" in err

    def test_rejects_malformed_priorities(self, capsys):
        code, err = self.run(["--priorities", "gold=0.5,silver=0.7"], capsys)
        assert code == 2 and "--priorities" in err

    def test_accepts_qos_with_drift(self, capsys):
        # Regression: QoS flags used to be rejected whenever drift
        # replanning was on.  The synthetic stream now carries deadline
        # and priority columns, so the combination must serve cleanly.
        code = main(
            ["serve", "--model", "rm2"] + self.COMMON + [
                "--milp-time", "0", "--qps", "20000", "--requests", "400",
                "--batch-requests", "64", "--slo-ms", "5",
                "--deadline-ms", "8",
                "--priorities", "gold=0.2,bronze=0.8",
                "--drift-months", "20", "--drift-threshold", "2",
                "--drift-min-samples", "128",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "goodput" in captured.out
        assert "class gold" in captured.out
