"""Tests for the numpy neural-network layers, including gradient checks."""

import numpy as np
import pytest

from repro.core.remap import RemappingTable
from repro.data.batch import JaggedFeature
from repro.dlrm.layers import (
    EmbeddingBag,
    Linear,
    MLP,
    TieredEmbeddingBag,
    dot_interaction,
    dot_interaction_backward,
)


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        grad_x = layer.backward(out - target)
        assert np.allclose(
            layer.grad_weight, numerical_grad(loss, layer.weight), atol=1e-5
        )
        assert np.allclose(layer.grad_bias, numerical_grad(loss, layer.bias), atol=1e-5)
        assert np.allclose(grad_x, numerical_grad(loss, x), atol=1e-5)

    def test_sgd_step_reduces_loss(self):
        rng = np.random.default_rng(2)
        layer = Linear(3, 1, rng)
        x = rng.normal(size=(16, 3))
        target = x @ np.array([[1.0], [2.0], [-1.0]])
        for _ in range(100):
            out = layer.forward(x)
            layer.backward(out - target)
            layer.sgd_step(0.01)
        final = 0.5 * np.sum((layer.forward(x) - target) ** 2)
        assert final < 0.1


class TestMLP:
    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4], np.random.default_rng(0))

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(3)
        mlp = MLP([3, 5, 2], rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * np.sum((mlp.forward(x) - target) ** 2)

        out = mlp.forward(x)
        grad_x = mlp.backward(out - target)
        for layer in mlp.layers:
            num = numerical_grad(loss, layer.weight)
            assert np.allclose(layer.grad_weight, num, atol=1e-4)
        assert np.allclose(grad_x, numerical_grad(loss, x), atol=1e-4)


class TestEmbeddingBag:
    def test_sum_pooling(self):
        bag = EmbeddingBag(4, 2, np.random.default_rng(4))
        bag.weight = np.arange(8, dtype=float).reshape(4, 2)
        feature = JaggedFeature.from_lists([[0, 1], [3], []])
        out = bag.forward(feature)
        assert np.allclose(out[0], bag.weight[0] + bag.weight[1])
        assert np.allclose(out[1], bag.weight[3])
        assert np.allclose(out[2], 0.0)  # NULL sample -> zero vector

    def test_sparse_update_touches_only_lookups(self):
        bag = EmbeddingBag(5, 2, np.random.default_rng(5))
        before = bag.weight.copy()
        feature = JaggedFeature.from_lists([[1, 3]])
        bag.forward(feature)
        bag.backward(np.ones((1, 2)), lr=0.1)
        changed = np.any(bag.weight != before, axis=1)
        assert list(np.flatnonzero(changed)) == [1, 3]

    def test_repeated_index_accumulates(self):
        bag = EmbeddingBag(3, 1, np.random.default_rng(6))
        bag.weight[:] = 0.0
        feature = JaggedFeature.from_lists([[2, 2]])
        out = bag.forward(feature)
        assert out[0, 0] == 0.0
        bag.backward(np.array([[1.0]]), lr=1.0)
        assert bag.weight[2, 0] == pytest.approx(-2.0)  # grad applied twice


class TestTieredEmbeddingBag:
    def build(self, rows=20, dim=3, split=7, seed=7):
        rng = np.random.default_rng(seed)
        weight = rng.normal(size=(rows, dim))
        order = rng.permutation(rows)
        remap = RemappingTable(order, (split, rows - split))
        return weight, TieredEmbeddingBag(weight, remap)

    def test_forward_identical_to_flat(self):
        weight, tiered = self.build()
        flat = EmbeddingBag(20, 3, np.random.default_rng(0))
        flat.weight = weight.copy()
        feature = JaggedFeature.from_lists([[0, 5, 19], [7], []])
        assert np.allclose(tiered.forward(feature), flat.forward(feature))

    def test_access_counting(self):
        _, tiered = self.build()
        feature = JaggedFeature.from_lists([[0, 1, 2, 3]])
        tiered.forward(feature)
        assert tiered.access_counts.sum() == 4

    def test_backward_equivalent_to_flat(self):
        weight, tiered = self.build()
        flat = EmbeddingBag(20, 3, np.random.default_rng(0))
        flat.weight = weight.copy()
        feature = JaggedFeature.from_lists([[0, 5], [19, 7]])
        grad = np.random.default_rng(8).normal(size=(2, 3))
        tiered.forward(feature)
        tiered.backward(grad, lr=0.05)
        flat.forward(feature)
        flat.backward(grad, lr=0.05)
        assert np.allclose(tiered.logical_weight(), flat.weight)

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(9)
        remap = RemappingTable(rng.permutation(10), (5, 5))
        with pytest.raises(ValueError):
            TieredEmbeddingBag(rng.normal(size=(11, 2)), remap)


class TestDotInteraction:
    def test_output_width(self):
        rng = np.random.default_rng(10)
        bottom = rng.normal(size=(4, 6))
        pooled = [rng.normal(size=(4, 6)) for _ in range(3)]
        out = dot_interaction(bottom, pooled)
        # 6 dense dims + C(4,2)=6 pairwise dots.
        assert out.shape == (4, 12)

    def test_pairwise_dot_values(self):
        bottom = np.array([[1.0, 0.0]])
        pooled = [np.array([[0.0, 2.0]]), np.array([[3.0, 0.0]])]
        out = dot_interaction(bottom, pooled)
        # pairs (p0,bottom), (p1,bottom), (p1,p0) in lower-triangle order.
        assert out.shape == (1, 5)
        assert set(np.round(out[0, 2:], 6)) == {0.0, 3.0}

    def test_backward_matches_numerical(self):
        rng = np.random.default_rng(11)
        bottom = rng.normal(size=(2, 3))
        pooled = [rng.normal(size=(2, 3)) for _ in range(2)]
        grad_out = rng.normal(size=(2, 3 + 3))

        def loss():
            return np.sum(dot_interaction(bottom, pooled) * grad_out)

        grad_bottom, grad_pooled = dot_interaction_backward(grad_out, bottom, pooled)
        assert np.allclose(grad_bottom, numerical_grad(loss, bottom), atol=1e-5)
        for k in range(2):
            assert np.allclose(
                grad_pooled[k], numerical_grad(loss, pooled[k]), atol=1e-5
            )
