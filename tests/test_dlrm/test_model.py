"""Tests for the end-to-end numpy DLRM (Figure 2)."""

import numpy as np
import pytest

from repro.core.remap import RemappingTable
from repro.data.batch import JaggedBatch, JaggedFeature
from repro.dlrm import DLRM, DLRMConfig, TieredEmbeddingBag, bce_loss, train_epoch
from repro.dlrm.train import synthetic_ctr_labels


def make_batch(cfg, batch_size, rng):
    dense = rng.normal(size=(batch_size, cfg.dense_features))
    feats = []
    for rows in cfg.table_rows:
        lengths = rng.integers(0, 4, size=batch_size)
        offsets = np.zeros(batch_size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = rng.integers(0, rows, size=int(offsets[-1]))
        feats.append(JaggedFeature(values, offsets))
    sparse = JaggedBatch(feats)
    labels = synthetic_ctr_labels(dense, sparse, rng)
    return dense, sparse, labels


@pytest.fixture
def config():
    return DLRMConfig(
        dense_features=4,
        table_rows=[40, 60],
        embedding_dim=8,
        bottom_layers=[16],
        top_layers=[16],
        seed=3,
    )


class TestDLRMForward:
    def test_probabilities_in_range(self, config):
        model = DLRM(config)
        rng = np.random.default_rng(0)
        dense, sparse, _ = make_batch(config, 32, rng)
        probs = model.forward(dense, sparse)
        assert probs.shape == (32,)
        assert np.all((probs > 0) & (probs < 1))

    def test_feature_count_validated(self, config):
        model = DLRM(config)
        rng = np.random.default_rng(1)
        dense, _, _ = make_batch(config, 8, rng)
        wrong = JaggedBatch([JaggedFeature.from_lists([[0]] * 8)])
        with pytest.raises(ValueError):
            model.forward(dense, wrong)

    def test_interaction_dim(self, config):
        # 1 bottom vector + 2 pooled vectors -> C(3,2)=3 pairs + dim.
        assert config.interaction_dim() == 8 + 3

    def test_needs_tables(self):
        with pytest.raises(ValueError):
            DLRM(DLRMConfig(dense_features=2, table_rows=[]))


class TestDLRMTraining:
    def test_loss_decreases(self, config):
        model = DLRM(config)
        rng = np.random.default_rng(2)
        batches = [make_batch(config, 64, rng) for _ in range(25)]
        losses = train_epoch(model, batches, lr=0.2)
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_backward_requires_forward(self, config):
        model = DLRM(config)
        with pytest.raises(RuntimeError):
            model.backward(np.zeros(4), lr=0.1)

    def test_bce_loss_properties(self):
        assert bce_loss(np.array([0.5]), np.array([1.0])) == pytest.approx(
            -np.log(0.5)
        )
        perfect = bce_loss(np.array([1.0 - 1e-12]), np.array([1.0]))
        assert perfect < 1e-6


class TestTieredDLRM:
    def tiered_copy(self, model, rng, split_fraction=0.3):
        import copy

        tables = []
        for bag in model.tables:
            rows = bag.num_rows
            order = rng.permutation(rows)
            split = int(rows * split_fraction)
            remap = RemappingTable(order, (split, rows - split))
            tables.append(TieredEmbeddingBag(bag.weight.copy(), remap))
        clone = DLRM(model.config)
        clone.bottom = copy.deepcopy(model.bottom)
        clone.top = copy.deepcopy(model.top)
        clone.replace_tables(tables)
        return clone

    def test_forward_bit_identical(self, config):
        rng = np.random.default_rng(4)
        model = DLRM(config)
        tiered = self.tiered_copy(model, rng)
        dense, sparse, _ = make_batch(config, 16, rng)
        np.testing.assert_array_equal(
            model.forward(dense, sparse), tiered.forward(dense, sparse)
        )

    def test_tier_access_counts_accumulate(self, config):
        rng = np.random.default_rng(5)
        model = DLRM(config)
        tiered = self.tiered_copy(model, rng)
        dense, sparse, _ = make_batch(config, 16, rng)
        tiered.forward(dense, sparse)
        counts = tiered.tier_access_counts()
        assert counts is not None
        assert counts.sum() == sparse.total_lookups

    def test_flat_model_reports_no_tier_counts(self, config):
        model = DLRM(config)
        assert model.tier_access_counts() is None

    def test_training_equivalent_under_remapping(self, config):
        # One SGD step on flat vs tiered storage produces identical
        # logical weights — remapping is performance-transparent.
        rng = np.random.default_rng(6)
        flat = DLRM(config)
        tiered = self.tiered_copy(flat, rng)
        dense, sparse, labels = make_batch(config, 16, rng)
        flat_probs = flat.forward(dense, sparse)
        flat.backward(labels, lr=0.1)
        tiered_probs = tiered.forward(dense, sparse)
        tiered.backward(labels, lr=0.1)
        np.testing.assert_array_equal(flat_probs, tiered_probs)
        for flat_bag, tiered_bag in zip(flat.tables, tiered.tables):
            np.testing.assert_allclose(
                flat_bag.weight, tiered_bag.logical_weight(), atol=1e-12
            )

    def test_replace_tables_length_checked(self, config):
        model = DLRM(config)
        with pytest.raises(ValueError):
            model.replace_tables([model.tables[0]])
