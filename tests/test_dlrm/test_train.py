"""Tests for the DLRM training utilities: AUC, labels, determinism."""

import numpy as np
import pytest

from repro.core.quantize import quantize_by_tiers
from repro.dlrm import DLRM, DLRMConfig, auc_score, bce_loss, train_epoch
from repro.dlrm.train import synthetic_ctr_labels

from .test_model import make_batch


@pytest.fixture
def config():
    return DLRMConfig(
        dense_features=4,
        table_rows=[40, 60],
        embedding_dim=8,
        bottom_layers=[16],
        top_layers=[16],
        seed=3,
    )


class TestAucScore:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        assert auc_score(labels, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        assert auc_score(labels, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_all_tied_scores(self):
        labels = np.array([0, 1, 0, 1])
        assert auc_score(labels, np.full(4, 0.5)) == pytest.approx(0.5)

    def test_single_class_degenerate(self):
        assert auc_score(np.ones(5), np.linspace(0, 1, 5)) == 0.5
        assert auc_score(np.zeros(5), np.linspace(0, 1, 5)) == 0.5

    def test_partial_overlap(self):
        # One inversion among 2x2 pairs -> AUC = 3/4.
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.4])
        assert auc_score(labels, scores) == pytest.approx(0.75)

    def test_matches_pair_counting(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(200) < 0.4).astype(float)
        scores = rng.normal(size=200) + labels
        pos = scores[labels > 0.5]
        neg = scores[labels <= 0.5]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        brute = (wins + 0.5 * ties) / (pos.size * neg.size)
        assert auc_score(labels, scores) == pytest.approx(brute)


class TestTrainingDeterminism:
    def test_same_seed_same_model(self, config):
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        model_a, model_b = DLRM(config), DLRM(config)
        batches_a = [make_batch(config, 64, rng_a) for _ in range(3)]
        batches_b = [make_batch(config, 64, rng_b) for _ in range(3)]
        losses_a = train_epoch(model_a, batches_a, lr=0.1)
        losses_b = train_epoch(model_b, batches_b, lr=0.1)
        assert losses_a == losses_b
        dense, sparse, _ = make_batch(config, 32, np.random.default_rng(5))
        assert np.array_equal(
            model_a.forward(dense, sparse), model_b.forward(dense, sparse)
        )

    def test_training_learns_signal(self, config):
        rng = np.random.default_rng(7)
        model = DLRM(config)
        batches = [make_batch(config, 128, rng) for _ in range(12)]
        losses = train_epoch(model, batches, lr=0.2)
        assert losses[-1] < losses[0]
        dense, sparse, labels = make_batch(config, 512, rng)
        auc = auc_score(labels, model.forward(dense, sparse))
        assert auc > 0.6  # clearly better than chance on held-out data

    def test_labels_deterministic_under_rng(self, config):
        dense, sparse, _ = make_batch(config, 64, np.random.default_rng(1))
        a = synthetic_ctr_labels(dense, sparse, np.random.default_rng(9))
        b = synthetic_ctr_labels(dense, sparse, np.random.default_rng(9))
        assert np.array_equal(a, b)


class TestQuantizedEmbeddings:
    def test_quantized_tables_bound_quality_delta(self, config):
        """End-to-end miniature of the accuracy harness: quantize the
        cold majority of each trained table and bound the AUC delta."""
        rng = np.random.default_rng(21)
        model = DLRM(config)
        batches = [make_batch(config, 128, rng) for _ in range(12)]
        train_epoch(model, batches, lr=0.2)
        dense, sparse, labels = make_batch(config, 512, rng)
        base_probs = model.forward(dense, sparse)
        for table in model.tables:
            rows = table.weight.shape[0]
            hot = rows // 4
            table.weight[:] = quantize_by_tiers(
                table.weight, [hot, rows - hot], ["fp32", "int8"]
            )
        quant_probs = model.forward(dense, sparse)
        auc_delta = abs(
            auc_score(labels, base_probs) - auc_score(labels, quant_probs)
        )
        loss_delta = abs(
            bce_loss(base_probs, labels) - bce_loss(quant_probs, labels)
        )
        assert auc_delta < 0.05
        assert loss_delta < 0.05
