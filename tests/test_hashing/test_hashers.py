"""Tests for the hash function substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import IdentityHasher, MultiplyShiftHasher, SplitMix64Hasher

HASHERS = [SplitMix64Hasher, MultiplyShiftHasher]


@pytest.mark.parametrize("hasher_cls", HASHERS)
class TestHasherContract:
    def test_range(self, hasher_cls):
        hasher = hasher_cls(seed=3)
        out = hasher.hash_into(np.arange(10_000), 97)
        assert out.min() >= 0
        assert out.max() < 97

    def test_deterministic(self, hasher_cls):
        h1, h2 = hasher_cls(seed=5), hasher_cls(seed=5)
        vals = np.arange(1000)
        assert np.array_equal(h1.hash_into(vals, 64), h2.hash_into(vals, 64))

    def test_seed_sensitivity(self, hasher_cls):
        vals = np.arange(1000)
        a = hasher_cls(seed=1).hash_into(vals, 256)
        b = hasher_cls(seed=2).hash_into(vals, 256)
        assert not np.array_equal(a, b)

    def test_roughly_uniform(self, hasher_cls):
        # Chi-square sanity: no bucket wildly over/under-loaded.
        hasher = hasher_cls(seed=9)
        out = hasher.hash_into(np.arange(100_000), 100)
        counts = np.bincount(out, minlength=100)
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_size_one(self, hasher_cls):
        hasher = hasher_cls(seed=0)
        out = hasher.hash_into(np.arange(50), 1)
        assert np.all(out == 0)

    def test_invalid_size(self, hasher_cls):
        with pytest.raises(ValueError):
            hasher_cls(seed=0).hash_into(np.arange(5), 0)

    @given(size=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_any_size_in_range(self, hasher_cls, size):
        hasher = hasher_cls(seed=11)
        out = hasher.hash_into(np.arange(256), size)
        assert out.min() >= 0
        assert out.max() < size


class TestIdentityHasher:
    def test_modulo_semantics(self):
        hasher = IdentityHasher()
        out = hasher.hash_into(np.array([0, 5, 10, 15]), 10)
        assert list(out) == [0, 5, 0, 5]


class TestAvalanche:
    def test_splitmix_bit_diffusion(self):
        # Flipping one input bit should flip ~half the output bits.
        hasher = SplitMix64Hasher(seed=0)
        a = hasher.hash64(np.array([1234567]))[0]
        b = hasher.hash64(np.array([1234567 ^ 1]))[0]
        flipped = bin(int(a) ^ int(b)).count("1")
        assert 16 <= flipped <= 48
