"""Tests for birthday-paradox analytics (Figures 7 and 8)."""

import numpy as np
import pytest

from repro.data.distributions import ZipfCategorical
from repro.hashing import (
    SplitMix64Hasher,
    birthday_sweep,
    collision_fraction,
    expected_occupancy,
    hash_compression_profile,
    measure_occupancy,
)


class TestAnalytics:
    def test_birthday_paradox_at_equal_size(self):
        # H == N leaves ~1/e of slots unused (Section 3.4).
        usage = expected_occupancy(10_000, 10_000)
        assert usage == pytest.approx(1 - np.exp(-1), abs=0.01)

    def test_occupancy_monotone_in_values(self):
        occupancies = [expected_occupancy(n, 1000) for n in (10, 100, 1000, 10_000)]
        assert occupancies == sorted(occupancies)

    def test_collision_fraction_at_equal_size(self):
        # ~1/e of the values collide at H == N (paper's statement).
        frac = collision_fraction(10_000, 10_000)
        assert frac == pytest.approx(np.exp(-1), abs=0.02)

    def test_zero_values(self):
        assert expected_occupancy(0, 100) == 0.0
        assert collision_fraction(0, 100) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_occupancy(-1, 100)
        with pytest.raises(ValueError):
            expected_occupancy(10, 0)


class TestEmpiricalAgreement:
    def test_measured_matches_expected(self):
        n, h = 20_000, 30_000
        measured = measure_occupancy(n, h, SplitMix64Hasher(seed=3))
        expected = expected_occupancy(n, h) * h
        assert measured == pytest.approx(expected, rel=0.02)

    def test_sweep_empirical_vs_analytic(self):
        points_analytic = birthday_sweep(5000, [0.5, 1.0, 2.0, 5.0])
        points_measured = birthday_sweep(
            5000, [0.5, 1.0, 2.0, 5.0], hasher=SplitMix64Hasher(seed=1)
        )
        for pa, pm in zip(points_analytic, points_measured):
            assert pm.usage == pytest.approx(pa.usage, abs=0.03)
            assert pm.collisions == pytest.approx(pa.collisions, abs=0.03)


class TestBirthdaySweep:
    def test_figure8_shape(self):
        # Usage falls and sparsity rises as the hash multiple grows.
        points = birthday_sweep(10_000, [0.5, 1, 2, 4, 8])
        usages = [p.usage for p in points]
        sparsities = [p.sparsity for p in points]
        assert usages == sorted(usages, reverse=True)
        assert sparsities == sorted(sparsities)
        for p in points:
            assert p.sparsity == pytest.approx(1 - p.usage)

    def test_collisions_fall_with_multiple(self):
        points = birthday_sweep(10_000, [0.5, 1, 2, 4, 8])
        collisions = [p.collisions for p in points]
        assert collisions == sorted(collisions, reverse=True)


class TestHashCompression:
    def test_figure7_profile(self):
        # A skewed feature hashed into a larger-than-cardinality table
        # still leaves the table under-utilized (sparsity + collisions).
        zipf = ZipfCategorical(2000, alpha=1.1)
        raw = zipf.sample(100_000, np.random.default_rng(0))
        profile = hash_compression_profile(
            raw, hash_size=3000, hasher=SplitMix64Hasher(seed=2)
        )
        assert profile.unique_values_seen <= 2000
        assert profile.occupied_rows <= profile.unique_values_seen
        assert 0.0 < profile.sparsity_pct < 1.0
        assert profile.collision_pct >= 0.0
        assert profile.unused_pct == pytest.approx(
            profile.sparsity_pct + profile.collision_pct, abs=1e-9
        )

    def test_counts_sorted_descending(self):
        raw = ZipfCategorical(500, 1.0).sample(20_000, np.random.default_rng(1))
        profile = hash_compression_profile(raw, 600, SplitMix64Hasher(seed=4))
        assert np.all(np.diff(profile.pre_hash_counts) <= 0)
        assert np.all(np.diff(profile.post_hash_counts) <= 0)

    def test_mass_conserved_through_hashing(self):
        raw = ZipfCategorical(500, 1.0).sample(20_000, np.random.default_rng(2))
        profile = hash_compression_profile(raw, 400, SplitMix64Hasher(seed=5))
        assert profile.pre_hash_counts.sum() == profile.post_hash_counts.sum() == 20_000

    def test_post_hash_compresses_distribution(self):
        # Post-hash occupies no more rows than distinct raw values.
        raw = ZipfCategorical(1000, 0.8).sample(50_000, np.random.default_rng(3))
        profile = hash_compression_profile(raw, 1500, SplitMix64Hasher(seed=6))
        assert profile.post_hash_counts.size <= profile.pre_hash_counts.size
