"""Tests for the remapping layer (Section 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ShardingPlan, TablePlacement
from repro.core.remap import RemappingLayer, RemappingTable
from repro.data.batch import JaggedBatch, JaggedFeature


def ranking(hash_size, seed=0):
    return np.random.default_rng(seed).permutation(hash_size).astype(np.int64)


class TestRemappingTable:
    def test_split_membership(self):
        order = np.array([3, 1, 4, 0, 2])  # hotness ranking
        table = RemappingTable(order, (2, 3))
        tiers, offsets = table.apply(np.array([3, 1, 4, 0, 2]))
        assert list(tiers) == [0, 0, 1, 1, 1]
        assert list(offsets) == [0, 1, 0, 1, 2]

    def test_signed_encoding(self):
        # Paper: the sign of the remapped index denotes the partition.
        order = np.array([2, 0, 1])
        table = RemappingTable(order, (1, 2))
        signed = table.apply_signed(np.array([2, 0, 1]))
        assert list(signed) == [0, -1, -2]

    def test_signed_roundtrip(self):
        order = ranking(100, seed=1)
        table = RemappingTable(order, (30, 70))
        indices = np.random.default_rng(2).integers(0, 100, size=500)
        decoded = table.decode_signed(table.apply_signed(indices))
        assert np.array_equal(decoded, indices)

    def test_tier_counts_conserve(self):
        order = ranking(50, seed=3)
        table = RemappingTable(order, (10, 40))
        indices = np.random.default_rng(4).integers(0, 50, size=1000)
        counts = table.tier_counts(indices)
        assert counts.sum() == 1000

    def test_empty_indices(self):
        table = RemappingTable(ranking(10), (5, 5))
        assert list(table.tier_counts(np.array([], dtype=np.int64))) == [0, 0]

    def test_hot_rows_map_to_tier0(self):
        order = ranking(64, seed=5)
        table = RemappingTable(order, (16, 48))
        hot = order[:16]
        tiers, _ = table.apply(hot)
        assert np.all(tiers == 0)

    def test_original_row_inverse(self):
        order = ranking(20, seed=6)
        table = RemappingTable(order, (7, 13))
        for row in range(20):
            tier, offset = table.apply(np.array([row]))
            assert table.original_row(int(tier[0]), int(offset[0])) == row

    def test_three_tier_split(self):
        order = ranking(30, seed=7)
        table = RemappingTable(order, (5, 10, 15))
        tiers, _ = table.apply(np.arange(30))
        assert list(np.bincount(tiers, minlength=3)) == [5, 10, 15]
        with pytest.raises(ValueError):
            table.apply_signed(np.arange(5))  # signed needs exactly 2 tiers

    def test_rows_must_sum_to_hash_size(self):
        with pytest.raises(ValueError):
            RemappingTable(ranking(10), (4, 4))

    def test_storage_cost_is_4_bytes_per_row(self):
        # Section 6.6: 4 bytes per remapped row.
        table = RemappingTable(ranking(1000), (100, 900))
        assert table.storage_bytes == 4000

    @given(
        hash_size=st.integers(min_value=1, max_value=300),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_bijection_property(self, hash_size, data):
        split = data.draw(st.integers(min_value=0, max_value=hash_size))
        table = RemappingTable(
            ranking(hash_size, seed=hash_size), (split, hash_size - split)
        )
        # Every row maps to a unique (tier, offset) slot.
        tiers, offsets = table.apply(np.arange(hash_size))
        slots = set(zip(tiers.tolist(), offsets.tolist()))
        assert len(slots) == hash_size
        # Offsets are dense per tier.
        for tier, rows in enumerate(table.rows_per_tier):
            tier_offsets = offsets[tiers == tier]
            assert sorted(tier_offsets.tolist()) == list(range(rows))


class TestRemappingLayer:
    def build_layer(self, small_model, small_profile):
        placements = [
            TablePlacement(j, 0, (t.num_rows // 2, t.num_rows - t.num_rows // 2))
            for j, t in enumerate(small_model.tables)
        ]
        plan = ShardingPlan(strategy="s", placements=placements)
        return RemappingLayer.from_plan(plan, small_profile)

    def test_from_plan(self, small_model, small_profile):
        layer = self.build_layer(small_model, small_profile)
        assert len(layer) == small_model.num_tables

    def test_transform_preserves_structure(self, small_model, small_profile):
        layer = self.build_layer(small_model, small_profile)
        features = [
            JaggedFeature.from_lists([[0, 1], [2]]) for _ in small_model.tables
        ]
        batch = JaggedBatch(features)
        remapped = layer.transform(batch)
        assert remapped.batch_size == 2
        for orig, new in zip(batch, remapped):
            assert np.array_equal(orig.offsets, new.offsets)
            assert new.values.size == orig.values.size

    def test_transform_values_decode_back(self, small_model, small_profile):
        layer = self.build_layer(small_model, small_profile)
        features = [
            JaggedFeature.from_lists([[0, 3, 5], [1]]) for _ in small_model.tables
        ]
        remapped = layer.transform(JaggedBatch(features))
        for j, new in enumerate(remapped):
            decoded = layer[j].decode_signed(new.values)
            assert np.array_equal(decoded, features[j].values)

    def test_mismatched_batch_rejected(self, small_model, small_profile):
        layer = self.build_layer(small_model, small_profile)
        with pytest.raises(ValueError):
            layer.transform(JaggedBatch([JaggedFeature.from_lists([[0]])]))

    def test_layer_storage_bytes(self, small_model, small_profile):
        layer = self.build_layer(small_model, small_profile)
        assert layer.storage_bytes == 4 * small_model.total_hash_size

    def test_hot_split_tracks_profile_ranking(self, small_model, small_profile):
        layer = self.build_layer(small_model, small_profile)
        for j, stats in enumerate(small_profile):
            k = small_model.tables[j].num_rows // 2
            hot_rows = stats.cdf.top_rows(k)
            tiers, _ = layer[j].apply(hot_rows)
            assert np.all(tiers == 0)
