"""Tests for the RecShard sharders (MILP, fast, multi-tier)."""

import numpy as np
import pytest

from repro.core import RecShardFastSharder, RecShardSharder, MultiTierSharder
from repro.core.evaluate import expected_device_costs_ms, expected_max_cost_ms
from repro.memory.topology import SystemTopology

BATCH = 256


class TestRecShardSharder:
    def shard(self, model, profile, topology, **kwargs):
        defaults = dict(batch_size=BATCH, steps=12, time_limit=60)
        defaults.update(kwargs)
        sharder = RecShardSharder(**defaults)
        return sharder.shard(model, profile, topology)

    def test_plan_is_valid(self, small_model, small_profile, tight_topology):
        plan = self.shard(small_model, small_profile, tight_topology)
        plan.validate(small_model, tight_topology)

    def test_roomy_plan_all_hbm(self, small_model, small_profile, roomy_topology):
        plan = self.shard(small_model, small_profile, roomy_topology)
        plan.validate(small_model, roomy_topology)
        # Live rows all make it to HBM (dead rows may stay behind).
        for placement, stats in zip(plan, small_profile):
            assert placement.hbm_rows >= stats.cdf.live_rows

    def test_tight_plan_splits_tables(self, small_model, small_profile, tight_topology):
        plan = self.shard(small_model, small_profile, tight_topology)
        split_tables = [
            p
            for p in plan
            if 0 < p.hbm_rows < small_model.tables[p.table_index].num_rows
        ]
        assert split_tables, "expected fine-grained splits under memory pressure"

    def test_metadata_records_solver(self, small_model, small_profile, tight_topology):
        plan = self.shard(small_model, small_profile, tight_topology)
        assert "solver" in plan.metadata
        assert "milp_status" in plan.metadata

    def test_beats_or_matches_fast(self, small_model, small_profile, tight_topology):
        milp_plan = self.shard(small_model, small_profile, tight_topology)
        fast_plan = RecShardFastSharder(batch_size=BATCH, steps=12).shard(
            small_model, small_profile, tight_topology
        )
        milp_cost = expected_max_cost_ms(
            milp_plan, small_model, small_profile, tight_topology, BATCH
        )
        fast_cost = expected_max_cost_ms(
            fast_plan, small_model, small_profile, tight_topology, BATCH
        )
        assert milp_cost <= fast_cost * 1.001  # hybrid picks the better plan

    def test_no_fallback_raises_on_zero_budget(
        self, small_model, small_profile, tight_topology
    ):
        sharder = RecShardSharder(
            batch_size=BATCH, steps=12, time_limit=1e-4, fallback=False
        )
        with pytest.raises(RuntimeError):
            sharder.shard(small_model, small_profile, tight_topology)

    def test_fallback_on_zero_budget(self, small_model, small_profile, tight_topology):
        sharder = RecShardSharder(
            batch_size=BATCH, steps=12, time_limit=1e-4, fallback=True
        )
        plan = sharder.shard(small_model, small_profile, tight_topology)
        plan.validate(small_model, tight_topology)
        assert plan.metadata["solver"] in ("fast-fallback", "fast-beat-milp")

    def test_branch_bound_backend_small(self, small_model, small_profile):
        # A 1-device instance is tiny enough for the pure-Python solver.
        topo = SystemTopology.two_tier(
            1,
            int(small_model.total_bytes * 0.5),
            200e9,
            small_model.total_bytes,
            10e9,
        )
        plan = self.shard(
            small_model, small_profile, topo, backend="branch_bound", steps=6
        )
        plan.validate(small_model, topo)


class TestRecShardFastSharder:
    def test_plan_valid_tight(self, small_model, small_profile, tight_topology):
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            small_model, small_profile, tight_topology
        )
        plan.validate(small_model, tight_topology)

    def test_plan_valid_roomy(self, small_model, small_profile, roomy_topology):
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            small_model, small_profile, roomy_topology
        )
        plan.validate(small_model, roomy_topology)
        for placement, stats in zip(plan, small_profile):
            assert placement.hbm_rows >= stats.cdf.live_rows

    def test_load_balance_quality(self, small_model, small_profile, tight_topology):
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            small_model, small_profile, tight_topology
        )
        costs = expected_device_costs_ms(
            plan, small_model, small_profile, tight_topology, BATCH
        )
        assert costs.max() <= costs.sum()  # sanity
        # Makespan within 2.5x of the perfect-split lower bound.
        assert costs.max() <= 2.5 * costs.sum() / tight_topology.num_devices + 1e-9

    def test_metadata(self, small_model, small_profile, tight_topology):
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            small_model, small_profile, tight_topology
        )
        assert plan.metadata["solver"] == "fast"
        assert plan.metadata["estimated_max_cost_ms"] > 0

    def test_infeasible_capacity_raises(self, small_model, small_profile):
        from repro.core.plan import PlanError

        topo = SystemTopology.two_tier(1, 0, 200e9, 0, 10e9)
        with pytest.raises(PlanError):
            RecShardFastSharder(batch_size=BATCH).shard(
                small_model, small_profile, topo
            )

    def test_host_pressure_promotes_dead_rows(self, small_model, small_profile):
        # Host slice below (total - hbm) forces dead rows into HBM.
        total = small_model.total_bytes
        topo = SystemTopology.two_tier(
            num_devices=1,
            hbm_capacity=int(total * 0.7),
            hbm_bandwidth=200e9,
            uvm_capacity=int(total * 0.4),
            uvm_bandwidth=10e9,
        )
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            small_model, small_profile, topo
        )
        plan.validate(small_model, topo)


class TestMultiTierSharder:
    @pytest.fixture
    def topo3(self, small_model):
        total = small_model.total_bytes
        from repro.memory.tier import MemoryTier

        return SystemTopology(
            num_devices=2,
            tiers=(
                MemoryTier("hbm", int(total * 0.2 / 2), 200e9),
                MemoryTier("uvm", int(total * 0.4 / 2), 10e9),
                MemoryTier("ssd", total, 1e9),
            ),
        )

    def test_greedy_three_tier_plan(self, small_model, small_profile, topo3):
        plan = MultiTierSharder(batch_size=BATCH, steps=10, method="greedy").shard(
            small_model, small_profile, topo3
        )
        plan.validate(small_model, topo3)
        assert all(len(p.rows_per_tier) == 3 for p in plan)

    def test_greedy_orders_hotness_by_tier(self, small_model, small_profile, topo3):
        plan = MultiTierSharder(batch_size=BATCH, steps=10).shard(
            small_model, small_profile, topo3
        )
        # Hotter tiers hold hotter rows: coverage per row decreases with
        # tier for every split table.
        for placement, stats in zip(plan, small_profile):
            cdf = stats.cdf
            rows_seen = 0
            prev_density = np.inf
            for rows in placement.rows_per_tier:
                if rows == 0:
                    continue
                cov = cdf.coverage_of_rows(rows_seen + rows) - cdf.coverage_of_rows(
                    rows_seen
                )
                density = cov / rows
                assert density <= prev_density + 1e-12
                prev_density = density
                rows_seen += rows

    def test_milp_three_tier_small(self, small_profile, small_model, topo3):
        plan = MultiTierSharder(
            batch_size=BATCH, steps=6, method="milp", time_limit=120
        ).shard(small_model, small_profile, topo3)
        plan.validate(small_model, topo3)

    def test_two_tier_reduces_to_recshard_shape(
        self, small_model, small_profile, tight_topology
    ):
        plan = MultiTierSharder(batch_size=BATCH, steps=10).shard(
            small_model, small_profile, tight_topology
        )
        plan.validate(small_model, tight_topology)
        assert all(len(p.rows_per_tier) == 2 for p in plan)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            MultiTierSharder(batch_size=8, method="quantum")


class TestEvaluate:
    def test_expected_costs_sum_conserved(
        self, small_model, small_profile, tight_topology
    ):
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            small_model, small_profile, tight_topology
        )
        costs = expected_device_costs_ms(
            plan, small_model, small_profile, tight_topology, BATCH
        )
        assert costs.shape == (tight_topology.num_devices,)
        assert np.all(costs >= 0)
        assert expected_max_cost_ms(
            plan, small_model, small_profile, tight_topology, BATCH
        ) == pytest.approx(costs.max())

    def test_all_hbm_cheaper_than_all_uvm(
        self, small_model, small_profile, roomy_topology
    ):
        from repro.core.plan import ShardingPlan, TablePlacement

        all_hbm = ShardingPlan(
            strategy="hbm",
            placements=[
                TablePlacement(j, 0, (t.num_rows, 0))
                for j, t in enumerate(small_model.tables)
            ],
        )
        all_uvm = ShardingPlan(
            strategy="uvm",
            placements=[
                TablePlacement(j, 0, (0, t.num_rows))
                for j, t in enumerate(small_model.tables)
            ],
        )
        cost_hbm = expected_max_cost_ms(
            all_hbm, small_model, small_profile, roomy_topology, BATCH
        )
        cost_uvm = expected_max_cost_ms(
            all_uvm, small_model, small_profile, roomy_topology, BATCH
        )
        ratio = roomy_topology.hbm.bandwidth / roomy_topology.uvm.bandwidth
        assert cost_uvm == pytest.approx(cost_hbm * ratio, rel=1e-6)


class TestReclaimDead:
    def tight_host_topology(self, small_model, small_profile):
        """Host slice below total-but-above-live bytes (needs reclaim)."""
        live = sum(
            s.cdf.live_rows * t.row_bytes
            for s, t in zip(small_profile, small_model.tables)
        )
        total = small_model.total_bytes
        assert live < total
        return SystemTopology.two_tier(
            num_devices=1,
            hbm_capacity=small_model.tables[0].row_bytes * 64,
            hbm_bandwidth=200e9,
            uvm_capacity=int((live + total) / 2),
            uvm_bandwidth=10e9,
        )

    def test_fast_sharder_reclaims_dead_rows(self, small_model, small_profile):
        topo = self.tight_host_topology(small_model, small_profile)
        from repro.core.plan import PlanError

        with pytest.raises(PlanError):
            RecShardFastSharder(batch_size=BATCH, reclaim_dead=False).shard(
                small_model, small_profile, topo
            )
        plan = RecShardFastSharder(batch_size=BATCH, reclaim_dead=True).shard(
            small_model, small_profile, topo
        )
        assert plan.metadata["reclaim_dead"] is True
        plan.validate(small_model, topo)  # honours the reclaim metadata

    def test_milp_sharder_reclaims_dead_rows(self, small_model, small_profile):
        topo = self.tight_host_topology(small_model, small_profile)
        plan = RecShardSharder(
            batch_size=BATCH, steps=10, time_limit=60, reclaim_dead=True
        ).shard(small_model, small_profile, topo)
        plan.validate(small_model, topo)
        assert plan.metadata.get("reclaim_dead") is True

    def test_validate_rejects_without_metadata(self, small_model, small_profile):
        topo = self.tight_host_topology(small_model, small_profile)
        plan = RecShardFastSharder(batch_size=BATCH, reclaim_dead=True).shard(
            small_model, small_profile, topo
        )
        from repro.core.plan import PlanError, ShardingPlan

        stripped = ShardingPlan(
            strategy="no-reclaim", placements=list(plan.placements)
        )
        with pytest.raises(PlanError):
            stripped.validate(small_model, topo)
