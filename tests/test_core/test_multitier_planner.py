"""Parity and integration tests for the vectorized multi-tier planner.

The workspace-array greedy path of
:class:`~repro.core.multitier.MultiTierSharder` must reproduce the
scalar heapq waterfill's plans exactly (device homes and per-tier row
splits), warm starts included, and plug into
:func:`~repro.core.workspace.shard_sweep` tier grids.
"""

import numpy as np
import pytest

from repro.core import MultiTierSharder, PlannerWorkspace, shard_sweep
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model


def build_topology(total, num_tiers=3, num_devices=3):
    names = ("hbm", "dram", "ssd", "hdd")
    bandwidths = (200e9, 20e9, 2e9, 0.4e9)
    tiers = [
        MemoryTier(
            names[t],
            total if t == num_tiers - 1 else int(total * 0.15 / num_devices),
            bandwidths[t],
        )
        for t in range(num_tiers)
    ]
    return SystemTopology(num_devices=num_devices, tiers=tuple(tiers))


def assert_plans_equal(a, b):
    assert len(a) == len(b)
    for p, q in zip(a, b):
        assert p.rows_per_tier == q.rows_per_tier, p.table_index
        assert p.device == q.device, p.table_index


class TestVectorizedGreedyParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("num_tiers", [2, 3, 4])
    def test_plan_parity(self, seed, num_tiers):
        model = build_model(num_tables=8, seed=seed)
        profile = analytic_profile(model)
        topology = build_topology(model.total_bytes, num_tiers)
        vec = MultiTierSharder(batch_size=256, steps=15).shard(
            model, profile, topology
        )
        sca = MultiTierSharder(
            batch_size=256, steps=15, vectorized=False
        ).shard(model, profile, topology)
        assert_plans_equal(vec, sca)

    def test_warm_start_parity_and_homes(self):
        model = build_model(num_tables=8, seed=4)
        profile = analytic_profile(model)
        topology = build_topology(model.total_bytes)
        cold = MultiTierSharder(batch_size=256, steps=15).shard(
            model, profile, topology
        )
        warm_v = MultiTierSharder(batch_size=256, steps=15).shard(
            model, profile, topology, warm_start=cold
        )
        warm_s = MultiTierSharder(
            batch_size=256, steps=15, vectorized=False
        ).shard(model, profile, topology, warm_start=cold)
        assert_plans_equal(warm_v, warm_s)
        assert warm_v.metadata["warm_started"]
        # Same profile, same topology: every table keeps its home.
        assert [p.device for p in warm_v] == [p.device for p in cold]

    def test_workspace_reuse_matches_fresh_build(self):
        model = build_model(num_tables=6, seed=5)
        profile = analytic_profile(model)
        topology = build_topology(model.total_bytes)
        ws = PlannerWorkspace(model, profile, steps=15)
        sharder = MultiTierSharder(batch_size=256, steps=15)
        from_ws = sharder.shard(model, profile, topology, workspace=ws)
        fresh = sharder.shard(model, profile, topology)
        assert_plans_equal(from_ws, fresh)
        # Estimated-cost metadata is stamped on both.
        assert from_ws.metadata["estimated_cost_batch_size"] == 256
        np.testing.assert_allclose(
            from_ws.metadata["estimated_max_cost_ms"],
            fresh.metadata["estimated_max_cost_ms"],
        )

    def test_steps_mismatch_rejected(self):
        model = build_model(num_tables=4, seed=6)
        profile = analytic_profile(model)
        topology = build_topology(model.total_bytes)
        ws = PlannerWorkspace(model, profile, steps=10)
        with pytest.raises(ValueError):
            MultiTierSharder(batch_size=64, steps=20).shard(
                model, profile, topology, workspace=ws
            )


class TestTierSweep:
    def test_tier_count_grid_over_one_workspace(self):
        model = build_model(num_tables=6, seed=7)
        profile = analytic_profile(model)
        total = model.total_bytes
        ws = PlannerWorkspace(model, profile, steps=15)
        sharder = MultiTierSharder(batch_size=128, steps=15)
        grid = [2, 3, 4]
        plans = shard_sweep(
            ws,
            sharder=sharder,
            topologies=[build_topology(total, t) for t in grid],
            labels=[f"tiers={t}" for t in grid],
        )
        assert [p.metadata["sweep_key"] for p in plans] == [
            "tiers=2", "tiers=3", "tiers=4",
        ]
        for num_tiers, plan in zip(grid, plans):
            assert all(len(p.rows_per_tier) == num_tiers for p in plan)
            plan.validate(model, build_topology(total, num_tiers))

    def test_label_count_mismatch_rejected(self):
        model = build_model(num_tables=4, seed=8)
        profile = analytic_profile(model)
        ws = PlannerWorkspace(model, profile, steps=15)
        with pytest.raises(ValueError):
            shard_sweep(
                ws,
                sharder=MultiTierSharder(batch_size=64, steps=15),
                topologies=[build_topology(model.total_bytes)],
                labels=["a", "b"],
            )
