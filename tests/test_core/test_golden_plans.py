"""Golden-fixture regression tests for the planners.

The parity suites pin the vectorized paths against their scalar
references, but a refactor that shifts *both* paths in lockstep would
sail through them.  These tests pin absolute planner output: for fixed
seeds and topologies, every placement (device home and per-tier row
split) of the MILP, fast-heuristic, and multi-tier greedy sharders must
match the serialized plans under ``tests/fixtures/`` exactly.

When a change *intentionally* alters placements (a cost-model fix, a
tie-break change), regenerate the fixtures and review the diff::

    PYTHONPATH=src python -m tests.test_core.test_golden_plans

The MILP case runs the pure-Python branch-and-bound backend so the
pinned solution does not depend on the installed scipy/HiGHS version.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import MultiTierSharder, RecShardFastSharder, RecShardSharder
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

FIXTURES = Path(__file__).parent.parent / "fixtures"


def _two_tier(total: int, hbm_share: float = 0.45) -> SystemTopology:
    return SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=int(total * hbm_share / 2),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )


def _three_tier(total: int) -> SystemTopology:
    return SystemTopology(
        num_devices=2,
        tiers=(
            MemoryTier("hbm", int(total * 0.18 / 2), 200e9),
            MemoryTier("dram", int(total * 0.18 / 2), 20e9),
            MemoryTier("ssd", total, 2e9),
        ),
    )


def _fast_plan(seed: int, reclaim_dead: bool = False):
    model = build_model(num_tables=6, seed=seed)
    profile = analytic_profile(model)
    topology = _two_tier(model.total_bytes)
    plan = RecShardFastSharder(
        batch_size=128, steps=40, reclaim_dead=reclaim_dead
    ).shard(model, profile, topology)
    return plan


def _milp_plan():
    model = build_model(num_tables=4, rows=64, seed=17)
    profile = analytic_profile(model)
    topology = _two_tier(model.total_bytes)
    plan = RecShardSharder(
        batch_size=64,
        steps=6,
        formulation="convex",
        backend="branch_bound",
        time_limit=60,
        fallback=False,
    ).shard(model, profile, topology)
    return plan


def _multitier_plan(seed: int):
    model = build_model(num_tables=6, seed=seed)
    profile = analytic_profile(model)
    topology = _three_tier(model.total_bytes)
    plan = MultiTierSharder(batch_size=128, steps=12).shard(
        model, profile, topology
    )
    return plan


#: fixture name -> plan builder.  Builders must be fully deterministic:
#: seeded worlds, analytic profiles, deterministic solver backends.
GOLDEN_PLANS = {
    "fast_tight_seed0": lambda: _fast_plan(0),
    "fast_tight_seed1": lambda: _fast_plan(1),
    "fast_reclaim_seed2": lambda: _fast_plan(2, reclaim_dead=True),
    "milp_convex_branch_bound": _milp_plan,
    "multitier_greedy_seed0": lambda: _multitier_plan(0),
    "multitier_greedy_seed1": lambda: _multitier_plan(1),
}


def serialize(plan) -> dict:
    return {
        "strategy": plan.strategy,
        "solver": plan.metadata.get("solver"),
        "placements": [
            {
                "table": p.table_index,
                "device": p.device,
                "rows_per_tier": list(p.rows_per_tier),
            }
            for p in plan
        ],
    }


@pytest.mark.parametrize("name", sorted(GOLDEN_PLANS))
def test_planner_output_matches_golden_fixture(name):
    path = FIXTURES / f"plan_{name}.json"
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        "`PYTHONPATH=src python -m tests.test_core.test_golden_plans`"
    )
    golden = json.loads(path.read_text())
    current = serialize(GOLDEN_PLANS[name]())
    assert current["strategy"] == golden["strategy"]
    assert current["solver"] == golden["solver"]
    for mine, pinned in zip(current["placements"], golden["placements"]):
        assert mine == pinned, (
            f"{name}: table {pinned['table']} placement drifted "
            f"(pinned {pinned}, got {mine}) — if intentional, regenerate "
            "the fixtures and review the diff"
        )
    assert len(current["placements"]) == len(golden["placements"])


def test_builders_are_deterministic():
    """The pin is only meaningful if rebuilding twice agrees."""
    name = "fast_tight_seed0"
    assert serialize(GOLDEN_PLANS[name]()) == serialize(GOLDEN_PLANS[name]())


def main() -> None:
    FIXTURES.mkdir(exist_ok=True)
    for name, builder in sorted(GOLDEN_PLANS.items()):
        path = FIXTURES / f"plan_{name}.json"
        path.write_text(json.dumps(serialize(builder()), indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
