"""Parity tests for the vectorized planner engine.

The vectorized sharder and batched evaluator must be *exact* drop-ins
for their scalar references: the hypothesis-style seed loops here
generate random specs, topologies (two-tier and HBM/DRAM/SSD), and
warm-start replans, and pin plan equality / evaluator agreement for
every draw.
"""

import numpy as np
import pytest

from repro.core import (
    MultiTierSharder,
    PlannerWorkspace,
    RecShardFastSharder,
    ShardingPlan,
    TablePlacement,
    expected_device_costs_ms,
    expected_device_costs_ms_many,
    shard_sweep,
)
from repro.baselines import make_baseline
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from repro.stats.profiler import TraceProfiler
from repro.data.synthetic import TraceGenerator

from .conftest import build_model

BATCH = 256


def assert_plans_identical(scalar_plan, fast_plan):
    assert len(scalar_plan) == len(fast_plan)
    for a, b in zip(scalar_plan, fast_plan):
        assert a.rows_per_tier == b.rows_per_tier, f"table {a.table_index}"
        assert a.device == b.device, f"table {a.table_index}"


def random_two_tier(model, rng):
    total = model.total_bytes
    devices = int(rng.integers(1, 4))
    hbm_frac = float(rng.choice([0.15, 0.3, 0.45, 0.7, 1.1]))
    return SystemTopology.two_tier(
        num_devices=devices,
        hbm_capacity=int(total * hbm_frac / devices),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )


def observed_profile(model, seed):
    profiler = TraceProfiler(model, sample_rate=1.0, seed=seed)
    generator = TraceGenerator(model, batch_size=512, seed=seed + 1000)
    for batch in generator.batches(2):
        profiler.consume(batch)
    return profiler.finish()


class TestSharderParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_cold_plans_identical(self, seed):
        rng = np.random.default_rng(seed)
        model = build_model(
            num_tables=int(rng.integers(4, 12)),
            rows=int(rng.integers(150, 900)),
            seed=seed,
        )
        profile = analytic_profile(model)
        topology = random_two_tier(model, rng)
        scalar = RecShardFastSharder(batch_size=BATCH, vectorized=False)
        fast = RecShardFastSharder(batch_size=BATCH, vectorized=True)
        plan_scalar = scalar.shard(model, profile, topology)
        plan_fast = fast.shard(model, profile, topology)
        assert_plans_identical(plan_scalar, plan_fast)
        plan_fast.validate(model, topology)
        # Derived metadata agrees too (same loads, same accumulation).
        assert plan_scalar.metadata["estimated_device_costs_ms"] == (
            plan_fast.metadata["estimated_device_costs_ms"]
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_warm_start_replans_identical(self, seed):
        rng = np.random.default_rng(100 + seed)
        model = build_model(num_tables=8, rows=500, seed=seed)
        topology = random_two_tier(model, rng)
        scalar = RecShardFastSharder(batch_size=BATCH, vectorized=False)
        fast = RecShardFastSharder(batch_size=BATCH, vectorized=True)
        profile = analytic_profile(model)
        plan_scalar = scalar.shard(model, profile, topology)
        workspace = PlannerWorkspace(model, profile, steps=fast.steps)
        plan_fast = fast.shard(model, profile, topology, workspace=workspace)
        assert_plans_identical(plan_scalar, plan_fast)
        # Replan from a drifted (trace-observed) profile, warm-started
        # from the outgoing plan; the workspace refreshes in place.
        observed = observed_profile(model, seed)
        workspace.refresh(observed)
        warm_fast = fast.shard(
            model, observed, topology,
            warm_start=plan_fast, workspace=workspace,
        )
        warm_scalar = scalar.shard(
            model, observed, topology, warm_start=plan_scalar
        )
        assert_plans_identical(warm_scalar, warm_fast)
        assert warm_fast.metadata.get("warm_started") is True

    @pytest.mark.parametrize(
        "flags",
        [
            dict(use_coverage=False),
            dict(use_pooling=False),
            dict(use_coverage=False, use_pooling=False),
            dict(reclaim_dead=True),
            dict(steps=37),
        ],
    )
    def test_flag_variants_identical(self, flags, small_model, tight_topology):
        profile = analytic_profile(small_model)
        scalar = RecShardFastSharder(
            batch_size=BATCH, vectorized=False, **flags
        )
        fast = RecShardFastSharder(batch_size=BATCH, vectorized=True, **flags)
        assert_plans_identical(
            scalar.shard(small_model, profile, tight_topology),
            fast.shard(small_model, profile, tight_topology),
        )

    def test_workspace_refresh_matches_fresh_build(self, small_model):
        p0 = analytic_profile(small_model)
        p1 = observed_profile(small_model, 3)
        refreshed = PlannerWorkspace(small_model, p0, steps=20)
        refreshed.refresh(p1)
        fresh = PlannerWorkspace(small_model, p1, steps=20)
        np.testing.assert_array_equal(refreshed.frac_rows, fresh.frac_rows)
        np.testing.assert_array_equal(refreshed.grid_rows, fresh.grid_rows)
        np.testing.assert_array_equal(
            refreshed.cum_fraction_flat, fresh.cum_fraction_flat
        )
        np.testing.assert_array_equal(
            refreshed.total_accesses, fresh.total_accesses
        )

    def test_workspace_rejects_mismatched_profile(self, small_model):
        other = build_model(num_tables=3, seed=9)
        workspace = PlannerWorkspace(
            small_model, analytic_profile(small_model), steps=10
        )
        with pytest.raises(ValueError):
            workspace.refresh(analytic_profile(other))

    def test_sharder_rejects_mismatched_workspace_steps(
        self, small_model, tight_topology
    ):
        profile = analytic_profile(small_model)
        workspace = PlannerWorkspace(small_model, profile, steps=10)
        sharder = RecShardFastSharder(batch_size=BATCH, steps=20)
        with pytest.raises(ValueError):
            sharder.shard(
                small_model, profile, tight_topology, workspace=workspace
            )


class TestSweep:
    def test_budget_sweep_matches_direct_shards(self, small_model):
        profile = analytic_profile(small_model)
        total = small_model.total_bytes
        base = SystemTopology.two_tier(2, int(total * 0.6 / 2), 200e9, total, 10e9)
        sharder = RecShardFastSharder(batch_size=BATCH)
        workspace = PlannerWorkspace(small_model, profile, steps=sharder.steps)
        budgets = (0.5, 1.0, 1.5)
        plans = shard_sweep(
            workspace, sharder=sharder, budgets=budgets, base_topology=base
        )
        assert [p.metadata["sweep_key"] for p in plans] == [
            "hbm_scale=0.5", "hbm_scale=1", "hbm_scale=1.5",
        ]
        for scale, plan in zip(budgets, plans):
            scaled = SystemTopology.two_tier(
                2, int(round(int(total * 0.6 / 2) * scale)), 200e9, total, 10e9
            )
            direct = sharder.shard(small_model, profile, scaled)
            assert_plans_identical(direct, plan)

    def test_topology_sweep_and_bad_args(self, small_model):
        profile = analytic_profile(small_model)
        total = small_model.total_bytes
        sharder = RecShardFastSharder(batch_size=BATCH)
        workspace = PlannerWorkspace(small_model, profile, steps=sharder.steps)
        topologies = [
            SystemTopology.two_tier(d, int(total * 0.5 / d), 200e9, total, 10e9)
            for d in (1, 2)
        ]
        plans = shard_sweep(workspace, sharder=sharder, topologies=topologies)
        assert [p.metadata["sweep_key"] for p in plans] == ["gpus=1", "gpus=2"]
        with pytest.raises(ValueError):
            shard_sweep(workspace, sharder=sharder)
        with pytest.raises(ValueError):
            shard_sweep(
                workspace, sharder=sharder,
                topologies=topologies, budgets=(1.0,),
            )
        with pytest.raises(ValueError):
            shard_sweep(workspace, sharder=sharder, budgets=(1.0,))
        with pytest.raises(ValueError, match="ICDF steps"):
            shard_sweep(
                PlannerWorkspace(small_model, profile, steps=7),
                sharder=sharder, topologies=topologies,
            )


class TestBatchedEvaluator:
    def _plan_population(self, model, profile, topology):
        plans = [
            RecShardFastSharder(batch_size=BATCH).shard(model, profile, topology),
            make_baseline("Size-Based").shard(model, profile, topology),
            make_baseline("Lookup-Based").shard(model, profile, topology),
        ]
        # A degenerate hand-built plan exercises the 0 / hash_size edges.
        plans.append(
            ShardingPlan(
                strategy="all-uvm",
                placements=[
                    TablePlacement(j, 0, (0, t.num_rows))
                    for j, t in enumerate(model.tables)
                ],
            )
        )
        return plans

    @pytest.mark.parametrize("seed", range(5))
    def test_many_matches_scalar_two_tier(self, seed):
        rng = np.random.default_rng(200 + seed)
        model = build_model(num_tables=int(rng.integers(3, 9)), seed=seed)
        profile = (
            analytic_profile(model) if seed % 2 else observed_profile(model, seed)
        )
        topology = random_two_tier(model, rng)
        plans = self._plan_population(model, profile, topology)
        batched = expected_device_costs_ms_many(
            plans, model, profile, topology, BATCH
        )
        assert batched.shape == (len(plans), topology.num_devices)
        for plan, row in zip(plans, batched):
            np.testing.assert_allclose(
                row,
                expected_device_costs_ms(plan, model, profile, topology, BATCH),
                rtol=1e-12, atol=1e-15,
            )

    def test_many_matches_scalar_three_tier(self, small_model, small_profile):
        total = small_model.total_bytes
        topo3 = SystemTopology(
            num_devices=2,
            tiers=(
                MemoryTier("hbm", int(total * 0.2 / 2), 200e9),
                MemoryTier("dram", int(total * 0.4 / 2), 10e9),
                MemoryTier("ssd", total, 1e9),
            ),
        )
        plan = MultiTierSharder(batch_size=BATCH, steps=10).shard(
            small_model, small_profile, topo3
        )
        batched = expected_device_costs_ms_many(
            [plan], small_model, small_profile, topo3, BATCH
        )[0]
        np.testing.assert_allclose(
            batched,
            expected_device_costs_ms(
                plan, small_model, small_profile, topo3, BATCH
            ),
            rtol=1e-12, atol=1e-15,
        )
        # Multi-tier plans carry evaluator-backed metadata now.
        assert plan.metadata["estimated_max_cost_ms"] == pytest.approx(
            float(batched.max())
        )

    def test_ablation_flags_match(self, small_model, small_profile, tight_topology):
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            small_model, small_profile, tight_topology
        )
        for flags in [
            dict(use_coverage=False),
            dict(use_pooling=False),
            dict(use_coverage=False, use_pooling=False),
        ]:
            np.testing.assert_allclose(
                expected_device_costs_ms_many(
                    [plan], small_model, small_profile, tight_topology,
                    BATCH, **flags,
                )[0],
                expected_device_costs_ms(
                    plan, small_model, small_profile, tight_topology,
                    BATCH, **flags,
                ),
                rtol=1e-12, atol=1e-15,
            )

    def test_workspace_reuse_gives_same_answer(
        self, small_model, small_profile, tight_topology
    ):
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            small_model, small_profile, tight_topology
        )
        workspace = PlannerWorkspace(small_model, small_profile, steps=10)
        np.testing.assert_array_equal(
            expected_device_costs_ms_many(
                [plan], small_model, small_profile, tight_topology, BATCH,
                workspace=workspace,
            ),
            expected_device_costs_ms_many(
                [plan], small_model, small_profile, tight_topology, BATCH
            ),
        )

    def test_empty_population(self, small_model, small_profile, tight_topology):
        out = expected_device_costs_ms_many(
            [], small_model, small_profile, tight_topology, BATCH
        )
        assert out.shape == (0, tight_topology.num_devices)


class TestTierCountGuard:
    def _three_tier_plan(self, model):
        return ShardingPlan(
            strategy="3tier",
            placements=[
                TablePlacement(j, 0, (t.num_rows, 0, 0))
                for j, t in enumerate(model.tables)
            ],
        )

    def test_scalar_evaluator_rejects_extra_tiers(
        self, small_model, small_profile, tight_topology
    ):
        plan = self._three_tier_plan(small_model)
        with pytest.raises(ValueError, match="tiers"):
            expected_device_costs_ms(
                plan, small_model, small_profile, tight_topology, BATCH
            )

    def test_batched_evaluator_rejects_extra_tiers(
        self, small_model, small_profile, tight_topology
    ):
        plan = self._three_tier_plan(small_model)
        with pytest.raises(ValueError, match="tiers"):
            expected_device_costs_ms_many(
                [plan], small_model, small_profile, tight_topology, BATCH
            )

    def test_fewer_tiers_than_topology_still_allowed(
        self, small_model, small_profile
    ):
        # A two-tier split under a three-tier topology charges only the
        # listed tiers (the extra tier simply holds nothing).
        total = small_model.total_bytes
        topo3 = SystemTopology(
            num_devices=1,
            tiers=(
                MemoryTier("hbm", total, 200e9),
                MemoryTier("dram", total, 10e9),
                MemoryTier("ssd", total, 1e9),
            ),
        )
        plan = ShardingPlan(
            strategy="2tier",
            placements=[
                TablePlacement(j, 0, (t.num_rows, 0))
                for j, t in enumerate(small_model.tables)
            ],
        )
        costs = expected_device_costs_ms(
            plan, small_model, small_profile, topo3, BATCH
        )
        assert costs.shape == (1,)
        assert costs[0] > 0


class TestVectorizedCdfQueries:
    @pytest.mark.parametrize("seed", range(4))
    def test_coverage_of_rows_many_matches_scalar(self, seed):
        rng = np.random.default_rng(300 + seed)
        counts = rng.integers(0, 50, size=200).astype(float)
        if seed == 3:
            counts[:] = 0.0  # the zero-total edge case
        from repro.stats.cdf import FrequencyCDF

        cdf = FrequencyCDF(counts)
        queries = np.array(
            [-5, 0, 1, 2, 50, 199, 200, 201, 10_000], dtype=np.int64
        )
        np.testing.assert_array_equal(
            cdf.coverage_of_rows_many(queries),
            np.array([cdf.coverage_of_rows(int(q)) for q in queries]),
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_fractional_rows_many_matches_scalar(self, seed):
        rng = np.random.default_rng(400 + seed)
        counts = rng.pareto(1.1, size=300)
        counts[rng.random(300) < 0.3] = 0.0
        if seed == 3:
            counts[:] = 0.0
        from repro.stats.cdf import FrequencyCDF

        cdf = FrequencyCDF(counts)
        fractions = np.linspace(0.0, 1.0, 101)
        np.testing.assert_array_equal(
            cdf.fractional_rows_for_coverage_many(fractions),
            np.array(
                [cdf.fractional_rows_for_coverage(float(f)) for f in fractions]
            ),
        )
        with pytest.raises(ValueError):
            cdf.fractional_rows_for_coverage_many(np.array([0.5, 1.5]))
