"""Tests for the RecShard MILP formulation (Section 4.2)."""

import pytest

from repro.core.formulation import RecShardInputs, build_milp
from repro.milp.result import SolveStatus


class TestInputs:
    def test_from_profile(self, small_model, small_profile):
        inputs = RecShardInputs.from_profile(small_model, small_profile, steps=10)
        assert len(inputs) == small_model.num_tables
        table = inputs.tables[0]
        assert table.hash_size == small_model.tables[0].num_rows
        assert table.icdf.steps == 10
        assert table.avg_pooling > 0

    def test_profile_length_mismatch(self, small_model, small_profile):
        small_profile.tables.pop()
        with pytest.raises(ValueError):
            RecShardInputs.from_profile(small_model, small_profile)


class TestBuildMilp:
    def test_structure_counts(self, small_model, small_profile, tight_topology):
        inputs = RecShardInputs.from_profile(small_model, small_profile, steps=8)
        handles = build_milp(inputs, tight_topology, batch_size=256)
        num_devices = tight_topology.num_devices
        num_tables = len(inputs)
        assert len(handles.assign) == num_devices
        assert len(handles.assign[0]) == num_tables
        assert len(handles.pct) == num_tables
        # Binary count: only the assignment variables in convex form.
        assert handles.model.num_binary == num_devices * num_tables

    def test_step_formulation_has_step_binaries(
        self, small_model, small_profile, tight_topology
    ):
        inputs = RecShardInputs.from_profile(small_model, small_profile, steps=8)
        handles = build_milp(
            inputs, tight_topology, batch_size=256, formulation="step"
        )
        expected = tight_topology.num_devices * len(inputs) + len(inputs) * 9
        assert handles.model.num_binary == expected

    def test_rejects_non_two_tier(self, small_model, small_profile):
        from repro.memory import three_tier_node

        inputs = RecShardInputs.from_profile(small_model, small_profile, steps=4)
        with pytest.raises(ValueError):
            build_milp(inputs, three_tier_node(num_gpus=2), batch_size=64)

    def test_unknown_formulation(self, small_model, small_profile, tight_topology):
        inputs = RecShardInputs.from_profile(small_model, small_profile, steps=4)
        with pytest.raises(ValueError):
            build_milp(inputs, tight_topology, batch_size=64, formulation="magic")


class TestSolutionProperties:
    def solve(self, model, profile, topology, **kwargs):
        inputs = RecShardInputs.from_profile(model, profile, steps=10)
        handles = build_milp(inputs, topology, batch_size=256, **kwargs)
        result = handles.model.solve(backend="highs", time_limit=60)
        assert result.status.has_solution
        return inputs, handles, result

    def test_each_table_assigned_once(self, small_model, small_profile, tight_topology):
        inputs, handles, result = self.solve(small_model, small_profile, tight_topology)
        for j in range(len(inputs)):
            total = sum(
                result.value(handles.assign[m][j])
                for m in range(tight_topology.num_devices)
            )
            assert total == pytest.approx(1.0)

    def test_hbm_capacity_respected(self, small_model, small_profile, tight_topology):
        inputs, handles, result = self.solve(small_model, small_profile, tight_topology)
        cap_mib = tight_topology.hbm.capacity_bytes / 2**20
        for m in range(tight_topology.num_devices):
            used = sum(
                result.value(handles.mem[j])
                for j in range(len(inputs))
                if result.value(handles.assign[m][j]) > 0.5
            )
            assert used <= cap_mib * (1 + 1e-6)

    def test_roomy_topology_puts_everything_in_hbm(
        self, small_model, small_profile, roomy_topology
    ):
        inputs, handles, result = self.solve(small_model, small_profile, roomy_topology)
        for j, table in enumerate(inputs.tables):
            assert result.value(handles.pct[j]) == pytest.approx(1.0, abs=1e-6)

    def test_step_and_convex_agree(self, small_model, small_profile, tight_topology):
        # The convex formulation allows continuous split points, so it is
        # a refinement of the on-grid step formulation: never worse, and
        # converging to it as the grid refines.
        def solve(formulation, steps):
            inputs = RecShardInputs.from_profile(
                small_model, small_profile, steps=steps
            )
            handles = build_milp(
                inputs, tight_topology, batch_size=256, formulation=formulation
            )
            return handles.model.solve(backend="highs", time_limit=60)

        res_convex = solve("convex", 40)
        res_step = solve("step", 40)
        assert res_convex.status.has_solution and res_step.status.has_solution
        assert res_convex.objective <= res_step.objective + 1e-9
        assert res_convex.objective == pytest.approx(res_step.objective, rel=0.08)

    def test_symmetry_breaking_preserves_objective(
        self, small_model, small_profile, tight_topology
    ):
        _, _, res_sym = self.solve(
            small_model, small_profile, tight_topology, symmetry_breaking=True
        )
        _, _, res_raw = self.solve(
            small_model, small_profile, tight_topology, symmetry_breaking=False
        )
        assert res_sym.objective == pytest.approx(res_raw.objective, rel=0.02)

    def test_makespan_bounds_device_costs(
        self, small_model, small_profile, tight_topology
    ):
        inputs, handles, result = self.solve(small_model, small_profile, tight_topology)
        # The objective carries a vanishing secondary term; compare
        # against the makespan variable itself.
        makespan = result.value(handles.max_cost)
        for cost_expr in handles.device_costs:
            assert cost_expr.value(result.values) <= makespan * (1 + 1e-6)
        assert makespan == pytest.approx(result.objective, rel=1e-3)

    def test_ablation_flags_change_cost_surface(
        self, small_model, small_profile, tight_topology
    ):
        # Disabling coverage/pooling changes the optimum (Table 6 knobs).
        _, _, res_full = self.solve(small_model, small_profile, tight_topology)
        _, _, res_cdf = self.solve(
            small_model,
            small_profile,
            tight_topology,
            use_coverage=False,
            use_pooling=False,
        )
        assert res_full.objective != pytest.approx(res_cdf.objective, rel=1e-3)

    def test_reclaim_dead_relaxes_host_capacity(self, small_model, small_profile):
        # A host tier sized below total-but-above-live bytes is feasible
        # only when dead rows are reclaimed.
        from repro.memory.topology import SystemTopology

        live = sum(s.cdf.live_rows * t.row_bytes
                   for s, t in zip(small_profile, small_model.tables))
        total = small_model.total_bytes
        assert live < total  # fixture has dead rows
        topo = SystemTopology.two_tier(
            num_devices=1,
            hbm_capacity=0,
            hbm_bandwidth=200e9,
            uvm_capacity=int((live + total) / 2),
            uvm_bandwidth=10e9,
        )
        inputs = RecShardInputs.from_profile(small_model, small_profile, steps=6)
        strict = build_milp(inputs, topo, batch_size=64, reclaim_dead=False)
        relaxed = build_milp(inputs, topo, batch_size=64, reclaim_dead=True)
        assert strict.model.solve(time_limit=30).status == SolveStatus.INFEASIBLE
        assert relaxed.model.solve(time_limit=30).status.has_solution
