"""Tests for sharding plan structures and invariants."""

import pytest

from repro.core.plan import PlanError, ShardingPlan, TablePlacement
from repro.memory.topology import SystemTopology


def make_plan(rows_list, devices=None, strategy="test"):
    devices = devices or [0] * len(rows_list)
    placements = [
        TablePlacement(table_index=i, device=d, rows_per_tier=r)
        for i, (r, d) in enumerate(zip(rows_list, devices))
    ]
    return ShardingPlan(strategy=strategy, placements=placements)


class TestTablePlacement:
    def test_fractions(self):
        p = TablePlacement(0, 0, (25, 75))
        assert p.total_rows == 100
        assert p.hbm_rows == 25
        assert p.uvm_fraction == pytest.approx(0.75)
        assert p.tier_fraction(0) == pytest.approx(0.25)

    def test_empty_table(self):
        p = TablePlacement(0, 0, (0, 0))
        assert p.uvm_fraction == 0.0

    def test_negative_rows_rejected(self):
        with pytest.raises(PlanError):
            TablePlacement(0, 0, (-1, 10))

    def test_negative_device_rejected(self):
        with pytest.raises(PlanError):
            TablePlacement(0, -2, (1, 1))


class TestShardingPlan:
    def test_table_cover_enforced(self):
        placements = [TablePlacement(0, 0, (1, 0)), TablePlacement(0, 0, (1, 0))]
        with pytest.raises(PlanError):
            ShardingPlan(strategy="dup", placements=placements)

    def test_placements_sorted_by_table(self):
        plan = ShardingPlan(
            strategy="s",
            placements=[TablePlacement(1, 0, (1, 0)), TablePlacement(0, 0, (2, 0))],
        )
        assert [p.table_index for p in plan] == [0, 1]

    def test_tables_on_device(self):
        plan = make_plan([(1, 0)] * 4, devices=[0, 1, 0, 1])
        assert [p.table_index for p in plan.tables_on_device(0)] == [0, 2]

    def test_tier_rows_total(self):
        plan = make_plan([(10, 5), (0, 7)])
        assert plan.tier_rows_total(0) == 10
        assert plan.tier_rows_total(1) == 12


class TestValidation:
    def test_valid_plan(self, small_model, roomy_topology):
        rows = [(t.num_rows, 0) for t in small_model.tables]
        plan = make_plan(rows, devices=[0, 1] * 3)
        plan.validate(small_model, roomy_topology)  # no raise

    def test_row_sum_mismatch(self, small_model, roomy_topology):
        rows = [(t.num_rows + 1, 0) for t in small_model.tables]
        plan = make_plan(rows, devices=[0] * 6)
        with pytest.raises(PlanError, match="sums to"):
            plan.validate(small_model, roomy_topology)

    def test_device_out_of_range(self, small_model, roomy_topology):
        rows = [(t.num_rows, 0) for t in small_model.tables]
        plan = make_plan(rows, devices=[5] * 6)
        with pytest.raises(PlanError, match="out of range"):
            plan.validate(small_model, roomy_topology)

    def test_hbm_capacity_violation(self, small_model, tight_topology):
        # Everything in HBM cannot fit a tight topology.
        rows = [(t.num_rows, 0) for t in small_model.tables]
        plan = make_plan(rows, devices=[0, 1] * 3)
        with pytest.raises(PlanError, match="exceeds capacity"):
            plan.validate(small_model, tight_topology)

    def test_tier_count_mismatch(self, small_model):
        topo3 = SystemTopology.two_tier(2, 10**9, 100.0, 10**9, 10.0)
        rows = [(t.num_rows, 0, 0) for t in small_model.tables]  # 3 tiers
        plan = make_plan(rows)
        with pytest.raises(PlanError, match="tiers"):
            plan.validate(small_model, topo3)

    def test_missing_placement(self, small_model, roomy_topology):
        rows = [(t.num_rows, 0) for t in small_model.tables[:-1]]
        plan = make_plan(rows)
        with pytest.raises(PlanError, match="placements"):
            plan.validate(small_model, roomy_topology)


class TestDisparity:
    def test_disparity_directions(self):
        # Table 4 semantics: ours-HBM vs theirs-UVM and vice versa.
        mine = make_plan([(80, 20), (10, 90)])
        theirs = make_plan([(50, 50), (40, 60)])
        diff = mine.placement_disparity(theirs)
        # Table 0: we put 30 more rows in HBM; table 1: they put 30 more.
        assert diff["uvm_to_hbm"] == pytest.approx(30 / 200)
        assert diff["hbm_to_uvm"] == pytest.approx(30 / 200)

    def test_identical_plans_zero_disparity(self):
        a = make_plan([(80, 20), (10, 90)])
        b = make_plan([(80, 20), (10, 90)])
        diff = a.placement_disparity(b)
        assert diff == {"uvm_to_hbm": 0.0, "hbm_to_uvm": 0.0}

    def test_mismatched_plans_rejected(self):
        a = make_plan([(1, 0)])
        b = make_plan([(1, 0), (1, 0)])
        with pytest.raises(PlanError):
            a.placement_disparity(b)


class TestSummary:
    def test_summary_fields(self, small_model, roomy_topology):
        rows = [(t.num_rows, 0) for t in small_model.tables]
        plan = make_plan(rows, devices=[0, 1] * 3)
        summary = plan.summary(small_model, roomy_topology)
        assert summary["tables"] == 6
        assert summary["uvm_row_fraction"] == 0.0
        assert summary["tables_per_device"] == [3, 3]
