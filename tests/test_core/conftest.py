"""Shared fixtures for core-package tests: a small, fully-controlled world."""

import numpy as np
import pytest

from repro.data.feature import SparseFeatureSpec
from repro.data.model import EmbeddingTableSpec, ModelSpec
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile


def build_model(num_tables=6, rows=512, dim=8, seed=0):
    """A small model with heterogeneous statistics."""
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(num_tables):
        hash_size = int(rows * rng.uniform(0.5, 2.0))
        tables.append(
            EmbeddingTableSpec(
                feature=SparseFeatureSpec(
                    name=f"t{i}",
                    cardinality=hash_size * 2,
                    hash_size=hash_size,
                    alpha=float(rng.uniform(0.8, 1.5)),
                    avg_pooling=float(rng.uniform(2, 30)),
                    coverage=float(rng.uniform(0.2, 1.0)),
                    hash_seed=i,
                ),
                dim=dim,
            )
        )
    return ModelSpec(name="small", tables=tuple(tables))


@pytest.fixture
def small_model():
    return build_model()


@pytest.fixture
def small_profile(small_model):
    return analytic_profile(small_model)


@pytest.fixture
def tight_topology(small_model):
    """Two-tier topology where only ~45% of the model fits in HBM."""
    total = small_model.total_bytes
    return SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=int(total * 0.45 / 2),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )


@pytest.fixture
def roomy_topology(small_model):
    """Two-tier topology where everything fits in HBM."""
    total = small_model.total_bytes
    return SystemTopology.two_tier(
        num_devices=2,
        hbm_capacity=total,
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
