"""Hot-row replication: selection, capacity accounting, golden pin.

Covers the planner side of the replication subsystem
(:mod:`repro.core.replicate`): budget carving, hottest-first selection
(including the workspace bulk-query path), the monotone-in-budget and
never-over-capacity invariants as randomized property tests, and one
golden fixture pinning absolute selection output.

Regenerate the golden fixture (after an intentional selection change)::

    PYTHONPATH=src python -m tests.test_core.test_replicate
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    PlanError,
    PlannerWorkspace,
    RecShardFastSharder,
    ReplicatedPlan,
    ReplicationPolicy,
    build_replication,
    carve_replica_budget,
    plan_with_replication,
)
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

FIXTURES = Path(__file__).parent.parent / "fixtures"


def two_tier(total: int, num_devices: int = 4, hbm_share: float = 0.45):
    return SystemTopology.two_tier(
        num_devices=num_devices,
        hbm_capacity=int(total * hbm_share / num_devices),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )


def build_world(seed: int, num_tables: int = 8, num_devices: int = 4):
    model = build_model(num_tables=num_tables, seed=seed)
    profile = analytic_profile(model)
    topology = two_tier(model.total_bytes, num_devices=num_devices)
    return model, profile, topology


def replicate(seed: int, budget_fraction: float, workspace=True):
    model, profile, topology = build_world(seed)
    policy = ReplicationPolicy(
        capacity_bytes=int(
            model.total_bytes * budget_fraction / topology.num_devices
        )
    )
    sharder = RecShardFastSharder(batch_size=64, steps=40)
    ws = PlannerWorkspace(model, profile, steps=40) if workspace else None
    plan = plan_with_replication(
        sharder, model, profile, topology, policy, workspace=ws
    )
    return model, profile, topology, plan


class TestCarving:
    def test_carve_shrinks_fastest_tier_only(self):
        model, _, topology = build_world(0)
        policy = ReplicationPolicy(
            capacity_bytes=topology.tiers[0].capacity_bytes // 8
        )
        carved = carve_replica_budget(topology, policy)
        assert carved.tiers[0].capacity_bytes == (
            topology.tiers[0].capacity_bytes - policy.capacity_bytes
        )
        assert carved.tiers[1:] == topology.tiers[1:]
        assert carved.num_devices == topology.num_devices

    def test_zero_budget_is_identity(self):
        _, _, topology = build_world(0)
        assert carve_replica_budget(
            topology, ReplicationPolicy(capacity_bytes=0)
        ) is topology

    def test_budget_swallowing_the_tier_is_an_error(self):
        _, _, topology = build_world(0)
        policy = ReplicationPolicy(
            capacity_bytes=topology.tiers[0].capacity_bytes
        )
        with pytest.raises(PlanError):
            carve_replica_budget(topology, policy)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ReplicationPolicy(capacity_bytes=-1)


class TestSelection:
    def test_end_to_end_validates_and_replicates(self):
        model, _, topology, plan = replicate(0, budget_fraction=0.05)
        assert isinstance(plan, ReplicatedPlan)
        plan.validate(model, topology)
        assert plan.num_replicated_rows > 0
        assert "replication" in plan.metadata

    def test_replicas_are_fastest_tier_prefixes(self):
        model, _, topology, plan = replicate(1, budget_fraction=0.05)
        for placement, rows in zip(plan, plan.replica_rows):
            assert 0 <= rows <= placement.rows_per_tier[0]

    def test_selection_is_globally_hottest_first(self):
        """No unselected candidate row is hotter than a selected one."""
        model, profile, topology, plan = replicate(2, budget_fraction=0.04)
        selected_min = np.inf
        unselected_max = 0.0
        for j, stats in enumerate(profile):
            tier0 = plan[j].rows_per_tier[0]
            take = int(plan.replica_rows[j])
            ranked = stats.counts[stats.cdf.row_order[:tier0]]
            if take:
                selected_min = min(selected_min, float(ranked[:take].min()))
            if take < tier0:
                live = ranked[take:]
                live = live[live > 0]
                if live.size:
                    unselected_max = max(unselected_max, float(live.max()))
        assert plan.num_replicated_rows > 0
        assert selected_min >= unselected_max - 1e-9

    def test_workspace_and_profile_paths_agree(self):
        model, profile, topology, plan = replicate(3, budget_fraction=0.05)
        from_profile = build_replication(
            plan.policy, plan.plan, profile, model, topology
        )
        np.testing.assert_array_equal(
            plan.replica_rows, from_profile.replica_rows
        )

    def test_single_device_policy_is_inert(self):
        """One device means nowhere to route: nothing is carved (the
        budget must not shrink the plannable HBM) and nothing selected."""
        model = build_model(num_tables=4, seed=4)
        profile = analytic_profile(model)
        topology = two_tier(model.total_bytes, num_devices=1, hbm_share=0.9)
        policy = ReplicationPolicy(capacity_bytes=1 << 12)
        assert carve_replica_budget(topology, policy) is topology
        plan = RecShardFastSharder(batch_size=64, steps=40).shard(
            model, profile, topology
        )
        replicated = build_replication(
            policy, plan, profile, model, topology
        )
        assert replicated.num_replicated_rows == 0

    def test_leading_expected_counts_matches_profile(self):
        model, profile, _ = build_world(5)
        ws = PlannerWorkspace(model, profile, steps=40)
        limits = np.minimum(ws.live_rows, 64)
        counts, tables, ranks = ws.leading_expected_counts(limits)
        assert counts.size == int(limits.sum())
        for j, stats in enumerate(profile):
            mine = counts[tables == j]
            theirs = stats.counts[stats.cdf.row_order[: limits[j]]]
            np.testing.assert_allclose(mine, theirs, rtol=1e-9, atol=1e-9)
            np.testing.assert_array_equal(
                ranks[tables == j], np.arange(limits[j])
            )


class TestProperties:
    """Randomized invariants: monotone in budget, never over capacity."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_monotone_in_budget_and_within_capacity(self, seed):
        model, profile, topology = build_world(seed)
        plan = RecShardFastSharder(batch_size=64, steps=40).shard(
            model, profile, topology,
        )
        rng = np.random.default_rng(seed)
        hbm_cap = topology.tiers[0].capacity_bytes
        budgets = np.sort(
            rng.integers(0, hbm_cap // 2, size=6)
        )
        previous = None
        for budget in budgets:
            policy = ReplicationPolicy(capacity_bytes=int(budget))
            replicated = build_replication(
                policy, plan, profile, model, topology
            )
            # Never violates the budget (and the budget is the only
            # thing that can be violated here: the base plan was built
            # on the full topology, so the physical check is run on a
            # roomier-than-carved world and must use the budget bound).
            charged = replicated.replica_bytes_per_device(
                model, topology.num_devices
            )
            assert (charged <= budget).all()
            for placement, rows in zip(plan, replicated.replica_rows):
                assert rows <= placement.rows_per_tier[0]
            if previous is not None:
                assert (replicated.replica_rows >= previous).all(), (
                    "selection must be monotone in the budget"
                )
            previous = replicated.replica_rows

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_planned_replication_validates_on_physical_topology(self, seed):
        """The carve-then-select pipeline always emits a plan whose
        base + replica bytes fit the physical fastest tier."""
        model, _, topology, plan = replicate(seed, budget_fraction=0.06)
        plan.validate(model, topology)
        charged = plan.replica_bytes_per_device(model, topology.num_devices)
        for device in range(topology.num_devices):
            used = plan.plan.tier_bytes(model, device, 0) + charged[device]
            assert used <= topology.tiers[0].capacity_bytes

    def test_validate_rejects_over_budget_replicas(self):
        model, profile, topology, plan = replicate(0, budget_fraction=0.03)
        rows = plan.replica_rows.copy()
        fat = int(np.argmax(
            [p.rows_per_tier[0] - r for p, r in zip(plan, rows)]
        ))
        rows[fat] = plan[fat].rows_per_tier[0]
        bloated = ReplicatedPlan(plan.plan, rows, plan.policy)
        with pytest.raises(PlanError):
            bloated.validate(model, topology)

    def test_validate_rejects_non_resident_replicas(self):
        model, _, topology, plan = replicate(1, budget_fraction=0.03)
        rows = plan.replica_rows.copy()
        rows[0] = plan[0].rows_per_tier[0] + 1
        with pytest.raises(PlanError):
            ReplicatedPlan(plan.plan, rows, plan.policy).validate(
                model, topology
            )


# ---------------------------------------------------------------------
# Golden fixture: absolute selection output pinned for a fixed world.
# ---------------------------------------------------------------------
GOLDEN_NAME = "replicated_plan_seed0"


def build_golden() -> ReplicatedPlan:
    _, _, _, plan = replicate(0, budget_fraction=0.05)
    return plan


def serialize(plan: ReplicatedPlan) -> dict:
    return {
        "strategy": plan.strategy,
        "budget_bytes_per_device": int(plan.policy.capacity_bytes),
        "replica_rows": [int(r) for r in plan.replica_rows],
        "placements": [
            {
                "table": p.table_index,
                "device": p.device,
                "rows_per_tier": list(p.rows_per_tier),
            }
            for p in plan
        ],
    }


def test_replicated_plan_matches_golden_fixture():
    path = FIXTURES / f"plan_{GOLDEN_NAME}.json"
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        "`PYTHONPATH=src python -m tests.test_core.test_replicate`"
    )
    golden = json.loads(path.read_text())
    current = serialize(build_golden())
    assert current == golden, (
        "replica selection drifted from the pinned fixture — if "
        "intentional, regenerate and review the diff"
    )


def test_golden_builder_is_deterministic():
    assert serialize(build_golden()) == serialize(build_golden())


def main() -> None:
    FIXTURES.mkdir(exist_ok=True)
    path = FIXTURES / f"plan_{GOLDEN_NAME}.json"
    path.write_text(json.dumps(serialize(build_golden()), indent=2) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
