"""Tests for per-table sharding-strategy enumeration.

Covers the strategy value objects (:class:`TableStrategy`,
:class:`StrategyPlan`), the integer split helpers whose conservation
laws the executor's reduce step relies on, evaluator parity between an
all-row strategy plan and its plain base plan, the greedy
:func:`plan_with_strategies` refinement, the ``strategies=`` sweep arm,
and a golden fixture pinning the auto-picked plan on a wide-dim
workload.  Regenerate the fixture with::

    PYTHONPATH=src python -m tests.test_core.test_strategies
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    PlanError,
    PlannerWorkspace,
    RecShardFastSharder,
    StrategyPlan,
    TablePlacement,
    TableStrategy,
    expected_device_costs_ms_many,
    plan_with_strategies,
    proportional_split,
    resolve_strategy_kinds,
    shard_sweep,
    strategy_device_costs_ms,
    twrw_cell_rows,
    validate_scale_grid,
)
from repro.core.plan import ShardingPlan
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile
from tests.test_core.conftest import build_model

FIXTURES = Path(__file__).parent.parent / "fixtures"


def _roomy(total: int, num_devices: int = 4) -> SystemTopology:
    return SystemTopology.two_tier(
        num_devices=num_devices,
        hbm_capacity=int(total * 1.5 / num_devices),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )


def build_wide_model(seed: int = 0, wide_dim: int = 2048):
    """A workload with one dominant wide table.

    LPT already balances workloads of similar-sized tables, so the
    strategy menu only pays off when a single table dwarfs the rest —
    the shape column/twrw splits exist for.
    """
    base = build_model(num_tables=12, rows=512, dim=16, seed=seed)
    tables = list(base.tables)
    tables[0] = dataclasses.replace(tables[0], dim=wide_dim)
    return dataclasses.replace(base, name="wide", tables=tuple(tables))


def _world(num_tables=8, seed=0, dim=16, num_devices=4):
    model = build_model(num_tables=num_tables, rows=512, dim=dim, seed=seed)
    profile = analytic_profile(model)
    return model, profile, _roomy(model.total_bytes, num_devices)


def _base_plan(model, profile, topology):
    return RecShardFastSharder(batch_size=128, steps=40).shard(
        model, profile, topology
    )


def _mixed_strategies(model, plan, num_devices):
    """One column, one twrw, one table-wise, rest row — all valid."""
    strategies = [TableStrategy("row") for _ in range(len(plan))]
    t0 = model.tables[0]
    half = t0.dim // 2
    strategies[0] = TableStrategy(
        "column", devices=(0, 1), dims=(half, t0.dim - half)
    )
    t1 = model.tables[1]
    strategies[1] = TableStrategy(
        "twrw", devices=(1, 2), row_cuts=(t1.num_rows // 2,)
    )
    strategies[2] = TableStrategy("table")
    placements = list(plan)
    p2 = placements[2]
    rows = [0] * len(p2.rows_per_tier)
    rows[0] = p2.total_rows
    placements[2] = TablePlacement(
        table_index=p2.table_index,
        device=(p2.device + 1) % num_devices,
        rows_per_tier=tuple(rows),
    )
    base = ShardingPlan(
        placements=tuple(placements),
        strategy=plan.strategy,
        metadata=dict(plan.metadata),
    )
    return StrategyPlan(base, tuple(strategies))


# ----------------------------------------------------------------------
# Token resolution and value-object validation
# ----------------------------------------------------------------------


class TestResolveKinds:
    def test_auto_expands_to_all_kinds(self):
        assert set(resolve_strategy_kinds(["auto"])) == {
            "row", "table", "column", "twrw",
        }

    def test_row_always_appended(self):
        assert "row" in resolve_strategy_kinds(["column"])

    def test_string_input_is_one_token(self):
        assert resolve_strategy_kinds("table") == ("table", "row")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="diagonal"):
            resolve_strategy_kinds(["row", "diagonal"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            resolve_strategy_kinds([])


class TestTableStrategy:
    def test_row_and_table_take_no_shard_spec(self):
        with pytest.raises(PlanError, match="takes no shard spec"):
            TableStrategy("table", devices=(3,))
        with pytest.raises(PlanError, match="takes no shard spec"):
            TableStrategy("row", dims=(4, 4))

    def test_unknown_kind(self):
        with pytest.raises(PlanError, match="unknown strategy kind"):
            TableStrategy("diagonal")

    def test_column_needs_dim_per_device(self):
        with pytest.raises(PlanError, match="one dim per device"):
            TableStrategy("column", devices=(0, 1), dims=(8,))

    def test_column_rejects_zero_dim(self):
        with pytest.raises(PlanError, match=">= 1"):
            TableStrategy("column", devices=(0, 1), dims=(8, 0))

    def test_split_needs_two_distinct_devices(self):
        with pytest.raises(PlanError, match=">= 2 shard devices"):
            TableStrategy("column", devices=(0,), dims=(8,))
        with pytest.raises(PlanError, match="distinct"):
            TableStrategy("twrw", devices=(1, 1), row_cuts=(4,))

    def test_twrw_cuts_must_increase(self):
        with pytest.raises(PlanError):
            TableStrategy("twrw", devices=(0, 1, 2), row_cuts=(9, 4))

    def test_num_shards(self):
        assert TableStrategy("row").num_shards == 1
        strat = TableStrategy("column", devices=(0, 1), dims=(4, 4))
        assert strat.num_shards == 2


# ----------------------------------------------------------------------
# Integer split helpers: exact cases + conservation laws
# ----------------------------------------------------------------------


class TestProportionalSplit:
    def test_exact(self):
        out = proportional_split([10, 7, 0], [3, 1])
        assert out.tolist() == [[8, 2], [5, 2], [0, 0]]

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError, match="positive"):
            proportional_split([4], [0, 0])

    def test_randomized_conservation(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            counts = rng.integers(0, 10_000, size=rng.integers(1, 12))
            weights = rng.integers(1, 512, size=rng.integers(1, 6))
            out = proportional_split(counts, weights)
            assert out.dtype == np.int64
            assert (out >= 0).all()
            # Law 1: every row's shares sum exactly to its count.
            np.testing.assert_array_equal(out.sum(axis=1), counts)
            # Law 2: each share is within one lookup of exact
            # proportionality.
            exact = counts[:, None] * weights[None, :] / weights.sum()
            assert np.abs(out - exact).max() < 1.0


class TestTwrwCellRows:
    def test_exact(self):
        cells = twrw_cell_rows([5, 12], [4, 9], 12)
        assert cells.tolist() == [[4, 1, 0], [0, 4, 3]]

    def test_randomized_conservation(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            total = int(rng.integers(4, 5_000))
            n_tiers = int(rng.integers(1, 4))
            n_cuts = int(rng.integers(1, 4))
            bounds = np.sort(rng.integers(0, total, size=n_tiers))
            bounds[-1] = total
            cuts = np.unique(rng.integers(1, total, size=n_cuts))
            cells = twrw_cell_rows(bounds, cuts, total)
            # Rows conserve in every direction: overall, per tier
            # (matching the base plan's split), and per shard
            # (matching the cut ranges).
            assert int(cells.sum()) == total
            np.testing.assert_array_equal(
                cells.sum(axis=1), np.diff(np.concatenate(([0], bounds)))
            )
            np.testing.assert_array_equal(
                cells.sum(axis=0),
                np.diff(np.concatenate(([0], cuts, [total]))),
            )


# ----------------------------------------------------------------------
# StrategyPlan: validation + byte conservation
# ----------------------------------------------------------------------


class TestStrategyPlan:
    def test_length_mismatch(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        with pytest.raises(PlanError, match="strategies for"):
            StrategyPlan(plan, (TableStrategy("row"),))

    def test_column_dims_must_cover_table_dim(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        strategies = [TableStrategy("row") for _ in range(len(plan))]
        strategies[0] = TableStrategy("column", devices=(0, 1), dims=(4, 4))
        sp = StrategyPlan(plan, tuple(strategies))
        with pytest.raises(PlanError, match="dims sum"):
            sp.validate(model, topology)

    def test_twrw_cut_beyond_rows(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        strategies = [TableStrategy("row") for _ in range(len(plan))]
        strategies[0] = TableStrategy(
            "twrw", devices=(0, 1), row_cuts=(10**9,)
        )
        sp = StrategyPlan(plan, tuple(strategies))
        with pytest.raises(PlanError, match="cut beyond"):
            sp.validate(model, topology)

    def test_shard_device_out_of_range(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        t0 = model.tables[0]
        strategies = [TableStrategy("row") for _ in range(len(plan))]
        strategies[0] = TableStrategy(
            "column", devices=(0, 99), dims=(8, t0.dim - 8)
        )
        sp = StrategyPlan(plan, tuple(strategies))
        with pytest.raises(PlanError, match="out of range"):
            sp.validate(model, topology)

    def test_capacity_checked_per_physical_shard(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        tiny = SystemTopology.two_tier(
            num_devices=topology.num_devices,
            hbm_capacity=1,
            hbm_bandwidth=200e9,
            uvm_capacity=1,
            uvm_bandwidth=10e9,
        )
        sp = StrategyPlan(
            plan, tuple(TableStrategy("row") for _ in range(len(plan)))
        )
        with pytest.raises(PlanError, match="exceeds capacity"):
            sp.validate(model, tiny)

    def test_shard_bytes_conserved_under_any_strategy(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        sp = _mixed_strategies(model, plan, topology.num_devices)
        sp.validate(model, topology)
        # Splitting changes *where* bytes live, never how many there are.
        assert int(sp.shard_bytes(model).sum()) == model.total_bytes
        row_only = StrategyPlan(
            plan, tuple(TableStrategy("row") for _ in range(len(plan)))
        )
        assert int(row_only.shard_bytes(model).sum()) == model.total_bytes

    def test_strategy_counts_and_summary(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        sp = _mixed_strategies(model, plan, topology.num_devices)
        counts = sp.strategy_counts()
        assert counts["column"] == 1 and counts["twrw"] == 1
        assert counts["table"] == 1 and counts["row"] == len(plan) - 3
        summary = sp.summary(model, topology)
        assert summary["split_tables"] == 2
        assert summary["strategy_counts"] == counts

    def test_num_cut_lanes(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        sp = _mixed_strategies(model, plan, topology.num_devices)
        assert sp.num_cut_lanes == 1  # one twrw table with one cut


# ----------------------------------------------------------------------
# Evaluator parity and cost conservation
# ----------------------------------------------------------------------


class TestStrategyCosts:
    def test_all_row_matches_plain_plan_exactly(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        sp = StrategyPlan(
            plan, tuple(TableStrategy("row") for _ in range(len(plan)))
        )
        plain = expected_device_costs_ms_many(
            [plan], model, profile, topology, 128
        )[0]
        wrapped = expected_device_costs_ms_many(
            [sp], model, profile, topology, 128
        )[0]
        np.testing.assert_array_equal(plain, wrapped)

    def test_mixed_population_scores_each_plan(self):
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        sp = _mixed_strategies(model, plan, topology.num_devices)
        costs = expected_device_costs_ms_many(
            [plan, sp, plan], model, profile, topology, 128
        )
        assert costs.shape == (3, topology.num_devices)
        np.testing.assert_array_equal(costs[0], costs[2])

    def test_column_and_twrw_conserve_total_cost(self):
        # Column and twrw shards re-attribute a table's traffic across
        # devices without changing tier membership, so summed over
        # devices the cost model must agree with the row-only base.
        model, profile, topology = _world()
        plan = _base_plan(model, profile, topology)
        strategies = [TableStrategy("row") for _ in range(len(plan))]
        t0, t1 = model.tables[0], model.tables[1]
        strategies[0] = TableStrategy(
            "column", devices=(0, 1), dims=(t0.dim // 2, t0.dim - t0.dim // 2)
        )
        strategies[1] = TableStrategy(
            "twrw", devices=(1, 2), row_cuts=(t1.num_rows // 2,)
        )
        sp = StrategyPlan(plan, tuple(strategies))
        base = strategy_device_costs_ms(
            StrategyPlan(
                plan, tuple(TableStrategy("row") for _ in range(len(plan)))
            ),
            model, profile, topology, 128,
        )
        split = strategy_device_costs_ms(sp, model, profile, topology, 128)
        assert split.sum() == pytest.approx(base.sum(), rel=1e-9)


# ----------------------------------------------------------------------
# Planner: greedy refinement
# ----------------------------------------------------------------------


class TestPlanWithStrategies:
    def test_beats_row_only_on_wide_workload(self):
        model = build_wide_model(seed=0)
        profile = analytic_profile(model)
        topology = _roomy(model.total_bytes, num_devices=4)
        sharder = RecShardFastSharder(batch_size=128, steps=40)
        sp = plan_with_strategies(
            sharder, model, profile, topology, strategies=("auto",)
        )
        sp.validate(model, topology)
        meta = sp.metadata
        assert meta["solver"] == "strategies"
        assert meta["estimated_max_cost_ms"] < meta["row_only_max_cost_ms"]
        counts = sp.strategy_counts()
        assert sum(counts[k] for k in ("table", "column", "twrw")) >= 1

    def test_row_only_tokens_reproduce_base_plan(self):
        model, profile, topology = _world()
        sharder = RecShardFastSharder(batch_size=128, steps=40)
        sp = plan_with_strategies(
            sharder, model, profile, topology, strategies=("row",)
        )
        assert sp.strategy_counts() == {
            "row": len(sp), "table": 0, "column": 0, "twrw": 0,
        }
        assert (
            sp.metadata["estimated_max_cost_ms"]
            == sp.metadata["row_only_max_cost_ms"]
        )

    def test_never_worse_than_row_only(self):
        for seed in range(3):
            model, profile, topology = _world(seed=seed)
            sharder = RecShardFastSharder(batch_size=128, steps=40)
            sp = plan_with_strategies(
                sharder, model, profile, topology, strategies=("auto",)
            )
            assert (
                sp.metadata["estimated_max_cost_ms"]
                <= sp.metadata["row_only_max_cost_ms"] * (1 + 1e-12)
            )

    def test_deterministic(self):
        model = build_wide_model(seed=0)
        profile = analytic_profile(model)
        topology = _roomy(model.total_bytes, num_devices=4)
        sharder = RecShardFastSharder(batch_size=128, steps=40)
        a = plan_with_strategies(sharder, model, profile, topology)
        b = plan_with_strategies(sharder, model, profile, topology)
        assert serialize(a) == serialize(b)


# ----------------------------------------------------------------------
# Sweep integration + grid validation
# ----------------------------------------------------------------------


class TestStrategySweep:
    def test_strategy_grid(self):
        model, profile, topology = _world()
        workspace = PlannerWorkspace(model, profile, steps=40)
        sharder = RecShardFastSharder(batch_size=128, steps=40)
        plans = shard_sweep(
            workspace,
            sharder=sharder,
            strategies=["row", "auto"],
            base_topology=topology,
        )
        assert [p.metadata["sweep_key"] for p in plans] == [
            "strategies=row", "strategies=auto",
        ]
        for p in plans:
            assert isinstance(p, StrategyPlan)

    def test_requires_base_topology(self):
        model, profile, _ = _world()
        workspace = PlannerWorkspace(model, profile, steps=40)
        with pytest.raises(ValueError, match="base_topology"):
            shard_sweep(
                workspace,
                sharder=RecShardFastSharder(batch_size=128, steps=40),
                strategies=["row"],
            )

    def test_bad_token_wrapped_with_sweep_context(self):
        model, profile, topology = _world()
        workspace = PlannerWorkspace(model, profile, steps=40)
        with pytest.raises(PlanError, match="sweep point strategies=zigzag"):
            shard_sweep(
                workspace,
                sharder=RecShardFastSharder(batch_size=128, steps=40),
                strategies=["zigzag"],
                base_topology=topology,
            )

    def test_budget_grid_validated_up_front(self):
        # Regression: hbm_scale=0 used to reach the waterfill and die
        # on a zero-capacity tier with no sweep-point context.
        model, profile, topology = _world()
        workspace = PlannerWorkspace(model, profile, steps=40)
        sharder = RecShardFastSharder(batch_size=128, steps=40)
        for bad in ([0.0], [float("nan")], [1.0, -2.0]):
            with pytest.raises(PlanError, match="sweep point hbm_scale="):
                shard_sweep(
                    workspace,
                    sharder=sharder,
                    budgets=bad,
                    base_topology=topology,
                )

    def test_validate_scale_grid(self):
        assert validate_scale_grid([1, 2.5], "hbm_scale") == [1.0, 2.5]
        assert validate_scale_grid([0], "gib", allow_zero=True) == [0.0]
        with pytest.raises(PlanError, match="sweep point gib=-1"):
            validate_scale_grid([-1], "gib", allow_zero=True)
        with pytest.raises(PlanError, match="finite"):
            validate_scale_grid([float("inf")], "hbm_scale")


# ----------------------------------------------------------------------
# Golden fixture
# ----------------------------------------------------------------------


def _golden_builder():
    model = build_wide_model(seed=0)
    profile = analytic_profile(model)
    topology = _roomy(model.total_bytes, num_devices=4)
    sharder = RecShardFastSharder(batch_size=128, steps=40)
    return plan_with_strategies(
        sharder, model, profile, topology, strategies=("auto",)
    )


def serialize(sp: StrategyPlan) -> dict:
    return {
        "strategy": sp.strategy,
        "solver": sp.metadata.get("solver"),
        "strategy_counts": sp.strategy_counts(),
        "placements": [
            {
                "table": p.table_index,
                "device": p.device,
                "rows_per_tier": list(p.rows_per_tier),
                "kind": s.kind,
                "devices": list(s.devices),
                "dims": list(s.dims),
                "row_cuts": list(s.row_cuts),
            }
            for p, s in zip(sp.plan, sp.strategies)
        ],
    }


def test_strategy_plan_matches_golden_fixture():
    path = FIXTURES / "plan_strategies_seed0.json"
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        "`PYTHONPATH=src python -m tests.test_core.test_strategies`"
    )
    golden = json.loads(path.read_text())
    current = serialize(_golden_builder())
    assert current["solver"] == golden["solver"]
    assert current["strategy_counts"] == golden["strategy_counts"]
    for mine, pinned in zip(current["placements"], golden["placements"]):
        assert mine == pinned, (
            f"table {pinned['table']} drifted (pinned {pinned}, got "
            f"{mine}) — if intentional, regenerate the fixture and "
            "review the diff"
        )
    assert len(current["placements"]) == len(golden["placements"])


def main() -> None:
    FIXTURES.mkdir(exist_ok=True)
    path = FIXTURES / "plan_strategies_seed0.json"
    path.write_text(json.dumps(serialize(_golden_builder()), indent=2) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
