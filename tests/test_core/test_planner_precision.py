"""Precision-tiered capacity: planners admitting rows at quantized cost.

The tentpole invariant: a tier holding rows at a reduced precision
charges :func:`~repro.memory.precision.quantized_row_bytes` per row, so
the same byte budget admits proportionally more rows — and the scalar
heapq reference and the vectorized bulk-admission path must keep
producing identical plans under any precision ladder.
"""

import numpy as np
import pytest

from repro.core import (
    MultiTierSharder,
    PlanError,
    PlannerWorkspace,
    RecShardFastSharder,
    shard_sweep,
)
from repro.memory.precision import quantized_row_bytes
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile

from .conftest import build_model

BATCH = 256


def assert_plans_identical(a, b):
    assert len(a) == len(b)
    for p, q in zip(a, b):
        assert p.rows_per_tier == q.rows_per_tier, f"table {p.table_index}"
        assert p.device == q.device, f"table {p.table_index}"


def two_tier(model, hbm_frac=0.3, num_devices=2):
    total = model.total_bytes
    return SystemTopology.two_tier(
        num_devices=num_devices,
        hbm_capacity=int(total * hbm_frac / num_devices),
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )


def three_tier(model, mid_frac=0.2, num_devices=2):
    total = model.total_bytes
    tiers = (
        MemoryTier("hbm", int(total * 0.1 / num_devices), 200e9),
        MemoryTier("dram", int(total * mid_frac / num_devices), 20e9),
        MemoryTier("ssd", total, 2e9),
    )
    return SystemTopology(num_devices=num_devices, tiers=tiers)


class TestFastSharderPrecision:
    def test_quantized_hbm_admits_more_rows(self):
        model = build_model(num_tables=8, seed=0)
        profile = analytic_profile(model)
        topology = two_tier(model)
        sharder = RecShardFastSharder(batch_size=BATCH)
        baseline = sharder.shard(model, profile, topology)
        quant = sharder.shard(
            model, profile, topology.with_precisions("hbm=fp16")
        )
        # dim=8 rows: fp16 halves the per-row cost, so the same HBM
        # budget holds about twice the rows.
        ratio = quant.tier_rows_total(0) / baseline.tier_rows_total(0)
        assert ratio >= 1.8

    @pytest.mark.parametrize("spec", ["hbm=fp16", "uvm=int8", "hbm=int8,uvm=int4"])
    @pytest.mark.parametrize("seed", range(4))
    def test_scalar_vectorized_parity(self, spec, seed):
        model = build_model(num_tables=8, seed=seed)
        profile = analytic_profile(model)
        topology = two_tier(model).with_precisions(spec)
        scalar = RecShardFastSharder(batch_size=BATCH, vectorized=False)
        fast = RecShardFastSharder(batch_size=BATCH, vectorized=True)
        plan_scalar = scalar.shard(model, profile, topology)
        plan_fast = fast.shard(model, profile, topology)
        assert_plans_identical(plan_scalar, plan_fast)
        plan_fast.validate(model, topology)

    def test_metadata_stamped_only_when_quantized(self):
        model = build_model(num_tables=6, seed=1)
        profile = analytic_profile(model)
        topology = two_tier(model)
        sharder = RecShardFastSharder(batch_size=BATCH)
        plain = sharder.shard(model, profile, topology)
        assert "tier_precisions" not in plain.metadata
        quant = sharder.shard(
            model, profile, topology.with_precisions("uvm=int8")
        )
        assert quant.metadata["tier_precisions"] == ["fp32", "int8"]
        errors = quant.metadata["tier_expected_rel_error"]
        assert errors[0] == 0.0 and errors[1] > 0.0

    def test_validate_enforces_quantized_capacity(self):
        model = build_model(num_tables=8, seed=2)
        profile = analytic_profile(model)
        topology = two_tier(model, hbm_frac=0.3)
        quant_topo = topology.with_precisions("hbm=int8")
        plan = RecShardFastSharder(batch_size=BATCH).shard(
            model, profile, quant_topo
        )
        plan.validate(model, quant_topo)
        # The quantized plan packs ~4x the rows into HBM; charged at
        # full fp32 row bytes it must blow the same byte budget.
        with pytest.raises(PlanError, match="exceeds capacity"):
            plan.validate(model, topology)


class TestMultiTierPrecision:
    @pytest.mark.parametrize("precision,floor", [("fp16", 1.8), ("int8", 2.0)])
    def test_cold_tier_capacity_gain(self, precision, floor):
        model = build_model(num_tables=10, rows=900, seed=3)
        profile = analytic_profile(model)
        topology = three_tier(model)
        sharder = MultiTierSharder(batch_size=BATCH, steps=15)
        baseline = sharder.shard(model, profile, topology)
        quant = sharder.shard(
            model,
            profile,
            topology.with_precisions({"dram": precision, "ssd": precision}),
        )
        ratio = quant.tier_rows_total(1) / baseline.tier_rows_total(1)
        assert ratio >= floor

    @pytest.mark.parametrize("seed", range(3))
    def test_scalar_vectorized_parity(self, seed):
        model = build_model(num_tables=8, seed=seed)
        profile = analytic_profile(model)
        topology = three_tier(model).with_precisions("dram=fp16,ssd=int4")
        vec = MultiTierSharder(batch_size=BATCH, steps=15).shard(
            model, profile, topology
        )
        scalar = MultiTierSharder(
            batch_size=BATCH, steps=15, vectorized=False
        ).shard(model, profile, topology)
        assert_plans_identical(vec, scalar)
        vec.validate(model, topology)

    def test_milp_rejects_quantized_ladders(self):
        model = build_model(num_tables=4, rows=128, seed=0)
        profile = analytic_profile(model)
        topology = three_tier(model).with_precisions("ssd=int8")
        sharder = MultiTierSharder(batch_size=BATCH, steps=5, method="milp")
        with pytest.raises(PlanError, match="fp32 tiers only"):
            sharder.shard(model, profile, topology)


class TestPrecisionSweep:
    def test_grid_keys_and_monotone_capacity(self):
        model = build_model(num_tables=8, seed=4)
        profile = analytic_profile(model)
        topology = two_tier(model, hbm_frac=0.2)
        workspace = PlannerWorkspace(model, profile, steps=40)
        plans = shard_sweep(
            workspace,
            sharder=RecShardFastSharder(batch_size=BATCH, steps=40),
            precisions=["fp32", "fp16", "int8", "int4"],
            base_topology=topology,
        )
        keys = [p.metadata["sweep_key"] for p in plans]
        assert keys == [
            "precisions=fp32",
            "precisions=fp16",
            "precisions=int8",
            "precisions=int4",
        ]
        # Cold-tier quantization only affects the host side here; the
        # fp32 point matches a plain solve bit for bit.
        plain = RecShardFastSharder(batch_size=BATCH, steps=40).shard(
            model, profile, topology
        )
        assert_plans_identical(plans[0], plain)

    def test_rejects_unknown_precision(self):
        model = build_model(num_tables=4, seed=0)
        workspace = PlannerWorkspace(model, analytic_profile(model), steps=10)
        with pytest.raises(PlanError, match="precisions=fp12"):
            shard_sweep(
                workspace,
                sharder=RecShardFastSharder(batch_size=BATCH, steps=10),
                precisions=["fp12"],
                base_topology=two_tier(model),
            )

    def test_requires_base_topology(self):
        model = build_model(num_tables=4, seed=0)
        workspace = PlannerWorkspace(model, analytic_profile(model), steps=10)
        with pytest.raises(ValueError, match="base_topology"):
            shard_sweep(
                workspace,
                sharder=RecShardFastSharder(batch_size=BATCH, steps=10),
                precisions=["fp16"],
            )


class TestQuantizedRowBytesPlannerMath:
    def test_host_rows_scale_with_precision(self):
        # The admission math's core identity: rows that fit a budget
        # scale inversely with the quantized row bytes.
        row_bytes = 8 * 4
        budget = 10_000
        for precision in ("fp16", "int8", "int4"):
            per_row = quantized_row_bytes(row_bytes, precision)
            assert budget // per_row > budget // row_bytes
