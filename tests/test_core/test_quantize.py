"""Tests for the row codecs and their closed-form error model."""

import math

import numpy as np
import pytest

from repro.core.quantize import (
    dequantize_rows,
    expected_rel_error,
    measured_rel_error,
    quantize_by_tiers,
    quantize_dequantize,
    quantize_rows,
)
from repro.memory.precision import quantized_row_bytes


def make_rows(rows=64, dim=32, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, dim))


class TestCodecs:
    def test_fp32_round_trip_is_lossless_at_fp32(self):
        w = make_rows().astype(np.float32).astype(np.float64)
        assert np.array_equal(quantize_dequantize(w, "fp32"), w)

    @pytest.mark.parametrize("precision", ["fp16", "int8", "int4"])
    def test_round_trip_error_bounded(self, precision):
        w = make_rows()
        err = np.abs(quantize_dequantize(w, precision) - w)
        if precision == "fp16":
            bound = 2.0**-10 * np.maximum(np.abs(w), 1e-12)
        else:
            qmax = 127 if precision == "int8" else 7
            # Half a quantization step per element, per row scale.
            scale = np.max(np.abs(w), axis=1, keepdims=True) / qmax
            bound = 0.5 * scale + 1e-12
        assert np.all(err <= bound)

    @pytest.mark.parametrize("precision", ["int8", "int4"])
    def test_all_zero_rows(self, precision):
        w = np.zeros((4, 16))
        assert np.array_equal(quantize_dequantize(w, precision), w)

    @pytest.mark.parametrize("dim", [7, 15, 33])
    def test_int4_odd_dim(self, dim):
        w = make_rows(rows=8, dim=dim, seed=1)
        out = quantize_dequantize(w, "int4")
        assert out.shape == w.shape

    @pytest.mark.parametrize("precision", ["fp16", "int8", "int4"])
    def test_storage_matches_planner_accounting(self, precision):
        dim = 32
        w = make_rows(rows=16, dim=dim)
        q = quantize_rows(w, precision)
        per_row = quantized_row_bytes(dim * 4, precision)
        assert q.storage_bytes() == 16 * per_row

    def test_int4_values_hit_grid(self):
        w = make_rows(rows=8, dim=16, seed=2)
        q = quantize_rows(w, "int4")
        codes = dequantize_rows(q) / q.scales[:, None]
        assert np.allclose(codes, np.rint(codes))
        assert np.max(np.abs(codes)) <= 7

    def test_unknown_precision(self):
        with pytest.raises(ValueError, match="unknown precision"):
            quantize_rows(make_rows(), "int2")


class TestErrorModel:
    def test_fp32_is_exact(self):
        assert expected_rel_error("fp32") == 0.0

    def test_closed_forms(self):
        assert expected_rel_error("fp16") == pytest.approx(
            2.0**-10 / math.sqrt(12.0)
        )
        assert expected_rel_error("int8") == pytest.approx(
            1.0 / (127 * math.sqrt(12.0))
        )
        assert expected_rel_error("int4") == pytest.approx(
            1.0 / (7 * math.sqrt(12.0))
        )

    @pytest.mark.parametrize("precision", ["int8", "int4"])
    def test_measured_tracks_model(self, precision):
        # Uniform rows exercise the whole grid; the uniform-rounding
        # model should land within a small factor of the measurement.
        rng = np.random.default_rng(3)
        w = rng.uniform(-1.0, 1.0, size=(256, 64))
        measured = measured_rel_error(w, precision)
        expected = expected_rel_error(precision)
        assert 0.3 * expected < measured < 3.0 * expected


class TestQuantizeByTiers:
    def test_fp32_block_untouched(self):
        w = make_rows(rows=30, dim=8)
        out = quantize_by_tiers(w, [10, 20], ["fp32", "int8"])
        assert np.array_equal(out[:10], w[:10])
        assert not np.array_equal(out[10:], w[10:])

    def test_validates_lengths(self):
        w = make_rows(rows=30, dim=8)
        with pytest.raises(ValueError, match="tiers vs"):
            quantize_by_tiers(w, [10, 20], ["fp32"])
        with pytest.raises(ValueError, match="sums to"):
            quantize_by_tiers(w, [10, 10], ["fp32", "int8"])

    def test_empty_tier_blocks(self):
        w = make_rows(rows=12, dim=8)
        out = quantize_by_tiers(w, [12, 0, 0], ["fp32", "fp16", "int4"])
        assert np.array_equal(out, w)
