#!/usr/bin/env python
"""Quickstart: shard one model with RecShard and inspect the result.

Walks the whole pipeline on a small workload in under a minute:

1. define a model (here a 97-feature slice of the paper's RM2) and the
   training node (8 GPUs with HBM + UVM tiers);
2. profile training statistics (Section 4.1) — the worked example of the
   paper's Figure 3 is included to show exactly what is being measured;
3. solve the partitioning and placement problem (Section 4.2);
4. execute a trace against the plan and compare with a baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    RecShardSharder,
    ShardedExecutor,
    TraceGenerator,
    analytic_profile,
    make_baseline,
    paper_node,
)
from repro.data.batch import JaggedBatch, JaggedFeature
from repro.data.model import rm2
from repro.stats import TraceProfiler


def figure3_worked_example():
    """The paper's Figure 3, verbatim: two features, three samples."""
    print("== Figure 3 worked example ==")
    feature_a = JaggedFeature.from_lists(
        [[7345, 3241, 234, 8091], [523, 12, 6234], [3452, 452, 2345, 1342]]
    )
    feature_b = JaggedFeature.from_lists([[241, 104123, 63642], [], []])
    print(f"  feature A pooling factors: {[int(n) for n in feature_a.lengths]}")
    print(f"  feature B pooling factors: {[int(n) for n in feature_b.lengths]}")

    from repro.data.feature import SparseFeatureSpec
    from repro.data.model import EmbeddingTableSpec, ModelSpec

    model = ModelSpec(
        name="figure3",
        tables=(
            EmbeddingTableSpec(
                SparseFeatureSpec("A", cardinality=10_000, hash_size=100,
                                  alpha=1.0, avg_pooling=4), dim=4),
            EmbeddingTableSpec(
                SparseFeatureSpec("B", cardinality=200_000, hash_size=500,
                                  alpha=1.0, avg_pooling=3), dim=4),
        ),
    )
    hashed = JaggedBatch(
        [
            JaggedFeature(feature_a.values % 100, feature_a.offsets),
            JaggedFeature(feature_b.values % 500, feature_b.offsets),
        ]
    )
    profiler = TraceProfiler(model, sample_rate=1.0)
    profiler.consume(hashed)
    profile = profiler.finish()
    print(f"  avg pooling A = {profile[0].avg_pooling:.2f} (paper: 3.66)")
    print(f"  avg pooling B = {profile[1].avg_pooling:.2f} (paper: 3.00)")
    print(f"  coverage A    = {profile[0].coverage:.2f} (paper: 1.0)")
    print(f"  coverage B    = {profile[1].coverage:.2f} (paper: 0.33)")
    print()


def main():
    figure3_worked_example()

    # A 97-feature slice of RM2 on an 8-GPU node.  With half the GPUs
    # of the paper's setup the capacity pressure is roughly doubled
    # (closer to the paper's RM3 regime) — a stress setting that makes
    # the baselines' UVM spills easy to see.
    scale = 1e-3 * 97 / 397
    model = rm2(num_features=97, row_scale=scale)
    topology = paper_node(num_gpus=8, scale=scale)
    batch_size = 2048
    print(f"model: {model.name}, {model.num_tables} tables, "
          f"{model.total_bytes / 2**20:.0f} MiB of embeddings")
    print(f"node:  {topology.num_devices} GPUs x "
          f"{topology.hbm.capacity_bytes / 2**20:.1f} MiB HBM "
          f"(+{topology.uvm.capacity_bytes / 2**20:.0f} MiB UVM each)")

    # Phase 1 — profile (here: exact statistics straight from the spec).
    profile = analytic_profile(model)

    # Phase 2 — partition and place via the MILP.
    sharder = RecShardSharder(batch_size=batch_size, steps=50, time_limit=30)
    plan = sharder.shard(model, profile, topology)
    summary = plan.summary(model, topology)
    print(f"\nRecShard plan: {summary['uvm_row_fraction']:.1%} of rows on UVM, "
          f"tables per GPU {summary['tables_per_device']}")
    print(f"solver: {plan.metadata.get('solver')} "
          f"({plan.metadata.get('milp_status', '-')})")

    # Phase 3 — remap + execute, against a Size-Based baseline.
    trace = list(TraceGenerator(model, batch_size, seed=99).batches(3))
    for strategy_plan in (plan, make_baseline("Size-Based").shard(model, profile, topology)):
        executor = ShardedExecutor(model, strategy_plan, profile, topology)
        metrics = executor.run(trace)
        stats = metrics.iteration_stats()
        print(f"\n{strategy_plan.strategy:>12}: per-GPU ms "
              f"min/max/mean/std = {stats.as_row()}")
        print(f"{'':>12}  UVM access share = "
              f"{metrics.tier_access_fraction('uvm'):.2%}")


if __name__ == "__main__":
    main()
