#!/usr/bin/env python
"""Capacity-constrained sharding: what happens when models outgrow HBM.

Reproduces the paper's central scenario in miniature: the same feature
set at 1x / 2x / 4x hash sizes (RM1 / RM2 / RM3 of Table 2) on a fixed
node.  As capacity pressure grows, whole-table baselines are forced to
strand hot tables in UVM while RecShard's row-level splits keep the hot
working set in HBM — the gap widens exactly as in Figures 11 and 13.

Run:  python examples/capacity_constrained.py
"""

from repro import (
    RecShardFastSharder,
    compare_strategies,
    make_baseline,
    paper_node,
    speedup_table,
)
from repro.data.model import rm1, rm2, rm3

FEATURES = 97
GPUS = 8
BATCH = 2048


def main():
    topo_scale = 1e-3 * FEATURES / 397
    row_scale = topo_scale * GPUS / 16
    topology = paper_node(num_gpus=GPUS, scale=topo_scale)
    print(f"node: {GPUS} GPUs, "
          f"{topology.hbm.capacity_bytes * GPUS / 2**20:.0f} MiB total HBM\n")

    baseline_names = ("Size-Based", "Lookup-Based", "Size-Based-Lookup")
    bounds = {}
    for build in (rm1, rm2, rm3):
        model = build(num_features=FEATURES, row_scale=row_scale)
        pressure = model.total_bytes / (topology.hbm.capacity_bytes * GPUS)
        print(f"--- {model.name}: {model.total_bytes / 2**20:.0f} MiB "
              f"({pressure:.1f}x of HBM) ---")
        sharders = [make_baseline(n) for n in baseline_names]
        sharders.append(RecShardFastSharder(batch_size=BATCH, name="RecShard"))
        results = compare_strategies(
            model, sharders, topology, batch_size=BATCH, iterations=3
        )
        for name, result in results.items():
            stats = result.metrics.iteration_stats()
            uvm = result.metrics.tier_access_fraction("uvm")
            print(f"  {name:>18}: max {stats.max:7.2f} ms  "
                  f"std {stats.std:5.2f}  UVM {uvm:6.2%}")
        speedups = speedup_table(results)
        next_best = max(v for k, v in speedups.items() if k != "RecShard")
        print(f"  RecShard vs next best: {speedups['RecShard'] / next_best:.2f}x")
        bounds[model.name] = {
            s: r.metrics.bound_time_ms() for s, r in results.items()
        }
        print()

    print("--- scaling sensitivity (Figure 13) ---")
    for strategy in list(baseline_names) + ["RecShard"]:
        slow = bounds["RM3"][strategy] / bounds["RM1"][strategy]
        print(f"  {strategy:>18}: RM1 -> RM3 slowdown {slow:.2f}x")
    print("\nPaper shape: baselines slow down >3x while RecShard stays ~1.2x —")
    print("the extra rows from larger hash sizes are cold or dead, and")
    print("RecShard never promotes them to HBM.")


if __name__ == "__main__":
    main()
