#!/usr/bin/env python
"""Sharding across a three-tier HBM / DRAM / SSD hierarchy (Section 4.4).

The paper notes RecShard extends naturally beyond two tiers: each extra
tier is one more split point on every table's frequency CDF, and the
bandwidth scaling factors order the tiers automatically.  This example
shards a model too big even for host DRAM across HBM + DRAM + SSD and
shows the hottest rows landing on the fastest tier, per table.

Run:  python examples/multitier_hierarchy.py
"""

import numpy as np

from repro import MultiTierSharder, ShardedExecutor, TraceGenerator, analytic_profile
from repro.data.model import rm3
from repro.memory import SystemTopology
from repro.memory.tier import MemoryTier


def main():
    model = rm3(num_features=97, row_scale=1e-3 * 97 / 397)
    total = model.total_bytes
    topology = SystemTopology(
        num_devices=4,
        tiers=(
            MemoryTier("hbm", int(total * 0.15 / 4), 256e9),
            MemoryTier("dram", int(total * 0.40 / 4), 12.8e9),
            MemoryTier("ssd", total, 1.6e9),
        ),
    )
    print(f"model: {model.name}-97, {total / 2**20:.0f} MiB")
    for tier in topology.tiers:
        pct = tier.capacity_bytes * 4 / total
        print(f"  {tier.name:>4}: {tier.capacity_bytes / 2**20:6.1f} MiB/GPU "
              f"({pct:5.1%} of model in aggregate), "
              f"{tier.bandwidth / 1e9:.1f} GB/s effective")

    profile = analytic_profile(model)
    sharder = MultiTierSharder(batch_size=2048, steps=25, method="greedy")
    plan = sharder.shard(model, profile, topology)
    plan.validate(model, topology)

    rows_per_tier = [plan.tier_rows_total(t) for t in range(3)]
    total_rows = sum(rows_per_tier)
    print("\nrow placement:")
    for tier, rows in zip(topology.tiers, rows_per_tier):
        print(f"  {tier.name:>4}: {rows:9,} rows ({rows / total_rows:6.2%})")

    executor = ShardedExecutor(model, plan, profile, topology)
    trace = TraceGenerator(model, batch_size=2048, seed=3)
    metrics = executor.run(trace.batches(3))
    print("\naccess traffic by tier (the point of the CDF splits):")
    for tier in topology.tier_names:
        share = metrics.tier_access_fraction(tier)
        print(f"  {tier:>4}: {share:7.2%} of accesses")
    stats = metrics.iteration_stats()
    print(f"\nper-GPU EMB time min/max/mean/std = {stats.as_row()} ms")

    # Sanity: hotter tiers serve disproportionately more traffic per row.
    shares = np.array([metrics.tier_access_fraction(t) for t in topology.tier_names])
    rows = np.array(rows_per_tier, dtype=float)
    density = shares / (rows / rows.sum())
    print("\naccess density vs uniform (1.0 = proportional to rows):")
    for tier, d in zip(topology.tier_names, density):
        print(f"  {tier:>4}: {d:6.1f}x")


if __name__ == "__main__":
    main()
