#!/usr/bin/env python
"""The full RecShard production pipeline of Figure 10, end to end.

Phase 1 — Training Data Profiling: stream training batches through the
profiler at a 1%-style sampling rate to estimate per-EMB statistics
(hashed value-frequency CDF, average pooling factor, coverage).

Phase 2 — EMB Partitioning and Placement: build and solve the MILP for
the target node, producing per-table row splits and GPU assignments.

Phase 3 — Remapping: generate per-EMB remapping tables (4 bytes/row;
the sign of the remapped index selects the HBM or UVM partition) and
apply them as a data-loading transform.

Finally the plan executes on an out-of-sample trace, reporting the
paper's metrics (per-GPU iteration time, HBM/UVM access counts).

Run:  python examples/production_pipeline.py
"""

import time

import numpy as np

from repro import (
    RecShardSharder,
    ShardedExecutor,
    TraceGenerator,
    paper_node,
)
from repro.core.remap import RemappingLayer
from repro.data.model import rm2
from repro.stats import TraceProfiler


def main():
    # Workload: a 97-feature slice of RM2; node: 8 GPUs.  Rows scale
    # with the GPU count so the paper's RM2 regime (~60% fits in HBM)
    # is preserved.
    topo_scale = 1e-3 * 97 / 397
    model = rm2(num_features=97, row_scale=topo_scale * 8 / 16)
    topology = paper_node(num_gpus=8, scale=topo_scale)
    batch_size = 2048

    print("=== Phase 1: training data profiling (Section 4.1) ===")
    start = time.perf_counter()
    train_stream = TraceGenerator(model, batch_size=8192, seed=11)
    profiler = TraceProfiler(model, sample_rate=0.05, seed=12)
    for batch in train_stream.batches(4):
        profiler.consume(batch)
    profile = profiler.finish()
    elapsed = time.perf_counter() - start
    print(f"profiled {profile.samples_profiled:,} sampled training rows "
          f"in {elapsed:.1f}s (rate {profile.sample_rate:.0%})")
    hot = profile[0].cdf
    print(f"example table '{profile[0].name}': "
          f"{hot.rows_for_coverage(0.9):,}/{profile[0].hash_size:,} rows "
          f"cover 90% of accesses; {profile[0].hash_size - hot.live_rows:,} "
          f"rows never touched (reclaimable)")

    print("\n=== Phase 2: partitioning and placement (Section 4.2) ===")
    sharder = RecShardSharder(batch_size=batch_size, steps=100, time_limit=30)
    start = time.perf_counter()
    plan = sharder.shard(model, profile, topology)
    print(f"solved in {time.perf_counter() - start:.1f}s via "
          f"{plan.metadata.get('solver')}")
    summary = plan.summary(model, topology)
    print(f"rows on UVM: {summary['uvm_row_fraction']:.1%}; "
          f"tables per GPU: {summary['tables_per_device']}")

    print("\n=== Phase 3: remapping (Section 4.3) ===")
    start = time.perf_counter()
    layer = RemappingLayer.from_plan(plan, profile)
    print(f"built {len(layer)} remapping tables in "
          f"{time.perf_counter() - start:.2f}s; storage "
          f"{layer.storage_bytes / 2**20:.1f} MiB (4 bytes/row)")
    demo = TraceGenerator(model, batch_size=4, seed=13).next_batch()
    remapped = layer.transform(demo)
    raw = demo[0].values[:6]
    new = remapped[0].values[:6]
    print(f"example transform (table 0): {list(raw)} -> {list(new)}")
    print("(negative index = UVM partition, per the paper's sign encoding)")

    print("\n=== Training execution (out-of-sample trace) ===")
    executor = ShardedExecutor(model, plan, profile, topology)
    eval_trace = TraceGenerator(model, batch_size=batch_size, seed=99)
    metrics = executor.run(eval_trace.batches(5))
    stats = metrics.iteration_stats()
    print(f"per-GPU EMB time min/max/mean/std = {stats.as_row()} ms")
    print(f"HBM accesses per GPU per iteration: "
          f"{metrics.avg_accesses_per_gpu_iteration('hbm'):,.0f}")
    print(f"UVM accesses per GPU per iteration: "
          f"{metrics.avg_accesses_per_gpu_iteration('uvm'):,.0f} "
          f"({metrics.tier_access_fraction('uvm'):.2%} of traffic)")


if __name__ == "__main__":
    main()
