#!/usr/bin/env python
"""Train a real (numpy) DLRM on RecShard-remapped tiered storage.

Demonstrates that the remapping layer is *performance-only*: a DLRM
whose embedding tables are physically split across HBM/UVM partitions
(per a RecShard plan) computes bit-identical predictions and gradients
to the unsharded model, while its per-tier access counters show the hot
traffic staying in the fast partition.

Run:  python examples/dlrm_training.py
"""

import numpy as np

from repro import RecShardFastSharder, SystemTopology, TraceGenerator
from repro.core.remap import RemappingTable
from repro.data.feature import SparseFeatureSpec
from repro.data.model import EmbeddingTableSpec, ModelSpec
from repro.dlrm import DLRM, DLRMConfig, TieredEmbeddingBag, train_epoch
from repro.dlrm.train import bce_loss, synthetic_ctr_labels
from repro.stats import analytic_profile

BATCH = 128
STEPS = 30


def build_world():
    """A small DLRM-scale model plus a tight two-tier topology."""
    rng = np.random.default_rng(5)
    features = []
    for i in range(6):
        hash_size = int(rng.uniform(200, 1200))
        features.append(
            SparseFeatureSpec(
                name=f"f{i}",
                cardinality=hash_size * 2,
                hash_size=hash_size,
                alpha=float(rng.uniform(0.9, 1.5)),
                avg_pooling=float(rng.uniform(2, 8)),
                coverage=float(rng.uniform(0.4, 1.0)),
                hash_seed=i,
            )
        )
    model_spec = ModelSpec(
        name="dlrm-demo",
        tables=tuple(EmbeddingTableSpec(feature=f, dim=16) for f in features),
    )
    topology = SystemTopology.two_tier(
        num_devices=1,
        hbm_capacity=int(model_spec.total_bytes * 0.35),
        hbm_bandwidth=200e9,
        uvm_capacity=model_spec.total_bytes,
        uvm_bandwidth=10e9,
    )
    return model_spec, topology


def main():
    model_spec, topology = build_world()
    profile = analytic_profile(model_spec)
    plan = RecShardFastSharder(batch_size=BATCH).shard(
        model_spec, profile, topology
    )
    print(f"plan: {plan.summary(model_spec, topology)['uvm_row_fraction']:.1%} "
          "of rows on UVM\n")

    config = DLRMConfig(
        dense_features=8,
        table_rows=[t.num_rows for t in model_spec.tables],
        embedding_dim=16,
        seed=1,
    )
    flat = DLRM(config)
    tiered = DLRM(config)  # same seed -> identical initial weights
    tiered_tables = []
    for j, bag in enumerate(tiered.tables):
        remap = RemappingTable(
            profile[j].cdf.row_order, plan[j].rows_per_tier
        )
        tiered_tables.append(TieredEmbeddingBag(bag.weight, remap))
    tiered.replace_tables(tiered_tables)

    rng = np.random.default_rng(42)
    gen = TraceGenerator(model_spec, batch_size=BATCH, seed=7)
    batches = []
    for sparse in gen.batches(STEPS):
        dense = rng.normal(size=(BATCH, config.dense_features))
        labels = synthetic_ctr_labels(dense, sparse, rng)
        batches.append((dense, sparse, labels))

    losses_flat = train_epoch(flat, batches, lr=0.15)
    losses_tiered = train_epoch(tiered, batches, lr=0.15)
    print(f"flat   DLRM: loss {losses_flat[0]:.4f} -> {losses_flat[-1]:.4f}")
    print(f"tiered DLRM: loss {losses_tiered[0]:.4f} -> {losses_tiered[-1]:.4f}")
    drift = max(
        abs(a - b) for a, b in zip(losses_flat, losses_tiered)
    )
    print(f"max per-step loss difference: {drift:.2e} "
          "(remapping is computation-transparent)")

    counts = tiered.tier_access_counts()
    total = counts.sum()
    print(f"\nembedding accesses: HBM {counts[0]:,} ({counts[0] / total:.1%}), "
          f"UVM {counts[1]:,} ({counts[1] / total:.1%})")
    print("RecShard kept the hot working set in the fast partition while")
    print(f"only {plan.summary(model_spec, topology)['uvm_row_fraction']:.0%} "
          "of rows occupy HBM-priced memory.")

    # Verify end-state equivalence explicitly.
    dense, sparse, labels = batches[0]
    p_flat = flat.forward(dense, sparse)
    p_tiered = tiered.forward(dense, sparse)
    print(f"\npost-training prediction max|diff|: "
          f"{np.abs(p_flat - p_tiered).max():.2e}")
    print(f"final BCE (flat vs tiered): {bce_loss(p_flat, labels):.6f} / "
          f"{bce_loss(p_tiered, labels):.6f}")


if __name__ == "__main__":
    main()
