#!/usr/bin/env python
"""Temporal drift and the case for periodic re-sharding (Section 3.5).

Production models retrain continuously for months while feature
statistics drift (Figure 9: user features' pooling factors climb ~10%).
This example plans once at month 0, then replays the plan against
drifted workloads month by month, comparing against a freshly re-sharded
plan — quantifying when re-sharding pays for itself.

Run:  python examples/drift_resharding.py
"""

from repro import RecShardFastSharder, paper_node
from repro.core.evaluate import expected_max_cost_ms
from repro.data.drift import DriftModel
from repro.data.model import rm2
from repro.stats import analytic_profile

FEATURES = 97
GPUS = 8
BATCH = 2048
MONTHS = (0, 3, 6, 9, 12, 15, 18)


def main():
    topo_scale = 1e-3 * FEATURES / 397
    model = rm2(num_features=FEATURES, row_scale=topo_scale * GPUS / 16)
    topology = paper_node(num_gpus=GPUS, scale=topo_scale)
    drift = DriftModel(feature_noise=6.0, alpha_noise=25.0)
    sharder = RecShardFastSharder(batch_size=BATCH)

    profile0 = analytic_profile(model)
    plan0 = sharder.shard(model, profile0, topology)
    print("planned once at month 0; replaying against drifted statistics\n")
    print(f"{'month':>6} {'stale plan (ms)':>16} {'re-sharded (ms)':>16} "
          f"{'penalty':>8}")

    for month in MONTHS:
        drifted = drift.drift_model(model, month)
        profile_m = analytic_profile(drifted)
        stale = expected_max_cost_ms(plan0, drifted, profile_m, topology, BATCH)
        fresh_plan = sharder.shard(drifted, profile_m, topology)
        fresh = expected_max_cost_ms(
            fresh_plan, drifted, profile_m, topology, BATCH
        )
        print(f"{month:>6} {stale:>16.3f} {fresh:>16.3f} "
              f"{stale / fresh:>7.2f}x")

    print(
        "\nThe stale-plan penalty grows with drift; RecShard re-evaluates"
        "\nthe benefit cheaply (the MILP re-solves in seconds at this"
        "\nscale, under a minute at production scale per Section 6.6) and"
        "\nre-shards when the penalty exceeds the re-sharding cost."
    )


if __name__ == "__main__":
    main()
