"""Serving throughput: QPS and tail latency of the online lookup server.

Not a paper figure — the paper evaluates training replay — but the
serving-side restatement of its Table 3/Figure 11 claim: a plan whose
hot rows sit in HBM, balanced across devices, completes each microbatch
faster, so one model-parallel replica sustains more requests per second
at saturation and lower tail latency below it.

Two views:

* microbatch sweep — batching amortizes per-batch overhead, trading a
  bounded queueing delay for throughput (the dynamic-batching tradeoff
  every production recommender serving stack makes);
* strategy comparison — RecShard's plan vs the strongest baseline under
  a saturating open-loop load, where completed QPS measures engine
  capacity rather than offered load.
"""

import numpy as np

from conftest import BENCH_GPUS, format_table, report
from repro.serving import LookupServer, ServingConfig, synthetic_request_stream

REQUESTS = 2048
SATURATING_QPS = 1e9  # all requests arrive (almost) at once


def _serve(model, profile, topology, plan, max_batch):
    server = LookupServer(
        model, profile, topology, plan=plan,
        config=ServingConfig(max_batch_size=max_batch, max_delay_ms=2.0),
    )
    stream = synthetic_request_stream(
        model, num_requests=REQUESTS, qps=SATURATING_QPS, seed=42
    )
    return server.serve(stream).summary()


def test_serving_qps(models, profiles, topology, headline):
    model = models[1]  # RM2: the UVM-pressured regime
    profile = profiles[model.name]
    results = headline[model.name]
    recshard_plan = results["RecShard"].plan

    # View 1: microbatch size sweep on the RecShard plan.
    sweep_rows = []
    sweep = {}
    for max_batch in (32, 128, 512):
        s = _serve(model, profile, topology, recshard_plan, max_batch)
        sweep[max_batch] = s
        sweep_rows.append(
            (max_batch, f"{s['qps']:.0f}", f"{s['p50_ms']:.3f}",
             f"{s['p99_ms']:.3f}", f"{s['avg_batch_size']:.0f}")
        )
    sweep_table = format_table(
        ["microbatch cap", "QPS", "p50 (ms)", "p99 (ms)", "avg batch"],
        sweep_rows,
    )

    # View 2: plans head to head at a fixed microbatch cap.
    strat_rows = []
    strat = {}
    for name, result in results.items():
        s = _serve(model, profile, topology, result.plan, 256)
        strat[name] = s
        strat_rows.append(
            (name, f"{s['qps']:.0f}", f"{s['p50_ms']:.3f}",
             f"{s['p99_ms']:.3f}",
             f"{s['mean_device_utilization']:.1%}")
        )
    strat_table = format_table(
        ["strategy", "QPS", "p50 (ms)", "p99 (ms)", "mean device util"],
        strat_rows,
    )
    report(
        "serving_qps",
        f"{model.name} on {BENCH_GPUS} GPUs, {REQUESTS} requests, "
        f"saturating load\n\n"
        f"-- microbatch sweep (RecShard plan) --\n{sweep_table}\n\n"
        f"-- strategies at microbatch cap 256 --\n{strat_table}",
    )

    # Every request is served, exactly once.
    assert all(s["requests"] == REQUESTS for s in sweep.values())
    assert all(s["requests"] == REQUESTS for s in strat.values())
    # Batching amortizes per-batch overhead: large caps beat tiny ones
    # at saturation.
    assert sweep[512]["qps"] >= sweep[32]["qps"]
    # RecShard's balanced HBM placement serves at least as fast as every
    # baseline, in capacity and in tail latency.
    baselines = [s for n, s in strat.items() if n != "RecShard"]
    rec = strat["RecShard"]
    assert all(rec["qps"] >= 0.98 * b["qps"] for b in baselines)
    assert all(rec["p99_ms"] <= b["p99_ms"] * 1.02 + 1e-6 for b in baselines)
    best_baseline = max(b["qps"] for b in baselines)
    np.testing.assert_array_less(0, rec["qps"])
    print(f"RecShard serving capacity vs best baseline: "
          f"{rec['qps'] / best_baseline:.2f}x")