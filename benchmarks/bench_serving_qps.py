"""Serving throughput: QPS and tail latency of the online lookup server.

Not a paper figure — the paper evaluates training replay — but the
serving-side restatement of its Table 3/Figure 11 claim: a plan whose
hot rows sit in HBM, balanced across devices, completes each microbatch
faster, so one model-parallel replica sustains more requests per second
at saturation and lower tail latency below it.

Three views:

* microbatch sweep — batching amortizes per-batch overhead, trading a
  bounded queueing delay for throughput (the dynamic-batching tradeoff
  every production recommender serving stack makes);
* strategy comparison — RecShard's plan vs the strongest baseline under
  a saturating open-loop load, where completed QPS measures engine
  capacity rather than offered load;
* fast-path speedup — the columnar arena path
  (:meth:`~repro.serving.server.LookupServer.serve_arenas`) against the
  per-request object reference, asserting the wall-clock simulation
  throughput multiple the fast path exists to provide, at bit-identical
  per-seed metrics.

Besides the text report (``reports/serving_qps.txt``), the headline
numbers land machine-readable in ``reports/BENCH_serving.json`` so the
serving perf trajectory is tracked across PRs.
"""

import os
import time

import numpy as np
import pytest

from conftest import BENCH_BATCH, BENCH_GPUS, format_table, report, report_json
from repro.core import RecShardFastSharder
from repro.data.drift import DriftModel
from repro.serving import (
    LookupServer,
    ServingConfig,
    synthetic_request_arenas,
)

REQUESTS = 2048
SATURATING_QPS = 1e9  # all requests arrive (almost) at once
# Wall-clock multiple the columnar fast path must deliver over the
# object reference path.  Below a handful of features the object path
# has too little per-request tuple churn for the ratio to be meaningful,
# so smoke configurations may override via the environment.
MIN_SERVING_SPEEDUP = float(
    os.environ.get("RECSHARD_BENCH_MIN_SERVING_SPEEDUP", 10.0)
)

def _make_server(model, profile, topology, plan, max_batch):
    return LookupServer(
        model, profile, topology, plan=plan,
        config=ServingConfig(max_batch_size=max_batch, max_delay_ms=2.0),
    )


def _serve(model, profile, topology, plan, max_batch):
    server = _make_server(model, profile, topology, plan, max_batch)
    arenas = synthetic_request_arenas(
        model, num_requests=REQUESTS, qps=SATURATING_QPS, seed=42
    )
    return server.serve_arenas(arenas).summary()


@pytest.fixture(scope="module")
def serving_views(models, profiles, topology, headline):
    """Microbatch sweep + strategy comparison on RM2 (shared sections).

    A module fixture so every test of this file (and any subset
    selected with ``-k``) composes its report from the same computed
    views — no cross-test execution-order coupling.
    """
    model = models[1]  # RM2: the UVM-pressured regime
    profile = profiles[model.name]
    results = headline[model.name]
    recshard_plan = results["RecShard"].plan

    # View 1: microbatch size sweep on the RecShard plan.
    sweep_rows = []
    sweep = {}
    for max_batch in (32, 128, 512):
        s = _serve(model, profile, topology, recshard_plan, max_batch)
        sweep[max_batch] = s
        sweep_rows.append(
            (max_batch, f"{s['qps']:.0f}", f"{s['p50_ms']:.3f}",
             f"{s['p99_ms']:.3f}", f"{s['avg_batch_size']:.0f}")
        )
    sweep_table = format_table(
        ["microbatch cap", "QPS", "p50 (ms)", "p99 (ms)", "avg batch"],
        sweep_rows,
    )

    # View 2: plans head to head at a fixed microbatch cap.
    strat_rows = []
    strat = {}
    for name, result in results.items():
        s = _serve(model, profile, topology, result.plan, 256)
        strat[name] = s
        strat_rows.append(
            (name, f"{s['qps']:.0f}", f"{s['p50_ms']:.3f}",
             f"{s['p99_ms']:.3f}",
             f"{s['mean_device_utilization']:.1%}")
        )
    strat_table = format_table(
        ["strategy", "QPS", "p50 (ms)", "p99 (ms)", "mean device util"],
        strat_rows,
    )
    return {
        "sweep": sweep,
        "strategies": strat,
        "tables": (
            f"-- microbatch sweep (RecShard plan) --\n{sweep_table}\n\n"
            f"-- strategies at microbatch cap 256 --\n{strat_table}"
        ),
    }


def test_serving_qps(models, serving_views):
    model = models[1]
    sweep = serving_views["sweep"]
    strat = serving_views["strategies"]
    report(
        "serving_qps",
        f"{model.name} on {BENCH_GPUS} GPUs, {REQUESTS} requests, "
        f"saturating load\n\n{serving_views['tables']}",
    )

    # Every request is served, exactly once.
    assert all(s["requests"] == REQUESTS for s in sweep.values())
    assert all(s["requests"] == REQUESTS for s in strat.values())
    # Batching amortizes per-batch overhead: large caps beat tiny ones
    # at saturation.
    assert sweep[512]["qps"] >= sweep[32]["qps"]
    # RecShard's balanced HBM placement serves at least as fast as every
    # baseline, in capacity and in tail latency.
    baselines = [s for n, s in strat.items() if n != "RecShard"]
    rec = strat["RecShard"]
    assert all(rec["qps"] >= 0.98 * b["qps"] for b in baselines)
    assert all(rec["p99_ms"] <= b["p99_ms"] * 1.02 + 1e-6 for b in baselines)
    best_baseline = max(b["qps"] for b in baselines)
    np.testing.assert_array_less(0, rec["qps"])
    print(f"RecShard serving capacity vs best baseline: "
          f"{rec['qps'] / best_baseline:.2f}x")


def test_serving_drift_replan_build_cost(models, profiles, topology):
    """Drift replans stay cheap: workspace reuse + warm starts.

    Serves a drifted stream through a replanning server (the vectorized
    fast sharder, as ``repro serve`` deploys it) and records how long
    each off-critical-path replan took to build.  The per-replan build
    cost lands in ``BENCH_serving.json`` so regressions in the
    replan path (workspace refresh, warm-started vectorized solve,
    remapper rebuild) are visible across PRs.
    """
    model = models[1]
    profile = profiles[model.name]
    config = ServingConfig(
        max_batch_size=256, max_delay_ms=2.0,
        drift_threshold_pct=2.0, drift_min_samples=256,
        drift_check_every_batches=4,
    )
    server = LookupServer(
        model, profile, topology,
        sharder=RecShardFastSharder(batch_size=BENCH_BATCH, name="RecShard"),
        config=config,
    )
    arenas = synthetic_request_arenas(
        model, num_requests=REQUESTS, qps=SATURATING_QPS, seed=7,
        drift=DriftModel(feature_noise=4.0, alpha_noise=4.0),
        months_per_request=24.0 / REQUESTS,
    )
    metrics = server.serve_arenas(arenas)
    assert metrics.num_replans >= 1, "drifted stream should trigger a replan"
    builds = metrics.replan_build_ms
    text = (
        f"{model.name} on {BENCH_GPUS} GPUs, {REQUESTS} requests, 24 months "
        f"of drift fast-forwarded\n"
        f"drift replans: {metrics.num_replans}, build cost per replan (ms): "
        + ", ".join(f"{b:.1f}" for b in builds)
    )
    report("serving_drift_replans", text)
    report_json(
        "serving_replans",
        {
            "requests": REQUESTS,
            "drift_months": 24.0,
            "replans": metrics.num_replans,
            "replan_build_ms": list(builds),
            "replan_build_mean_ms": float(np.mean(builds)),
            "replan_build_total_ms": metrics.replan_build_total_ms,
        },
    )


def test_serving_fast_path_speedup(models, profiles, topology, headline, serving_views):
    """Columnar fast path: >= 10x simulation throughput, exact parity.

    Serves the identical seeded saturating stream through the object
    reference loop (per-request ``LookupRequest`` + ``MicroBatchQueue``
    + per-batch re-concatenation) and through the arena fast path
    (feature-major chunks, vectorized admission, offset-slice
    coalescing), best-of-two rounds each.  The two runs must agree bit
    for bit on every deterministic serving metric.
    """
    model = models[1]
    profile = profiles[model.name]
    plan = headline[model.name]["RecShard"].plan
    stream_kwargs = dict(num_requests=REQUESTS, qps=SATURATING_QPS, seed=42)

    # Sampling the synthetic trace (inverse-CDF draws) is workload
    # generation, not serving; it is identical for both paths and is
    # done once outside the timed region.  The reference path still
    # materializes its per-request objects *inside* the timed loop —
    # that per-request view construction is exactly what the PR-1
    # stream handed the server and what the columnar path eliminates.
    arenas = list(synthetic_request_arenas(model, **stream_kwargs))

    # Server construction (plan install, rank tables) is deployment
    # work shared by both paths; the timed region is the serving loop.
    def run_reference():
        server = _make_server(model, profile, topology, plan, 256)
        start = time.perf_counter()
        metrics = server.serve(r for arena in arenas for r in arena)
        return time.perf_counter() - start, metrics

    def run_fast():
        server = _make_server(model, profile, topology, plan, 256)
        start = time.perf_counter()
        metrics = server.serve_arenas(arenas)
        return time.perf_counter() - start, metrics

    # Warm both paths (lazy rank tables, numpy internals, page cache).
    run_reference()
    run_fast()

    ref_s, fast_s = [], []
    ref_metrics = fast_metrics = None
    for _ in range(2):
        elapsed, ref_metrics = run_reference()
        ref_s.append(elapsed)
        elapsed, fast_metrics = run_fast()
        fast_s.append(elapsed)
    ref_best, fast_best = min(ref_s), min(fast_s)
    speedup = ref_best / fast_best

    # Exact per-seed metric parity, the fast path's correctness bar.
    assert ref_metrics.summary(deterministic_only=True) == (
        fast_metrics.summary(deterministic_only=True)
    )
    np.testing.assert_array_equal(
        ref_metrics.latencies_ms(), fast_metrics.latencies_ms()
    )
    np.testing.assert_array_equal(
        ref_metrics.device_busy_ms, fast_metrics.device_busy_ms
    )

    table = format_table(
        ["serving path", "sim wall-clock (ms)", "requests/s processed"],
        [
            ("reference (objects)", f"{ref_best * 1e3:.1f}",
             f"{REQUESTS / ref_best:.3g}"),
            ("fast (columnar)", f"{fast_best * 1e3:.1f}",
             f"{REQUESTS / fast_best:.3g}"),
        ],
    )
    speedup_text = (
        f"-- columnar fast path vs object reference --\n{table}\n\n"
        f"{model.name}, {REQUESTS} requests, microbatch cap 256: "
        f"fast-path speedup {speedup:.2f}x "
        f"(floor {MIN_SERVING_SPEEDUP:g}x), metrics bit-identical"
    )
    body = (
        f"{model.name} on {BENCH_GPUS} GPUs, {REQUESTS} requests, "
        f"saturating load\n\n{serving_views['tables']}"
    )
    report("serving_qps", f"{body}\n\n{speedup_text}")
    report_json(
        "serving",
        {
            "requests": REQUESTS,
            "microbatch_cap": 256,
            "reference_wall_s": ref_best,
            "fast_wall_s": fast_best,
            "speedup": speedup,
            "speedup_floor": MIN_SERVING_SPEEDUP,
            "requests_per_second_processed": REQUESTS / fast_best,
            "metrics": fast_metrics.summary(deterministic_only=True),
            "parity": "bit-identical",
            "microbatch_sweep": serving_views["sweep"],
            "strategies": serving_views["strategies"],
        },
    )
    assert speedup >= MIN_SERVING_SPEEDUP
