"""Table 2: the RM1/RM2/RM3 DLRM specifications.

Regenerates the table at the repo's 1/1000 row scale: 397 sparse
features, total hash sizes doubling from RM1 to RM2 to RM3, dim 64, and
sizes in the same ratio as the paper's 318/635/1270 GB.
"""

from conftest import build_models, format_table, report

PAPER_SIZES_GB = {"RM1": 318, "RM2": 635, "RM3": 1270}


def _table2() -> str:
    rows = []
    for model in build_models():
        spec = model.table2_row()
        rows.append(
            (
                spec["model"],
                spec["num_sparse_features"],
                f"{spec['total_hash_size']:,}",
                spec["emb_dim"],
                f"{spec['size_gib'] * 1000:.0f} GB(@1x)",
                f"{PAPER_SIZES_GB[spec['model']]} GB",
            )
        )
    return format_table(
        [
            "Model",
            "# Sparse Features",
            "Total Hash Size (scaled 1e-3)",
            "Emb. Dim.",
            "Size scaled back to 1x",
            "Paper size",
        ],
        rows,
    )


def test_table2_specs(benchmark):
    text = benchmark.pedantic(_table2, rounds=1, iterations=1)
    report("tab02_specs", text)
