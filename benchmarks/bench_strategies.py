"""Per-table sharding-strategy enumeration: auto-pick vs row-range-only.

The strategy planner's reason to exist is the workload LPT cannot fix:
one table so wide (embedding dim) that wherever its row ranges land,
that device is the makespan.  This bench builds exactly that shape —
a heterogeneous table population with its hottest table widened to a
dominant dim — and gates:

* **gain** — ``repro plan --strategies auto``'s per-table winners
  (scored by ``expected_device_costs_ms_many`` under the one shared
  capacity model) must beat the row-range-only plan's expected max
  device cost by at least ``RECSHARD_BENCH_MIN_STRATEGY_GAIN`` ×,
  and the picked assignment must actually be mixed (≥ 1 non-row
  strategy);
* **parity** — replaying a trace through the auto plan, the fused
  vectorized lane classifier and the scalar reference must produce
  bit-identical metrics (access counts, fast-lane hits, device times)
  — the per-lane parity promise of the lane registry, including the
  column scatter and any twrw cut lanes.

Environment knobs:
    RECSHARD_BENCH_MIN_STRATEGY_GAIN  row-only/auto makespan multiple
                                      the auto plan must reach (1.5)
    RECSHARD_BENCH_WIDE_DIM           dominant table's embedding dim
                                      (2048)

Headline numbers land machine-readable in
``reports/BENCH_strategies.json``.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

from conftest import (
    BENCH_BATCH,
    BENCH_FEATURES,
    BENCH_GPUS,
    BENCH_ITERS,
    format_table,
    report,
    report_json,
)
from repro.core import RecShardFastSharder, plan_with_strategies
from repro.data.feature import SparseFeatureSpec
from repro.data.model import EmbeddingTableSpec, ModelSpec
from repro.data.synthetic import TraceGenerator
from repro.engine import ShardedExecutor
from repro.memory.topology import SystemTopology
from repro.stats import analytic_profile

MIN_STRATEGY_GAIN = float(
    os.environ.get("RECSHARD_BENCH_MIN_STRATEGY_GAIN", 1.5)
)
WIDE_DIM = int(os.environ.get("RECSHARD_BENCH_WIDE_DIM", 2048))
BASE_DIM = 32
ROWS = 2048
SEED = 0


def build_wide_world():
    """A table population with one dominant wide-dim table.

    Statistics are heterogeneous (the planner must still tier-split
    every table); the hottest table by expected access weight is
    widened to ``WIDE_DIM`` so its byte traffic dwarfs the rest —
    the shape where row-range-only placement hits its makespan wall.
    """
    rng = np.random.default_rng(SEED)
    tables = []
    for i in range(BENCH_FEATURES):
        hash_size = int(ROWS * rng.uniform(0.5, 2.0))
        tables.append(
            EmbeddingTableSpec(
                feature=SparseFeatureSpec(
                    name=f"t{i}",
                    cardinality=hash_size * 2,
                    hash_size=hash_size,
                    alpha=float(rng.uniform(0.8, 1.5)),
                    avg_pooling=float(rng.uniform(2, 30)),
                    coverage=float(rng.uniform(0.2, 1.0)),
                    hash_seed=i,
                ),
                dim=BASE_DIM,
            )
        )
    weights = [t.feature.avg_pooling * t.feature.coverage for t in tables]
    wide = int(np.argmax(weights))
    tables[wide] = dataclasses.replace(tables[wide], dim=WIDE_DIM)
    model = ModelSpec(name="wide", tables=tuple(tables))
    profile = analytic_profile(model)
    total = model.total_bytes
    # Roomy HBM: capacity pressure is the planner benches' subject;
    # here the makespan imbalance is, so shard candidates never lose
    # to a capacity technicality.
    topology = SystemTopology.two_tier(
        num_devices=BENCH_GPUS,
        hbm_capacity=total,
        hbm_bandwidth=200e9,
        uvm_capacity=total,
        uvm_bandwidth=10e9,
    )
    return model, profile, topology, wide


def test_auto_strategies_beat_row_only():
    """Gate: mixed per-table winners vs the row-range-only makespan."""
    model, profile, topology, wide = build_wide_world()
    sharder = RecShardFastSharder(batch_size=BENCH_BATCH, steps=60)
    start = time.perf_counter()
    sp = plan_with_strategies(
        sharder, model, profile, topology, strategies=("auto",)
    )
    plan_ms = (time.perf_counter() - start) * 1e3
    sp.validate(model, topology)
    meta = sp.metadata
    gain = meta["row_only_max_cost_ms"] / meta["estimated_max_cost_ms"]
    counts = sp.strategy_counts()
    non_row = sum(counts[k] for k in ("table", "column", "twrw"))
    assert non_row >= 1, f"auto pick degenerated to all-row: {counts}"
    assert sp.strategies[wide].kind != "row", (
        "the dominant wide table was left row-range-only"
    )
    assert gain >= MIN_STRATEGY_GAIN, (
        f"strategy gain {gain:.2f}x below floor {MIN_STRATEGY_GAIN}x "
        f"(row-only {meta['row_only_max_cost_ms']:.4f} ms, "
        f"auto {meta['estimated_max_cost_ms']:.4f} ms)"
    )

    rows = [
        ["row-range-only", f"{meta['row_only_max_cost_ms']:.4f}", "-"],
        [
            "auto strategies",
            f"{meta['estimated_max_cost_ms']:.4f}",
            f"{gain:.2f}x",
        ],
    ]
    report(
        "strategies_gain",
        format_table(
            ["plan", "est. max GPU ms", "gain"], rows
        )
        + f"\nmix: {counts}  plan build: {plan_ms:.0f} ms",
    )
    report_json(
        "strategies",
        {
            "wide_dim": WIDE_DIM,
            "row_only_max_cost_ms": meta["row_only_max_cost_ms"],
            "auto_max_cost_ms": meta["estimated_max_cost_ms"],
            "gain": gain,
            "min_gain_floor": MIN_STRATEGY_GAIN,
            "strategy_counts": counts,
            "plan_build_ms": plan_ms,
        },
    )


def test_auto_plan_scalar_vectorized_parity():
    """Gate: bit-identical metrics on every lane of the auto plan."""
    model, profile, topology, _ = build_wide_world()
    sharder = RecShardFastSharder(batch_size=BENCH_BATCH, steps=60)
    sp = plan_with_strategies(
        sharder, model, profile, topology, strategies=("auto",)
    )
    fast = ShardedExecutor(model, sp, profile, topology)
    slow = ShardedExecutor(model, sp, profile, topology, vectorized=False)
    gen = TraceGenerator(model, batch_size=BENCH_BATCH, seed=7)
    total_lookups = 0
    for _ in range(max(2, BENCH_ITERS)):
        batch = gen.next_batch()
        ft, fa, fh, fr = fast.run_batch(batch)
        st, sa, sh, sr = slow.run_batch(batch)
        np.testing.assert_array_equal(fa, sa)
        np.testing.assert_array_equal(fh, sh)
        np.testing.assert_array_equal(fr, sr)
        np.testing.assert_array_equal(ft, st)
        assert fa.sum() == batch.total_lookups
        total_lookups += batch.total_lookups
    assert total_lookups > 0
