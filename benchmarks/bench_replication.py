"""Hot-row replication: load-balanced serving under a skewed workload.

RecShard's placement balances *expected cost*, but a table is an atomic
placement unit: when one feature dominates the traffic, the device that
owns it is the hot spot no assignment can dissolve.  This bench builds
that adversarial workload — one mega-hot feature carrying just under
half of all lookups — and shows the FlexShard-style fix end to end:
replicate the statically-hottest rows on every GPU (budget carved out
of HBM by :func:`repro.core.replicate.plan_with_replication`) and route
each replicated lookup to the least-loaded GPU.

Three gates:

* **routing parity** — the vectorized replica lane (closed-form
  least-loaded assignment per feature) must produce *bit-identical*
  :class:`~repro.serving.metrics.ServingMetrics` to the scalar
  reference (per-lookup argmin loop + per-lookup remap classification),
  replica routing and per-device access totals included.
* **load balance** — replication must cut the max/mean per-device
  access imbalance by at least ``RECSHARD_BENCH_MIN_IMBALANCE_GAIN``
  (default 2x) versus the unreplicated plan of the same workload.
* **no QPS regression** — the replicated configuration must sustain at
  least the plain configuration's simulated QPS (it should win: the
  hot device bounds every batch, and replication is precisely what
  offloads it).

Headline numbers land machine-readable in
``reports/BENCH_replication.json``.
"""

import os
import time
from dataclasses import replace

import numpy as np
import pytest

from conftest import (
    BENCH_BATCH,
    BENCH_FEATURES,
    BENCH_GPUS,
    ROW_SCALE,
    TOPO_SCALE,
    format_table,
    report,
    report_json,
)
from repro.core import (
    RecShardFastSharder,
    ReplicationPolicy,
    plan_with_replication,
)
from repro.data.model import rm2
from repro.memory import GIB, paper_node
from repro.serving import LookupServer, ServingConfig, synthetic_request_arenas
from repro.stats import analytic_profile

REQUESTS = 2048
SATURATING_QPS = 1e9
#: Per-GPU replica budget (paper-scale GiB), carved out of HBM.
REPLICATE_GIB = 2.0
#: The hot feature's expected lookups as a multiple of everything else:
#: at 0.8 it carries ~44% of all traffic, which no table-granular
#: placement can spread across GPUs.
HOT_SHARE = 0.8
MIN_IMBALANCE_GAIN = float(
    os.environ.get("RECSHARD_BENCH_MIN_IMBALANCE_GAIN", 2.0)
)


def build_skewed_model():
    """RM2 with one mega-hot feature (always present, huge pooling).

    The skew is expressed relative to the rest of the population so the
    hot share survives the CI shrink knobs, and the hot feature's value
    distribution is Zipfian enough that a modest replica budget covers
    most of its traffic — the regime FlexShard reports for production
    embedding accesses.
    """
    base = rm2(num_features=BENCH_FEATURES, row_scale=ROW_SCALE)
    rest = sum(
        t.feature.coverage * t.feature.avg_pooling for t in base.tables
    )
    tables = list(base.tables)
    hot = max(range(len(tables)), key=lambda j: tables[j].num_rows)
    feature = replace(
        tables[hot].feature,
        coverage=1.0,
        avg_pooling=max(1.0, HOT_SHARE * rest),
        pooling_sigma=0.4,
        alpha=1.2,
    )
    tables[hot] = replace(tables[hot], feature=feature)
    return base.with_tables(tables)


@pytest.fixture(scope="module")
def world():
    model = build_skewed_model()
    profile = analytic_profile(model)
    topology = paper_node(num_gpus=BENCH_GPUS, scale=TOPO_SCALE)
    sharder = RecShardFastSharder(batch_size=BENCH_BATCH, name="RecShard")
    plain = sharder.shard(model, profile, topology)
    plain.validate(model, topology)
    policy = ReplicationPolicy(
        capacity_bytes=int(REPLICATE_GIB * GIB * TOPO_SCALE)
    )
    replicated = plan_with_replication(
        sharder, model, profile, topology, policy
    )
    replicated.validate(model, topology)
    return model, profile, topology, plain, replicated


def make_server(world, plan, vectorized=True):
    model, profile, topology, _, _ = world
    return LookupServer(
        model, profile, topology, plan=plan,
        config=ServingConfig(max_batch_size=256, max_delay_ms=2.0),
        vectorized=vectorized,
    )


def stream(model, seed):
    return list(
        synthetic_request_arenas(
            model, num_requests=REQUESTS, qps=SATURATING_QPS, seed=seed
        )
    )


def test_replica_routing_parity(world):
    """Vectorized closed-form routing == scalar per-lookup argmin,
    bit-identical serving metrics (and it must not be slower)."""
    model, profile, topology, plain, replicated = world
    arenas = stream(model, seed=42)

    def run_reference():
        server = make_server(world, replicated, vectorized=False)
        start = time.perf_counter()
        metrics = server.serve(r for arena in arenas for r in arena)
        return time.perf_counter() - start, metrics

    def run_fast():
        server = make_server(world, replicated, vectorized=True)
        start = time.perf_counter()
        metrics = server.serve_arenas(arenas)
        return time.perf_counter() - start, metrics

    run_reference()  # warm lazy remap/rank tables
    run_fast()
    ref_s, fast_s = [], []
    ref_metrics = fast_metrics = None
    for _ in range(2):
        elapsed, ref_metrics = run_reference()
        ref_s.append(elapsed)
        elapsed, fast_metrics = run_fast()
        fast_s.append(elapsed)
    speedup = min(ref_s) / min(fast_s)

    assert ref_metrics.summary(deterministic_only=True) == (
        fast_metrics.summary(deterministic_only=True)
    )
    np.testing.assert_array_equal(
        ref_metrics.latencies_ms(), fast_metrics.latencies_ms()
    )
    np.testing.assert_array_equal(
        ref_metrics.device_busy_ms, fast_metrics.device_busy_ms
    )
    np.testing.assert_array_equal(
        ref_metrics.tier_access_totals, fast_metrics.tier_access_totals
    )
    np.testing.assert_array_equal(
        ref_metrics.replica_access_totals, fast_metrics.replica_access_totals
    )
    # The lane must actually fire for the parity to mean anything.
    assert fast_metrics.replica_access_totals.sum() > 0
    # Closed-form routing replaces a per-lookup Python loop; on the
    # skewed stream (hundreds of replicated lookups per microbatch) it
    # must at least break even.
    assert speedup >= 1.0, f"vectorized routing slower: {speedup:.2f}x"
    world_report = {
        "routing_speedup": speedup,
        "replica_hits": int(fast_metrics.replica_access_totals.sum()),
    }
    report(
        "replication_parity",
        f"{model.name} skewed stream, {REQUESTS} requests: scalar vs "
        f"vectorized replica routing bit-identical; fast path "
        f"{speedup:.2f}x the per-lookup reference, "
        f"{world_report['replica_hits']} lookups routed",
    )


def test_replication_balances_load_without_qps_regression(world):
    """>= MIN_IMBALANCE_GAIN reduction in max/mean device accesses at
    no simulated-QPS loss, with machine-readable evidence."""
    model, profile, topology, plain, replicated = world
    arenas = stream(model, seed=77)

    plain_metrics = make_server(world, plain).serve_arenas(arenas)
    repl_metrics = make_server(world, replicated).serve_arenas(arenas)

    assert plain_metrics.num_requests == REQUESTS
    assert repl_metrics.num_requests == REQUESTS
    # Identical trace content: replication moves lookups between
    # devices, never creates or drops them.
    assert (
        repl_metrics.device_access_totals.sum()
        == plain_metrics.device_access_totals.sum()
    )

    imbalance_plain = plain_metrics.load_imbalance
    imbalance_repl = repl_metrics.load_imbalance
    gain = imbalance_plain / imbalance_repl
    qps_plain = plain_metrics.qps
    qps_repl = repl_metrics.qps

    rows = [
        ("plain", f"{imbalance_plain:.2f}x", f"{qps_plain:,.0f}",
         f"{plain_metrics.p99_ms:.3f}", "0"),
        ("replicated", f"{imbalance_repl:.2f}x", f"{qps_repl:,.0f}",
         f"{repl_metrics.p99_ms:.3f}",
         f"{repl_metrics.replica_access_totals.sum():,}"),
    ]
    table = format_table(
        ["plan", "device imbalance", "QPS", "p99 (ms)", "replica hits"],
        rows,
    )
    text = (
        f"{model.name} + mega-hot feature (~"
        f"{HOT_SHARE / (1 + HOT_SHARE):.0%} of lookups) on {BENCH_GPUS} "
        f"GPUs, {REQUESTS} requests, saturating load, replica budget "
        f"{REPLICATE_GIB:g} GiB/GPU paper-scale\n\n{table}\n\n"
        f"imbalance reduction {gain:.2f}x (floor {MIN_IMBALANCE_GAIN:g}x), "
        f"QPS {qps_repl / qps_plain:.2f}x plain"
    )
    report("replication", text)
    report_json(
        "replication",
        {
            "requests": REQUESTS,
            "hot_share": HOT_SHARE / (1 + HOT_SHARE),
            "replicate_gib": REPLICATE_GIB,
            "replicated_rows": replicated.num_replicated_rows,
            "replica_hits": int(repl_metrics.replica_access_totals.sum()),
            "imbalance_plain": imbalance_plain,
            "imbalance_replicated": imbalance_repl,
            "imbalance_gain": gain,
            "imbalance_gain_floor": MIN_IMBALANCE_GAIN,
            "qps_plain": qps_plain,
            "qps_replicated": qps_repl,
            "p99_ms_plain": plain_metrics.p99_ms,
            "p99_ms_replicated": repl_metrics.p99_ms,
            "parity": "bit-identical",
        },
    )
    assert gain >= MIN_IMBALANCE_GAIN, (
        f"imbalance gain {gain:.2f}x below floor {MIN_IMBALANCE_GAIN:g}x "
        f"({imbalance_plain:.2f}x -> {imbalance_repl:.2f}x)"
    )
    assert qps_repl >= qps_plain, (
        f"QPS regressed: {qps_plain:,.0f} -> {qps_repl:,.0f}"
    )


def test_replicated_drift_replans(world):
    """Drift replans recompute the replica set from the observed profile
    and keep serving without interruption."""
    from repro.data.drift import DriftModel

    model, profile, topology, _, _ = world
    policy = ReplicationPolicy(
        capacity_bytes=int(REPLICATE_GIB * GIB * TOPO_SCALE)
    )
    server = LookupServer(
        model, profile, topology,
        sharder=RecShardFastSharder(batch_size=BENCH_BATCH, name="RecShard"),
        config=ServingConfig(
            max_batch_size=256, max_delay_ms=2.0,
            drift_threshold_pct=2.0, drift_min_samples=256,
            drift_check_every_batches=4,
        ),
        replication=policy,
    )
    arenas = synthetic_request_arenas(
        model, num_requests=REQUESTS, qps=SATURATING_QPS, seed=7,
        drift=DriftModel(feature_noise=4.0, alpha_noise=4.0),
        months_per_request=24.0 / REQUESTS,
    )
    metrics = server.serve_arenas(arenas)
    assert metrics.num_replans >= 1, "drifted stream should trigger a replan"
    assert metrics.num_requests == REQUESTS
    # The post-replan executor still carries a replica set built from
    # the observed statistics.
    assert server.executor.replication is not None
    assert server.executor.replication.replica_rows.sum() > 0
    report(
        "replication_replans",
        f"{model.name} drifted skewed stream: {metrics.num_replans} "
        f"replans, replica set recomputed each time "
        f"({metrics.replan_build_total_ms:.1f} ms build wall-clock "
        f"off-path); replica lane served "
        f"{metrics.replica_access_totals.sum()} lookups",
    )
