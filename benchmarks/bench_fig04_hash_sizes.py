"""Figure 4: sparse feature cardinality vs chosen hash size.

The paper's scatter shows hash sizes tracking cardinality within about
an order of magnitude on either side of the ``hash == cardinality``
line.  This bench regenerates the joint distribution for the RM1
population and summarizes it (decade spread, log-log correlation, and
the quartiles of the hash/cardinality ratio).
"""

import numpy as np

from conftest import build_models, format_table, report


def _figure4_summary() -> str:
    model = build_models()[0]
    cardinalities = np.array([t.feature.cardinality for t in model.tables], float)
    hash_sizes = np.array([t.feature.hash_size for t in model.tables], float)
    ratio = hash_sizes / cardinalities
    corr = float(np.corrcoef(np.log(cardinalities), np.log(hash_sizes))[0, 1])

    quartiles = np.quantile(ratio, [0.05, 0.25, 0.5, 0.75, 0.95])
    rows = [
        ("features", len(model.tables)),
        (
            "cardinality range",
            f"{cardinalities.min():.0f} .. {cardinalities.max():.0f}",
        ),
        ("hash size range", f"{hash_sizes.min():.0f} .. {hash_sizes.max():.0f}"),
        ("log-log correlation", f"{corr:.3f}"),
        ("hash/cardinality p05", f"{quartiles[0]:.2f}"),
        ("hash/cardinality p25", f"{quartiles[1]:.2f}"),
        ("hash/cardinality median", f"{quartiles[2]:.2f}"),
        ("hash/cardinality p75", f"{quartiles[3]:.2f}"),
        ("hash/cardinality p95", f"{quartiles[4]:.2f}"),
        ("features hashed below cardinality", f"{np.mean(ratio < 1):.1%}"),
    ]
    table = format_table(["statistic", "value"], rows)
    note = (
        "Paper shape: scatter around the hash == cardinality line within\n"
        "roughly one order of magnitude; many features hashed to fewer\n"
        "rows than their raw space (points below the red line)."
    )
    return f"{table}\n\n{note}"


def test_figure4_hash_sizes(benchmark):
    text = benchmark(_figure4_summary)
    report("fig04_hash_sizes", text)
