"""Figure 8: hash usage, collisions and sparsity vs hash-size multiple.

Sweeping the hash size from 0.25x to 10x the input cardinality: usage
falls (sparsity rises) while collisions fall — increasing hash size to
keep the distribution tail leaves reclaimable dead space.  Analytic
expectations and empirical measurements (SplitMix64) are printed side by
side; the blue-dot point of the paper (hash == cardinality) shows the
birthday-paradox 1/e.
"""

import numpy as np

from conftest import format_table, report
from repro.hashing import SplitMix64Hasher, birthday_sweep

NUM_VALUES = 50_000
MULTIPLES = (0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)


def _figure8_sweep() -> str:
    analytic = birthday_sweep(NUM_VALUES, MULTIPLES)
    measured = birthday_sweep(NUM_VALUES, MULTIPLES, hasher=SplitMix64Hasher(seed=8))
    rows = []
    for a, m in zip(analytic, measured):
        rows.append(
            (
                f"{a.multiple:.2f}x",
                f"{a.usage:.3f}",
                f"{m.usage:.3f}",
                f"{a.collisions:.3f}",
                f"{m.collisions:.3f}",
                f"{m.sparsity:.3f}",
            )
        )
    table = format_table(
        [
            "hash multiple",
            "usage (analytic)",
            "usage (measured)",
            "collisions (analytic)",
            "collisions (measured)",
            "sparsity (measured)",
        ],
        rows,
    )
    at_one = [m for m in measured if m.multiple == 1.0][0]
    note = (
        f"At hash == cardinality (the paper's blue dot): usage "
        f"{at_one.usage:.3f} vs 1 - 1/e = {1 - np.exp(-1):.3f} — the "
        "birthday paradox leaves ~1/e of rows unused, and the unused\n"
        "fraction keeps growing with the multiple (RecShard reclaims it)."
    )
    return f"{table}\n\n{note}"


def test_figure8_birthday(benchmark):
    text = benchmark(_figure8_sweep)
    report("fig08_birthday", text)
