"""Multi-process serving: wall-clock QPS scaling, overload behavior.

Every other serving number in this repo is simulated-clock; this bench
is the wall-clock one.  It puts the same seeded arena stream through
:class:`~repro.serving.mp.MultiProcessServer` pools of different sizes
and measures *real* sustained requests per second, end to end: shared
admission, shared-memory handoff, parallel worker classification, and
the sequential metrics aggregator.

Gates:

* **parity** — the merged metrics of every pool size must equal the
  single-process ``serve_arenas`` run bit for bit (worker count is a
  throughput knob, not a semantics knob);
* **scaling** — sustained wall-clock QPS at ``RECSHARD_BENCH_MP_WORKERS``
  workers must be at least ``RECSHARD_BENCH_MIN_MP_SCALING`` x the
  1-worker pool (asserted only when the host has at least that many
  CPUs; reported regardless);
* **overload** — a paced bursty run past measured closed-loop capacity
  must keep exact ``offered == served + shed`` accounting (whether the
  bounded queue actually sheds depends on how far worker classify
  throughput exceeds the closed-loop estimate; deterministic shedding
  is asserted in ``tests/test_serving/test_mp_stress.py``), and its
  p99 + shed fraction are reported;
* **hygiene** — no orphaned shared-memory segments after any run.

Environment knobs (on top of the shared workload knobs):
    RECSHARD_BENCH_MP_WORKERS      pool size for the scaling gate (4)
    RECSHARD_BENCH_MP_REQUESTS     stream length (16384)
    RECSHARD_BENCH_MIN_MP_SCALING  QPS multiple vs 1 worker (2.0;
                                   0 disables the assertion)
"""

import os
import time

import numpy as np
import pytest

from conftest import (
    BENCH_BATCH,
    BENCH_FEATURES,
    BENCH_GPUS,
    format_table,
    report,
    report_json,
)
from repro.core import RecShardFastSharder
from repro.serving import (
    BurstyArrivals,
    LookupServer,
    MultiProcessServer,
    ServingConfig,
    generate_request_arenas,
    synthetic_request_arenas,
)
from repro.serving.arena import SHM_NAME_PREFIX

MP_WORKERS = int(os.environ.get("RECSHARD_BENCH_MP_WORKERS", 4))
MP_REQUESTS = int(os.environ.get("RECSHARD_BENCH_MP_REQUESTS", 16384))
MIN_MP_SCALING = float(os.environ.get("RECSHARD_BENCH_MIN_MP_SCALING", 2.0))

CONFIG = ServingConfig(max_batch_size=256, max_delay_ms=2.0)


@pytest.fixture(autouse=True)
def no_orphaned_segments():
    def segments():
        if not os.path.isdir("/dev/shm"):  # pragma: no cover
            return set()
        return {
            n
            for n in os.listdir("/dev/shm")
            if n.startswith(SHM_NAME_PREFIX)
        }

    before = segments()
    yield
    assert segments() - before == set(), "orphaned shared-memory segments"


@pytest.fixture(scope="module")
def mp_world(models, profiles, topology):
    """RM2 plan + pre-generated saturating stream, shared by the views.

    The stream is materialized once outside every timed region: trace
    sampling is workload generation, identical for all pool sizes.
    """
    model = models[1]
    profile = profiles[model.name]
    plan = RecShardFastSharder(batch_size=BENCH_BATCH).shard(
        model, profile, topology
    )
    arenas = list(
        synthetic_request_arenas(
            model, num_requests=MP_REQUESTS, qps=1e9, seed=42
        )
    )
    return model, profile, topology, plan, arenas


def _timed_pool_run(model, profile, topology, plan, arenas, workers):
    """Best-of-2 closed-loop wall-clock of one pool size (warm round
    first); pool startup (fork + per-worker executor build) stays
    outside the timed region, like server construction in the other
    serving benches."""
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG, workers=workers
    ) as pool:
        pool.serve_arenas(arenas[: max(1, len(arenas) // 8)])  # warm
        best = float("inf")
        metrics = None
        for _ in range(2):
            pool.reset_serving_state()  # per-round metrics for parity
            start = time.perf_counter()
            metrics = pool.serve_arenas(arenas)
            best = min(best, time.perf_counter() - start)
    return best, metrics


def test_mp_qps_scaling(mp_world):
    """Wall-clock QPS across pool sizes, parity pinned at every size."""
    model, profile, topology, plan, arenas = mp_world
    single = LookupServer(
        model, profile, topology, plan=plan, config=CONFIG
    ).serve_arenas(arenas)
    reference = single.summary(deterministic_only=True)

    sizes = sorted({1, max(2, MP_WORKERS // 2), MP_WORKERS})
    rows = []
    wall = {}
    for workers in sizes:
        elapsed, metrics = _timed_pool_run(
            model, profile, topology, plan, arenas, workers
        )
        # Bit parity at every pool size (the mp test suite pins the
        # full metric set; the bench re-checks the summary end to end).
        assert metrics.summary(deterministic_only=True) == reference
        np.testing.assert_array_equal(
            metrics.tier_access_totals, single.tier_access_totals
        )
        wall[workers] = elapsed
        rows.append(
            (workers, f"{elapsed * 1e3:.0f}",
             f"{MP_REQUESTS / elapsed:.0f}",
             f"{wall[1] / elapsed:.2f}x" if 1 in wall else "--")
        )
    scaling = wall[1] / wall[MP_WORKERS]
    cpus = os.cpu_count() or 1
    gated = MIN_MP_SCALING > 0 and cpus >= MP_WORKERS
    table = format_table(
        ["workers", "wall (ms)", "sustained QPS", "vs 1 worker"], rows
    )
    report(
        "serving_mp",
        f"{model.name} on {BENCH_GPUS} GPUs ({BENCH_FEATURES} features), "
        f"{MP_REQUESTS} requests, closed-loop, best of 2\n\n{table}\n\n"
        f"scaling at {MP_WORKERS} workers: {scaling:.2f}x "
        f"(floor {MIN_MP_SCALING:g}x, "
        f"{'enforced' if gated else f'not enforced: {cpus} CPUs'}), "
        f"metrics bit-identical to single-process at every pool size",
    )
    report_json(
        "serving_mp",
        {
            "requests": MP_REQUESTS,
            "workers": sizes,
            "wall_s": {str(w): wall[w] for w in sizes},
            "sustained_qps": {
                str(w): MP_REQUESTS / wall[w] for w in sizes
            },
            "scaling": scaling,
            "scaling_floor": MIN_MP_SCALING,
            "scaling_enforced": gated,
            "host_cpus": cpus,
            "parity": "bit-identical",
            "metrics": reference,
        },
    )
    if gated:
        assert scaling >= MIN_MP_SCALING, (
            f"{MP_WORKERS}-worker pool sustained only {scaling:.2f}x the "
            f"1-worker wall-clock QPS (floor {MIN_MP_SCALING:g}x)"
        )


def test_mp_overload_p99_and_shedding(mp_world):
    """Paced bursty overload: bounded queue, exact shed accounting,
    p99 under pressure reported."""
    model, profile, topology, plan, arenas = mp_world
    workers = min(2, MP_WORKERS)
    # Capacity from a short closed-loop run, then bursts well past it.
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=workers, queue_depth=2,
    ) as pool:
        calib = arenas[: max(1, len(arenas) // 4)]
        calib_n = sum(a.num_requests for a in calib)
        start = time.perf_counter()
        pool.serve_arenas(calib)
        capacity_qps = calib_n / (time.perf_counter() - start)

        process = BurstyArrivals(
            burst_qps=4.0 * capacity_qps,
            idle_qps=0.05 * capacity_qps,
            burst_ms=100.0,
            idle_ms=100.0,
        )
        overload = list(
            generate_request_arenas(
                model, MP_REQUESTS // 2, process, seed=17
            )
        )
        offered = sum(a.num_requests for a in overload)
        pool.reset_serving_state()  # keep calibration out of the numbers
        start = time.perf_counter()
        metrics = pool.serve_paced(overload)
        elapsed = time.perf_counter() - start

    served = metrics.num_requests
    shed = metrics.shed_requests
    assert served + shed == offered
    assert served > 0
    report(
        "serving_mp_overload",
        f"{model.name}, {workers} workers, queue depth 2, bursts at "
        f"~4x measured capacity ({capacity_qps:.0f} QPS closed-loop)\n"
        f"offered {offered}, served {served}, shed {shed} "
        f"({shed / offered:.1%}); p99 {metrics.p99_ms:.3f} ms "
        f"(simulated), wall-clock {elapsed:.2f} s",
    )
    report_json(
        "serving_mp_overload",
        {
            "workers": workers,
            "queue_depth": 2,
            "capacity_qps_estimate": capacity_qps,
            "offered": offered,
            "served": served,
            "shed": shed,
            "shed_fraction": shed / offered,
            "p99_ms_simulated": metrics.p99_ms,
            "wall_s": elapsed,
        },
    )
