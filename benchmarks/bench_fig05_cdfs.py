"""Figure 5: hashed value frequency CDFs of the sparse features.

The paper plots, for ~200 production features, the cumulative access
fraction against the cumulative (hottest-first) row fraction: most
curves bow sharply upward (power-law skew), a handful are near the
diagonal (uniform).  This bench regenerates the CDF family for the RM1
population and prints the spread of access coverage at fixed row
fractions.
"""

import numpy as np

from conftest import build_models, format_table, profiles, report  # noqa: F401
from repro.stats import analytic_profile

ROW_FRACTIONS = (0.01, 0.05, 0.10, 0.25, 0.50)


def _figure5_summary(profile) -> str:
    coverage_at = {f: [] for f in ROW_FRACTIONS}
    for stats in profile:
        if stats.total_accesses <= 0:
            continue
        for fraction in ROW_FRACTIONS:
            rows = max(1, int(stats.hash_size * fraction))
            coverage_at[fraction].append(stats.cdf.coverage_of_rows(rows))
    rows = []
    for fraction in ROW_FRACTIONS:
        values = np.array(coverage_at[fraction])
        rows.append(
            (
                f"{fraction:.0%} hottest rows",
                f"{np.quantile(values, 0.1):.2f}",
                f"{np.median(values):.2f}",
                f"{np.quantile(values, 0.9):.2f}",
                f"{values.max():.2f}",
            )
        )
    table = format_table(
        ["row fraction", "p10 access cov", "median", "p90", "max"], rows
    )
    near_uniform = sum(
        1
        for stats in profile
        if stats.total_accesses > 0
        and stats.cdf.coverage_of_rows(max(1, stats.hash_size // 10)) < 0.2
    )
    note = (
        f"{near_uniform}/{len(profile)} features are near-uniform "
        "(flat CDFs in the paper's figure); the rest are strongly skewed —\n"
        "a small subset of rows sources the majority of accesses."
    )
    return f"{table}\n\n{note}"


def test_figure5_cdfs(benchmark):
    model = build_models()[0]
    profile = analytic_profile(model)
    text = benchmark.pedantic(
        lambda: _figure5_summary(profile), rounds=1, iterations=1
    )
    report("fig05_cdfs", text)
