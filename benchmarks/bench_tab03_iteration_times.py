"""Table 3: Min/Max/Mean/StdDev per-GPU EMB iteration times, 16 GPUs.

The paper's core result table: four sharding strategies on RM1/RM2/RM3.
Training throughput is bound by the slowest GPU (Max), and the StdDev
captures load balance.  Shape targets from the paper: RecShard's Max is
several times lower than every baseline on the UVM-pressured models,
and its StdDev is an order of magnitude lower throughout.

This bench also times the replay engine itself: the rank-space
vectorized path (shared frequency ranking + fused multi-plan threshold
scans) against the per-feature scalar reference, asserting the >= 5x
wall-clock speedup the vectorized engine exists to provide.
"""

import time

import numpy as np

from conftest import BENCH_BATCH, BENCH_ITERS, format_table, report, report_json
from repro.data.synthetic import TraceGenerator
from repro.engine import RankRemapper, ShardedExecutor, replay_trace

PAPER_ROWS = {
    "RM1": {
        "Size-Based": "7.12/21.23/13.06/4.01",
        "Lookup-Based": "5.08/30.97/12.99/5.59",
        "Size-Based-Lookup": "5.55/26.03/12.91/4.72",
        "RecShard": "6.53/8.21/7.48/0.45",
    },
    "RM2": {
        "Size-Based": "20.52/49.65/33.82/7.37",
        "Lookup-Based": "10.40/55.85/32.47/9.87",
        "Size-Based-Lookup": "7.47/56.66/32.95/10.26",
        "RecShard": "6.52/9.44/7.75/0.78",
    },
    "RM3": {
        "Size-Based": "40.43/76.15/56.45/10.86",
        "Lookup-Based": "3.37/73.30/55.27/18.53",
        "Size-Based-Lookup": "5.10/85.01/56.04/20.39",
        "RecShard": "6.83/9.90/8.31/0.69",
    },
}


def _table3(headline) -> str:
    rows = []
    for model_name, results in headline.items():
        for strategy, result in results.items():
            rows.append(
                (
                    model_name,
                    strategy,
                    result.metrics.iteration_stats().as_row(),
                    PAPER_ROWS[model_name][strategy],
                )
            )
    table = format_table(
        ["Model", "Strategy", "measured Min/Max/Mean/Std (ms)", "paper (ms)"],
        rows,
    )
    note = (
        "Absolute milliseconds are simulated (scaled models, effective\n"
        "gather bandwidths); the comparisons that carry are per-model\n"
        "ratios: RecShard's Max and StdDev vs each baseline's."
    )
    return f"{table}\n\n{note}"


def test_table3_iteration_times(benchmark, headline):
    text = benchmark.pedantic(lambda: _table3(headline), rounds=1, iterations=1)
    report("tab03_iteration_times", text)
    report_json(
        "tab03",
        {
            "iteration_stats_ms": {
                model_name: {
                    strategy: {
                        "min": stats.min, "max": stats.max,
                        "mean": stats.mean, "std": stats.std,
                    }
                    for strategy, result in results.items()
                    for stats in [result.metrics.iteration_stats()]
                }
                for model_name, results in headline.items()
            },
        },
    )
    # Shape assertions: under UVM pressure (RM2/RM3) RecShard is strictly
    # better balanced than every baseline; on RM1 (all-HBM) allow a small
    # slack — with few tables per GPU, balance is granularity-bound and
    # the best baseline can tie.
    for model_name, results in headline.items():
        slack = 1.25 if model_name == "RM1" else 1.0
        recshard = results["RecShard"].metrics.iteration_stats()
        for name, result in results.items():
            if name == "RecShard":
                continue
            baseline = result.metrics.iteration_stats()
            assert recshard.std <= baseline.std * slack + 1e-9


# Below this many lookups per batch, Python call overhead (not memory
# traffic) dominates both engines and the 5x ratio is not meaningful;
# smoke configurations only assert that vectorized is not slower.
FULL_SPEEDUP_MIN_LOOKUPS = 2_000_000


def test_trace_replay_speedup(models, profiles, topology, headline):
    """Vectorized trace replay is >= 5x faster than the scalar engine.

    Replays the RM2 evaluation trace against all four headline plans:
    scalar = one per-feature remap pass per strategy; vectorized = the
    fused :func:`replay_trace` pass (rank each feature once, scan every
    plan while cache-hot).  Best-of-two rounds on each side to shed
    scheduler noise.
    """
    model = models[1]
    profile = profiles[model.name]
    plans = [r.plan for r in headline[model.name].values()]
    generator = TraceGenerator(model, batch_size=BENCH_BATCH, seed=2024)
    batches = list(generator.batches(BENCH_ITERS))
    lookups = sum(b.total_lookups for b in batches)

    scalar_execs = [
        ShardedExecutor(model, p, profile, topology, vectorized=False)
        for p in plans
    ]
    ranker = RankRemapper(profile)
    vector_execs = [
        ShardedExecutor(model, p, profile, topology, ranker=ranker)
        for p in plans
    ]
    # Warm both paths (lazy remap tables, numpy internals, page cache).
    scalar_execs[0].run_batch(batches[0])
    replay_trace(vector_execs, batches[:1], ranker=ranker)

    scalar_s, vector_s = [], []
    reference = None
    for _ in range(2):
        start = time.perf_counter()
        scalar_metrics = [ex.run(batches) for ex in scalar_execs]
        scalar_s.append(time.perf_counter() - start)
        start = time.perf_counter()
        vector_metrics = replay_trace(vector_execs, batches, ranker=ranker)
        vector_s.append(time.perf_counter() - start)
        reference = (scalar_metrics, vector_metrics)
    scalar_best, vector_best = min(scalar_s), min(vector_s)
    speedup = scalar_best / vector_best

    text = format_table(
        ["engine", "replay wall-clock (ms)", "lookups/s"],
        [
            ("scalar", f"{scalar_best * 1e3:.1f}",
             f"{len(plans) * lookups / scalar_best:.3g}"),
            ("vectorized", f"{vector_best * 1e3:.1f}",
             f"{len(plans) * lookups / vector_best:.3g}"),
        ],
    )
    text += (
        f"\n\n{model.name}, {len(plans)} strategies x {len(batches)} "
        f"batches of {BENCH_BATCH} ({lookups} lookups/trace): "
        f"vectorized speedup {speedup:.2f}x"
    )
    report("tab03_replay_speedup", text)

    # Identical metrics from both engines on the identical trace.
    for ms, mv in zip(*reference):
        np.testing.assert_allclose(ms.times_ms, mv.times_ms, rtol=1e-9)
        for tier in ms.tier_accesses:
            assert np.array_equal(ms.tier_accesses[tier], mv.tier_accesses[tier])
    if lookups / len(batches) >= FULL_SPEEDUP_MIN_LOOKUPS:
        assert speedup >= 5.0
    else:
        assert speedup >= 1.0
