"""Table 3: Min/Max/Mean/StdDev per-GPU EMB iteration times, 16 GPUs.

The paper's core result table: four sharding strategies on RM1/RM2/RM3.
Training throughput is bound by the slowest GPU (Max), and the StdDev
captures load balance.  Shape targets from the paper: RecShard's Max is
several times lower than every baseline on the UVM-pressured models,
and its StdDev is an order of magnitude lower throughout.
"""

from conftest import format_table, report

PAPER_ROWS = {
    "RM1": {
        "Size-Based": "7.12/21.23/13.06/4.01",
        "Lookup-Based": "5.08/30.97/12.99/5.59",
        "Size-Based-Lookup": "5.55/26.03/12.91/4.72",
        "RecShard": "6.53/8.21/7.48/0.45",
    },
    "RM2": {
        "Size-Based": "20.52/49.65/33.82/7.37",
        "Lookup-Based": "10.40/55.85/32.47/9.87",
        "Size-Based-Lookup": "7.47/56.66/32.95/10.26",
        "RecShard": "6.52/9.44/7.75/0.78",
    },
    "RM3": {
        "Size-Based": "40.43/76.15/56.45/10.86",
        "Lookup-Based": "3.37/73.30/55.27/18.53",
        "Size-Based-Lookup": "5.10/85.01/56.04/20.39",
        "RecShard": "6.83/9.90/8.31/0.69",
    },
}


def _table3(headline) -> str:
    rows = []
    for model_name, results in headline.items():
        for strategy, result in results.items():
            rows.append(
                (
                    model_name,
                    strategy,
                    result.metrics.iteration_stats().as_row(),
                    PAPER_ROWS[model_name][strategy],
                )
            )
    table = format_table(
        ["Model", "Strategy", "measured Min/Max/Mean/Std (ms)", "paper (ms)"],
        rows,
    )
    note = (
        "Absolute milliseconds are simulated (scaled models, effective\n"
        "gather bandwidths); the comparisons that carry are per-model\n"
        "ratios: RecShard's Max and StdDev vs each baseline's."
    )
    return f"{table}\n\n{note}"


def test_table3_iteration_times(benchmark, headline):
    text = benchmark.pedantic(lambda: _table3(headline), rounds=1, iterations=1)
    report("tab03_iteration_times", text)
    # Shape assertions: under UVM pressure (RM2/RM3) RecShard is strictly
    # better balanced than every baseline; on RM1 (all-HBM) allow a small
    # slack — with few tables per GPU, balance is granularity-bound and
    # the best baseline can tie.
    for model_name, results in headline.items():
        slack = 1.25 if model_name == "RM1" else 1.0
        recshard = results["RecShard"].metrics.iteration_stats()
        for name, result in results.items():
            if name == "RecShard":
                continue
            baseline = result.metrics.iteration_stats()
            assert recshard.std <= baseline.std * slack + 1e-9
