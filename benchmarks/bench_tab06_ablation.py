"""Table 6: RecShard ablation — which statistics matter in the MILP.

Four formulations on RM3 over 16 GPUs: CDF only (pooling and coverage
forced to 1), CDF + Coverage, CDF + Pooling, and the full formulation.
Paper shape: UVM accesses fall monotonically — 1.63B (CDF only) -> 881M
(+coverage) -> 604M (+pooling) -> 353M (full) — each per-sample access
statistic sharpens the load-balance and placement decisions.
"""

from conftest import (
    BENCH_BATCH,
    BENCH_GPUS,
    BENCH_ITERS,
    format_table,
    recshard_sharder,
    report,
)
from repro import paper_node
from repro.core import expected_device_costs_ms_many
from repro.engine import run_experiment
from repro.data.synthetic import TraceGenerator

FORMULATIONS = [
    ("CDF Only", dict(use_coverage=False, use_pooling=False)),
    ("CDF + Coverage", dict(use_coverage=True, use_pooling=False)),
    ("CDF + Pooling", dict(use_coverage=False, use_pooling=True)),
    ("RecShard (Full)", dict(use_coverage=True, use_pooling=True)),
]

PAPER_UVM = {
    "CDF Only": "1.63B",
    "CDF + Coverage": "881M",
    "CDF + Pooling": "604M",
    "RecShard (Full)": "353M",
}


def _table6(models, profiles, topology) -> str:
    model = models[2]  # RM3
    profile = profiles[model.name]
    # Our 1/1000-scale RM3 has a smaller live-hot-mass : HBM ratio than
    # production RM3 (where the hot set did not fully fit).  Shrinking
    # the node to 60% restores the paper's regime, in which the choice
    # of statistics decides which hot rows make it into HBM.
    topology = paper_node(num_gpus=BENCH_GPUS, scale=1e-3 * 0.6)
    shared_batches = list(
        TraceGenerator(model, batch_size=BENCH_BATCH, seed=2024).batches(
            BENCH_ITERS
        )
    )
    rows = []
    measurements = {}
    plans = []
    for label, flags in FORMULATIONS:
        sharder = recshard_sharder(**flags)
        sharder.name = label
        result = run_experiment(
            model,
            sharder,
            topology,
            batch_size=BENCH_BATCH,
            profile=profile,
            shared_batches=shared_batches,
        )
        plans.append(result.plan)
        hbm = result.metrics.avg_accesses_per_gpu_iteration("hbm")
        uvm = result.metrics.avg_accesses_per_gpu_iteration("uvm")
        measurements[label] = (
            uvm,
            result.metrics.iteration_stats().max,
        )
        rows.append(
            [
                label,
                f"{hbm:,.0f}",
                f"{uvm:,.0f}",
                f"{result.metrics.tier_access_fraction('uvm'):.3%}",
                PAPER_UVM[label],
                f"{result.metrics.iteration_stats().max:.2f}",
            ]
        )
    # Every formulation's plan scored under the *full* analytic cost
    # model in one batched-evaluator call — the ablation only degrades
    # the planner's information, never the yardstick.
    estimated = expected_device_costs_ms_many(
        plans, model, profile, topology, BENCH_BATCH
    ).max(axis=1)
    for row, est in zip(rows, estimated):
        row.append(f"{est:.2f}")
    table = format_table(
        [
            "Formulation",
            "HBM/GPU/iter",
            "UVM/GPU/iter",
            "UVM share",
            "paper UVM (total)",
            "max GPU ms",
            "est. max GPU ms",
        ],
        rows,
    )
    note = (
        "Paper shape: UVM traffic falls monotonically as coverage and\n"
        "pooling statistics join the CDF in the formulation; the full\n"
        "formulation is best."
    )
    return f"{table}\n\n{note}", measurements


def test_table6_ablation(benchmark, models, profiles, topology):
    (text, measurements) = benchmark.pedantic(
        lambda: _table6(models, profiles, topology), rounds=1, iterations=1
    )
    report("tab06_ablation", text)
    # Shape: the full formulation beats CDF-only on slow-memory traffic
    # or on the makespan (both in the paper; either suffices at scale).
    full_uvm, full_max = measurements["RecShard (Full)"]
    cdf_uvm, cdf_max = measurements["CDF Only"]
    assert full_uvm <= cdf_uvm * 1.05 or full_max <= cdf_max
    assert full_max <= cdf_max * 1.05
