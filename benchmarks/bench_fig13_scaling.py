"""Figure 13: slowdown as model size scales 2x and 4x (RM1 -> RM2/RM3).

Paper shape: heuristic fixed-cost strategies suffer >3x average slowdown
from RM1 to RM3, while RecShard degrades by only ~1.2x — the extra rows
from hash-size scaling are mostly dead or cold, and RecShard never
promotes them to HBM.
"""

import numpy as np

from conftest import BASELINE_NAMES, format_table, report

PAPER = {"baselines_rm3": 3.07, "recshard_rm3": 1.206}


def _figure13(headline) -> str:
    bounds = {
        model_name: {
            strategy: result.metrics.bound_time_ms()
            for strategy, result in results.items()
        }
        for model_name, results in headline.items()
    }
    rows = []
    for strategy in list(BASELINE_NAMES) + ["RecShard"]:
        slow2 = bounds["RM2"][strategy] / bounds["RM1"][strategy]
        slow4 = bounds["RM3"][strategy] / bounds["RM1"][strategy]
        rows.append((strategy, f"{slow2:.2f}x", f"{slow4:.2f}x"))
    table = format_table(
        ["Strategy", "2x model (RM2/RM1)", "4x model (RM3/RM1)"], rows
    )
    baseline_avg = np.mean(
        [bounds["RM3"][s] / bounds["RM1"][s] for s in BASELINE_NAMES]
    )
    recshard = bounds["RM3"]["RecShard"] / bounds["RM1"]["RecShard"]
    notes = [
        f"baseline average RM1->RM3 slowdown: {baseline_avg:.2f}x "
        f"(paper: {PAPER['baselines_rm3']:.2f}x)",
        f"RecShard RM1->RM3 slowdown:         {recshard:.2f}x "
        f"(paper: {PAPER['recshard_rm3']:.2f}x)",
    ]
    return table + "\n\n" + "\n".join(notes)


def test_figure13_scaling(benchmark, headline):
    text = benchmark.pedantic(lambda: _figure13(headline), rounds=1, iterations=1)
    report("fig13_scaling", text)
    bounds = {
        name: {s: r.metrics.bound_time_ms() for s, r in results.items()}
        for name, results in headline.items()
    }
    recshard = bounds["RM3"]["RecShard"] / bounds["RM1"]["RecShard"]
    baseline_avg = np.mean(
        [bounds["RM3"][s] / bounds["RM1"][s] for s in BASELINE_NAMES]
    )
    # Shape: RecShard is far less sensitive to model-size scaling.
    assert recshard < baseline_avg / 2
    assert recshard < 2.0
