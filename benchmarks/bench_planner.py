"""Planner throughput: the vectorized workspace engine vs the scalar heap.

Not a paper figure — the planner-side counterpart of the replay and
serving speedup gates.  RecShard's premise (Section 4.2) is that
sharding decisions are cheap enough to recompute from statistics; this
bench pins down how cheap, and guards the property the vectorized
engine exists to provide:

* **plan parity** — for every workload (the three paper models plus
  trace-profiled seeds), the vectorized sharder must produce exactly
  the scalar reference's plan: identical ``rows_per_tier`` and device
  homes, table for table, cold and warm-started.
* **throughput** — repeated shards through the vectorized path (one
  :class:`PlannerWorkspace` built inside the timed region, reused
  across calls) must run ≥ ``MIN_PLANNER_SPEEDUP`` × faster than the
  scalar reference, which re-derives its ICDF state per call the way
  the pre-workspace pipeline did.
* **replans and sweeps** — the drift-replan pattern (refresh the
  workspace in place from a new profile, warm-start from the outgoing
  plan) and the ``shard_sweep`` grid are timed so their costs stay
  visible across PRs.

Headline numbers land machine-readable in
``reports/BENCH_planner.json`` next to the serving and replay gates.
"""

import os
import time

from conftest import BENCH_BATCH, BENCH_GPUS, format_table, report, report_json
from repro.core import PlannerWorkspace, RecShardFastSharder, shard_sweep
from repro.data.synthetic import TraceGenerator
from repro.stats import profile_trace

# Shards per timed run; best of two runs per path.
ROUNDS = int(os.environ.get("RECSHARD_BENCH_PLANNER_ROUNDS", 5))
MIN_PLANNER_SPEEDUP = float(
    os.environ.get("RECSHARD_BENCH_MIN_PLANNER_SPEEDUP", 10.0)
)
PARITY_SEEDS = (11, 12, 13)


def _plans_identical(a, b) -> bool:
    return all(
        x.rows_per_tier == y.rows_per_tier and x.device == y.device
        for x, y in zip(a, b)
    )


def _sharders():
    scalar = RecShardFastSharder(
        batch_size=BENCH_BATCH, vectorized=False, name="RecShard"
    )
    fast = RecShardFastSharder(
        batch_size=BENCH_BATCH, vectorized=True, name="RecShard"
    )
    return scalar, fast


def test_planner_plan_parity(models, profiles, topology):
    """Vectorized ↔ scalar plan equality on every workload and seed."""
    scalar, fast = _sharders()
    checked = 0
    for model in models:
        seeds = {None: profiles[model.name]}
        if model is models[1]:  # RM2 also gets out-of-sample trace profiles
            for seed in PARITY_SEEDS:
                generator = TraceGenerator(model, batch_size=4096, seed=seed)
                seeds[seed] = profile_trace(
                    model, generator, num_batches=2, sample_rate=1.0, seed=seed
                )
        previous = None
        for seed, profile in seeds.items():
            plan_scalar = scalar.shard(
                model, profile, topology, warm_start=previous
            )
            workspace = PlannerWorkspace(model, profile, steps=fast.steps)
            plan_fast = fast.shard(
                model, profile, topology,
                warm_start=previous, workspace=workspace,
            )
            assert _plans_identical(plan_scalar, plan_fast), (
                f"{model.name} seed={seed}: vectorized plan diverged"
            )
            previous = plan_scalar  # next seed replans warm-started
            checked += 1
    print(f"plan parity: {checked} (model, seed) pairs identical")


def test_planner_throughput(models, profiles, topology):
    model = models[1]  # RM2: the UVM-pressured regime
    profile = profiles[model.name]
    scalar, fast = _sharders()

    def run_scalar():
        start = time.perf_counter()
        for _ in range(ROUNDS):
            plan = scalar.shard(model, profile, topology)
        return time.perf_counter() - start, plan

    def run_fast():
        # The workspace build is paid inside the timed region and
        # amortized over the round's shards — the planner's deployment
        # pattern (one profile, many plans).
        start = time.perf_counter()
        workspace = PlannerWorkspace(model, profile, steps=fast.steps)
        for _ in range(ROUNDS):
            plan = fast.shard(model, profile, topology, workspace=workspace)
        return time.perf_counter() - start, plan

    run_scalar(), run_fast()  # warm numpy internals and profile CDFs
    scalar_s, fast_s = [], []
    for _ in range(2):
        elapsed, plan_scalar = run_scalar()
        scalar_s.append(elapsed)
        elapsed, plan_fast = run_fast()
        fast_s.append(elapsed)
    scalar_best, fast_best = min(scalar_s), min(fast_s)
    speedup = scalar_best / fast_best
    assert _plans_identical(plan_scalar, plan_fast)

    # Drift replan: refresh the workspace in place from an "observed"
    # profile and warm-start from the outgoing plan (the serving path).
    generator = TraceGenerator(model, batch_size=4096, seed=2024)
    observed = profile_trace(
        model, generator, num_batches=2, sample_rate=1.0, seed=2024
    )
    workspace = PlannerWorkspace(model, profile, steps=fast.steps)
    fast.shard(model, profile, topology, workspace=workspace)
    start = time.perf_counter()
    workspace.refresh(observed)
    warm_plan = fast.shard(
        model, observed, topology,
        warm_start=plan_fast, workspace=workspace,
    )
    replan_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    scalar_warm = scalar.shard(model, observed, topology, warm_start=plan_scalar)
    scalar_replan_ms = (time.perf_counter() - start) * 1e3
    assert _plans_identical(scalar_warm, warm_plan)

    # Budget sweep over the shared workspace (repro plan --sweep).
    workspace.refresh(profile)
    budgets = (0.5, 0.75, 1.0, 1.5)
    start = time.perf_counter()
    sweep_plans = shard_sweep(
        workspace, sharder=fast, budgets=budgets, base_topology=topology
    )
    sweep_ms = (time.perf_counter() - start) * 1e3
    assert len(sweep_plans) == len(budgets)

    table = format_table(
        ["planner path", "wall (ms, best of 2)", "plans/s"],
        [
            ("scalar (heapq reference)", f"{scalar_best * 1e3:.1f}",
             f"{ROUNDS / scalar_best:.2f}"),
            ("vectorized (workspace)", f"{fast_best * 1e3:.1f}",
             f"{ROUNDS / fast_best:.2f}"),
        ],
    )
    text = (
        f"{model.name} on {BENCH_GPUS} GPUs, {ROUNDS} shards per round\n\n"
        f"{table}\n\n"
        f"sharding speedup {speedup:.2f}x (floor {MIN_PLANNER_SPEEDUP:g}x), "
        f"plans identical\n"
        f"warm-started drift replan (refresh + shard): {replan_ms:.1f} ms "
        f"(scalar reference: {scalar_replan_ms:.1f} ms)\n"
        f"HBM budget sweep {budgets}: {sweep_ms:.1f} ms total, "
        f"{sweep_ms / len(budgets):.1f} ms/plan"
    )
    report("planner", text)
    report_json(
        "planner",
        {
            "rounds": ROUNDS,
            "scalar_wall_s": scalar_best,
            "fast_wall_s": fast_best,
            "scalar_plans_per_s": ROUNDS / scalar_best,
            "fast_plans_per_s": ROUNDS / fast_best,
            "speedup": speedup,
            "speedup_floor": MIN_PLANNER_SPEEDUP,
            "parity": "exact",
            "warm_replan_ms": replan_ms,
            "scalar_warm_replan_ms": scalar_replan_ms,
            "sweep_budgets": list(budgets),
            "sweep_ms_total": sweep_ms,
            "sweep_ms_per_plan": sweep_ms / len(budgets),
        },
    )
    assert speedup >= MIN_PLANNER_SPEEDUP
