"""Design ablation: the cache model and the paper's RM1 mean-time gap.

Table 3's RM1 row shows baselines averaging ~13 ms vs RecShard's
7.5 ms even though RM1 fits HBM entirely — a *mean*-level gap that a
purely additive bandwidth model cannot produce (identical traffic =>
identical means, as our default simulator shows). The paper attributes
RecShard's edge partly to locality. This bench re-runs the RM1
comparison with the optional per-GPU cache model enabled (A100-class
40 MB L2 at the 1/1000 capacity scale) and reports how much of the
paper's mean-level gap the locality mechanism recovers.
"""

from conftest import (
    BASELINE_NAMES,
    BENCH_BATCH,
    BENCH_ITERS,
    format_table,
    recshard_sharder,
    report,
)
from repro import make_baseline
from repro.data.synthetic import TraceGenerator
from repro.engine import ShardedExecutor
from repro.engine.cache import CacheModel

# A100 L2 is 40 MB; same 1/1000 scale as every other capacity, per GPU.
CACHE = CacheModel(capacity_bytes=int(40 * 2**20 * 1e-3), bandwidth=2.5e12)


def _cache_ablation(models, profiles, topology) -> tuple[str, dict]:
    model = models[0]  # RM1: the all-HBM regime
    profile = profiles[model.name]
    batches = list(
        TraceGenerator(model, batch_size=BENCH_BATCH, seed=2024).batches(
            BENCH_ITERS
        )
    )
    sharders = [make_baseline(name) for name in BASELINE_NAMES]
    sharders.append(recshard_sharder())

    rows = []
    maxima = {}
    for sharder in sharders:
        plan = sharder.shard(model, profile, topology)
        for label, cache in (("no cache", None), ("with cache", CACHE)):
            metrics = ShardedExecutor(
                model, plan, profile, topology, cache=cache
            ).run(batches)
            stats = metrics.iteration_stats()
            rows.append(
                (
                    sharder.name,
                    label,
                    stats.as_row(),
                    f"{metrics.cache_hit_fraction():.1%}",
                )
            )
            maxima[(sharder.name, label)] = stats.max
    table = format_table(
        ["Strategy", "cache model", "min/max/mean/std (ms)", "cache hits"],
        rows,
    )
    gap_plain = maxima[("Size-Based", "no cache")] / maxima[("RecShard", "no cache")]
    gap_cache = (
        maxima[("Size-Based", "with cache")] / maxima[("RecShard", "with cache")]
    )
    note = (
        "RM1 RecShard advantage over Size-Based (max per-GPU time):\n"
        f"  additive bandwidth model: {gap_plain:.2f}x\n"
        f"  with cache locality:      {gap_cache:.2f}x "
        "(paper's RM1 gap: 2.58x)\n"
        "Finding: with our Zipf calibration the per-device hot head is so\n"
        "concentrated that every strategy caches it equally well (~54%\n"
        "hits) — absolute times halve across the board, but row-level\n"
        "locality alone does not reproduce the paper's RM1 mean gap.\n"
        "That gap evidently also involves kernel-level effects (launch\n"
        "overheads, TLB/row-buffer behaviour) outside a row-granular\n"
        "model; EXPERIMENTS.md note 1 discusses this."
    )
    return f"{table}\n\n{note}", {"plain": gap_plain, "cache": gap_cache}


def test_cache_ablation(benchmark, models, profiles, topology):
    (text, gaps) = benchmark.pedantic(
        lambda: _cache_ablation(models, profiles, topology), rounds=1, iterations=1
    )
    report("ablation_cache", text)
    # The locality mechanism must not hurt RecShard's relative standing.
    assert gaps["cache"] >= gaps["plain"] * 0.9
