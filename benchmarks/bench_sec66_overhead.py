"""Section 6.6: RecShard's own overheads.

The paper reports: the MILP solves in under a minute (21s without UVM
pressure, 42s with, on Gurobi); remapping tables take ~20s per GPU to
generate and cost 4 bytes per row (~20 GB for RM3's 5.3B rows at full
scale); and profiling needs only ~1% of the training store.
"""

import time

from conftest import (
    BENCH_BATCH,
    build_models,
    format_table,
    recshard_sharder,
    report,
    BENCH_GPUS,
)
from repro import paper_node
from repro.core.remap import RemappingLayer
from repro.data.synthetic import TraceGenerator
from repro.stats import TraceProfiler, analytic_profile


def _overhead_report() -> str:
    models = build_models()
    topology = paper_node(num_gpus=BENCH_GPUS, scale=1e-3)
    rows = []
    for model in models:
        profile = analytic_profile(model)
        sharder = recshard_sharder()
        start = time.perf_counter()
        plan = sharder.shard(model, profile, topology)
        solve_seconds = time.perf_counter() - start

        start = time.perf_counter()
        layer = RemappingLayer.from_plan(plan, profile)
        remap_seconds = time.perf_counter() - start

        rows.append(
            (
                model.name,
                f"{solve_seconds:.1f}s",
                str(plan.metadata.get("milp_status", "fast")),
                f"{remap_seconds:.2f}s",
                f"{layer.storage_bytes / 2**20:.1f} MiB",
                f"{layer.storage_bytes * 1000 / 2**30:.1f} GiB(@1x)",
            )
        )
    table = format_table(
        [
            "Model",
            "shard time",
            "solver status",
            "remap build",
            "remap storage (scaled)",
            "remap storage at paper scale",
        ],
        rows,
    )

    # Profiling overhead: 1% sampling of a large batch.
    model = models[0]
    generator = TraceGenerator(model, batch_size=max(4096, BENCH_BATCH), seed=66)
    batch = generator.next_batch()
    profiler = TraceProfiler(model, sample_rate=0.01, seed=1)
    start = time.perf_counter()
    accepted = profiler.consume(batch)
    profile_seconds = time.perf_counter() - start
    notes = [
        "Paper: MILP < 1 min (Gurobi); remap tables 4 B/row (~20 GB for",
        "RM3's 5.3B rows); ~1% sampling suffices for profiling.",
        f"1% profiling pass: accepted {accepted}/{batch.batch_size} samples "
        f"in {profile_seconds * 1e3:.1f} ms.",
    ]
    return table + "\n\n" + "\n".join(notes)


def test_sec66_overhead(benchmark):
    text = benchmark.pedantic(_overhead_report, rounds=1, iterations=1)
    report("sec66_overhead", text)
