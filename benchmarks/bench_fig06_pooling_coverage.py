"""Figure 6: average pooling factor (a) and coverage (b) across features.

The paper shows pooling factors ranging from ~1 up to ~200 (an order of
magnitude spread in bandwidth demand) and coverage ranging from under 1%
to 100%.  This bench profiles a synthetic trace and prints both spreads.
"""

import numpy as np

from conftest import BENCH_BATCH, build_models, format_table, report
from repro.data.synthetic import TraceGenerator
from repro.stats import profile_trace


def _figure6_summary() -> str:
    model = build_models()[0]
    generator = TraceGenerator(model, batch_size=max(2048, BENCH_BATCH), seed=6)
    profile = profile_trace(model, generator, num_batches=1, sample_rate=1.0)

    poolings = np.array(
        [s.avg_pooling for s in profile if s.samples_present > 0]
    )
    coverages = np.array([s.coverage for s in profile])

    def spread(name, values, fmt):
        qs = np.quantile(values, [0.0, 0.25, 0.5, 0.75, 1.0])
        return (name,) + tuple(fmt % q for q in qs)

    rows = [
        spread("avg pooling factor (6a)", poolings, "%.1f"),
        spread("coverage (6b)", coverages, "%.3f"),
    ]
    table = format_table(["statistic", "min", "p25", "median", "p75", "max"], rows)
    notes = [
        f"features with coverage < 1%: {np.mean(coverages < 0.01):.1%}"
        " (paper: low-end under 1%)",
        f"features with coverage = 100%: {np.mean(coverages > 0.999):.1%}",
        f"max/min pooling ratio: {poolings.max() / poolings.min():.0f}x"
        " (paper: order-of-magnitude bandwidth spread)",
    ]
    return table + "\n\n" + "\n".join(notes)


def test_figure6_pooling_coverage(benchmark):
    text = benchmark.pedantic(_figure6_summary, rounds=1, iterations=1)
    report("fig06_pooling_coverage", text)
