"""Figure 1: DLRM memory demand growth vs training hardware (2017-2021).

Regenerates both panels: (a) normalized model capacity and EMB row
growth against GPU HBM capacity; (b) model bandwidth demand against HBM
and interconnect bandwidth, with the paper's annotated multiples
(16x, <6x, 28.35x, 2.26x, 2x).
"""

from repro.data import trends

from conftest import format_table, report


def _figure1_tables() -> str:
    capacity = trends.capacity_growth()
    bandwidth = trends.bandwidth_growth()
    summary = trends.summary()

    rows_a = [
        (
            year,
            f"{cap:.2f}x",
            f"{emb:.2f}x",
            f"{hbm:.2f}x",
        )
        for year, cap, emb, hbm in zip(
            capacity["years"],
            capacity["model_capacity"],
            capacity["emb_rows"],
            capacity["gpu_hbm_capacity"],
        )
    ]
    rows_b = [
        (year, f"{bw:.2f}x")
        for year, bw in zip(bandwidth["years"], bandwidth["model_bandwidth"])
    ]
    hw_rows = [
        (g.name, g.year, f"{g.hbm_gb} GB", f"{g.hbm_bw_gbs:.0f} GB/s")
        for g in trends.GPU_GENERATIONS
    ]
    parts = [
        "Figure 1a: normalized growth (2017 = 1.0)",
        format_table(
            ["year", "total model", "EMB rows", "GPU HBM capacity"], rows_a
        ),
        "",
        "Figure 1b: model bandwidth demand growth",
        format_table(["year", "model BW"], rows_b),
        "",
        "Accelerator datasheet series",
        format_table(["GPU", "year", "HBM", "HBM BW"], hw_rows),
        "",
        "Headline multiples (paper annotations):",
        f"  model capacity growth:    {summary['model_capacity_growth']:.2f}x (paper: 16x)",
        f"  GPU HBM capacity growth:  {summary['gpu_hbm_capacity_growth']:.2f}x (paper: <6x)",
        f"  model bandwidth growth:   {summary['model_bandwidth_growth']:.2f}x (paper: 28.35x)",
        f"  HBM bandwidth growth:     {summary['hbm_bandwidth_growth']:.2f}x (paper: 2.26x)",
        f"  interconnect growth:      {summary['interconnect_bandwidth_growth']:.2f}x (paper: 2x)",
    ]
    return "\n".join(parts)


def test_figure1_trends(benchmark):
    text = benchmark(_figure1_tables)
    report("fig01_trends", text)
