"""Figure 12: RecShard's fine-grained partitions for RM2 on 16 GPUs.

Each bar of the paper's figure is one EMB: its height is the fraction of
the table's rows placed on UVM, grouped (coloured) by owning GPU.  The
paper reports 53.4% of rows per EMB on average and 61% of all rows
placed on UVM, with a variable number of EMBs per GPU.  This bench
prints the per-GPU grouping and the row-placement aggregates.
"""

import numpy as np

from conftest import format_table, report


def _figure12(headline, topology) -> str:
    result = headline["RM2"]["RecShard"]
    plan = result.plan
    uvm_fracs = np.array([p.uvm_fraction for p in plan])
    tables_per_gpu = [
        len(plan.tables_on_device(m)) for m in range(topology.num_devices)
    ]
    total_rows = sum(p.total_rows for p in plan)
    uvm_rows = sum(p.rows_per_tier[1] for p in plan)

    rows = []
    for device in range(topology.num_devices):
        members = plan.tables_on_device(device)
        fracs = [p.uvm_fraction for p in members]
        rows.append(
            (
                f"GPU{device}",
                len(members),
                f"{np.mean(fracs):.2f}" if fracs else "-",
                f"{min(fracs):.2f}" if fracs else "-",
                f"{max(fracs):.2f}" if fracs else "-",
            )
        )
    table = format_table(
        ["GPU", "# EMBs", "mean UVM frac", "min", "max"], rows
    )
    notes = [
        f"average UVM fraction per EMB: {uvm_fracs.mean():.1%} (paper: 53.4%)",
        f"total EMB rows on UVM:        {uvm_rows / total_rows:.1%} (paper: 61%)",
        f"EMBs per GPU spread:          {min(tables_per_gpu)}..{max(tables_per_gpu)}"
        " (paper: variable, 17..34)",
        f"split EMBs (0 < UVM frac < 1): "
        f"{int(np.sum((uvm_fracs > 0) & (uvm_fracs < 1)))}/{len(plan)}",
    ]
    return table + "\n\n" + "\n".join(notes)


def test_figure12_partitions(benchmark, headline, topology):
    text = benchmark.pedantic(
        lambda: _figure12(headline, topology), rounds=1, iterations=1
    )
    report("fig12_partitions", text)
    plan = headline["RM2"]["RecShard"].plan
    # Shape: fine-grained splits exist and every GPU hosts tables.
    split = [p for p in plan if 0 < p.uvm_fraction < 1]
    assert len(split) > len(plan) // 4
    assert all(
        len(plan.tables_on_device(m)) > 0 for m in range(topology.num_devices)
    )
