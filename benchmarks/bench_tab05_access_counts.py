"""Table 5: HBM and UVM accesses per GPU per iteration.

Paper shape: baselines source ~20.3% (RM2) and ~36.3% (RM3) of accesses
from UVM; RecShard sources 0.2% and 0.5% — a 70-100x reduction in
slow-memory traffic.  RM1 needs no UVM under any strategy.
"""

from conftest import format_table, report

PAPER_UVM_FRACTION = {
    "RM1": {"baselines": 0.0, "RecShard": 0.0},
    "RM2": {"baselines": 0.203, "RecShard": 0.002},
    "RM3": {"baselines": 0.363, "RecShard": 0.005},
}


def _table5(headline) -> str:
    rows = []
    for model_name, results in headline.items():
        for strategy, result in results.items():
            metrics = result.metrics
            rows.append(
                (
                    model_name,
                    strategy,
                    f"{metrics.avg_accesses_per_gpu_iteration('hbm'):,.0f}",
                    f"{metrics.avg_accesses_per_gpu_iteration('uvm'):,.0f}",
                    f"{metrics.tier_access_fraction('uvm'):.2%}",
                )
            )
    table = format_table(
        ["Model", "Strategy", "HBM/GPU/iter", "UVM/GPU/iter", "UVM share"],
        rows,
    )
    notes = ["Paper UVM shares: RM2 baselines ~20.3% vs RecShard 0.2%;"]
    notes.append("RM3 baselines ~36.3% vs RecShard 0.5%; RM1 none.")
    for model_name, results in headline.items():
        recshard = results["RecShard"].metrics.tier_access_fraction("uvm")
        baselines = [
            r.metrics.tier_access_fraction("uvm")
            for s, r in results.items()
            if s != "RecShard"
        ]
        avg = sum(baselines) / len(baselines)
        if recshard > 0:
            reduction = f"{avg / recshard:.0f}x"
        else:
            reduction = ">1000x"
        notes.append(
            f"  {model_name}: baselines avg {avg:.2%}, RecShard "
            f"{recshard:.3%} -> {reduction} reduction"
        )
    return table + "\n\n" + "\n".join(notes)


def test_table5_access_counts(benchmark, headline):
    text = benchmark.pedantic(lambda: _table5(headline), rounds=1, iterations=1)
    report("tab05_access_counts", text)
    # Shape: under UVM pressure RecShard's slow-memory share is tiny and
    # vastly below every baseline's.
    for model_name in ("RM2", "RM3"):
        results = headline[model_name]
        recshard = results["RecShard"].metrics.tier_access_fraction("uvm")
        assert recshard < 0.02
        for strategy, result in results.items():
            if strategy == "RecShard":
                continue
            assert result.metrics.tier_access_fraction("uvm") > 10 * max(
                recshard, 1e-6
            )
