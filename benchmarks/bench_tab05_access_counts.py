"""Table 5: HBM and UVM accesses per GPU per iteration.

Paper shape: baselines source ~20.3% (RM2) and ~36.3% (RM3) of accesses
from UVM; RecShard sources 0.2% and 0.5% — a 70-100x reduction in
slow-memory traffic.  RM1 needs no UVM under any strategy.

Two sources produce the counts:

* offline replay (the ``headline`` fixture) — the paper's Table 5
  methodology;
* the serving path — :class:`~repro.serving.metrics.ServingMetrics`
  accumulates per-tier access chunks batch by batch while requests are
  served, and must agree with the offline replay of the same trace
  content *exactly* (microbatch slicing cannot change where a lookup
  is served).
"""

import numpy as np

from conftest import BENCH_GPUS, format_table, report
from repro.engine import ShardedExecutor
from repro.serving import LookupServer, ServingConfig, synthetic_request_arenas

PAPER_UVM_FRACTION = {
    "RM1": {"baselines": 0.0, "RecShard": 0.0},
    "RM2": {"baselines": 0.203, "RecShard": 0.002},
    "RM3": {"baselines": 0.363, "RecShard": 0.005},
}


def _table5(headline) -> str:
    rows = []
    for model_name, results in headline.items():
        for strategy, result in results.items():
            metrics = result.metrics
            rows.append(
                (
                    model_name,
                    strategy,
                    f"{metrics.avg_accesses_per_gpu_iteration('hbm'):,.0f}",
                    f"{metrics.avg_accesses_per_gpu_iteration('uvm'):,.0f}",
                    f"{metrics.tier_access_fraction('uvm'):.2%}",
                )
            )
    table = format_table(
        ["Model", "Strategy", "HBM/GPU/iter", "UVM/GPU/iter", "UVM share"],
        rows,
    )
    notes = ["Paper UVM shares: RM2 baselines ~20.3% vs RecShard 0.2%;"]
    notes.append("RM3 baselines ~36.3% vs RecShard 0.5%; RM1 none.")
    for model_name, results in headline.items():
        recshard = results["RecShard"].metrics.tier_access_fraction("uvm")
        baselines = [
            r.metrics.tier_access_fraction("uvm")
            for s, r in results.items()
            if s != "RecShard"
        ]
        avg = sum(baselines) / len(baselines)
        if recshard > 0:
            reduction = f"{avg / recshard:.0f}x"
        else:
            reduction = ">1000x"
        notes.append(
            f"  {model_name}: baselines avg {avg:.2%}, RecShard "
            f"{recshard:.3%} -> {reduction} reduction"
        )
    return table + "\n\n" + "\n".join(notes)


def test_table5_serving_counts_match_offline_replay(
    models, profiles, topology, headline
):
    """Table 5 online: the serving path's per-tier chunks, pinned.

    Serves a seeded stream against the RecShard plans of RM2 and RM3
    and compares the accumulated per-tier serving counts against an
    offline replay of the identical trace content — the counts must be
    equal element for element, per tier, per device.
    """
    rows = []
    for model in models[1:]:  # RM2/RM3: the tiers-under-pressure regimes
        profile = profiles[model.name]
        plan = headline[model.name]["RecShard"].plan
        arenas = list(
            synthetic_request_arenas(
                model, num_requests=1024, qps=1e9, seed=55
            )
        )
        server = LookupServer(
            model, profile, topology, plan=plan,
            config=ServingConfig(max_batch_size=256, max_delay_ms=2.0),
        )
        metrics = server.serve_arenas(arenas)

        executor = ShardedExecutor(model, plan, profile, topology)
        offline = np.zeros(
            (topology.num_tiers, topology.num_devices), dtype=np.int64
        )
        for arena in arenas:
            _, accesses, _, _ = executor.run_batch(arena.batch)
            offline += accesses
        np.testing.assert_array_equal(metrics.tier_access_totals, offline)
        assert metrics.tier_access_totals.sum() == sum(metrics.batch_lookups)

        batches = metrics.num_batches
        for t, name in enumerate(metrics.tier_names):
            rows.append(
                (
                    model.name,
                    name,
                    f"{metrics.tier_access_totals[t].sum():,}",
                    f"{metrics.tier_access_totals[t].sum() / batches / BENCH_GPUS:,.0f}",
                    f"{metrics.tier_access_fraction(name):.2%}",
                )
            )
    table = format_table(
        ["Model", "Tier", "served accesses", "per GPU/batch", "share"], rows
    )
    report(
        "tab05_serving_counts",
        "serving-path per-tier access counts (RecShard plans, 1024 "
        "requests, saturating load);\nverified equal to the offline "
        f"Table 5 replay of the same trace, per tier per device\n\n{table}",
    )


def test_table5_access_counts(benchmark, headline):
    text = benchmark.pedantic(lambda: _table5(headline), rounds=1, iterations=1)
    report("tab05_access_counts", text)
    # Shape: under UVM pressure RecShard's slow-memory share is tiny and
    # vastly below every baseline's.
    for model_name in ("RM2", "RM3"):
        results = headline[model_name]
        recshard = results["RecShard"].metrics.tier_access_fraction("uvm")
        assert recshard < 0.02
        for strategy, result in results.items():
            if strategy == "RecShard":
                continue
            assert result.metrics.tier_access_fraction("uvm") > 10 * max(
                recshard, 1e-6
            )
