"""Figure 11: EMB training speedup per strategy, normalized to slowest.

Paper shape: RecShard beats the next-fastest strategy by 2.58x (RM1),
5.26x (RM2) and 7.41x (RM3) on 16 GPUs — the gap widens as UVM pressure
grows.
"""

from conftest import format_table, report
from repro.engine.harness import speedup_table

PAPER_NEXT_BEST = {"RM1": 2.58, "RM2": 5.26, "RM3": 7.41}


def _figure11(headline) -> str:
    rows = []
    gaps = {}
    for model_name, results in headline.items():
        speedups = speedup_table(results)
        next_best = max(v for k, v in speedups.items() if k != "RecShard")
        gaps[model_name] = speedups["RecShard"] / next_best
        for strategy, value in speedups.items():
            rows.append((model_name, strategy, f"{value:.2f}x"))
    table = format_table(
        ["Model", "Strategy", "speedup vs slowest"], rows
    )
    notes = ["RecShard over the next-fastest strategy:"]
    for model_name, gap in gaps.items():
        notes.append(
            f"  {model_name}: measured {gap:.2f}x "
            f"(paper: {PAPER_NEXT_BEST[model_name]:.2f}x)"
        )
    return table + "\n\n" + "\n".join(notes)


def test_figure11_speedup(benchmark, headline):
    text = benchmark.pedantic(lambda: _figure11(headline), rounds=1, iterations=1)
    report("fig11_speedup", text)
    # Shape: RecShard is the fastest strategy on every model, and the
    # advantage grows monotonically with UVM pressure (RM1 -> RM3).
    gaps = []
    for results in headline.values():
        speedups = speedup_table(results)
        next_best = max(v for k, v in speedups.items() if k != "RecShard")
        assert speedups["RecShard"] >= next_best
        gaps.append(speedups["RecShard"] / next_best)
    assert gaps[0] <= gaps[1] <= gaps[2] * 1.2  # widening with pressure
