"""Design-choice ablation: MILP encodings, backends, and the fast solver.

Not a paper table — this regenerates the evidence for this repo's two
documented design decisions (see DESIGN.md):

* the *convex* ICDF encoding replaces the paper's per-step binaries with
  linear cuts and must solve faster at equal quality;
* the *fast* waterfill+LPT solver must land within a few percent of the
  MILP's expected makespan while running orders of magnitude faster.

Runs on a reduced instance so the exact MILP finishes quickly.
"""

import time

from conftest import format_table, report
from repro import RecShardFastSharder, RecShardSharder, analytic_profile, paper_node
from repro.core.evaluate import expected_max_cost_ms
from repro.data.model import rm2

FEATURES = 40
GPUS = 4
BATCH = 1024


def _ablation() -> tuple[str, dict]:
    # The paper's UVM-pressure regime (RM2 on 16 GPUs: ~60% fits in HBM)
    # is preserved at 4 GPUs by scaling the model rows by GPUS/16 on top
    # of the per-feature scale.
    topo_scale = 1e-3 * FEATURES / 397
    model = rm2(num_features=FEATURES, row_scale=topo_scale * GPUS / 16)
    topology = paper_node(num_gpus=GPUS, scale=topo_scale)
    profile = analytic_profile(model)

    configs = [
        ("MILP convex", RecShardSharder(
            batch_size=BATCH, steps=20, formulation="convex",
            time_limit=45, mip_gap=0.02)),
        ("MILP step (paper)", RecShardSharder(
            batch_size=BATCH, steps=20, formulation="step",
            time_limit=45, mip_gap=0.03)),
        ("fast waterfill+LPT", RecShardFastSharder(batch_size=BATCH, steps=20)),
    ]
    rows = []
    costs = {}
    for label, sharder in configs:
        start = time.perf_counter()
        plan = sharder.shard(model, profile, topology)
        elapsed = time.perf_counter() - start
        cost = expected_max_cost_ms(plan, model, profile, topology, BATCH)
        costs[label] = cost
        rows.append(
            (
                label,
                f"{elapsed:.2f}s",
                f"{cost:.4f} ms",
                str(plan.metadata.get("milp_status", "-")),
            )
        )
    table = format_table(
        ["Configuration", "solve time", "expected makespan", "status"], rows
    )
    return table, costs


def test_formulation_ablation(benchmark):
    text, costs = benchmark.pedantic(_ablation, rounds=1, iterations=1)
    report("ablation_formulations", text)
    # On this deliberately small instance the joint split+assignment
    # optimization is worth real percentage points - the MILP must win
    # or tie, and the convex encoding must not lose to the step one.
    # (At full 397-table scale the heuristic ties the time-limited
    # MILP - see the headline benches - which is why RecShardSharder
    # races both and keeps the better plan.)
    assert costs["MILP convex"] <= costs["fast waterfill+LPT"] * 1.001
    assert costs["MILP convex"] <= costs["MILP step (paper)"] * 1.02
    assert costs["fast waterfill+LPT"] <= costs["MILP convex"] * 1.5
