"""Chaos drills: device failure and worker crash under measurement.

The recovery story the fault-injection runtime exists to measure, run
at bench scale on a replicated three-tier world:

* **device_fail drill** — a device dies mid-stream.  Gates:

  - *zero dropped replicated lookups*: once the fault is detected, no
    replicated lookup routes to the dead device (drops are home-lane
    only — exactly the rows replication did not cover);
  - *recovery bound*: the emergency warm-start replan's build cost is
    under ``RECSHARD_BENCH_MAX_RECOVERY_MS`` wall-clock, and the plan
    commits inside the stream (the drill is pinned to a deterministic
    commit delay so the gate is reproducible; the measured wall cost
    is reported and gated separately);
  - *tail bound*: p99 during the degraded window stays within
    ``RECSHARD_BENCH_MAX_P99_DEGRADE`` x the steady-state p99;
  - *conservation*: served + dropped lookups equals the no-fault
    run's served lookups, batch for batch accounting with no silent
    loss;
  - *parity*: scalar and vectorized degraded modes agree bit for bit
    (on a truncated stream — the scalar path is the slow reference).

* **worker_kill drill** — a worker process of the multi-process pool
  is crashed mid-stream.  Gates: the supervisor respawns it (observed
  respawn count >= 1) and the merged metrics stay bit-identical to a
  single-process run of the same stream — self-healing is invisible
  on the simulated clock.

Environment knobs (on top of the shared workload knobs):
    RECSHARD_BENCH_CHAOS_REQUESTS   stream length (16384)
    RECSHARD_BENCH_CHAOS_QPS        offered load (40000)
    RECSHARD_BENCH_MAX_RECOVERY_MS  emergency replan build wall-clock
                                    bound in ms (60000; 0 disables)
    RECSHARD_BENCH_MAX_P99_DEGRADE  p99-during multiple of steady p99
                                    (10.0; 0 disables)
"""

import os
import time

import numpy as np
import pytest

from conftest import (
    BENCH_BATCH,
    BENCH_FEATURES,
    BENCH_GPUS,
    TOPO_SCALE,
    format_table,
    report,
    report_json,
)
from repro.core import MultiTierSharder, ReplicationPolicy
from repro.memory import GIB, node_from_tier_names
from repro.serving import (
    FaultSchedule,
    LookupServer,
    MultiProcessServer,
    ServingConfig,
    device_fail,
    synthetic_request_arenas,
    worker_kill,
)
from repro.serving.arena import SHM_NAME_PREFIX

CHAOS_REQUESTS = int(os.environ.get("RECSHARD_BENCH_CHAOS_REQUESTS", 16384))
CHAOS_QPS = float(os.environ.get("RECSHARD_BENCH_CHAOS_QPS", 40000))
MAX_RECOVERY_MS = float(
    os.environ.get("RECSHARD_BENCH_MAX_RECOVERY_MS", 60000)
)
MAX_P99_DEGRADE = float(
    os.environ.get("RECSHARD_BENCH_MAX_P99_DEGRADE", 10.0)
)

CONFIG = ServingConfig(max_batch_size=256, max_delay_ms=2.0)

#: fault lands ~30% into the stream; the pinned commit delay keeps the
#: replan inside it no matter how slow the build machine is.
HORIZON_MS = CHAOS_REQUESTS / CHAOS_QPS * 1e3
FAIL_MS = 0.3 * HORIZON_MS
COMMIT_MS = 0.1 * HORIZON_MS
DEAD_DEVICE = 1


@pytest.fixture(autouse=True)
def no_orphaned_segments():
    def segments():
        if not os.path.isdir("/dev/shm"):  # pragma: no cover
            return set()
        return {
            n
            for n in os.listdir("/dev/shm")
            if n.startswith(SHM_NAME_PREFIX)
        }

    before = segments()
    yield
    assert segments() - before == set(), "orphaned shared-memory segments"


@pytest.fixture(scope="module")
def chaos_world(models, profiles):
    """RM2 on a replicated HBM/DRAM/SSD node + the seeded stream."""
    model = models[1]
    profile = profiles[model.name]
    topology = node_from_tier_names(
        ["hbm:8", "dram:24", "ssd"], num_gpus=BENCH_GPUS, scale=TOPO_SCALE
    )
    arenas = list(
        synthetic_request_arenas(
            model, num_requests=CHAOS_REQUESTS, qps=CHAOS_QPS, seed=42
        )
    )
    return model, profile, topology, arenas


def _server(model, profile, topology, chaos=None, vectorized=True):
    return LookupServer(
        model, profile, topology,
        sharder=MultiTierSharder(batch_size=BENCH_BATCH),
        config=CONFIG,
        replication=ReplicationPolicy(capacity_bytes=int(GIB * TOPO_SCALE)),
        chaos=chaos,
        emergency_commit_ms=(COMMIT_MS if chaos is not None else None),
        vectorized=vectorized,
    )


def _drill():
    return FaultSchedule([device_fail(FAIL_MS, DEAD_DEVICE)])


def test_device_fail_drill_gates(chaos_world):
    model, profile, topology, arenas = chaos_world
    steady = _server(model, profile, topology).serve_arenas(arenas)

    server = _server(model, profile, topology, chaos=_drill())
    wall_start = time.perf_counter()
    metrics = server.serve_arenas(arenas)
    drill_wall_s = time.perf_counter() - wall_start

    # --- gate: recovery happened and is measured -----------------------
    assert metrics.time_to_reroute_ms is not None
    assert metrics.time_to_replan_ms is not None, (
        "emergency replan never committed inside the stream"
    )
    assert metrics.num_replans >= 1
    base = getattr(server.plan, "plan", server.plan)
    assert all(p.device != DEAD_DEVICE for p in base.placements)
    replan = next(
        r for r in metrics.recoveries if r["kind"] == "replan"
    )
    build_wall_ms = replan["wall_ms"]
    if MAX_RECOVERY_MS > 0:
        assert build_wall_ms <= MAX_RECOVERY_MS, (
            f"emergency replan build took {build_wall_ms:.0f} ms "
            f"wall-clock (bound {MAX_RECOVERY_MS:g} ms)"
        )

    # --- gate: zero dropped replicated lookups -------------------------
    starts = np.asarray(metrics._batch_start, dtype=np.float64)
    routed = np.stack(list(metrics.replica_access_chunks), axis=0)
    after = starts >= FAIL_MS
    assert after.any()
    assert routed[after, DEAD_DEVICE].sum() == 0, (
        "replicated lookups routed to the dead device"
    )
    assert routed[after].sum() > 0

    # --- gate: conservation --------------------------------------------
    steady_lookups = int(steady.tier_access_totals.sum())
    served_lookups = int(metrics.tier_access_totals.sum())
    assert served_lookups + metrics.dropped_lookups == steady_lookups
    assert metrics.dropped_lookups > 0  # home-lane rows on the dead GPU
    assert metrics.dropped_per_device[DEAD_DEVICE] == metrics.dropped_lookups

    # --- gate: tail during the degraded window -------------------------
    phases = metrics.windowed_latency()
    p99_during = phases["during"]["p99_ms"]
    assert phases["during"]["requests"] > 0
    p99_gated = MAX_P99_DEGRADE > 0
    if p99_gated:
        assert p99_during <= MAX_P99_DEGRADE * steady.p99_ms, (
            f"p99 during the fault ({p99_during:.3f} ms) exceeds "
            f"{MAX_P99_DEGRADE:g}x steady-state ({steady.p99_ms:.3f} ms)"
        )

    # --- gate: scalar/vectorized parity (truncated stream) -------------
    parity_arenas = arenas[: max(1, len(arenas) // 4)]
    fast = _server(model, profile, topology, chaos=_drill())
    slow = _server(
        model, profile, topology, chaos=_drill(), vectorized=False
    )
    left = fast.serve_arenas(parity_arenas)
    right = slow.serve_arenas(parity_arenas)
    assert left.summary(deterministic_only=True) == right.summary(
        deterministic_only=True
    )

    rows = [
        ("steady p99 (ms)", f"{steady.p99_ms:.3f}"),
        ("p99 before / during / after (ms)",
         f"{phases['before']['p99_ms']:.3f} / "
         f"{phases['during']['p99_ms']:.3f} / "
         f"{phases['after']['p99_ms']:.3f}"),
        ("time to reroute (ms, simulated)",
         f"{metrics.time_to_reroute_ms:.3f}"),
        ("time to replan (ms, simulated, pinned commit)",
         f"{metrics.time_to_replan_ms:.3f}"),
        ("replan build (ms, wall)", f"{build_wall_ms:.0f}"),
        ("dropped lookups (home-lane)", f"{metrics.dropped_lookups}"),
        ("rerouted replica lookups after fault",
         f"{int(routed[after].sum())}"),
    ]
    report(
        "chaos",
        f"{model.name} on {BENCH_GPUS} GPUs hbm/dram/ssd "
        f"({BENCH_FEATURES} features), {CHAOS_REQUESTS} requests at "
        f"{CHAOS_QPS:.0f} QPS, device {DEAD_DEVICE} fails at "
        f"{FAIL_MS:.0f} ms\n\n"
        + format_table(["metric", "value"], rows)
        + "\n\ngates: zero replicated drops on dead device, replan "
        f"build <= {MAX_RECOVERY_MS:g} ms wall, p99-during <= "
        f"{MAX_P99_DEGRADE:g}x steady, conservation exact, "
        "scalar/vectorized bit parity\n"
        f"drill wall-clock: {drill_wall_s:.2f} s",
    )
    report_json(
        "chaos",
        {
            "requests": CHAOS_REQUESTS,
            "qps": CHAOS_QPS,
            "fail_ms": FAIL_MS,
            "dead_device": DEAD_DEVICE,
            "steady_p99_ms": steady.p99_ms,
            "latency_phases": phases,
            "time_to_reroute_ms": metrics.time_to_reroute_ms,
            "time_to_replan_ms": metrics.time_to_replan_ms,
            "replan_build_wall_ms": build_wall_ms,
            "max_recovery_ms": MAX_RECOVERY_MS,
            "max_p99_degrade": MAX_P99_DEGRADE,
            "p99_gate_enforced": p99_gated,
            "dropped_lookups": metrics.dropped_lookups,
            "rerouted_after_fault": int(routed[after].sum()),
            "parity": "bit-identical",
            "summary": metrics.summary(deterministic_only=True),
        },
    )


def test_worker_kill_drill_selfheals(chaos_world):
    model, profile, topology, arenas = chaos_world
    plan = MultiTierSharder(batch_size=BENCH_BATCH).shard(
        model, profile, topology
    )
    single = LookupServer(
        model, profile, topology, plan=plan, config=CONFIG
    ).serve_arenas(arenas)

    chaos = FaultSchedule([worker_kill(FAIL_MS, 1)])
    wall_start = time.perf_counter()
    with MultiProcessServer(
        model, profile, topology, plan=plan, config=CONFIG,
        workers=2, chaos=chaos, result_timeout_s=120.0,
    ) as pool:
        merged = pool.serve_arenas(arenas)
        respawns = pool.respawn_count
        log = list(pool.worker_fault_log)
    wall_s = time.perf_counter() - wall_start

    assert respawns >= 1, "supervisor never respawned the killed worker"
    assert merged.summary(deterministic_only=True) == single.summary(
        deterministic_only=True
    ), "self-healing perturbed the merged metrics"
    assert not merged.fault_events  # worker deaths are wall-clock events

    report(
        "chaos_selfheal",
        f"{model.name} on {BENCH_GPUS} GPUs hbm/dram/ssd, "
        f"{CHAOS_REQUESTS} requests, worker 1 killed at "
        f"{FAIL_MS:.0f} ms (2-worker pool)\n\n"
        + "\n".join(f"  {line}" for line in log)
        + f"\n\nrespawns: {respawns}; merged metrics bit-identical to "
        f"single-process; wall-clock {wall_s:.2f} s",
    )
    report_json(
        "chaos_selfheal",
        {
            "requests": CHAOS_REQUESTS,
            "kill_ms": FAIL_MS,
            "workers": 2,
            "respawns": respawns,
            "supervisor_log": log,
            "parity": "bit-identical",
            "wall_s": wall_s,
        },
    )
