"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  The
expensive end-to-end comparison (RM1/RM2/RM3 x four sharding strategies
on the 16-GPU node) runs once per session and is shared by the benches
for Tables 3-5 and Figures 11-13.

Environment knobs (for slower machines):
    RECSHARD_BENCH_FEATURES   number of sparse features  (default 397)
    RECSHARD_BENCH_BATCH      batch size                 (default 2048)
    RECSHARD_BENCH_ITERS      measured iterations        (default 3)
    RECSHARD_BENCH_GPUS       simulated GPUs             (default 16)
    RECSHARD_BENCH_MILP_TIME  MILP budget per model, sec (default 15;
                              0 skips the MILP and uses the fast solver)

Reports: every bench appends its rendered table to
``benchmarks/reports/<bench>.txt`` so results survive pytest's output
capture.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro import (
    RecShardFastSharder,
    RecShardSharder,
    compare_strategies,
    make_baseline,
    paper_node,
    rm1,
    rm2,
    rm3,
)
from repro.memory import paper_scales

REPORT_DIR = Path(__file__).parent / "reports"

BENCH_FEATURES = int(os.environ.get("RECSHARD_BENCH_FEATURES", 397))
BENCH_BATCH = int(os.environ.get("RECSHARD_BENCH_BATCH", 2048))
BENCH_ITERS = int(os.environ.get("RECSHARD_BENCH_ITERS", 3))
BENCH_GPUS = int(os.environ.get("RECSHARD_BENCH_GPUS", 16))
BENCH_MILP_TIME = float(os.environ.get("RECSHARD_BENCH_MILP_TIME", 15))

BASELINE_NAMES = ("Size-Based", "Lookup-Based", "Size-Based-Lookup")


def recshard_sharder(batch_size: int = BENCH_BATCH, **kwargs):
    """The RecShard configuration the benchmarks evaluate."""
    if BENCH_MILP_TIME <= 0:
        return RecShardFastSharder(batch_size=batch_size, name="RecShard", **kwargs)
    return RecShardSharder(
        batch_size=batch_size,
        steps=100,
        time_limit=BENCH_MILP_TIME,
        mip_gap=0.03,
        name="RecShard",
        **kwargs,
    )


def report(name: str, text: str) -> None:
    """Print a bench's table and persist it under benchmarks/reports/.

    The workload shape knobs are stamped into the header so a report
    regenerated under shrink settings is never mistaken for (or diffed
    against) a default-scale run.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    knobs = (
        f"[workload: features={BENCH_FEATURES} batch={BENCH_BATCH} "
        f"iters={BENCH_ITERS} gpus={BENCH_GPUS} milp_time={BENCH_MILP_TIME:g}]"
    )
    banner = f"\n===== {name} =====\n{knobs}\n{text}\n"
    print(banner)
    (REPORT_DIR / f"{name}.txt").write_text(f"{knobs}\n{text}\n")


def report_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable bench result as ``BENCH_<name>.json``.

    Written next to the text reports so the perf trajectory (speedups,
    QPS, wall-clocks) can be tracked across PRs by tooling instead of
    by parsing tables.  The workload shape knobs are stamped in so a
    number is never compared across different shrink configurations by
    accident.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    document = {
        "bench": name,
        "workload": {
            "features": BENCH_FEATURES,
            "batch": BENCH_BATCH,
            "iters": BENCH_ITERS,
            "gpus": BENCH_GPUS,
            "milp_time": BENCH_MILP_TIME,
        },
        "python": platform.python_version(),
        **payload,
    }
    path = REPORT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


# Capacity regimes must track the shrink knobs: scaling features (and
# GPUs) without scaling tier capacities would change which models fit
# in HBM.  Shared with the CLI's _build_world.
TOPO_SCALE, ROW_SCALE = paper_scales(BENCH_FEATURES, BENCH_GPUS)


def build_models():
    return [
        rm1(num_features=BENCH_FEATURES, row_scale=ROW_SCALE),
        rm2(num_features=BENCH_FEATURES, row_scale=ROW_SCALE),
        rm3(num_features=BENCH_FEATURES, row_scale=ROW_SCALE),
    ]


@pytest.fixture(scope="session")
def topology():
    return paper_node(num_gpus=BENCH_GPUS, scale=TOPO_SCALE)


@pytest.fixture(scope="session")
def models():
    return build_models()


@pytest.fixture(scope="session")
def profiles(models):
    """Trace-sampled profiles (Section 4.1), as in the paper.

    Profiling a finite sample leaves the distribution tail unseen;
    those rows rank dead-last and land in UVM, which is exactly why the
    paper's RecShard still sources a fraction of a percent of accesses
    from UVM at runtime (Tables 5-6).  The evaluation traces use a
    different seed, so plans are always tested out of sample.
    """
    from repro.data.synthetic import TraceGenerator
    from repro.stats import profile_trace

    profiles = {}
    for model in models:
        generator = TraceGenerator(model, batch_size=8192, seed=123)
        profiles[model.name] = profile_trace(
            model, generator, num_batches=3, sample_rate=1.0, seed=123
        )
    return profiles


@pytest.fixture(scope="session")
def headline(models, profiles, topology):
    """The paper's core experiment: all strategies on RM1/RM2/RM3.

    Returns {model_name: {strategy: ExperimentResult}}.
    """
    all_results = {}
    for model in models:
        sharders = [make_baseline(name) for name in BASELINE_NAMES]
        sharders.append(recshard_sharder())
        all_results[model.name] = compare_strategies(
            model,
            sharders,
            topology,
            batch_size=BENCH_BATCH,
            iterations=BENCH_ITERS,
            profile=profiles[model.name],
        )
    return all_results


def format_table(headers, rows) -> str:
    """Plain-text table renderer used by every bench."""
    columns = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(columns):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
