"""Table 4: row-placement disagreement between baselines and RecShard.

For RM2/RM3 (UVM-pressured), the percentage of all EMB rows that a
baseline put in UVM but RecShard puts in HBM ("UVM->HBM"), and vice
versa.  Paper values: ~23-29% UVM->HBM and ~40-59% HBM->UVM — RecShard
promotes hot rows the baselines strand in UVM and demotes cold/dead
rows they waste HBM on.
"""

from conftest import BASELINE_NAMES, format_table, report

PAPER = {
    "RM2": {"uvm_to_hbm": 0.2867, "hbm_to_uvm": 0.3993},
    "RM3": {"uvm_to_hbm": 0.2329, "hbm_to_uvm": 0.5834},
}


def _table4(headline) -> str:
    rows = []
    for model_name in ("RM2", "RM3"):
        results = headline[model_name]
        recshard_plan = results["RecShard"].plan
        for baseline in BASELINE_NAMES:
            diff = recshard_plan.placement_disparity(results[baseline].plan)
            rows.append(
                (
                    model_name,
                    baseline,
                    f"{diff['uvm_to_hbm']:.2%}",
                    f"{diff['hbm_to_uvm']:.2%}",
                )
            )
        rows.append(
            (
                model_name,
                "(paper, SB)",
                f"{PAPER[model_name]['uvm_to_hbm']:.2%}",
                f"{PAPER[model_name]['hbm_to_uvm']:.2%}",
            )
        )
    table = format_table(
        ["Model", "Baseline", "UVM->HBM (RecShard promotes)", "HBM->UVM (demotes)"],
        rows,
    )
    note = (
        "RM1 is omitted as in the paper: it fits entirely in HBM, so\n"
        "there is no UVM placement to disagree about."
    )
    return f"{table}\n\n{note}"


def test_table4_placement_disparity(benchmark, headline):
    text = benchmark.pedantic(lambda: _table4(headline), rounds=1, iterations=1)
    report("tab04_placement_disparity", text)
    # Shape: both disparity directions are substantial under pressure.
    for model_name in ("RM2", "RM3"):
        recshard_plan = headline[model_name]["RecShard"].plan
        diff = recshard_plan.placement_disparity(
            headline[model_name]["Size-Based"].plan
        )
        assert diff["uvm_to_hbm"] > 0.02
        assert diff["hbm_to_uvm"] > 0.10
