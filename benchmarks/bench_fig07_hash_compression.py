"""Figure 7: hashing compresses the raw value distribution.

The paper hashes one production feature into a table larger than its
observed unique-value count and still finds the table under-utilized:
~26% of rows unused because of training-data sparsity and another ~22%
lost to hash collisions.  This bench reproduces the experiment with a
synthetic power-law feature at the same hash-to-values ratio.
"""

import numpy as np

from conftest import format_table, report
from repro.data.distributions import ZipfCategorical
from repro.hashing import SplitMix64Hasher, hash_compression_profile

CARDINALITY = 60_000
HASH_SIZE = 50_000  # hash size > unique values *seen* in the trace
TRAIN_SAMPLES = 400_000


def _figure7_profile() -> str:
    zipf = ZipfCategorical(CARDINALITY, alpha=1.05)
    raw = zipf.sample(TRAIN_SAMPLES, np.random.default_rng(7))
    profile = hash_compression_profile(raw, HASH_SIZE, SplitMix64Hasher(seed=7))
    rows = [
        ("training samples", f"{TRAIN_SAMPLES:,}"),
        ("raw cardinality", f"{CARDINALITY:,}"),
        ("hash size", f"{HASH_SIZE:,}"),
        ("unique values seen", f"{profile.unique_values_seen:,}"),
        ("rows receiving accesses", f"{profile.occupied_rows:,}"),
        ("sparsity (unused: unseen values)", f"{profile.sparsity_pct:.1%}"),
        ("collision loss (values folded)", f"{profile.collision_pct:.1%}"),
        ("total table under-utilization", f"{profile.unused_pct:.1%}"),
        ("top pre-hash value count", f"{profile.pre_hash_counts[0]:,}"),
        ("top post-hash row count", f"{profile.post_hash_counts[0]:,}"),
    ]
    table = format_table(["statistic", "value"], rows)
    note = (
        "Paper measured ~26% sparsity + ~22% collision loss for its\n"
        "example feature; the hash size here is chosen to sit in the same\n"
        "regime (hash > values seen yet the table stays under-utilized,\n"
        "and the post-hash curve terminates left of the pre-hash curve)."
    )
    return f"{table}\n\n{note}"


def test_figure7_hash_compression(benchmark):
    text = benchmark.pedantic(_figure7_profile, rounds=1, iterations=1)
    report("fig07_hash_compression", text)
