"""SLO-driven overload control: goodput under sustained overload.

PR-6's paced front-end could only tail-drop whole batches when its
bounded queue filled — blind to deadlines and request value.  This
bench drives a self-calibrated bursty overload (burst phases at 4x the
measured engine capacity, mean offered load ~2x capacity) through the
deadline/priority admission controller and gates what the controller
is for:

* **goodput** — served-within-deadline under the controller must be at
  least ``RECSHARD_BENCH_MIN_GOODPUT_GAIN`` x the blind tail-drop
  baseline (same stream, same engine, queue-bound shedding only);
* **class protection** — gold traffic keeps its p99 at or under the
  SLO and is never shed while bronze takes the shedding;
* **conservation** — ``offered == served + shed`` exactly, for both
  policies;
* **parity** — the multi-process runtime (2 workers) reproduces the
  single-process controlled run bit for bit;
* **brownout** — on the 3-tier topology, degraded-mode serving (skip
  cold-tier home lanes while the windowed p99 violates the SLO)
  contains the overload p99 below the full-service run, at a measured
  (not silent) cold-coverage cost.

The service regime is bandwidth-bound (per-batch overhead 0.005 ms):
per-lookup cost dominates, so shedding doomed work translates into
engine capacity for work that can still meet its deadline.  Windows
and budgets are derived from a calibration run, so the scenario tracks
the workload-shape knobs.

Environment knobs (on top of the shared workload knobs):
    RECSHARD_BENCH_OVERLOAD_REQUESTS  admission stream length (16384;
                                      the brownout stream runs half)
    RECSHARD_BENCH_MIN_GOODPUT_GAIN   goodput multiple vs tail-drop
                                      (1.5; 0 disables the assertion)
"""

import os

import numpy as np
import pytest

from conftest import (
    BENCH_GPUS,
    TOPO_SCALE,
    format_table,
    report,
    report_json,
)
from repro.core import MultiTierSharder, RecShardFastSharder
from repro.memory import node_from_tier_names
from repro.serving import (
    BurstyArrivals,
    LookupServer,
    MultiProcessServer,
    OverloadControl,
    ServingConfig,
    generate_request_arenas,
    parse_priority_spec,
    synthetic_request_arenas,
)

OVERLOAD_REQUESTS = int(
    os.environ.get("RECSHARD_BENCH_OVERLOAD_REQUESTS", 16384)
)
MIN_GOODPUT_GAIN = float(
    os.environ.get("RECSHARD_BENCH_MIN_GOODPUT_GAIN", 1.5)
)

#: Bandwidth-bound regime: per-lookup cost dominates the batch floor.
OVERHEAD_MS = 0.005
PRIORITY_SPEC = "gold=0.1,silver=0.3,bronze=0.6"
CALIBRATE_CONFIG = ServingConfig(
    max_batch_size=128, max_delay_ms=0.1, overhead_ms_per_batch=OVERHEAD_MS
)


def calibrate(model, profile, topology, plan):
    """Measure engine capacity (QPS) and per-batch service time."""
    server = LookupServer(
        model, profile, topology, plan=plan, config=CALIBRATE_CONFIG
    )
    arenas = list(
        synthetic_request_arenas(
            model, min(4096, OVERLOAD_REQUESTS), qps=1e9, seed=3
        )
    )
    m = server.serve_arenas(arenas)
    return m.qps, m.horizon_ms / m.num_batches


@pytest.fixture(scope="module")
def admission_runs(models, profiles, topology):
    """Controller vs tail-drop baseline on the same overloaded stream."""
    model = models[1]
    profile = profiles[model.name]
    plan = RecShardFastSharder(batch_size=256).shard(
        model, profile, topology
    )
    capacity, svc_ms = calibrate(model, profile, topology, plan)
    config = ServingConfig(
        max_batch_size=128, max_delay_ms=2 * svc_ms,
        overhead_ms_per_batch=OVERHEAD_MS,
    )
    slo_ms = 5 * svc_ms
    deadline_ms = 8 * svc_ms
    # Burst windows sized in requests (2048 per burst), idle windows
    # equal-length at a quarter of capacity: mean offered ~2.1x
    # capacity, so the overload is *sustained* — a blind queue can
    # never catch up, it only goes stale.
    burst_ms = 2048 / (4 * capacity) * 1e3
    process = BurstyArrivals(
        burst_qps=4 * capacity, idle_qps=0.25 * capacity,
        burst_ms=burst_ms, idle_ms=burst_ms,
    )
    names, shares = parse_priority_spec(PRIORITY_SPEC)
    arenas = list(
        generate_request_arenas(
            model, OVERLOAD_REQUESTS, process, seed=7,
            deadline_ms=deadline_ms, priority_shares=shares,
        )
    )
    controlled = OverloadControl(slo_ms=slo_ms, priority_names=names)
    taildrop = OverloadControl(
        queue_limit_ms=4 * deadline_ms,
        deadline_shedding=False, priority_shedding=False,
        priority_names=names,
    )
    runs = {}
    for key, control in (("controlled", controlled), ("taildrop", taildrop)):
        server = LookupServer(
            model, profile, topology, plan=plan, config=config,
            overload=control,
        )
        runs[key] = server.serve_arenas(arenas)
    return {
        "model": model,
        "profile": profile,
        "topology": topology,
        "plan": plan,
        "config": config,
        "control": controlled,
        "arenas": arenas,
        "capacity_qps": capacity,
        "svc_ms": svc_ms,
        "slo_ms": slo_ms,
        "deadline_ms": deadline_ms,
        "offered_mean_x": process.mean_qps / capacity,
        "runs": runs,
    }


@pytest.fixture(scope="module")
def brownout_runs(models, profiles):
    """Brownout vs full service on the overloaded 3-tier topology."""
    model = models[2]
    profile = profiles[model.name]
    topology = node_from_tier_names(
        ["hbm:8", "dram:24", "ssd"], num_gpus=BENCH_GPUS, scale=TOPO_SCALE,
    )
    plan = MultiTierSharder(batch_size=256).shard(model, profile, topology)
    capacity, svc_ms = calibrate(model, profile, topology, plan)
    config = ServingConfig(
        max_batch_size=128, max_delay_ms=0.1,
        overhead_ms_per_batch=OVERHEAD_MS,
    )
    slo_ms = 3 * svc_ms
    burst_ms = 1024 / (2 * capacity) * 1e3
    process = BurstyArrivals(
        burst_qps=2 * capacity, idle_qps=0.3 * capacity,
        burst_ms=burst_ms, idle_ms=2 * burst_ms,
    )
    arenas = list(
        generate_request_arenas(
            model, OVERLOAD_REQUESTS // 2, process, seed=11
        )
    )
    control = OverloadControl(
        slo_ms=slo_ms, brownout=True,
        deadline_shedding=False, priority_shedding=False,
        window_requests=512, min_window=128,
    )
    runs = {}
    for key, overload in (("brownout", control), ("full", None)):
        server = LookupServer(
            model, profile, topology, plan=plan, config=config,
            overload=overload,
        )
        runs[key] = server.serve_arenas(arenas)
    return {"slo_ms": slo_ms, "capacity_qps": capacity, "runs": runs}


def test_controller_beats_tail_drop_goodput(admission_runs):
    ctrl = admission_runs["runs"]["controlled"]
    base = admission_runs["runs"]["taildrop"]
    for m in (ctrl, base):
        assert m.offered_requests == OVERLOAD_REQUESTS
        assert m.num_requests + m.shed_requests == OVERLOAD_REQUESTS
    assert ctrl.shed_by_cause  # the controller actually shed
    gain = ctrl.served_within_deadline / max(base.served_within_deadline, 1)
    rows = [
        (
            key,
            m.num_requests,
            m.shed_requests,
            m.served_within_deadline,
            f"{m.goodput_fraction:.2%}",
            f"{m.p99_ms:.4f}",
        )
        for key, m in (("controlled", ctrl), ("tail-drop", base))
    ]
    table = format_table(
        ["policy", "served", "shed", "goodput", "goodput%", "p99 ms"], rows
    )
    report(
        "overload_goodput",
        table
        + f"\n\ngoodput gain: {gain:.2f}x (floor {MIN_GOODPUT_GAIN:g}x)\n"
        + f"offered load: {admission_runs['offered_mean_x']:.2f}x capacity "
        + f"({admission_runs['capacity_qps']:.0f} QPS), "
        + f"slo {admission_runs['slo_ms']:.4f} ms, "
        + f"deadline {admission_runs['deadline_ms']:.4f} ms",
    )
    if MIN_GOODPUT_GAIN > 0:
        assert gain >= MIN_GOODPUT_GAIN, (
            f"goodput gain {gain:.2f}x under floor {MIN_GOODPUT_GAIN}x"
        )


def test_gold_holds_slo_while_bronze_sheds(admission_runs):
    ctrl = admission_runs["runs"]["controlled"]
    stats = ctrl.priority_class_stats()
    assert stats["gold"]["shed"] == 0
    assert stats["bronze"]["shed"] > 0
    assert stats["gold"]["p99_ms"] <= admission_runs["slo_ms"]


def test_mp_controlled_run_is_bit_identical(admission_runs):
    ref = admission_runs["runs"]["controlled"]
    with MultiProcessServer(
        admission_runs["model"],
        admission_runs["profile"],
        admission_runs["topology"],
        plan=admission_runs["plan"],
        config=admission_runs["config"],
        workers=2,
        overload=admission_runs["control"],
    ) as pool:
        got = pool.serve_arenas(admission_runs["arenas"])
    assert ref.summary(deterministic_only=True) == got.summary(
        deterministic_only=True
    )
    assert ref.shed_by_cause == got.shed_by_cause
    np.testing.assert_array_equal(
        ref.tier_access_totals, got.tier_access_totals
    )


def test_brownout_contains_p99_at_measured_cost(brownout_runs):
    browned = brownout_runs["runs"]["brownout"]
    full = brownout_runs["runs"]["full"]
    assert browned.browned_out_lookups > 0
    assert browned.p99_ms < full.p99_ms
    served = sum(browned.batch_lookups)
    coverage_loss = browned.browned_out_lookups / (
        served + browned.browned_out_lookups
    )
    assert coverage_loss < 1.0
    report(
        "overload_brownout",
        format_table(
            ["mode", "p99 ms", "browned lookups", "windows"],
            [
                (
                    "brownout",
                    f"{browned.p99_ms:.4f}",
                    browned.browned_out_lookups,
                    len(browned.brownout_windows),
                ),
                ("full service", f"{full.p99_ms:.4f}", 0, 0),
            ],
        )
        + f"\n\ncold-coverage loss: {coverage_loss:.2%} of offered "
        + f"lookups skipped (slo {brownout_runs['slo_ms']:.4f} ms)",
    )


def test_report_overload_json(admission_runs, brownout_runs):
    ctrl = admission_runs["runs"]["controlled"]
    base = admission_runs["runs"]["taildrop"]
    browned = brownout_runs["runs"]["brownout"]
    full = brownout_runs["runs"]["full"]
    served = sum(browned.batch_lookups)
    path = report_json(
        "overload",
        {
            "requests": OVERLOAD_REQUESTS,
            "offered_mean_x_capacity": admission_runs["offered_mean_x"],
            "capacity_qps": admission_runs["capacity_qps"],
            "slo_ms": admission_runs["slo_ms"],
            "deadline_ms": admission_runs["deadline_ms"],
            "goodput_controlled": ctrl.served_within_deadline,
            "goodput_taildrop": base.served_within_deadline,
            "goodput_gain": ctrl.served_within_deadline
            / max(base.served_within_deadline, 1),
            "shed_by_cause": dict(ctrl.shed_by_cause),
            "priority_classes": ctrl.priority_class_stats(),
            "p99_controlled_ms": ctrl.p99_ms,
            "p99_taildrop_ms": base.p99_ms,
            "brownout": {
                "p99_brownout_ms": browned.p99_ms,
                "p99_full_ms": full.p99_ms,
                "browned_out_lookups": browned.browned_out_lookups,
                "brownout_windows": len(browned.brownout_windows),
                "coverage_loss": browned.browned_out_lookups
                / (served + browned.browned_out_lookups),
                "slo_ms": brownout_runs["slo_ms"],
            },
        },
    )
    assert path.exists()
