"""Multi-tier serving: the Section 4.4 capacity-scaling scenario online.

RecShard's multi-tier extension treats each extra memory tier as "a new
point on each EMB's CDF"; Table 5 shows the payoff as per-tier access
counts.  This bench runs that scenario through the serving runtime: a
3-tier HBM/DRAM/SSD node (the host-DRAM slice deliberately small, so a
spilling model *must* reach SSD), planned by the vectorized multi-tier
greedy sharder, served under saturating load.

Three gates:

* **fast-path speedup** — the vectorized multi-tier configuration
  (columnar arena admission + fused rank-space executor) must process
  the stream at least ``RECSHARD_BENCH_MIN_MULTITIER_SPEEDUP`` times
  (default 5x) faster than the scalar reference (per-request object
  admission + per-lookup remap-table executor), at *bit-identical*
  :class:`~repro.serving.metrics.ServingMetrics` — per-tier access
  counts, latencies, and device busy times all exactly equal.
* **Table 5 online** — per-tier access counts accumulated by the
  serving path must equal the offline replay of the same trace content.
* **statistics beat reactive caching** — enabling the frequency-informed
  :class:`~repro.engine.cache.TierStagingModel` must reduce device busy
  time while leaving per-tier access counts untouched.

Headline numbers land machine-readable in
``reports/BENCH_serving_multitier.json``.
"""

import os
import time

import numpy as np
import pytest

from conftest import (
    BENCH_BATCH,
    BENCH_GPUS,
    TOPO_SCALE,
    format_table,
    report,
    report_json,
)
from repro.core import MultiTierSharder
from repro.data.drift import DriftModel
from repro.engine import ShardedExecutor, TierStagingModel
from repro.memory import GIB, node_from_tier_names
from repro.serving import (
    LookupServer,
    ServingConfig,
    synthetic_request_arenas,
)

REQUESTS = 2048
SATURATING_QPS = 1e9
#: Per-GPU tier slices (paper-scale GiB).  HBM is shrunk and the
#: host-DRAM slice kept small so RM3's spill genuinely cascades across
#: all three tiers (at the preset capacities the DRAM boundary would
#: swallow the whole spill, or — with a tiny slice — cold ICDF steps
#: would each overflow it and DRAM would get nothing).
HBM_SLICE_GIB = 8
DRAM_SLICE_GIB = 24
STAGING_GIB = 1.5
MIN_MULTITIER_SPEEDUP = float(
    os.environ.get("RECSHARD_BENCH_MIN_MULTITIER_SPEEDUP", 5.0)
)


@pytest.fixture(scope="module")
def world(models, profiles):
    """RM3 (the heaviest spiller) on a 3-tier HBM/DRAM/SSD node."""
    model = models[2]
    profile = profiles[model.name]
    topology = node_from_tier_names(
        [f"hbm:{HBM_SLICE_GIB}", f"dram:{DRAM_SLICE_GIB}", "ssd"],
        num_gpus=BENCH_GPUS,
        scale=TOPO_SCALE,
    )
    plan = MultiTierSharder(batch_size=BENCH_BATCH, steps=100).shard(
        model, profile, topology
    )
    plan.validate(model, topology)
    return model, profile, topology, plan


def make_server(world, vectorized=True, staging=None, max_batch=256):
    model, profile, topology, plan = world
    return LookupServer(
        model, profile, topology, plan=plan,
        config=ServingConfig(max_batch_size=max_batch, max_delay_ms=2.0),
        vectorized=vectorized,
        staging=staging,
    )


def tier_table(metrics, topology) -> str:
    totals = metrics.tier_access_totals
    batches = max(len(metrics.tier_access_chunks), 1)
    rows = []
    for t, tier in enumerate(topology.tiers):
        share = totals[t].sum() / max(totals.sum(), 1)
        rows.append(
            (
                tier.name,
                f"{totals[t].sum():,}",
                f"{totals[t].sum() / batches / topology.num_devices:,.0f}",
                f"{share:.2%}",
            )
        )
    return format_table(
        ["tier", "accesses", "per GPU/batch", "share"], rows
    )


def test_multitier_fast_path_speedup(world):
    """Vectorized multi-tier serving >= 5x the scalar reference,
    bit-identical metrics."""
    model, profile, topology, plan = world
    arenas = list(
        synthetic_request_arenas(
            model, num_requests=REQUESTS, qps=SATURATING_QPS, seed=42
        )
    )

    def run_reference():
        server = make_server(world, vectorized=False)
        start = time.perf_counter()
        metrics = server.serve(r for arena in arenas for r in arena)
        return time.perf_counter() - start, metrics

    def run_fast():
        server = make_server(world, vectorized=True)
        start = time.perf_counter()
        metrics = server.serve_arenas(arenas)
        return time.perf_counter() - start, metrics

    # Warm both paths (lazy remap/rank tables, numpy internals).
    run_reference()
    run_fast()

    ref_s, fast_s = [], []
    ref_metrics = fast_metrics = None
    for _ in range(2):
        elapsed, ref_metrics = run_reference()
        ref_s.append(elapsed)
        elapsed, fast_metrics = run_fast()
        fast_s.append(elapsed)
    ref_best, fast_best = min(ref_s), min(fast_s)
    speedup = ref_best / fast_best

    # Bit-identical serving metrics, per-tier counts included.
    assert ref_metrics.summary(deterministic_only=True) == (
        fast_metrics.summary(deterministic_only=True)
    )
    np.testing.assert_array_equal(
        ref_metrics.latencies_ms(), fast_metrics.latencies_ms()
    )
    np.testing.assert_array_equal(
        ref_metrics.device_busy_ms, fast_metrics.device_busy_ms
    )
    np.testing.assert_array_equal(
        ref_metrics.tier_access_totals, fast_metrics.tier_access_totals
    )

    # The scenario must genuinely exercise all three tiers.
    totals = fast_metrics.tier_access_totals
    assert (totals.sum(axis=1) > 0).all(), totals

    table = format_table(
        ["serving path", "sim wall-clock (ms)", "requests/s processed"],
        [
            ("reference (objects + scalar engine)",
             f"{ref_best * 1e3:.1f}", f"{REQUESTS / ref_best:.3g}"),
            ("fast (columnar + fused engine)",
             f"{fast_best * 1e3:.1f}", f"{REQUESTS / fast_best:.3g}"),
        ],
    )
    text = (
        f"{model.name} on {BENCH_GPUS} GPUs over "
        f"{'/'.join(topology.tier_names)} (hbm/dram slices "
        f"{HBM_SLICE_GIB}/{DRAM_SLICE_GIB} GiB/GPU paper-scale), "
        f"{REQUESTS} requests, "
        f"saturating load\n\n"
        f"-- per-tier serving access counts (Table 5 online) --\n"
        f"{tier_table(fast_metrics, topology)}\n\n"
        f"-- vectorized multi-tier path vs scalar reference --\n{table}\n\n"
        f"speedup {speedup:.2f}x (floor {MIN_MULTITIER_SPEEDUP:g}x), "
        f"metrics bit-identical"
    )
    report("serving_multitier", text)
    report_json(
        "serving_multitier",
        {
            "requests": REQUESTS,
            "tiers": list(topology.tier_names),
            "hbm_slice_gib": HBM_SLICE_GIB,
            "dram_slice_gib": DRAM_SLICE_GIB,
            "reference_wall_s": ref_best,
            "fast_wall_s": fast_best,
            "speedup": speedup,
            "speedup_floor": MIN_MULTITIER_SPEEDUP,
            "parity": "bit-identical",
            "tier_accesses": fast_metrics.summary(
                deterministic_only=True
            )["tier_accesses"],
            "metrics": fast_metrics.summary(deterministic_only=True),
        },
    )
    assert speedup >= MIN_MULTITIER_SPEEDUP


def test_multitier_serving_matches_offline_replay(world):
    """Per-tier serving counts == offline Table 5 replay, same trace."""
    model, profile, topology, plan = world
    arenas = list(
        synthetic_request_arenas(
            model, num_requests=REQUESTS, qps=SATURATING_QPS, seed=77
        )
    )
    server = make_server(world)
    metrics = server.serve_arenas(arenas)

    executor = ShardedExecutor(model, plan, profile, topology)
    offline = np.zeros(
        (topology.num_tiers, topology.num_devices), dtype=np.int64
    )
    for arena in arenas:
        _, accesses, _, _ = executor.run_batch(arena.batch)
        offline += accesses
    np.testing.assert_array_equal(metrics.tier_access_totals, offline)
    assert metrics.tier_access_totals.sum() == sum(metrics.batch_lookups)


def test_multitier_staging_beats_no_staging(world):
    """The statically-informed staging cache cuts cold-tier time at
    identical access counts (RecShard's statistics vs reactive caches)."""
    model, profile, topology, plan = world
    staging = TierStagingModel(
        capacity_bytes=int(STAGING_GIB * GIB * TOPO_SCALE)
    )
    arenas = list(
        synthetic_request_arenas(
            model, num_requests=REQUESTS // 2, qps=SATURATING_QPS, seed=13
        )
    )
    plain = make_server(world).serve_arenas(arenas)
    staged = make_server(world, staging=staging).serve_arenas(arenas)
    np.testing.assert_array_equal(
        plain.tier_access_totals, staged.tier_access_totals
    )
    saved = 1.0 - staged.device_busy_ms.sum() / plain.device_busy_ms.sum()
    assert saved > 0.0
    report(
        "serving_multitier_staging",
        f"{model.name}: staging {STAGING_GIB} GiB/GPU/cold-tier "
        f"(paper-scale) cuts device busy time by {saved:.1%} at identical "
        f"per-tier access counts\n"
        f"p50 {plain.p50_ms:.3f} -> {staged.p50_ms:.3f} ms, "
        f"p99 {plain.p99_ms:.3f} -> {staged.p99_ms:.3f} ms",
    )


def test_multitier_drift_replans(models, profiles):
    """Drift-triggered replanning end to end on the 3-tier topology."""
    model = models[2]
    profile = profiles[model.name]
    topology = node_from_tier_names(
        [f"hbm:{HBM_SLICE_GIB}", f"dram:{DRAM_SLICE_GIB}", "ssd"],
        num_gpus=BENCH_GPUS,
        scale=TOPO_SCALE,
    )
    server = LookupServer(
        model, profile, topology,
        sharder=MultiTierSharder(batch_size=BENCH_BATCH, steps=100),
        config=ServingConfig(
            max_batch_size=256, max_delay_ms=2.0,
            drift_threshold_pct=2.0, drift_min_samples=256,
            drift_check_every_batches=4,
        ),
    )
    arenas = synthetic_request_arenas(
        model, num_requests=REQUESTS, qps=SATURATING_QPS, seed=7,
        drift=DriftModel(feature_noise=4.0, alpha_noise=4.0),
        months_per_request=24.0 / REQUESTS,
    )
    metrics = server.serve_arenas(arenas)
    assert metrics.num_replans >= 1, "drifted stream should trigger a replan"
    assert metrics.num_requests == REQUESTS
    builds = metrics.replan_build_ms
    report(
        "serving_multitier_replans",
        f"{model.name} 3-tier drifted stream: {metrics.num_replans} "
        f"replans, build cost per replan (ms): "
        + ", ".join(f"{b:.1f}" for b in builds),
    )
