"""Figure 9: sparse feature memory demand drifts over 20 months.

User features climb toward ~+10% average pooling factor; content
features dip slightly negative before recovering toward ~+5%.  The bench
prints both 20-month series and quantifies the re-sharding implication:
how stale a month-0 RecShard plan becomes under drifted statistics.
"""

from conftest import BENCH_BATCH, format_table, report
from repro.core import RecShardFastSharder
from repro.core.evaluate import expected_max_cost_ms
from repro.data.drift import DriftModel
from repro.data.feature import FeatureKind
from repro.data.model import rm2
from repro.memory import paper_node
from repro.stats import analytic_profile


def _figure9_series() -> str:
    drift = DriftModel()
    months = list(range(1, 21))
    user = drift.series(FeatureKind.USER, 20)
    content = drift.series(FeatureKind.CONTENT, 20)
    rows = [
        (m, f"{u:+.1f}%", f"{c:+.1f}%")
        for m, u, c in zip(months, user, content)
    ]
    table = format_table(["month", "user features", "content features"], rows)

    # Re-sharding value: plan at month 0, evaluate at month 18 under
    # RM2-style UVM pressure (a fully-HBM model has nothing to reshard).
    # Per-feature idiosyncratic drift (Figure 9 plots kind averages)
    # drives the rebalancing need.
    topo_scale = 1e-3 * 97 / 397
    model = rm2(num_features=97, row_scale=topo_scale * 8 / 16)
    topology = paper_node(num_gpus=8, scale=topo_scale)
    profile0 = analytic_profile(model)
    sharder = RecShardFastSharder(batch_size=BENCH_BATCH)
    plan0 = sharder.shard(model, profile0, topology)

    noisy_drift = DriftModel(feature_noise=6.0, alpha_noise=25.0)
    drifted = noisy_drift.drift_model(model, month=18)
    profile18 = analytic_profile(drifted)
    stale_cost = expected_max_cost_ms(
        plan0, drifted, profile18, topology, BENCH_BATCH
    )
    fresh_plan = sharder.shard(drifted, profile18, topology)
    fresh_cost = expected_max_cost_ms(
        fresh_plan, drifted, profile18, topology, BENCH_BATCH
    )
    note = (
        "Re-sharding implication (Section 3.5): a month-0 plan evaluated\n"
        f"on month-18 statistics costs {stale_cost:.3f} ms/iter vs "
        f"{fresh_cost:.3f} ms/iter after re-sharding "
        f"({stale_cost / fresh_cost:.2f}x stale-plan penalty)."
    )
    return f"{table}\n\n{note}"


def test_figure9_drift(benchmark):
    text = benchmark.pedantic(_figure9_series, rounds=1, iterations=1)
    report("fig09_drift", text)
