"""Precision-tiered capacity: quantized cold tiers under one byte budget.

Not a paper figure — the capacity/quality gate for the precision
ladder.  RecShard's cold tiers hold rows that are rarely read; storing
them quantized (fp16/int8/int4, :mod:`repro.core.quantize`) multiplies
how many rows the same byte budget admits.  This bench pins three
properties:

* **capacity** — on a three-tier node whose middle tier is the
  bottleneck, quantizing the cold tiers must admit at least
  ``MIN_CAPACITY_GAIN`` x the middle-tier rows of the fp32 baseline at
  the *same* byte capacities (fp16 doubles rows; int8 nearly 4x).
* **parity** — the scalar heapq reference and the vectorized
  bulk-admission path must produce identical plans under any precision
  ladder, two-tier and multi-tier.
* **measured quality** — a small DLRM trained on a skewed synthetic
  CTR stream, its embedding rows frequency-ordered and the cold
  majority round-tripped through each ladder's codec, must hold its
  held-out AUC within ``MAX_AUC_DELTA`` of the fp32 model — the
  *measured* counterpart of the closed-form error the planner stamps
  into plan metadata.

Headline numbers land machine-readable in
``reports/BENCH_quantized.json`` next to the planner and serving gates.
"""

import os

import numpy as np

from conftest import BENCH_BATCH, format_table, report, report_json
from repro.core import MultiTierSharder, RecShardFastSharder
from repro.core.quantize import expected_rel_error, quantize_by_tiers
from repro.data.batch import JaggedBatch, JaggedFeature
from repro.dlrm import DLRM, DLRMConfig, auc_score, bce_loss, train_epoch
from repro.dlrm.train import synthetic_ctr_labels
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology

MIN_CAPACITY_GAIN = float(
    os.environ.get("RECSHARD_BENCH_MIN_CAPACITY_GAIN", 1.8)
)
MAX_AUC_DELTA = float(os.environ.get("RECSHARD_BENCH_MAX_AUC_DELTA", 0.02))

#: Ladders under test: every cold tier stored at one precision.
LADDERS = ("fp16", "int8", "int4")
#: Ladders the AUC gate applies to (int4 is reported, not gated).
GATED_LADDERS = ("fp16", "int8")


def _three_tier(model, num_devices=4):
    """HBM tiny, middle tier the bottleneck, last tier roomy.

    The middle tier is sized well below the model's off-HBM footprint
    so quantized admission is budget-limited, not row-limited — a
    roomier tier would swallow every remaining row at any precision and
    cap the measurable gain at the row supply.
    """
    total = model.total_bytes
    tiers = (
        MemoryTier("hbm", int(total * 0.05 / num_devices), 200e9),
        MemoryTier("dram", int(total * 0.08 / num_devices), 20e9),
        MemoryTier("ssd", total, 2e9),
    )
    return SystemTopology(num_devices=num_devices, tiers=tiers)


def _plans_identical(a, b) -> bool:
    return all(
        x.rows_per_tier == y.rows_per_tier and x.device == y.device
        for x, y in zip(a, b)
    )


def test_quantized_capacity_and_parity(models, profiles):
    model = models[1]  # RM2: the mid-size workload
    profile = profiles[model.name]
    topology = _three_tier(model)
    sharder = MultiTierSharder(batch_size=BENCH_BATCH, steps=40)
    baseline = sharder.shard(model, profile, topology)
    base_mid_rows = baseline.tier_rows_total(1)
    assert base_mid_rows > 0, "middle tier must be exercised"

    gains = {}
    rows = []
    for precision in LADDERS:
        ladder = topology.with_precisions(
            {"dram": precision, "ssd": precision}
        )
        quant = sharder.shard(model, profile, ladder)
        quant.validate(model, ladder)
        gains[precision] = quant.tier_rows_total(1) / base_mid_rows
        rows.append(
            [
                precision,
                quant.tier_rows_total(1),
                f"{gains[precision]:.2f}x",
                f"{expected_rel_error(precision):.2e}",
            ]
        )

    # Parity: scalar heapq reference vs vectorized bulk admission, under
    # the most aggressive ladder.
    ladder = topology.with_precisions({"dram": "int4", "ssd": "int4"})
    vec = MultiTierSharder(batch_size=BENCH_BATCH, steps=40).shard(
        model, profile, ladder
    )
    scalar = MultiTierSharder(
        batch_size=BENCH_BATCH, steps=40, vectorized=False
    ).shard(model, profile, ladder)
    multitier_parity = _plans_identical(vec, scalar)
    assert multitier_parity, "multi-tier scalar/vectorized parity broke"

    two_tier = SystemTopology.two_tier(
        num_devices=4,
        hbm_capacity=int(model.total_bytes * 0.3 / 4),
        hbm_bandwidth=200e9,
        uvm_capacity=model.total_bytes,
        uvm_bandwidth=10e9,
    ).with_precisions("hbm=fp16,uvm=int8")
    fast_vec = RecShardFastSharder(batch_size=BENCH_BATCH).shard(
        model, profile, two_tier
    )
    fast_scalar = RecShardFastSharder(
        batch_size=BENCH_BATCH, vectorized=False
    ).shard(model, profile, two_tier)
    two_tier_parity = _plans_identical(fast_vec, fast_scalar)
    assert two_tier_parity, "two-tier scalar/vectorized parity broke"

    table = format_table(
        ["ladder", "mid-tier rows", "vs fp32", "expected rel err"],
        [["fp32", base_mid_rows, "1.00x", "0.00e+00"]] + rows,
    )
    report("quantized_capacity", table)

    for precision in GATED_LADDERS:
        assert gains[precision] >= MIN_CAPACITY_GAIN, (
            f"{precision} ladder admits only {gains[precision]:.2f}x the "
            f"fp32 middle-tier rows (< {MIN_CAPACITY_GAIN}x) at equal bytes"
        )

    test_quantized_capacity_and_parity.gains = gains
    test_quantized_capacity_and_parity.base_mid_rows = base_mid_rows
    test_quantized_capacity_and_parity.parity = (
        multitier_parity and two_tier_parity
    )


def _dlrm_world(seed=17):
    cfg = DLRMConfig(
        dense_features=8,
        table_rows=[240, 320, 160],
        embedding_dim=16,
        bottom_layers=[32],
        top_layers=[32],
        seed=seed,
    )
    return cfg


def _skewed_batch(cfg, batch_size, rng):
    """Synthetic CTR batch with Zipf-skewed sparse accesses, so each
    table has genuinely hot and cold rows for the ladder to split."""
    dense = rng.normal(size=(batch_size, cfg.dense_features))
    feats = []
    for rows in cfg.table_rows:
        lengths = rng.integers(0, 4, size=batch_size)
        offsets = np.zeros(batch_size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = (rng.zipf(1.5, size=int(offsets[-1])) - 1) % rows
        feats.append(JaggedFeature(values.astype(np.int64), offsets))
    sparse = JaggedBatch(feats)
    labels = synthetic_ctr_labels(dense, sparse, rng)
    return dense, sparse, labels


def _quantize_model_tables(model, counts, hot_frac, precision):
    """Round-trip each table's cold rows through the ladder's codec.

    Rows are frequency-ordered by the training access counts (the same
    ordering a RecShard remapping applies), the hottest ``hot_frac``
    kept fp32, the rest quantized in place.
    """
    for table, table_counts in zip(model.tables, counts):
        weights = table.weight
        order = np.argsort(-table_counts, kind="stable")
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size)
        hot = int(round(order.size * hot_frac))
        transformed = quantize_by_tiers(
            weights[order], [hot, order.size - hot], ["fp32", precision]
        )
        weights[:] = transformed[inverse]


def test_quantized_dlrm_quality():
    cfg = _dlrm_world()
    rng = np.random.default_rng(17)
    train_batches = [_skewed_batch(cfg, 256, rng) for _ in range(20)]
    model = DLRM(cfg)
    losses = train_epoch(model, train_batches, lr=0.2)
    assert losses[-1] < losses[0], "training must reduce loss"

    counts = [np.zeros(rows, dtype=np.int64) for rows in cfg.table_rows]
    for _, sparse, _ in train_batches:
        for f, feature in enumerate(sparse):
            np.add.at(counts[f], feature.values, 1)

    eval_rng = np.random.default_rng(9917)
    dense, sparse, labels = _skewed_batch(cfg, 2048, eval_rng)
    base_probs = model.forward(dense, sparse)
    base_auc = auc_score(labels, base_probs)
    base_loss = bce_loss(base_probs, labels)
    assert base_auc > 0.6, "fp32 model must beat chance before quantizing"

    baseline_weights = [table.weight.copy() for table in model.tables]
    quality = {"fp32": {"auc": base_auc, "loss": base_loss}}
    rows = []
    for precision in LADDERS:
        for table, saved in zip(model.tables, baseline_weights):
            table.weight[:] = saved
        _quantize_model_tables(model, counts, hot_frac=0.25, precision=precision)
        probs = model.forward(dense, sparse)
        auc = auc_score(labels, probs)
        loss = bce_loss(probs, labels)
        quality[precision] = {
            "auc": auc,
            "loss": loss,
            "auc_delta": abs(base_auc - auc),
            "loss_delta": abs(base_loss - loss),
        }
        rows.append(
            [
                precision,
                f"{auc:.4f}",
                f"{abs(base_auc - auc):.4f}",
                f"{loss:.4f}",
                f"{abs(base_loss - loss):.4f}",
            ]
        )
    for table, saved in zip(model.tables, baseline_weights):
        table.weight[:] = saved

    table = format_table(
        ["ladder", "auc", "|d auc|", "bce loss", "|d loss|"],
        [["fp32", f"{base_auc:.4f}", "-", f"{base_loss:.4f}", "-"]] + rows,
    )
    report("quantized_quality", table)

    for precision in GATED_LADDERS:
        assert quality[precision]["auc_delta"] <= MAX_AUC_DELTA, (
            f"{precision} ladder moved held-out AUC by "
            f"{quality[precision]['auc_delta']:.4f} "
            f"(> {MAX_AUC_DELTA}) on the measured harness"
        )

    gains = getattr(test_quantized_capacity_and_parity, "gains", {})
    payload = {
        "min_capacity_gain": MIN_CAPACITY_GAIN,
        "max_auc_delta": MAX_AUC_DELTA,
        "quality": quality,
        "auc_fp32": base_auc,
        "parity": getattr(test_quantized_capacity_and_parity, "parity", None),
        "base_mid_tier_rows": getattr(
            test_quantized_capacity_and_parity, "base_mid_rows", None
        ),
    }
    for precision, gain in gains.items():
        payload[f"capacity_gain_{precision}"] = gain
    report_json("quantized", payload)
