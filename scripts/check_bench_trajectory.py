#!/usr/bin/env python
"""Guard the bench trajectory: fresh BENCH_*.json vs a committed baseline.

Every benchmark that gates a performance property writes a
machine-readable ``benchmarks/reports/BENCH_<name>.json``.  Those files
are committed, so ``git show <ref>:<path>`` is the trajectory baseline:
this script re-reads the freshly generated reports in the working tree
and fails if any higher-is-better headline number (speedups, gains,
scaling factors) fell below ``--min-ratio`` times its committed value.

Usage::

    python scripts/check_bench_trajectory.py --min-ratio 0.25   # CI smoke
    python scripts/check_bench_trajectory.py --min-ratio 0.7    # nightly

CI smoke runs regenerate the reports at shrink scale while the
committed baselines are full-scale, so the workload stamps differ; the
ratios of dimensionless gains are still comparable, which is why the CI
tolerance is generous (catching collapses, not noise) and the nightly
full-scale tolerance is tight.  A fresh report with no committed
counterpart (a brand-new bench) is reported and skipped.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

#: Top-level keys treated as higher-is-better trajectory numbers.
_TRACKED = re.compile(r"^(speedup|scaling|gain|.*_gain|capacity_gain_.*)$")
#: Keys that merely configure a gate (floors/limits), never tracked.
_EXCLUDED = re.compile(r"(_floor|_enforced)$|^min_|^max_|^scalar_")


def tracked_keys(document: dict) -> dict[str, float]:
    """Higher-is-better numeric headline keys of one BENCH document."""
    out = {}
    for key, value in document.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if _TRACKED.match(key) and not _EXCLUDED.search(key):
            out[key] = float(value)
    return out


def baseline_document(repo: Path, ref: str, relpath: str) -> dict | None:
    """The committed version of one report, or None if it is new."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{relpath}"],
        cwd=repo, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def compare(fresh: dict, baseline: dict, min_ratio: float) -> list[dict]:
    """Per-key diff rows for one bench; ``ok=False`` marks a regression."""
    rows = []
    base_keys = tracked_keys(baseline)
    for key, current in tracked_keys(fresh).items():
        if key not in base_keys:
            rows.append(
                {"key": key, "current": current, "base": None, "ok": True}
            )
            continue
        base = base_keys[key]
        ratio = current / base if base > 0 else float("inf")
        rows.append(
            {
                "key": key,
                "current": current,
                "base": base,
                "ratio": ratio,
                "ok": ratio >= min_ratio,
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail if fresh bench headline numbers regressed vs git"
    )
    parser.add_argument(
        "--reports-dir", default="benchmarks/reports",
        help="directory holding the fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-ref", default="HEAD",
        help="git ref providing the committed baselines (default: HEAD)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.5,
        help="fail when current/baseline falls below this (default: 0.5)",
    )
    parser.add_argument(
        "benches", nargs="*", metavar="NAME",
        help="bench names to check (default: every fresh BENCH_*.json)",
    )
    args = parser.parse_args(argv)
    if args.min_ratio <= 0:
        print("error: --min-ratio must be > 0", file=sys.stderr)
        return 2
    reports = Path(args.reports_dir)
    if not reports.is_dir():
        print(f"error: no reports directory at {reports}", file=sys.stderr)
        return 2
    if args.benches:
        paths = [reports / f"BENCH_{name}.json" for name in args.benches]
        missing = [p for p in paths if not p.is_file()]
        if missing:
            print(
                f"error: no fresh report at "
                f"{', '.join(str(p) for p in missing)}",
                file=sys.stderr,
            )
            return 2
    else:
        paths = sorted(reports.glob("BENCH_*.json"))
    if not paths:
        print(f"error: no BENCH_*.json under {reports}", file=sys.stderr)
        return 2

    repo = Path.cwd()
    regressions = 0
    compared = 0
    header = (
        f"{'bench':<24} {'key':<24} {'baseline':>12} "
        f"{'current':>12} {'ratio':>7}  status"
    )
    print(header)
    print("-" * len(header))
    for path in paths:
        fresh = json.loads(path.read_text())
        bench = fresh.get("bench", path.stem.removeprefix("BENCH_"))
        relpath = path.as_posix()
        baseline = baseline_document(repo, args.baseline_ref, relpath)
        if baseline is None:
            print(f"{bench:<24} {'-':<24} {'(new bench)':>12} "
                  f"{'-':>12} {'-':>7}  skipped")
            continue
        rows = compare(fresh, baseline, args.min_ratio)
        if not rows:
            print(f"{bench:<24} {'-':<24} {'(no tracked keys)':>12} "
                  f"{'-':>12} {'-':>7}  skipped")
            continue
        mismatch = fresh.get("workload") != baseline.get("workload")
        for row in rows:
            if row["base"] is None:
                print(f"{bench:<24} {row['key']:<24} {'(new key)':>12} "
                      f"{row['current']:>12.3f} {'-':>7}  skipped")
                continue
            compared += 1
            status = "ok" if row["ok"] else "REGRESSION"
            if not row["ok"]:
                regressions += 1
            note = " [workload differs]" if mismatch else ""
            print(
                f"{bench:<24} {row['key']:<24} {row['base']:>12.3f} "
                f"{row['current']:>12.3f} {row['ratio']:>7.2f}  "
                f"{status}{note}"
            )
    print()
    if regressions:
        print(
            f"{regressions} of {compared} tracked bench numbers fell below "
            f"{args.min_ratio:g}x their committed baseline",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench trajectory OK: {compared} tracked numbers at >= "
        f"{args.min_ratio:g}x their committed baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
