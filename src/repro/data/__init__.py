"""Synthetic training-data substrate.

The paper profiles Meta production traces; those are not available, so
this package generates statistically equivalent synthetic data: per-
feature Zipf categorical distributions (Section 3.1), long-tailed pooling
factor distributions (Section 3.2), per-feature coverage (Section 3.3),
temporal drift (Section 3.5, Figure 9), and the RM1/RM2/RM3 model specs
of Table 2 at a configurable row scale.
"""

from repro.data.batch import JaggedBatch
from repro.data.distributions import (
    LogNormalPooling,
    UniformCategorical,
    ZipfCategorical,
)
from repro.data.feature import FeatureKind, SparseFeatureSpec
from repro.data.model import (
    EmbeddingTableSpec,
    ModelSpec,
    generate_feature_population,
    rm1,
    rm2,
    rm3,
)
from repro.data.synthetic import SamplerBank, TraceGenerator
from repro.data.drift import DriftModel
from repro.data import trends

__all__ = [
    "DriftModel",
    "EmbeddingTableSpec",
    "FeatureKind",
    "JaggedBatch",
    "LogNormalPooling",
    "ModelSpec",
    "SamplerBank",
    "SparseFeatureSpec",
    "TraceGenerator",
    "UniformCategorical",
    "ZipfCategorical",
    "generate_feature_population",
    "rm1",
    "rm2",
    "rm3",
    "trends",
]
