"""Probability distributions underlying the synthetic sparse features.

Section 3.1 of the paper observes that categorical value frequencies
follow power laws with per-feature strength; Section 3.2 observes that
pooling factors are skewed with a long tail but not power-law shaped.
We model the former with bounded Zipf distributions and the latter with
discretized log-normals.
"""

from __future__ import annotations

import numpy as np


class ZipfCategorical:
    """Bounded Zipf distribution over ranks ``0 .. cardinality-1``.

    Rank ``k`` (0-based) has probability proportional to ``(k+1)**-alpha``.
    ``alpha`` controls skew: 0 is uniform, production features typically
    fall between ~0.6 and ~1.6 (Figure 5 shows the resulting CDF spread).
    """

    def __init__(self, cardinality: int, alpha: float):
        if cardinality < 1:
            raise ValueError(f"cardinality must be >= 1, got {cardinality}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.cardinality = int(cardinality)
        self.alpha = float(alpha)
        self._cdf: np.ndarray | None = None

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each rank, descending by construction."""
        weights = np.arange(1, self.cardinality + 1, dtype=np.float64) ** -self.alpha
        return weights / weights.sum()

    @property
    def cdf(self) -> np.ndarray:
        """Cumulative distribution, cached for repeated sampling."""
        if self._cdf is None:
            self._cdf = np.cumsum(self.pmf)
            self._cdf[-1] = 1.0  # guard against float drift
        return self._cdf

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` ranks by inverse-CDF sampling."""
        if size == 0:
            return np.empty(0, dtype=np.int64)
        uniforms = rng.random(size)
        return np.searchsorted(self.cdf, uniforms, side="right").astype(np.int64)

    def __repr__(self) -> str:
        return f"ZipfCategorical(cardinality={self.cardinality}, alpha={self.alpha})"


class UniformCategorical(ZipfCategorical):
    """Uniform categorical distribution (a Zipf with ``alpha == 0``).

    A handful of production features exhibit near-uniform value
    distributions (the flat lines in Figure 5); this models those.
    """

    def __init__(self, cardinality: int):
        super().__init__(cardinality, alpha=0.0)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if size == 0:
            return np.empty(0, dtype=np.int64)
        return rng.integers(0, self.cardinality, size=size, dtype=np.int64)

    def __repr__(self) -> str:
        return f"UniformCategorical(cardinality={self.cardinality})"


class LogNormalPooling:
    """Discretized log-normal pooling-factor distribution with a set mean.

    The paper chooses the *mean* pooling factor as the per-feature summary
    statistic because it over- rather than under-estimates bandwidth
    demand (Section 3.2); this class is parameterized directly by that
    mean.  Samples are rounded to integers and clipped to ``>= 1``.
    """

    def __init__(self, mean: float, sigma: float = 0.75, max_pool: int | None = None):
        if mean < 1:
            raise ValueError(f"mean pooling factor must be >= 1, got {mean}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.mean = float(mean)
        self.sigma = float(sigma)
        self.max_pool = max_pool
        # E[LogNormal(mu, sigma)] = exp(mu + sigma^2 / 2)  =>  solve for mu.
        self._mu = np.log(self.mean) - self.sigma**2 / 2.0

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` integer pooling factors (each >= 1)."""
        if size == 0:
            return np.empty(0, dtype=np.int64)
        raw = rng.lognormal(self._mu, self.sigma, size=size)
        pools = np.maximum(1, np.rint(raw)).astype(np.int64)
        if self.max_pool is not None:
            pools = np.minimum(pools, self.max_pool)
        return pools

    def __repr__(self) -> str:
        return f"LogNormalPooling(mean={self.mean}, sigma={self.sigma})"


def log_uniform(
    low: float, high: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample log-uniformly from ``[low, high]`` (used for cardinalities)."""
    if low <= 0 or high < low:
        raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
    return np.exp(rng.uniform(np.log(low), np.log(high), size=size))
