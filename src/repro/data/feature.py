"""Sparse feature specifications.

A sparse feature is described by the statistics the paper characterizes:
its categorical value distribution (cardinality + Zipf strength), its
pooling factor distribution, its coverage, and the hashing configuration
that turns raw categorical values into embedding table indices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from repro.data.distributions import LogNormalPooling, ZipfCategorical
from repro.hashing.hashers import SplitMix64Hasher


class FeatureKind(enum.Enum):
    """Feature families from Figure 9 (they drift differently over time)."""

    USER = "user"
    CONTENT = "content"


@dataclass(frozen=True)
class SparseFeatureSpec:
    """Statistical description of one sparse feature.

    Attributes:
        name: feature identifier.
        cardinality: size of the raw categorical value space.
        hash_size: embedding table row count the raw space is hashed into.
        alpha: Zipf exponent of the categorical value distribution.
        avg_pooling: mean pooling factor (hot indices per present sample).
        pooling_sigma: log-normal spread of the pooling factor.
        coverage: probability the feature is present in a random sample.
        kind: user/content family (drives temporal drift).
        hash_seed: seed of the feature's hash function.
    """

    name: str
    cardinality: int
    hash_size: int
    alpha: float
    avg_pooling: float
    pooling_sigma: float = 0.75
    coverage: float = 1.0
    kind: FeatureKind = FeatureKind.CONTENT
    hash_seed: int = 0

    def __post_init__(self):
        if self.cardinality < 1:
            raise ValueError(f"{self.name}: cardinality must be >= 1")
        if self.hash_size < 1:
            raise ValueError(f"{self.name}: hash_size must be >= 1")
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError(f"{self.name}: coverage must be in [0, 1]")
        if self.avg_pooling < 1:
            raise ValueError(f"{self.name}: avg_pooling must be >= 1")

    # ------------------------------------------------------------------
    # Derived distributions (constructed on demand; specs stay frozen)
    # ------------------------------------------------------------------
    def value_distribution(self) -> ZipfCategorical:
        return ZipfCategorical(self.cardinality, self.alpha)

    def pooling_distribution(self) -> LogNormalPooling:
        return LogNormalPooling(self.avg_pooling, self.pooling_sigma)

    def hasher(self) -> SplitMix64Hasher:
        return SplitMix64Hasher(self.hash_seed)

    def hash_values(self, raw_values: np.ndarray) -> np.ndarray:
        """Map raw categorical values into ``[0, hash_size)``."""
        return self.hasher().hash_into(raw_values, self.hash_size)

    def post_hash_pmf(self, hashed: np.ndarray | None = None) -> np.ndarray:
        """Access probability of each embedding row, post-hash.

        Pushes the Zipf pmf over raw values through the feature's hash
        function.  Rows that no raw value maps to get probability zero —
        these are the dead rows of Section 3.4.

        Args:
            hashed: precomputed ``hash_values(arange(cardinality))``,
                for callers (drifting stream samplers) that reuse the
                hashed value space across pmf rebuilds.  This method is
                the single accumulation implementation, so cached and
                uncached pmfs stay bit-identical.
        """
        raw_pmf = self.value_distribution().pmf
        if hashed is None:
            hashed = self.hash_values(np.arange(self.cardinality, dtype=np.int64))
        pmf = np.zeros(self.hash_size, dtype=np.float64)
        np.add.at(pmf, hashed, raw_pmf)
        return pmf

    def expected_lookups_per_sample(self) -> float:
        """Expected EMB rows touched per training sample (bandwidth proxy)."""
        return self.coverage * self.avg_pooling

    def scaled_hash_size(self, factor: float) -> "SparseFeatureSpec":
        """Copy of this spec with the hash size scaled by ``factor``."""
        return replace(self, hash_size=max(1, int(round(self.hash_size * factor))))

    def with_pooling(self, avg_pooling: float) -> "SparseFeatureSpec":
        """Copy of this spec with a different mean pooling factor."""
        return replace(self, avg_pooling=float(avg_pooling))
