"""Model specifications: embedding tables and the RM1/RM2/RM3 workloads.

Table 2 of the paper defines three production-scale DLRMs that share 397
sparse features and differ only by an approximate doubling of every hash
size from RM1 to RM2 and again from RM2 to RM3.  We reproduce those specs
at a configurable ``row_scale`` (default 1/1000) so the same sharding
regimes — RM1 fits in HBM, RM2/RM3 spill to UVM — arise on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.distributions import log_uniform
from repro.data.feature import FeatureKind, SparseFeatureSpec

# Table 2 of the paper.
PAPER_NUM_FEATURES = 397
PAPER_TOTAL_HASH_SIZE = {
    "RM1": 1_331_656_544,
    "RM2": 2_661_369_917,
    "RM3": 5_320_796_628,
}
PAPER_EMB_DIM = 64
DEFAULT_ROW_SCALE = 1e-3


@dataclass(frozen=True)
class EmbeddingTableSpec:
    """One embedding table: a sparse feature plus its dense geometry."""

    feature: SparseFeatureSpec
    dim: int = PAPER_EMB_DIM
    dtype_bytes: int = 4  # fp32

    def __post_init__(self):
        if self.dim < 1:
            raise ValueError(f"{self.name}: dim must be >= 1")
        if self.dtype_bytes < 1:
            raise ValueError(f"{self.name}: dtype_bytes must be >= 1")

    @property
    def name(self) -> str:
        return self.feature.name

    @property
    def num_rows(self) -> int:
        return self.feature.hash_size

    @property
    def row_bytes(self) -> int:
        return self.dim * self.dtype_bytes

    @property
    def total_bytes(self) -> int:
        return self.num_rows * self.row_bytes

    def scaled_hash_size(self, factor: float) -> "EmbeddingTableSpec":
        return replace(self, feature=self.feature.scaled_hash_size(factor))


@dataclass(frozen=True)
class ModelSpec:
    """A DLRM's embedding side: an ordered collection of tables."""

    name: str
    tables: tuple[EmbeddingTableSpec, ...]

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def total_hash_size(self) -> int:
        return sum(t.num_rows for t in self.tables)

    @property
    def total_bytes(self) -> int:
        return sum(t.total_bytes for t in self.tables)

    @property
    def total_gib(self) -> float:
        return self.total_bytes / 2**30

    def table2_row(self) -> dict:
        """The model's row of the paper's Table 2."""
        return {
            "model": self.name,
            "num_sparse_features": self.num_tables,
            "total_hash_size": self.total_hash_size,
            "emb_dim": self.tables[0].dim if self.tables else 0,
            "size_gib": self.total_gib,
        }

    def scaled_hash_sizes(self, factor: float, name: str) -> "ModelSpec":
        """New spec with every table's hash size scaled by ``factor``."""
        return ModelSpec(
            name=name, tables=tuple(t.scaled_hash_size(factor) for t in self.tables)
        )

    def with_tables(self, tables) -> "ModelSpec":
        return ModelSpec(name=self.name, tables=tuple(tables))


def generate_feature_population(
    num_features: int = PAPER_NUM_FEATURES,
    seed: int = 7,
    cardinality_range: tuple[float, float] = (1e3, 1e4),
    size_coverage_corr: float = 1.6,
    pooling_coverage_corr: float = -1.1,
    size_pooling_corr: float = 0.9,
) -> list[SparseFeatureSpec]:
    """Generate a feature population matching the paper's characterization.

    The marginals are calibrated against the published figures:

    * cardinalities log-uniform over several decades (Figure 4's x-axis);
    * hash sizes scattered around the ``hash == cardinality`` line within
      roughly an order of magnitude (Figure 4);
    * Zipf exponents mostly in [0.5, 1.5] with ~10% near-uniform features
      (the CDF spread of Figure 5);
    * mean pooling factors long-tailed from 1 to ~200 (Figure 6a);
    * coverage from under 1% to 100%, with a mass at exactly 1 (Figure 6b).

    The joint structure is calibrated against the paper's baseline
    behaviour (Tables 3-5): production features correlate — important,
    frequently-present features are given larger hash sizes, and very
    high pooling factors tend to come from sparser engagement features.
    ``size_coverage_corr`` (positive) and ``pooling_coverage_corr``
    (negative) encode this on the coverage logit; with both at 0 all
    statistics are independent.
    """
    rng = np.random.default_rng(seed)
    cardinalities = np.maximum(
        1, log_uniform(*cardinality_range, num_features, rng).astype(np.int64)
    )
    hash_multipliers = rng.lognormal(mean=0.0, sigma=0.6, size=num_features)
    hash_sizes = np.maximum(1, (cardinalities * hash_multipliers).astype(np.int64))

    alphas = rng.uniform(0.7, 1.7, size=num_features)
    near_uniform = rng.random(num_features) < 0.08
    alphas[near_uniform] = rng.uniform(0.0, 0.25, size=int(near_uniform.sum()))

    # Pooling factors: long-tailed, larger for larger feature spaces
    # (multi-hot engagement-history features have both huge cardinalities
    # and long lists; single-valued features like country have neither).
    card_z = _standardize(np.log(hash_sizes.astype(np.float64)))
    poolings = np.clip(
        np.exp(
            np.log(12.0)
            + size_pooling_corr * card_z
            + rng.normal(0.0, 1.0, size=num_features)
        ),
        1,
        200,
    )
    pooling_sigmas = rng.uniform(0.4, 1.0, size=num_features)

    # Coverage on a logit scale: tilted up for large (important) feature
    # spaces and down for features whose pooling is high *for their
    # size* (the residual) — long engagement lists tend to exist only
    # for a sparse slice of users.
    pool_resid = _standardize(np.log(poolings) - size_pooling_corr * card_z)
    logit = (
        -0.2
        + size_coverage_corr * card_z
        + pooling_coverage_corr * pool_resid
        + rng.normal(0.0, 1.1, size=num_features)
    )
    coverages = np.clip(1.0 / (1.0 + np.exp(-logit)), 0.005, 1.0)
    always_present = rng.random(num_features) < 0.10
    coverages[always_present] = 1.0

    kinds = rng.random(num_features) < 0.5
    return [
        SparseFeatureSpec(
            name=f"sparse_{i:03d}",
            cardinality=int(cardinalities[i]),
            hash_size=int(hash_sizes[i]),
            alpha=float(alphas[i]),
            avg_pooling=float(poolings[i]),
            pooling_sigma=float(pooling_sigmas[i]),
            coverage=float(coverages[i]),
            kind=FeatureKind.USER if kinds[i] else FeatureKind.CONTENT,
            hash_seed=seed * 100_003 + i,
        )
        for i in range(num_features)
    ]


def _standardize(values: np.ndarray) -> np.ndarray:
    """Zero-mean unit-variance transform (guarding degenerate spread)."""
    std = values.std()
    if std < 1e-12:
        return np.zeros_like(values)
    return (values - values.mean()) / std


def _normalize_total_hash_size(
    features: list[SparseFeatureSpec], target_total: int
) -> list[SparseFeatureSpec]:
    """Rescale hash sizes so they sum exactly to ``target_total``."""
    if target_total < len(features):
        raise ValueError(
            f"target total {target_total} cannot give {len(features)} tables "
            "at least one row each"
        )
    current_total = sum(f.hash_size for f in features)
    factor = target_total / current_total
    scaled = [f.scaled_hash_size(factor) for f in features]
    # Largest-remainder fixup: absorb rounding residual into the biggest
    # tables, never shrinking any table below one row.
    residual = target_total - sum(f.hash_size for f in scaled)
    order = sorted(range(len(scaled)), key=lambda i: -scaled[i].hash_size)
    for i in order:
        if residual == 0:
            break
        new_size = max(1, scaled[i].hash_size + residual)
        residual -= new_size - scaled[i].hash_size
        scaled[i] = replace(scaled[i], hash_size=new_size)
    return scaled


def _build_rm(
    name: str,
    row_scale: float,
    num_features: int,
    dim: int,
    seed: int,
) -> ModelSpec:
    features = generate_feature_population(num_features=num_features, seed=seed)
    target_total = max(
        num_features, int(round(PAPER_TOTAL_HASH_SIZE[name] * row_scale))
    )
    features = _normalize_total_hash_size(features, target_total)
    tables = tuple(EmbeddingTableSpec(feature=f, dim=dim) for f in features)
    return ModelSpec(name=name, tables=tables)


def rm1(
    row_scale: float = DEFAULT_ROW_SCALE,
    num_features: int = PAPER_NUM_FEATURES,
    dim: int = PAPER_EMB_DIM,
    seed: int = 7,
) -> ModelSpec:
    """RM1 of Table 2 (1.33 G rows at scale 1), scaled by ``row_scale``."""
    return _build_rm("RM1", row_scale, num_features, dim, seed)


def rm2(
    row_scale: float = DEFAULT_ROW_SCALE,
    num_features: int = PAPER_NUM_FEATURES,
    dim: int = PAPER_EMB_DIM,
    seed: int = 7,
) -> ModelSpec:
    """RM2: same features as RM1 with hash sizes ~doubled (Table 2)."""
    base = rm1(row_scale, num_features, dim, seed)
    target_total = max(
        num_features, int(round(PAPER_TOTAL_HASH_SIZE["RM2"] * row_scale))
    )
    features = _normalize_total_hash_size(
        [t.feature for t in base.tables], target_total
    )
    return ModelSpec(
        name="RM2",
        tables=tuple(replace(t, feature=f) for t, f in zip(base.tables, features)),
    )


def rm3(
    row_scale: float = DEFAULT_ROW_SCALE,
    num_features: int = PAPER_NUM_FEATURES,
    dim: int = PAPER_EMB_DIM,
    seed: int = 7,
) -> ModelSpec:
    """RM3: same features as RM1 with hash sizes ~quadrupled (Table 2)."""
    base = rm1(row_scale, num_features, dim, seed)
    target_total = max(
        num_features, int(round(PAPER_TOTAL_HASH_SIZE["RM3"] * row_scale))
    )
    features = _normalize_total_hash_size(
        [t.feature for t in base.tables], target_total
    )
    return ModelSpec(
        name="RM3",
        tables=tuple(replace(t, feature=f) for t, f in zip(base.tables, features)),
    )
