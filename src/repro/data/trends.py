"""Historical growth trends behind Figure 1.

Figure 1 motivates the paper: 2017-2021 DLRM memory capacity demand grew
16x and bandwidth demand ~30x, while GPU HBM capacity grew <6x and
HBM/interconnect bandwidth ~2x.  The GPU hardware specifications are
public datasheet numbers; the model-demand series are reconstructed to
match the figure's annotated endpoints (the paper does not tabulate the
intermediate years), growing geometrically between the 2017 baseline and
the published 2021 multiples.
"""

from __future__ import annotations

from dataclasses import dataclass

YEARS = (2017, 2018, 2019, 2020, 2021)

# Annotated endpoints from Figure 1.
MODEL_CAPACITY_GROWTH_2021 = 16.0  # "grown by 16 times"
MODEL_EMB_ROWS_GROWTH_2021 = 16.0  # EMB rows track total capacity (>99% of it)
MODEL_BANDWIDTH_GROWTH_2021 = 28.35  # annotated in Figure 1b
HBM_BANDWIDTH_GROWTH = 2.26  # V100 -> A100 80GB, annotated
INTERCONNECT_GROWTH = 2.0  # NVLink 2.0 -> 3.0, annotated


@dataclass(frozen=True)
class GpuGeneration:
    """Public datasheet specs for the accelerators in Figure 1."""

    name: str
    year: int
    hbm_gb: int
    hbm_bw_gbs: float


GPU_GENERATIONS = (
    GpuGeneration("P100", 2016, 16, 732.0),
    GpuGeneration("V100", 2017, 16, 900.0),
    GpuGeneration("A100 (40GB)", 2020, 40, 1555.0),
    GpuGeneration("A100 (80GB)", 2021, 80, 2039.0),
)

NVLINK_BW_GBS = {"NVLINK1.0": 160.0, "NVLINK2.0": 300.0, "NVLINK3.0": 600.0}


def _geometric_series(end_multiple: float, num_points: int = len(YEARS)) -> list[float]:
    """Growth normalized to 1.0 at the first year, geometric to the end."""
    ratio = end_multiple ** (1.0 / (num_points - 1))
    return [ratio**i for i in range(num_points)]


def capacity_growth() -> dict:
    """Figure 1a series: model capacity, EMB rows, and GPU HBM (normalized)."""
    hbm_by_year = []
    baseline = None
    for year in YEARS:
        best = max(
            (g.hbm_gb for g in GPU_GENERATIONS if g.year <= year), default=0
        )
        if baseline is None:
            baseline = best
        hbm_by_year.append(best / baseline)
    return {
        "years": list(YEARS),
        "model_capacity": _geometric_series(MODEL_CAPACITY_GROWTH_2021),
        "emb_rows": _geometric_series(MODEL_EMB_ROWS_GROWTH_2021),
        "gpu_hbm_capacity": hbm_by_year,
    }


def bandwidth_growth() -> dict:
    """Figure 1b series: model bandwidth demand vs hardware bandwidth."""
    return {
        "years": list(YEARS),
        "model_bandwidth": _geometric_series(MODEL_BANDWIDTH_GROWTH_2021),
        "hbm_bw_gbs": [g.hbm_bw_gbs for g in GPU_GENERATIONS],
        "hbm_generations": [g.name for g in GPU_GENERATIONS],
        "interconnect_bw_gbs": dict(NVLINK_BW_GBS),
    }


def summary() -> dict:
    """The headline multiples the paper quotes from Figure 1."""
    capacity = capacity_growth()
    return {
        "model_capacity_growth": MODEL_CAPACITY_GROWTH_2021,
        "gpu_hbm_capacity_growth": capacity["gpu_hbm_capacity"][-1],
        "model_bandwidth_growth": MODEL_BANDWIDTH_GROWTH_2021,
        "hbm_bandwidth_growth": HBM_BANDWIDTH_GROWTH,
        "interconnect_bandwidth_growth": INTERCONNECT_GROWTH,
    }
