"""Temporal drift of sparse feature statistics (Section 3.5, Figure 9).

Production features drift: the paper tracks the percent change in average
pooling factor over a 20-month window, with user features climbing toward
~+10% and content features dipping slightly negative before recovering to
~+5%.  The parametric curves here reconstruct those published shapes; the
exact month-by-month values are not tabulated in the paper, so the curves
are calibrated to the figure's visible endpoints and turning points.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.data.feature import FeatureKind, SparseFeatureSpec
from repro.data.model import ModelSpec


@dataclass(frozen=True)
class DriftModel:
    """Percent change in average pooling factor as a function of month.

    Figure 9 plots *averages* over all user/content features; individual
    features drift idiosyncratically around those averages, which is
    what makes periodic re-sharding worthwhile.  ``feature_noise``
    controls the per-feature deviation (std-dev in percent, deterministic
    per (feature, month)); at the default 0 the model reproduces the
    figure's kind-level averages exactly.

    Attributes:
        user_plateau: asymptotic percent change for user features (~+10%).
        content_plateau: late-month percent change for content (~+5%).
        content_dip: early-month dip depth for content features (~-2%).
        wobble: amplitude of month-to-month oscillation seen in Figure 9.
        feature_noise: per-feature idiosyncratic drift (std-dev, percent).
    """

    user_plateau: float = 10.0
    content_plateau: float = 6.0
    content_dip: float = -2.5
    wobble: float = 0.8
    feature_noise: float = 0.0
    # Per-feature drift of the value-distribution skew (std-dev of the
    # percent change of the Zipf exponent at month 20).  Distribution
    # tails growing or shrinking is what re-shuffles each table's hot
    # working set over time; 0 keeps distributions frozen.
    alpha_noise: float = 0.0

    def percent_change(self, kind: FeatureKind, month: float) -> float:
        """Percent change of mean pooling factor at ``month`` (0 = baseline)."""
        month = float(month)
        if month < 0:
            raise ValueError(f"month must be >= 0, got {month}")
        oscillation = self.wobble * np.sin(month * 1.3)
        if kind is FeatureKind.USER:
            trend = self.user_plateau * (1.0 - np.exp(-month / 7.0))
        else:
            dip = self.content_dip * np.exp(-(((month - 3.0) / 3.0) ** 2))
            trend = dip + self.content_plateau * (1.0 - np.exp(-month / 11.0))
        return float(trend + oscillation)

    def series(self, kind: FeatureKind, months: int = 20) -> list[float]:
        """Figure 9 series: percent change at months ``1..months``."""
        return [self.percent_change(kind, m) for m in range(1, months + 1)]

    def drift_feature(
        self, feature: SparseFeatureSpec, month: float
    ) -> SparseFeatureSpec:
        """Feature spec with its statistics drifted to ``month``."""
        from dataclasses import replace

        pct = self.percent_change(feature.kind, month)
        alpha = feature.alpha
        if month > 0 and (self.feature_noise > 0 or self.alpha_noise > 0):
            # Deterministic per (feature, month): drift replays identically.
            seed = zlib.crc32(f"{feature.name}@{month:.3f}".encode())
            rng = np.random.default_rng(seed)
            pct += float(rng.normal(0.0, self.feature_noise))
            alpha_pct = float(rng.normal(0.0, self.alpha_noise)) * (month / 20.0)
            alpha = max(0.0, alpha * (1.0 + alpha_pct / 100.0))
        drifted_pooling = max(1.0, feature.avg_pooling * (1.0 + pct / 100.0))
        return replace(feature, avg_pooling=drifted_pooling, alpha=alpha)

    def drift_model(
        self, model: ModelSpec, month: float, name: str | None = None
    ) -> ModelSpec:
        """Model spec with every feature drifted to ``month``."""
        from dataclasses import replace

        tables = tuple(
            replace(t, feature=self.drift_feature(t.feature, month))
            for t in model.tables
        )
        return ModelSpec(name=name or f"{model.name}@month{month:g}", tables=tables)
