"""Jagged batch structure for multi-hot sparse features.

A training batch holds, per feature, a variable number of (hashed)
embedding indices per sample.  We store each feature as a flat ``values``
array plus an ``offsets`` array of length ``batch_size + 1`` — the same
representation as TorchRec's KeyedJaggedTensor and FBGEMM's table-batched
embedding input.  A NULL feature sample (Figure 3's sparse feature B) is
a zero-length segment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class JaggedFeature:
    """One feature's slice of a batch: flat values plus segment offsets."""

    values: np.ndarray  # int64 indices, shape (total_lookups,)
    offsets: np.ndarray  # int64, shape (batch_size + 1,), non-decreasing

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=np.int64)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise ValueError("offsets must be a 1-D array of length batch_size + 1")
        if self.offsets[0] != 0 or self.offsets[-1] != self.values.size:
            raise ValueError(
                "offsets must start at 0 and end at len(values); got "
                f"[{self.offsets[0]}, {self.offsets[-1]}] for {self.values.size} values"
            )
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    @property
    def batch_size(self) -> int:
        return self.offsets.size - 1

    @property
    def lengths(self) -> np.ndarray:
        """Per-sample pooling factors (0 marks a NULL sample)."""
        return np.diff(self.offsets)

    @property
    def total_lookups(self) -> int:
        return int(self.values.size)

    def sample(self, index: int) -> np.ndarray:
        """The indices of one sample (possibly empty)."""
        return self.values[self.offsets[index] : self.offsets[index + 1]]

    def take(self, sample_indices: np.ndarray) -> "JaggedFeature":
        """Sub-batch restricted to ``sample_indices`` (used by 1% sampling)."""
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        lengths = self.lengths[sample_indices]
        new_offsets = np.zeros(sample_indices.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_offsets[1:])
        if self.values.size:
            starts = self.offsets[sample_indices]
            gather = _ranges(starts, lengths)
            new_values = self.values[gather]
        else:
            new_values = np.empty(0, dtype=np.int64)
        return JaggedFeature(new_values, new_offsets)

    @classmethod
    def from_validated(cls, values: np.ndarray, offsets: np.ndarray) -> "JaggedFeature":
        """Construct without re-running the offset invariant checks.

        For hot-path producers whose arrays are slices of storage that
        already passed validation (e.g. arena microbatch views), where
        re-checking per batch would dominate the coalescing cost.  The
        caller is responsible for the invariants ``__post_init__``
        enforces.
        """
        feature = cls.__new__(cls)
        feature.values = values
        feature.offsets = offsets
        return feature

    @classmethod
    def from_lists(cls, per_sample: list[list[int]]) -> "JaggedFeature":
        """Build from a list of per-sample index lists (tests, examples)."""
        lengths = np.array([len(s) for s in per_sample], dtype=np.int64)
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = np.fromiter(
            (v for sample in per_sample for v in sample),
            dtype=np.int64,
            count=int(lengths.sum()),
        )
        return cls(values, offsets)


def _ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(start, start+length)`` runs without Python loops."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Standard trick: cumulative index minus per-run base correction.
    ends = np.cumsum(lengths)
    index = np.arange(total, dtype=np.int64)
    run_id = np.searchsorted(ends, index, side="right")
    run_start_pos = np.concatenate(([0], ends[:-1]))
    return starts[run_id] + (index - run_start_pos[run_id])


@dataclass
class JaggedBatch:
    """A full training batch: one :class:`JaggedFeature` per sparse feature."""

    features: list[JaggedFeature]

    def __post_init__(self):
        if self.features:
            sizes = {f.batch_size for f in self.features}
            if len(sizes) != 1:
                raise ValueError(f"features disagree on batch size: {sorted(sizes)}")

    @property
    def batch_size(self) -> int:
        return self.features[0].batch_size if self.features else 0

    @property
    def num_features(self) -> int:
        return len(self.features)

    @property
    def total_lookups(self) -> int:
        return sum(f.total_lookups for f in self.features)

    def take(self, sample_indices: np.ndarray) -> "JaggedBatch":
        """Sub-batch over the given sample indices, across all features."""
        return JaggedBatch([f.take(sample_indices) for f in self.features])

    def __iter__(self):
        return iter(self.features)

    def __getitem__(self, feature_index: int) -> JaggedFeature:
        return self.features[feature_index]
