"""Synthetic trace generation.

Produces an endless stream of :class:`~repro.data.batch.JaggedBatch`
training batches whose per-feature statistics follow the model spec: each
feature appears with its coverage probability, draws a pooling factor
from its pooling distribution, and draws that many (hashed) embedding
indices from its post-hash access distribution.

Indices are sampled directly from the post-hash distribution (the raw
Zipf pmf pushed through the feature's hash function, cached per feature)
— statistically identical to sampling raw values and hashing each one,
but without holding multi-million-entry raw CDFs resident.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.batch import JaggedBatch, JaggedFeature
from repro.data.model import ModelSpec


class _FeatureSampler:
    """Cached per-feature sampling state.

    The expensive pieces — hashing the raw value space and cumulating
    the post-hash pmf — are cached behind keys of the spec fields they
    depend on, so :meth:`update` can follow a drifting feature spec
    (whose pooling mean changes every chunk) without rebuilding the
    multi-million-entry CDF unless the value distribution or hashing
    actually changed.  Retaining the hashed value space costs
    ``8 * cardinality`` resident bytes per feature, so it is opt-in
    (``cache_hashed``): :class:`SamplerBank` holders that refresh
    across drifted models want it; a one-shot :class:`TraceGenerator`
    does not.
    """

    __slots__ = (
        "coverage", "pooling", "post_hash_cdf",
        "_pooling_key", "_cdf_key", "_hash_key", "_hashed", "_cache_hashed",
    )

    def __init__(self, feature, cache_hashed: bool = False):
        self._pooling_key = None
        self._cdf_key = None
        self._hash_key = None
        self._hashed = None
        self._cache_hashed = cache_hashed
        self.update(feature)

    def update(self, feature) -> None:
        """Re-target this sampler at ``feature``, reusing unchanged state."""
        self.coverage = feature.coverage
        pooling_key = (feature.avg_pooling, feature.pooling_sigma)
        if pooling_key != self._pooling_key:
            self._pooling_key = pooling_key
            self.pooling = feature.pooling_distribution()
        cdf_key = (
            feature.cardinality, feature.hash_size,
            feature.hash_seed, feature.alpha,
        )
        if cdf_key != self._cdf_key:
            self._cdf_key = cdf_key
            if self._cache_hashed:
                # The hashed image of the raw value space depends only
                # on the hash configuration, not the Zipf exponent, so
                # alpha-only drift reuses it across rebuilds.
                hash_key = (feature.cardinality, feature.hash_size, feature.hash_seed)
                if hash_key != self._hash_key:
                    self._hash_key = hash_key
                    self._hashed = feature.hash_values(
                        np.arange(feature.cardinality, dtype=np.int64)
                    )
                pmf = feature.post_hash_pmf(hashed=self._hashed)
            else:
                pmf = feature.post_hash_pmf()
            cdf = np.cumsum(pmf)
            cdf[-1] = 1.0
            self.post_hash_cdf = cdf

    def sample_feature(
        self, batch_size: int, rng: np.random.Generator
    ) -> JaggedFeature:
        present = rng.random(batch_size) < self.coverage
        lengths = np.zeros(batch_size, dtype=np.int64)
        num_present = int(present.sum())
        if num_present:
            lengths[present] = self.pooling.sample(num_present, rng)
        offsets = np.zeros(batch_size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        if total:
            uniforms = rng.random(total)
            values = np.searchsorted(self.post_hash_cdf, uniforms, side="right")
            values = values.astype(np.int64)
        else:
            values = np.empty(0, dtype=np.int64)
        return JaggedFeature(values, offsets)


class SamplerBank:
    """Reusable per-feature sampler state shared across model revisions.

    Drifting request streams re-derive the model spec chunk after chunk
    (:func:`repro.serving.server.synthetic_request_arenas`); rebuilding
    every feature's post-hash CDF per chunk dominated generation cost.
    A bank keeps one :class:`_FeatureSampler` per table and
    :meth:`refresh` updates each in place, rebuilding only the state
    whose underlying spec fields actually changed.
    """

    def __init__(self, model: ModelSpec | None = None):
        self._samplers: list[_FeatureSampler] = []
        self._features: list = []
        if model is not None:
            self.refresh(model)

    @property
    def samplers(self) -> list[_FeatureSampler]:
        return self._samplers

    def refresh(self, model: ModelSpec) -> list[_FeatureSampler]:
        """Align the bank with ``model``, reusing samplers where possible."""
        features = [t.feature for t in model.tables]
        if len(features) != len(self._samplers):
            del self._samplers[len(features):]
            del self._features[len(features):]
        for j, feature in enumerate(features):
            if j < len(self._samplers):
                if feature != self._features[j]:
                    self._samplers[j].update(feature)
                    self._features[j] = feature
            else:
                self._samplers.append(_FeatureSampler(feature, cache_hashed=True))
                self._features.append(feature)
        return self._samplers

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> JaggedBatch:
        """Draw one jagged batch from the bank's current statistics."""
        return JaggedBatch(
            [s.sample_feature(batch_size, rng) for s in self._samplers]
        )


class TraceGenerator:
    """Generates synthetic training batches for a :class:`ModelSpec`.

    Args:
        model: the model spec whose features drive generation.
        batch_size: samples per batch.
        seed: RNG seed; a given (model, seed) pair replays identically.
    """

    def __init__(self, model: ModelSpec, batch_size: int, seed: int = 0):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        # No bank: a generator's model never drifts, so the hashed
        # value space is not worth keeping resident per feature.
        self._samplers = [_FeatureSampler(t.feature) for t in model.tables]
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the stream to its first batch."""
        self._rng = np.random.default_rng(self.seed)

    def next_batch(self) -> JaggedBatch:
        return JaggedBatch(
            [s.sample_feature(self.batch_size, self._rng) for s in self._samplers]
        )

    def batches(self, count: int) -> Iterator[JaggedBatch]:
        """Yield ``count`` consecutive batches."""
        for _ in range(count):
            yield self.next_batch()

    def expected_lookups_per_batch(self) -> float:
        """Expected total embedding rows touched per batch (all features)."""
        return self.batch_size * sum(
            t.feature.expected_lookups_per_sample() for t in self.model.tables
        )
