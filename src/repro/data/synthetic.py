"""Synthetic trace generation.

Produces an endless stream of :class:`~repro.data.batch.JaggedBatch`
training batches whose per-feature statistics follow the model spec: each
feature appears with its coverage probability, draws a pooling factor
from its pooling distribution, and draws that many (hashed) embedding
indices from its post-hash access distribution.

Indices are sampled directly from the post-hash distribution (the raw
Zipf pmf pushed through the feature's hash function, cached per feature)
— statistically identical to sampling raw values and hashing each one,
but without holding multi-million-entry raw CDFs resident.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.batch import JaggedBatch, JaggedFeature
from repro.data.model import ModelSpec


class _FeatureSampler:
    """Cached per-feature sampling state."""

    __slots__ = ("coverage", "pooling", "post_hash_cdf")

    def __init__(self, feature):
        self.coverage = feature.coverage
        self.pooling = feature.pooling_distribution()
        cdf = np.cumsum(feature.post_hash_pmf())
        cdf[-1] = 1.0
        self.post_hash_cdf = cdf

    def sample_feature(self, batch_size: int, rng: np.random.Generator) -> JaggedFeature:
        present = rng.random(batch_size) < self.coverage
        lengths = np.zeros(batch_size, dtype=np.int64)
        num_present = int(present.sum())
        if num_present:
            lengths[present] = self.pooling.sample(num_present, rng)
        offsets = np.zeros(batch_size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        if total:
            uniforms = rng.random(total)
            values = np.searchsorted(self.post_hash_cdf, uniforms, side="right")
            values = values.astype(np.int64)
        else:
            values = np.empty(0, dtype=np.int64)
        return JaggedFeature(values, offsets)


class TraceGenerator:
    """Generates synthetic training batches for a :class:`ModelSpec`.

    Args:
        model: the model spec whose features drive generation.
        batch_size: samples per batch.
        seed: RNG seed; a given (model, seed) pair replays identically.
    """

    def __init__(self, model: ModelSpec, batch_size: int, seed: int = 0):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self._samplers = [_FeatureSampler(t.feature) for t in model.tables]
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the stream to its first batch."""
        self._rng = np.random.default_rng(self.seed)

    def next_batch(self) -> JaggedBatch:
        return JaggedBatch(
            [s.sample_feature(self.batch_size, self._rng) for s in self._samplers]
        )

    def batches(self, count: int) -> Iterator[JaggedBatch]:
        """Yield ``count`` consecutive batches."""
        for _ in range(count):
            yield self.next_batch()

    def expected_lookups_per_batch(self) -> float:
        """Expected total embedding rows touched per batch (all features)."""
        return self.batch_size * sum(
            t.feature.expected_lookups_per_sample() for t in self.model.tables
        )
