"""Per-table sharding-strategy enumeration (TorchRec's strategy menu).

RecShard's placement so far is a single shape — rank-prefix row ranges
per tier, whole table homed on one device ("row-wise" here).  The cost
model is strategy-agnostic, though, and TorchRec's planner auto-picks
among table-wise, row-wise, column-wise, and table-wise-row-wise
sharding per table.  This module adds that menu on top of the existing
planner:

* **row** — today's shape: the ICDF waterfill's per-tier row split,
  whole table on one device.
* **table** — the whole table unsplit (every row in one tier) on one
  device; useful when a busy device's table spills to a cold tier but
  another device has fast-tier headroom.
* **column** — the embedding dim split into contiguous column shards on
  distinct devices.  Every lookup touches every shard, so each shard
  carries the table's full per-tier *row* split but only its dim share
  of the bytes; the bottleneck device's traffic divides by the shard
  count while total bytes are conserved.
* **twrw** (table-wise-row-wise) — contiguous frequency-rank ranges on
  distinct devices (full dim each).  Cut points are chosen on the
  profiled coverage grid so each shard serves an equal share of the
  table's expected accesses.

A :class:`StrategyPlan` wraps a base :class:`ShardingPlan` with one
:class:`TableStrategy` per table (mirroring
:class:`~repro.core.replicate.ReplicatedPlan`'s delegation idiom) and
validates capacity over the *physical* shards.  The planner entry point
:func:`plan_with_strategies` starts from the fast sharder's row-wise
plan and greedily refines the makespan: each round it takes the busiest
device's costliest tables, enumerates candidate strategies for them,
scores every candidate with
:func:`~repro.core.evaluate.expected_device_costs_ms_many` under the
one shared cost model, and keeps the best improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import PlanError, ShardingPlan, TablePlacement
from repro.core.workspace import PlannerWorkspace
from repro.memory.topology import SystemTopology

STRATEGY_KINDS = ("row", "table", "column", "twrw")


def resolve_strategy_kinds(tokens) -> tuple[str, ...]:
    """Expand/validate a strategy token list (``auto`` = all kinds)."""
    if isinstance(tokens, str):
        tokens = [tokens]
    kinds: list[str] = []
    for token in tokens:
        token = token.strip()
        if token == "auto":
            for kind in STRATEGY_KINDS:
                if kind not in kinds:
                    kinds.append(kind)
        elif token in STRATEGY_KINDS:
            if token not in kinds:
                kinds.append(token)
        else:
            raise ValueError(
                f"unknown sharding strategy {token!r}; expected one of "
                f"{', '.join(STRATEGY_KINDS)} or auto"
            )
    if not kinds:
        raise ValueError("empty strategy list")
    if "row" not in kinds:
        # Row-wise is the universal fallback — every table must have a
        # feasible strategy, and row is the only kind that always is.
        kinds.append("row")
    return tuple(kinds)


@dataclass(frozen=True)
class TableStrategy:
    """One table's sharding strategy.

    ``devices`` lists the physical shard homes: empty for ``row`` /
    ``table`` (the base placement's device owns the whole table), one
    device per column shard (paired with ``dims``), one per twrw rank
    range (``row_cuts`` lists the interior cumulative rank cut points).
    """

    kind: str = "row"
    devices: tuple[int, ...] = ()
    dims: tuple[int, ...] = ()
    row_cuts: tuple[int, ...] = ()

    def __post_init__(self):
        if self.kind not in STRATEGY_KINDS:
            raise PlanError(f"unknown strategy kind {self.kind!r}")
        if self.kind in ("row", "table"):
            if self.devices or self.dims or self.row_cuts:
                raise PlanError(
                    f"{self.kind}-wise strategy takes no shard spec"
                )
            return
        if len(self.devices) < 2:
            raise PlanError(f"{self.kind} strategy needs >= 2 shard devices")
        if len(set(self.devices)) != len(self.devices):
            raise PlanError(f"{self.kind} shard devices must be distinct")
        if self.kind == "column":
            if len(self.dims) != len(self.devices):
                raise PlanError("column strategy needs one dim per device")
            if self.row_cuts:
                raise PlanError("column strategy takes no row cuts")
            if any(d < 1 for d in self.dims):
                raise PlanError("column shard dims must be >= 1")
        else:  # twrw
            if self.dims:
                raise PlanError("twrw strategy takes no dims")
            if len(self.row_cuts) != len(self.devices) - 1:
                raise PlanError(
                    "twrw strategy needs len(devices) - 1 row cuts"
                )
            if any(c <= 0 for c in self.row_cuts) or any(
                b <= a for a, b in zip(self.row_cuts, self.row_cuts[1:])
            ):
                raise PlanError(
                    "twrw row cuts must be positive and strictly increasing"
                )

    @property
    def num_shards(self) -> int:
        return max(1, len(self.devices))


def proportional_split(counts: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Largest-remainder integer split of counts proportional to weights.

    ``counts`` is ``(rows,)`` and ``weights`` ``(shards,)``; the result
    is ``(rows, shards)`` with each row summing exactly to its count,
    shares proportional to the weights, remainders resolved largest
    fractional part first (ties to the lowest shard index).  This is how
    a column-sharded table's *access counts* are attributed to its shard
    devices: byte traffic is exact per shard (each shard moves its dim
    share), while lookup counts stay conserved per table — the invariant
    the property tests pin.
    """
    counts = np.asarray(counts, dtype=np.int64).reshape(-1)
    weights = np.asarray(weights, dtype=np.int64).reshape(-1)
    total = int(weights.sum())
    if total <= 0:
        raise ValueError("weights must sum to a positive total")
    prod = counts[:, None] * weights[None, :]
    base = prod // total
    remainder = prod % total
    missing = counts - base.sum(axis=1)
    order = np.argsort(-remainder, axis=1, kind="stable")
    bump = np.arange(weights.size)[None, :] < missing[:, None]
    np.add.at(
        base,
        (np.repeat(np.arange(counts.size), weights.size), order.ravel()),
        bump.ravel().astype(np.int64),
    )
    return base


def twrw_cell_rows(
    tier_bounds, row_cuts, total_rows: int
) -> np.ndarray:
    """Rows in each (tier, shard) cell of a twrw split.

    ``tier_bounds`` are the table's cumulative tier boundaries (rank
    space), ``row_cuts`` the strategy's interior cut points.  Because
    both partitions are prefixes of the same rank order, the cell
    ``(t, s)`` holds the ranks between ``max(bound[t-1], cut[s-1])`` and
    ``min(bound[t], cut[s])``.  The same min/max identity applied to
    *prefix counts* distributes classified lookups at reduce time.
    """
    bounds = np.concatenate(([0], np.asarray(tier_bounds, dtype=np.int64)))
    cuts = np.concatenate(
        ([0], np.asarray(row_cuts, dtype=np.int64), [total_rows])
    )
    upper = np.minimum(bounds[1:, None], cuts[None, 1:])
    lower = np.maximum(bounds[:-1, None], cuts[None, :-1])
    return np.maximum(0, upper - lower)


class StrategyPlan:
    """A base plan plus one :class:`TableStrategy` per table.

    Delegates the read-only plan interface to the wrapped
    :class:`ShardingPlan` (whose per-tier row splits stay the source of
    truth for tier membership) and owns the strategy-aware capacity
    validation: bytes are accounted per *physical shard*, so a column
    shard charges its dim share and a twrw shard its rank range.
    """

    def __init__(self, plan: ShardingPlan, strategies):
        strategies = tuple(strategies)
        if len(strategies) != len(plan):
            raise PlanError(
                f"{len(strategies)} strategies for {len(plan)} tables"
            )
        for j, strat in enumerate(strategies):
            if not isinstance(strat, TableStrategy):
                raise PlanError(f"table {j}: not a TableStrategy")
        self.plan = plan
        self.strategies = strategies

    # -- delegation ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.plan)

    def __iter__(self):
        return iter(self.plan)

    def __getitem__(self, table_index: int):
        return self.plan[table_index]

    @property
    def strategy(self) -> str:
        return self.plan.strategy

    @property
    def metadata(self) -> dict:
        return self.plan.metadata

    def tier_rows_total(self, tier_index: int) -> int:
        return self.plan.tier_rows_total(tier_index)

    # -- strategy views ------------------------------------------------
    @property
    def num_cut_lanes(self) -> int:
        """Interior twrw cut points of the widest split — one
        classification lane each."""
        return max(
            (len(s.row_cuts) for s in self.strategies if s.kind == "twrw"),
            default=0,
        )

    def strategy_counts(self) -> dict[str, int]:
        counts = {kind: 0 for kind in STRATEGY_KINDS}
        for strat in self.strategies:
            counts[strat.kind] += 1
        return counts

    def shard_bytes(self, model) -> np.ndarray:
        """Per-(device, tier) bytes over the physical shards."""
        devices = 1 + max(
            max((p.device for p in self.plan), default=0),
            max(
                (d for s in self.strategies for d in s.devices), default=0
            ),
        )
        num_tiers = len(self.plan[0].rows_per_tier)
        usage = np.zeros((devices, num_tiers), dtype=np.int64)
        for placement, strat in zip(self.plan, self.strategies):
            table = model.tables[placement.table_index]
            rows = np.asarray(placement.rows_per_tier, dtype=np.int64)
            if strat.kind in ("row", "table"):
                usage[placement.device] += rows * table.row_bytes
            elif strat.kind == "column":
                for device, dim in zip(strat.devices, strat.dims):
                    usage[device] += rows * (dim * table.dtype_bytes)
            else:  # twrw
                cells = twrw_cell_rows(
                    np.cumsum(rows), strat.row_cuts, table.num_rows
                )
                for s, device in enumerate(strat.devices):
                    usage[device] += cells[:, s] * table.row_bytes
        return usage

    # -- validation ----------------------------------------------------
    def validate(self, model, topology: SystemTopology) -> None:
        """Structural + per-shard capacity validation."""
        if len(self.plan) != model.num_tables:
            raise PlanError(
                f"plan has {len(self.plan)} placements for "
                f"{model.num_tables} tables"
            )
        for placement, strat in zip(self.plan, self.strategies):
            j = placement.table_index
            table = model.tables[j]
            if len(placement.rows_per_tier) != topology.num_tiers:
                raise PlanError(
                    f"table {j}: {len(placement.rows_per_tier)} tiers vs "
                    f"topology {topology.num_tiers}"
                )
            if placement.total_rows != table.num_rows:
                raise PlanError(
                    f"table {j}: rows_per_tier sums to "
                    f"{placement.total_rows}, table has {table.num_rows}"
                )
            shard_devices = strat.devices or (placement.device,)
            for device in shard_devices:
                if device >= topology.num_devices:
                    raise PlanError(
                        f"table {j}: device {device} out of range"
                    )
            if strat.kind == "column" and sum(strat.dims) != table.dim:
                raise PlanError(
                    f"table {j}: column shard dims sum to "
                    f"{sum(strat.dims)}, table dim is {table.dim}"
                )
            if strat.kind == "twrw" and any(
                c >= table.num_rows for c in strat.row_cuts
            ):
                raise PlanError(
                    f"table {j}: twrw row cut beyond {table.num_rows} rows"
                )
        usage = self.shard_bytes(model)
        if usage.shape[0] > topology.num_devices:
            raise PlanError("shard device out of range")
        for device in range(usage.shape[0]):
            for tier_index, tier in enumerate(topology.tiers):
                used = int(usage[device, tier_index])
                if used > tier.capacity_bytes:
                    raise PlanError(
                        f"device {device} tier {tier.name}: {used} bytes "
                        f"exceeds capacity {tier.capacity_bytes}"
                    )

    def summary(self, model, topology: SystemTopology) -> dict:
        base = self.plan.summary(model, topology)
        base["strategy_counts"] = self.strategy_counts()
        base["split_tables"] = sum(
            1 for s in self.strategies if s.kind in ("column", "twrw")
        )
        return base


# ----------------------------------------------------------------------
# Scoring (the StrategyPlan arm of expected_device_costs_ms_many)
# ----------------------------------------------------------------------
def strategy_device_costs_ms(
    plan: StrategyPlan,
    model,
    profile,
    topology: SystemTopology,
    batch_size: int,
    use_coverage: bool = True,
    use_pooling: bool = True,
    workspace: PlannerWorkspace | None = None,
) -> np.ndarray:
    """Expected per-device cost of one strategy plan.

    Same cost model as :func:`~repro.core.evaluate.expected_device_costs_ms`
    with strategy-aware device attribution: column shards carry their
    dim fraction of the table's per-tier traffic, twrw shards the
    coverage mass of their rank range (the prefix min/max identity the
    executor's reduce uses, applied to coverage fractions).
    """
    base = plan.plan
    num_tiers = len(base[0].rows_per_tier)
    num_tables = model.num_tables
    cum_rows = np.cumsum(
        np.array([p.rows_per_tier for p in base], dtype=np.int64), axis=1
    )
    if workspace is not None:
        cov = workspace.coverage_of_rows_grid(cum_rows.T)  # (tiers, tables)
        total_accesses = workspace.total_accesses
        stat_coverage = workspace.coverage
        stat_pooling = workspace.avg_pooling
        row_bytes = workspace.row_bytes
    else:
        cov = np.empty((num_tiers, num_tables))
        for j, stats in enumerate(profile):
            cov[:, j] = stats.cdf.coverage_of_rows_many(cum_rows[j])
        total_accesses = np.array([s.total_accesses for s in profile])
        stat_coverage = np.array([s.coverage for s in profile])
        stat_pooling = np.array([s.avg_pooling for s in profile])
        row_bytes = np.array([t.row_bytes for t in model.tables])
    frac = np.diff(cov, axis=0, prepend=0.0)  # (tiers, tables)
    inv_bw = np.array([1.0 / tier.bandwidth for tier in topology.tiers])
    coverage = stat_coverage if use_coverage else 1.0
    pooling = stat_pooling if use_pooling else 1.0
    table_weight = np.where(
        total_accesses > 0,
        coverage * pooling * batch_size * row_bytes,
        0.0,
    )
    costs = np.zeros(topology.num_devices)
    for j, (placement, strat) in enumerate(zip(base, plan.strategies)):
        tier_cost = float(frac[:, j] @ inv_bw[:num_tiers])
        if strat.kind in ("row", "table"):
            costs[placement.device] += table_weight[j] * tier_cost
        elif strat.kind == "column":
            dim = model.tables[j].dim
            for device, shard_dim in zip(strat.devices, strat.dims):
                costs[device] += (
                    table_weight[j] * tier_cost * (shard_dim / dim)
                )
        else:  # twrw: coverage prefixes at tier bounds and cut points
            cuts = np.asarray(strat.row_cuts, dtype=np.int64)
            if workspace is not None:
                cov_cuts = workspace.coverage_of_rows_at(
                    np.full(cuts.size, j, dtype=np.int64), cuts
                )
            else:
                cov_cuts = profile[j].cdf.coverage_of_rows_many(cuts)
            covb = np.concatenate(([0.0], cov[:, j]))
            covc = np.concatenate(([0.0], cov_cuts, [cov[-1, j]]))
            cells = np.maximum(
                0.0,
                np.minimum(covb[1:, None], covc[None, 1:])
                - np.maximum(covb[:-1, None], covc[None, :-1]),
            )  # (tiers, shards)
            for s, device in enumerate(strat.devices):
                costs[device] += table_weight[j] * float(
                    cells[:, s] @ inv_bw[:num_tiers]
                )
    return costs * 1e3


# ----------------------------------------------------------------------
# Candidate enumeration + greedy refinement
# ----------------------------------------------------------------------
def _split_dims(dim: int, shards: int) -> tuple[int, ...]:
    """Near-equal contiguous column shard dims (all >= 1)."""
    q, r = divmod(dim, shards)
    return tuple(q + 1 if i < r else q for i in range(shards))


def _equal_access_cuts(
    workspace: PlannerWorkspace, table_index: int, shards: int
) -> tuple[int, ...] | None:
    """Interior rank cuts putting ~1/shards of expected accesses per
    shard, read off the workspace's integer ICDF grid."""
    grid = workspace.grid_rows[table_index]
    steps = workspace.steps
    num_rows = int(workspace.hash_sizes[table_index])
    cuts = []
    for i in range(1, shards):
        cut = int(grid[round(steps * i / shards)])
        cut = min(max(cut, 1), num_rows - 1)
        cuts.append(cut)
    if any(b <= a for a, b in zip(cuts, cuts[1:])):
        return None
    return tuple(cuts)


def _candidates_for_table(
    current: StrategyPlan,
    table_index: int,
    kinds,
    costs: np.ndarray,
    model,
    topology: SystemTopology,
    workspace: PlannerWorkspace,
    max_shards: int,
) -> list[StrategyPlan]:
    """Feasible alternative strategy plans differing only at one table."""
    base = current.plan
    placement = base[table_index]
    table = model.tables[table_index]
    order = np.argsort(costs, kind="stable")
    candidates: list[StrategyPlan] = []

    def with_table(new_placement, new_strategy):
        placements = list(base.placements)
        placements[table_index] = new_placement
        new_base = ShardingPlan(
            strategy=base.strategy,
            placements=placements,
            metadata=base.metadata,
        )
        strategies = list(current.strategies)
        strategies[table_index] = new_strategy
        candidate = StrategyPlan(new_base, strategies)
        try:
            candidate.validate(model, topology)
        except PlanError:
            return
        candidates.append(candidate)

    shard_counts = sorted(
        {
            s
            for s in (2, min(max_shards, topology.num_devices))
            if 2 <= s <= topology.num_devices
        }
    )
    if "table" in kinds:
        # Whole table unsplit in the fastest tier, on each of the two
        # least-loaded devices (validation filters infeasible homes).
        whole = (table.num_rows,) + (0,) * (topology.num_tiers - 1)
        for device in order[:2]:
            with_table(
                TablePlacement(table_index, int(device), whole),
                TableStrategy("table"),
            )
    if "column" in kinds:
        for shards in shard_counts:
            if table.dim < shards:
                continue
            devices = tuple(int(d) for d in order[:shards])
            with_table(
                placement,
                TableStrategy(
                    "column", devices=devices, dims=_split_dims(table.dim, shards)
                ),
            )
    if "twrw" in kinds:
        for shards in shard_counts:
            if table.num_rows < shards:
                continue
            cuts = _equal_access_cuts(workspace, table_index, shards)
            if cuts is None:
                continue
            devices = tuple(int(d) for d in order[:shards])
            with_table(
                placement,
                TableStrategy("twrw", devices=devices, row_cuts=cuts),
            )
    return candidates


def plan_with_strategies(
    sharder,
    model,
    profile,
    topology: SystemTopology,
    strategies=("auto",),
    batch_size: int | None = None,
    workspace: PlannerWorkspace | None = None,
    warm_start=None,
    max_shards: int = 4,
    rounds: int = 16,
    tables_per_round: int = 3,
) -> StrategyPlan:
    """Shard with per-table strategy enumeration.

    Starts from ``sharder``'s row-wise plan, then greedily refines the
    expected makespan: each round enumerates candidate strategies
    (``table`` moves, ``column`` dim splits, ``twrw`` rank splits) for
    the busiest device's costliest tables, scores every candidate with
    the batched evaluator, and applies the best strict improvement.

    Args:
        sharder: a sharder exposing ``shard_from_workspace`` (the fast
            path); its ``batch_size`` is the default scoring batch.
        strategies: strategy tokens (``auto`` expands to all kinds);
            ``row`` is always available as the per-table fallback.
        max_shards: column/twrw split width cap.
        rounds: refinement round cap (each applies at most one change).

    Returns:
        A :class:`StrategyPlan` with metadata stamped: per-kind counts,
        estimated device costs, and the row-only baseline makespan.
    """
    kinds = resolve_strategy_kinds(strategies)
    if batch_size is None:
        batch_size = getattr(sharder, "batch_size", None)
        if batch_size is None:
            raise ValueError("batch_size= required for this sharder")
    if workspace is None:
        workspace = PlannerWorkspace(
            model, profile, steps=getattr(sharder, "steps", 100)
        )
    from repro.core.evaluate import expected_device_costs_ms_many

    base = sharder.shard_from_workspace(workspace, topology, warm_start)
    current = StrategyPlan(
        base, tuple(TableStrategy("row") for _ in range(len(base)))
    )
    costs = expected_device_costs_ms_many(
        [current], model, profile, topology, batch_size, workspace=workspace
    )[0]
    row_only_max = float(costs.max())
    if set(kinds) != {"row"}:
        for _ in range(rounds):
            busiest = int(np.argmax(costs))
            makespan = float(costs[busiest])
            on_busiest = [
                j
                for j, (p, s) in enumerate(zip(current.plan, current.strategies))
                if s.kind in ("row", "table") and p.device == busiest
            ]
            if not on_busiest:
                break
            # Costliest tables first: a table's device contribution is
            # proportional to its expected per-lookup byte weight.
            weights = np.where(
                workspace.total_accesses > 0,
                workspace.coverage
                * workspace.avg_pooling
                * workspace.row_bytes,
                0.0,
            )
            on_busiest.sort(key=lambda j: -weights[j])
            candidates: list[StrategyPlan] = []
            for j in on_busiest[:tables_per_round]:
                candidates.extend(
                    _candidates_for_table(
                        current, j, kinds, costs, model, topology,
                        workspace, max_shards,
                    )
                )
            if not candidates:
                break
            cand_costs = expected_device_costs_ms_many(
                candidates, model, profile, topology, batch_size,
                workspace=workspace,
            )
            best = int(np.argmin(cand_costs.max(axis=1)))
            best_max = float(cand_costs[best].max())
            if best_max >= makespan * (1.0 - 1e-9):
                break
            current = candidates[best]
            costs = cand_costs[best]
    current.metadata["strategies"] = current.strategy_counts()
    current.metadata["solver"] = "strategies"
    current.metadata["row_only_max_cost_ms"] = row_only_max
    current.metadata["estimated_device_costs_ms"] = [float(c) for c in costs]
    current.metadata["estimated_max_cost_ms"] = float(costs.max())
    current.metadata["estimated_cost_batch_size"] = int(batch_size)
    return current
