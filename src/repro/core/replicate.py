"""Hot-row replication and load-balanced routing (FlexShard-style).

RecShard's CDF statistics place each table's rows by tier, but a skewed
workload still concentrates accesses on the few devices that own the
hottest tables: placement alone cannot split one table's traffic across
devices, so the access disparity the offline Table 4 comparison
quantifies shows up online as per-device load imbalance.  FlexShard
(PAPERS.md) shows the fix is orthogonal to tiering: *replicate* the
statically-hottest rows on every device and route each lookup to the
least-loaded replica.  Because RecShard already profiles per-row
expected access counts, the replica set is a pure pre-computation — no
reactive migration, no online popularity tracking.

Pieces:

* :class:`ReplicationPolicy` — a per-device byte budget to spend on
  replica copies of the globally hottest rows.
* :func:`build_replication` — greedy hottest-first selection (the same
  expected-count machinery as the cache/staging models, run as one
  vectorized pass over a
  :class:`~repro.core.workspace.PlannerWorkspace`'s coverage-prefix
  stack), emitting a :class:`ReplicatedPlan`.
* :class:`ReplicatedPlan` — a wrapper around the base
  :class:`~repro.core.plan.ShardingPlan` whose capacity accounting
  charges every replica against the device hosting it.
* :func:`plan_with_replication` — carve the replica budget out of the
  fastest tier, shard the remainder, then spend the carved bytes on
  replicas: the end-to-end path behind ``repro plan --replicate-gib``
  and the server's drift replans.

Because every sharding strategy splits rows in descending expected
frequency, "the globally hottest rows" is, per table, a *prefix of the
frequency ranking* — so the executor's replica lane is one more rank
cutoff (exactly like the cache and staging lanes), and the remap a
replicated lookup resolves through is simply
``rank < replica_rows[table]``.  The routing itself lives in the
execution engine (:class:`~repro.engine.executor.ShardedExecutor`),
which keeps running per-device byte counters and sends each replicated
lookup to the least-loaded candidate home.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

import numpy as np

from repro.core.plan import PlanError, ShardingPlan
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology


@dataclass(frozen=True)
class ReplicationPolicy:
    """Per-device byte budget spent on replicas of the hottest rows.

    Attributes:
        capacity_bytes: bytes of the fastest tier, per device, reserved
            for replica copies.  Every selected row is replicated to
            every device (its home keeps the original), so a device is
            charged for each selected row it does not already own.
    """

    capacity_bytes: int

    def __post_init__(self):
        if self.capacity_bytes < 0:
            raise ValueError("replication capacity must be >= 0")


class ReplicatedPlan:
    """A sharding plan plus a replica set of the globally hottest rows.

    The replica set is stored as one leading-rank count per table
    (``replica_rows[j]`` hottest rows of table ``j`` exist on every
    device): selection always takes rows hottest-first, and each
    table's rows are already ordered by descending expected frequency,
    so the set is a rank prefix by construction.  Replicated rows must
    be resident on the fastest tier of their home device — replication
    is a fastest-tier bandwidth optimization, not a placement change —
    and every copy is charged against the hosting device's fastest-tier
    capacity by :meth:`validate`.

    The wrapper iterates/indexes like the base plan and shares its
    ``metadata`` dict, so sweep stamping and cost-metadata consumers
    work unchanged.
    """

    def __init__(
        self,
        plan: ShardingPlan,
        replica_rows,
        policy: ReplicationPolicy,
    ):
        replica_rows = np.asarray(replica_rows, dtype=np.int64)
        if replica_rows.shape != (len(plan),):
            raise PlanError(
                f"replica_rows covers {replica_rows.shape} tables, plan "
                f"has {len(plan)}"
            )
        if (replica_rows < 0).any():
            raise PlanError("negative replica row count")
        self.plan = plan
        self.replica_rows = replica_rows
        self.policy = policy

    # -- base-plan delegation ------------------------------------------
    def __len__(self) -> int:
        return len(self.plan)

    def __iter__(self):
        return iter(self.plan)

    def __getitem__(self, table_index: int):
        return self.plan[table_index]

    @property
    def strategy(self) -> str:
        return self.plan.strategy

    @property
    def metadata(self) -> dict:
        return self.plan.metadata

    def tier_rows_total(self, tier_index: int) -> int:
        return self.plan.tier_rows_total(tier_index)

    # -- replication accounting ----------------------------------------
    @property
    def num_replicated_rows(self) -> int:
        """Distinct rows in the replica set (copies not counted)."""
        return int(self.replica_rows.sum())

    def replica_bytes_per_device(self, model, num_devices: int) -> np.ndarray:
        """Replica bytes charged to each device's fastest tier.

        A device hosts a copy of every selected row it does not home,
        so its charge is the full replica footprint minus the bytes of
        the selected rows of its own tables.
        """
        row_bytes = np.array(
            [t.row_bytes for t in model.tables], dtype=np.int64
        )
        per_table = self.replica_rows * row_bytes
        total = int(per_table.sum())
        charged = np.full(num_devices, total, dtype=np.int64)
        for placement, owned in zip(self.plan, per_table):
            charged[placement.device] -= int(owned)
        return charged

    def validate(self, model, topology: SystemTopology) -> None:
        """Raise :class:`PlanError` on any replication invariant breach.

        Checks the base plan, then that every replicated row is
        fastest-tier-resident on its home, that each device's replica
        bytes stay within the policy budget, and that base fastest-tier
        usage plus replicas fit the physical capacity.
        """
        self.plan.validate(model, topology)
        for placement, rows in zip(self.plan, self.replica_rows):
            if rows > placement.rows_per_tier[0]:
                raise PlanError(
                    f"table {placement.table_index}: {rows} replicated "
                    f"rows exceed the {placement.rows_per_tier[0]} rows "
                    f"resident on the fastest tier"
                )
        charged = self.replica_bytes_per_device(model, topology.num_devices)
        cap = topology.tiers[0].capacity_bytes
        for device in range(topology.num_devices):
            if charged[device] > self.policy.capacity_bytes:
                raise PlanError(
                    f"device {device}: {charged[device]} replica bytes "
                    f"exceed the {self.policy.capacity_bytes}-byte budget"
                )
            used = self.plan.tier_bytes(model, device, 0) + int(charged[device])
            if used > cap:
                raise PlanError(
                    f"device {device} tier {topology.tiers[0].name}: "
                    f"{used} bytes (base + replicas) exceeds capacity {cap}"
                )

    def summary(self, model, topology: SystemTopology) -> dict:
        """Replication statistics for reports and the CLI."""
        charged = self.replica_bytes_per_device(model, topology.num_devices)
        return {
            "replicated_rows": self.num_replicated_rows,
            "replicated_tables": int(np.count_nonzero(self.replica_rows)),
            "budget_bytes_per_device": int(self.policy.capacity_bytes),
            "max_replica_bytes_per_device": int(charged.max(initial=0)),
            "replica_bytes_per_device": [int(b) for b in charged],
        }


def carve_replica_budget(
    topology: SystemTopology, policy: ReplicationPolicy
) -> SystemTopology:
    """``topology`` with the replica budget removed from the fastest tier.

    Planning on the carved topology is what guarantees the emitted base
    plan leaves exactly ``policy.capacity_bytes`` of fastest-tier
    headroom per device for the replica copies.  With a single device
    there is nowhere to route, so the policy is inert and nothing is
    carved (selection returns an empty set for the same reason).
    """
    if policy.capacity_bytes <= 0 or topology.num_devices < 2:
        return topology
    fastest = topology.tiers[0]
    remaining = fastest.capacity_bytes - policy.capacity_bytes
    if remaining <= 0:
        raise PlanError(
            f"replica budget {policy.capacity_bytes} consumes the whole "
            f"{fastest.capacity_bytes}-byte {fastest.name} tier"
        )
    carved = MemoryTier(
        name=fastest.name,
        capacity_bytes=remaining,
        bandwidth=fastest.bandwidth,
    )
    return SystemTopology(
        num_devices=topology.num_devices,
        tiers=(carved,) + topology.tiers[1:],
    )


def _leading_counts_from_profile(profile, limits: np.ndarray):
    """Per-table expected counts of the leading ranked rows (scalar path).

    Same numbers the cache/staging selection reads
    (``stats.counts[stats.cdf.row_order[:k]]``), returned flat with
    table/rank coordinates like
    :meth:`~repro.core.workspace.PlannerWorkspace.leading_expected_counts`.
    """
    counts_list, table_list, rank_list = [], [], []
    for j, stats in enumerate(profile):
        k = int(limits[j])
        if k <= 0 or stats.total_accesses <= 0:
            continue
        ranked = np.asarray(stats.counts, dtype=np.float64)[
            stats.cdf.row_order[:k]
        ]
        counts_list.append(ranked)
        table_list.append(np.full(k, j, dtype=np.int64))
        rank_list.append(np.arange(k, dtype=np.int64))
    if not counts_list:
        empty = np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=np.float64), empty, empty
    return (
        np.concatenate(counts_list),
        np.concatenate(table_list),
        np.concatenate(rank_list),
    )


def build_replication(
    policy: ReplicationPolicy,
    plan,
    profile,
    model,
    topology: SystemTopology,
    workspace=None,
) -> ReplicatedPlan:
    """Spend the replica budget on the globally hottest rows of ``plan``.

    Candidates are every live row resident on its home's fastest tier;
    they are ordered hottest-first by expected access count (ties broken
    by (table, rank), making selection fully deterministic), and the
    longest prefix whose per-device copy bytes fit the policy budget is
    admitted.  The candidate set does not depend on the budget — which
    is what makes the selected set *monotone* in ``capacity_bytes``
    (the property test's invariant): a larger budget only ever extends
    the admitted prefix.

    Args:
        policy: the per-device byte budget.
        plan: base placement (a :class:`ReplicatedPlan` is unwrapped).
        profile: statistics the expected counts are read from.
        model: table geometry.
        topology: the *physical* topology (uncarved capacities).
        workspace: optional :class:`~repro.core.workspace.PlannerWorkspace`
            — its bulk :meth:`leading_expected_counts` query replaces
            the per-table profile gathers with one vectorized pass.
    """
    base = plan.plan if isinstance(plan, ReplicatedPlan) else plan
    num_tables = len(base)
    replica_rows = np.zeros(num_tables, dtype=np.int64)
    if policy.capacity_bytes <= 0 or topology.num_devices < 2:
        # Replication needs a second device to route to.
        return ReplicatedPlan(base, replica_rows, policy)
    row_bytes = np.array([t.row_bytes for t in model.tables], dtype=np.int64)
    tier0_rows = np.array(
        [p.rows_per_tier[0] for p in base], dtype=np.int64
    )
    home = np.array([p.device for p in base], dtype=np.int64)
    if workspace is not None:
        limits = np.minimum(tier0_rows, workspace.live_rows)
        counts, tables, ranks = workspace.leading_expected_counts(limits)
    else:
        live = np.array([stats.live_rows for stats in profile], dtype=np.int64)
        limits = np.minimum(tier0_rows, live)
        counts, tables, ranks = _leading_counts_from_profile(profile, limits)
    hot = counts > 0
    counts, tables, ranks = counts[hot], tables[hot], ranks[hot]
    if counts.size == 0:
        return ReplicatedPlan(base, replica_rows, policy)
    order = np.lexsort((ranks, tables, -counts))
    sizes = row_bytes[tables[order]]
    homes = home[tables[order]]
    # Per-device copy charge of the prefix ending at candidate i:
    # every device hosts every selected row except the ones it homes,
    # so the binding device is the one owning the *least* selected
    # bytes.  Both terms are prefix sums, so the admission check is one
    # monotone comparison per candidate.
    total_cum = np.cumsum(sizes)
    min_home_cum = None
    for device in range(topology.num_devices):
        cum = np.cumsum(np.where(homes == device, sizes, 0))
        min_home_cum = (
            cum if min_home_cum is None else np.minimum(min_home_cum, cum)
        )
    ok = total_cum - min_home_cum <= policy.capacity_bytes
    take = int(np.argmin(ok)) if not ok.all() else ok.size
    if take:
        replica_rows = np.bincount(
            tables[order[:take]], minlength=num_tables
        )
    return ReplicatedPlan(base, replica_rows, policy)


def plan_with_replication(
    sharder,
    model,
    profile,
    topology: SystemTopology,
    policy: ReplicationPolicy,
    workspace=None,
    warm_start=None,
) -> ReplicatedPlan:
    """Carve the replica budget, shard the remainder, select replicas.

    The base plan is built by ``sharder`` on a topology whose fastest
    tier is shrunk by the replica budget (so the emitted plan provably
    leaves room for the copies), then :func:`build_replication` spends
    the carved bytes on the globally hottest rows.  ``workspace`` and
    ``warm_start`` are forwarded when the sharder supports them — the
    drift-replan path hands both in, which keeps a replicated replan as
    incremental as a plain one.
    """
    carved = carve_replica_budget(topology, policy)
    params = inspect.signature(sharder.shard).parameters
    kwargs = {}
    if workspace is not None and "workspace" in params:
        kwargs["workspace"] = workspace
    if warm_start is not None and "warm_start" in params:
        if isinstance(warm_start, ReplicatedPlan):
            warm_start = warm_start.plan
        kwargs["warm_start"] = warm_start
    base = sharder.shard(model, profile, carved, **kwargs)
    replicated = build_replication(
        policy, base, profile, model, topology, workspace=workspace
    )
    base.metadata["replication"] = {
        "budget_bytes_per_device": int(policy.capacity_bytes),
        "replicated_rows": replicated.num_replicated_rows,
        "max_replica_bytes_per_device": int(
            replicated.replica_bytes_per_device(
                model, topology.num_devices
            ).max(initial=0)
        ),
    }
    return replicated
