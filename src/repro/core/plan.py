"""Sharding plans: the output of every sharding strategy.

A plan records, for every embedding table, which device owns it and how
its rows split across the memory tiers.  Rows are always split in
descending frequency order (the profile's ranking): the first
``rows_per_tier[0]`` hottest rows live on tier 0, the next block on
tier 1, and so on — fine-grained partitioning as in Section 4.2.  A
whole-table placement is simply a split with all rows in one tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.model import ModelSpec
from repro.memory.precision import quantized_row_bytes
from repro.memory.topology import SystemTopology


class PlanError(ValueError):
    """A sharding plan violates a structural or capacity invariant."""


@dataclass(frozen=True)
class TablePlacement:
    """Placement of one table: owning device plus per-tier row counts."""

    table_index: int
    device: int
    rows_per_tier: tuple[int, ...]

    def __post_init__(self):
        if self.device < 0:
            raise PlanError(f"table {self.table_index}: negative device")
        if any(r < 0 for r in self.rows_per_tier):
            raise PlanError(f"table {self.table_index}: negative row count")

    @property
    def total_rows(self) -> int:
        return sum(self.rows_per_tier)

    @property
    def hbm_rows(self) -> int:
        return self.rows_per_tier[0]

    def tier_fraction(self, tier_index: int) -> float:
        """Fraction of this table's rows on the given tier."""
        if self.total_rows == 0:
            return 0.0
        return self.rows_per_tier[tier_index] / self.total_rows

    @property
    def uvm_fraction(self) -> float:
        """Fraction of rows beyond the first tier (Figure 12's bar height)."""
        if self.total_rows == 0:
            return 0.0
        return 1.0 - self.rows_per_tier[0] / self.total_rows


@dataclass
class ShardingPlan:
    """A complete sharding decision for a model on a topology."""

    strategy: str
    placements: list[TablePlacement]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        expected = list(range(len(self.placements)))
        actual = sorted(p.table_index for p in self.placements)
        if actual != expected:
            raise PlanError("placements must cover each table exactly once")
        self.placements = sorted(self.placements, key=lambda p: p.table_index)

    def __len__(self) -> int:
        return len(self.placements)

    def __getitem__(self, table_index: int) -> TablePlacement:
        return self.placements[table_index]

    def __iter__(self):
        return iter(self.placements)

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def tables_on_device(self, device: int) -> list[TablePlacement]:
        return [p for p in self.placements if p.device == device]

    def tier_bytes(
        self,
        model: ModelSpec,
        device: int,
        tier_index: int,
        precision: str = "fp32",
    ) -> int:
        """Bytes this plan stores on one device's tier.

        ``precision`` is the tier's storage precision: quantized tiers
        hold each row at its reduced encoding, so capacity accounting
        charges :func:`~repro.memory.precision.quantized_row_bytes` per
        row (for the default ``fp32`` that is exactly ``row_bytes``).
        """
        return sum(
            p.rows_per_tier[tier_index]
            * quantized_row_bytes(
                model.tables[p.table_index].row_bytes, precision
            )
            for p in self.placements
            if p.device == device
        )

    def tier_rows_total(self, tier_index: int) -> int:
        """Rows placed on one tier across all devices."""
        return sum(p.rows_per_tier[tier_index] for p in self.placements)

    def num_devices_used(self) -> int:
        return len({p.device for p in self.placements})

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, model: ModelSpec, topology: SystemTopology) -> None:
        """Raise :class:`PlanError` on any structural/capacity violation."""
        if len(self.placements) != model.num_tables:
            raise PlanError(
                f"plan has {len(self.placements)} placements for "
                f"{model.num_tables} tables"
            )
        for placement in self.placements:
            table = model.tables[placement.table_index]
            if len(placement.rows_per_tier) != topology.num_tiers:
                raise PlanError(
                    f"table {placement.table_index}: "
                    f"{len(placement.rows_per_tier)} tiers vs topology "
                    f"{topology.num_tiers}"
                )
            if placement.total_rows != table.num_rows:
                raise PlanError(
                    f"table {placement.table_index}: rows_per_tier sums to "
                    f"{placement.total_rows}, table has {table.num_rows}"
                )
            if placement.device >= topology.num_devices:
                raise PlanError(
                    f"table {placement.table_index}: device "
                    f"{placement.device} out of range"
                )
        dead_rows = self.metadata.get("dead_rows")
        reclaim = bool(self.metadata.get("reclaim_dead")) and dead_rows is not None
        last_tier = topology.num_tiers - 1
        for device in range(topology.num_devices):
            for tier_index, tier in enumerate(topology.tiers):
                used = self.tier_bytes(
                    model, device, tier_index, precision=tier.precision
                )
                if reclaim and tier_index == last_tier:
                    # Section 3.4: rows never observed in training need
                    # no physical backing; they sit (logically) at the
                    # cold end of the last tier and are not charged.
                    used -= sum(
                        min(dead_rows[p.table_index], p.rows_per_tier[last_tier])
                        * quantized_row_bytes(
                            model.tables[p.table_index].row_bytes,
                            tier.precision,
                        )
                        for p in self.placements
                        if p.device == device
                    )
                if used > tier.capacity_bytes:
                    raise PlanError(
                        f"device {device} tier {tier.name}: {used} bytes "
                        f"exceeds capacity {tier.capacity_bytes}"
                    )

    # ------------------------------------------------------------------
    # Plan comparison (Table 4)
    # ------------------------------------------------------------------
    def placement_disparity(self, other: "ShardingPlan") -> dict[str, float]:
        """Row-level placement disagreement with another plan (Table 4).

        Because both plans split rows in the same descending-frequency
        order, row-level membership reduces to comparing HBM prefix
        sizes.  Returns the fraction of all rows that ``other`` put in
        UVM but ``self`` puts in HBM (``uvm_to_hbm``) and vice versa.
        """
        if len(other) != len(self):
            raise PlanError("plans cover different table counts")
        total_rows = sum(p.total_rows for p in self.placements)
        uvm_to_hbm = 0
        hbm_to_uvm = 0
        for mine, theirs in zip(self.placements, other.placements):
            uvm_to_hbm += max(0, mine.hbm_rows - theirs.hbm_rows)
            hbm_to_uvm += max(0, theirs.hbm_rows - mine.hbm_rows)
        if total_rows == 0:
            return {"uvm_to_hbm": 0.0, "hbm_to_uvm": 0.0}
        return {
            "uvm_to_hbm": uvm_to_hbm / total_rows,
            "hbm_to_uvm": hbm_to_uvm / total_rows,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self, model: ModelSpec, topology: SystemTopology) -> dict:
        """Aggregate placement statistics for reports and Figure 12."""
        total_rows = sum(p.total_rows for p in self.placements)
        uvm_rows = total_rows - self.tier_rows_total(0)
        per_table_uvm = [p.uvm_fraction for p in self.placements]
        tables_per_device = [
            len(self.tables_on_device(m)) for m in range(topology.num_devices)
        ]
        return {
            "strategy": self.strategy,
            "tables": len(self.placements),
            "devices": topology.num_devices,
            "total_rows": total_rows,
            "uvm_row_fraction": uvm_rows / total_rows if total_rows else 0.0,
            "mean_table_uvm_fraction": (
                float(np.mean(per_table_uvm)) if per_table_uvm else 0.0
            ),
            "tables_per_device": tables_per_device,
        }
