"""The remapping layer (Section 4.3).

The MILP selects each table's hottest rows for HBM, but those rows sit
at arbitrary hashed positions.  Embedding storage is contiguous per
partition, so RecShard builds a per-table remapping table translating
each hashed index to (tier, offset-within-tier).  For the two-tier case
the paper packs this into 4 bytes per row using the sign bit: HBM rows
map to their non-negative HBM offset, UVM rows to ``-(offset + 1)``.

Remapping runs as a data-loading transform (outside the training
critical path), which :meth:`RemappingLayer.transform` mirrors.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import ShardingPlan
from repro.data.batch import JaggedBatch, JaggedFeature


class RemappingTable:
    """Index remapping for one table.

    Args:
        row_order: all row ids ranked by descending access frequency
            (from the profile's :class:`~repro.stats.cdf.FrequencyCDF`).
        rows_per_tier: how many of the ranked rows go to each tier, in
            tier order; must sum to the table's row count.
    """

    def __init__(self, row_order: np.ndarray, rows_per_tier: tuple[int, ...]):
        row_order = np.asarray(row_order, dtype=np.int64)
        hash_size = row_order.size
        if sum(rows_per_tier) != hash_size:
            raise ValueError(
                f"rows_per_tier sums to {sum(rows_per_tier)}, expected {hash_size}"
            )
        self.hash_size = hash_size
        self.rows_per_tier = tuple(int(r) for r in rows_per_tier)
        self.num_tiers = len(rows_per_tier)

        self.tier_of_row = np.empty(hash_size, dtype=np.uint8)
        self.offset_of_row = np.empty(hash_size, dtype=np.int64)
        self._tier_rows: list[np.ndarray] = []
        start = 0
        for tier_index, rows in enumerate(self.rows_per_tier):
            block = row_order[start : start + rows]
            self.tier_of_row[block] = tier_index
            self.offset_of_row[block] = np.arange(rows, dtype=np.int64)
            self._tier_rows.append(block)
            start += rows

    # ------------------------------------------------------------------
    # Forward mapping
    # ------------------------------------------------------------------
    def apply(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map hashed indices to (tier ids, offsets within tier)."""
        indices = np.asarray(indices, dtype=np.int64)
        return self.tier_of_row[indices], self.offset_of_row[indices]

    def apply_signed(self, indices: np.ndarray) -> np.ndarray:
        """Two-tier packed mapping: HBM -> offset, UVM -> -(offset + 1)."""
        if self.num_tiers != 2:
            raise ValueError(
                f"signed remapping needs exactly 2 tiers, have {self.num_tiers}"
            )
        tiers, offsets = self.apply(indices)
        return np.where(tiers == 0, offsets, -(offsets + 1))

    def tier_counts(self, indices: np.ndarray) -> np.ndarray:
        """How many of ``indices`` land on each tier (access accounting)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.zeros(self.num_tiers, dtype=np.int64)
        return np.bincount(self.tier_of_row[indices], minlength=self.num_tiers)

    # ------------------------------------------------------------------
    # Inverse mapping
    # ------------------------------------------------------------------
    def original_row(self, tier: int, offset: int) -> int:
        """Hashed row id stored at (tier, offset) — inverse of apply()."""
        return int(self._tier_rows[tier][offset])

    def decode_signed(self, signed: np.ndarray) -> np.ndarray:
        """Invert :meth:`apply_signed` back to hashed indices."""
        signed = np.asarray(signed, dtype=np.int64)
        hashed = np.empty_like(signed)
        hbm = signed >= 0
        if hbm.any():
            hashed[hbm] = self._tier_rows[0][signed[hbm]]
        if (~hbm).any():
            hashed[~hbm] = self._tier_rows[1][-(signed[~hbm]) - 1]
        return hashed

    @property
    def storage_bytes(self) -> int:
        """Deployment cost of this table's mapping: 4 bytes per row
        (Section 6.6 — the sign encodes the partition)."""
        return 4 * self.hash_size


class RemappingLayer:
    """All remapping tables of a plan, applied as a batch transform."""

    def __init__(self, tables: list[RemappingTable]):
        self.tables = tables

    @classmethod
    def from_plan(cls, plan: ShardingPlan, profile) -> "RemappingLayer":
        """Build from a plan plus the profile that defines row rankings."""
        if len(profile) != len(plan):
            raise ValueError(
                f"profile covers {len(profile)} tables, plan {len(plan)}"
            )
        tables = [
            RemappingTable(profile[p.table_index].cdf.row_order, p.rows_per_tier)
            for p in plan
        ]
        return cls(tables)

    def __len__(self) -> int:
        return len(self.tables)

    def __getitem__(self, index: int) -> RemappingTable:
        return self.tables[index]

    def transform(self, batch: JaggedBatch) -> JaggedBatch:
        """Remap a batch to signed storage indices (two-tier plans)."""
        if batch.num_features != len(self.tables):
            raise ValueError(
                f"batch has {batch.num_features} features, layer has "
                f"{len(self.tables)}"
            )
        remapped = [
            JaggedFeature(table.apply_signed(feature.values), feature.offsets)
            for table, feature in zip(self.tables, batch)
        ]
        return JaggedBatch(remapped)

    @property
    def storage_bytes(self) -> int:
        return sum(t.storage_bytes for t in self.tables)
