"""A fast combinatorial approximation of the RecShard MILP.

The MILP is the paper's mechanism, but commercial-solver performance is
not always available.  This sharder exploits the same statistics and the
ICDF convexity to get near-MILP plans in milliseconds:

1. *Global waterfill*: allocate the aggregate HBM budget across tables
   step by step, always taking the step with the best marginal cost
   reduction per byte (optimal for the capacity-relaxed problem because
   per-table marginal densities are non-increasing — ICDF convexity).
2. *LPT assignment*: place tables on devices in descending cost order,
   always onto the least-loaded device where the split fits.  A split
   can be shrunk (fewer hot rows in HBM) to fit a tight device, or
   padded with dead rows (which cost nothing to serve) when the
   device's host slice cannot absorb the table's UVM remainder.
3. *Per-device refill*: spend any HBM left unused on each device on the
   next-best steps of its own tables.
4. *Local search*: move tables off the busiest device while it reduces
   the makespan.

It also serves as the fallback when the MILP backend cannot produce an
incumbent within its time limit.

Like the replay engine, the sharder has two paths that produce exactly
the same plans:

* **vectorized** (default) — waterfill, refill, warm start, and local
  search run on the stacked arrays of a
  :class:`~repro.core.workspace.PlannerWorkspace`.  The waterfill's
  heap is replaced by one global ordering: taking steps in descending
  *effective* density (the per-table running minimum — what a max-heap
  over per-table step sequences actually pops, even where integer
  rounding makes raw densities locally non-monotone) with ties broken
  by (table, step) reproduces the scalar heap's pop sequence exactly,
  so whole prefixes of the order can be admitted against the budget
  with one cumulative sum instead of one heap transaction per step.
* **scalar** (``vectorized=False``) — the original per-step heapq
  implementation, kept as the parity reference
  (``tests/test_core/test_planner_vectorized.py`` pins plan equality
  across both paths).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.formulation import RecShardInputs, TableInputs
from repro.core.plan import PlanError, ShardingPlan, TablePlacement
from repro.core.quantize import tier_expected_errors
from repro.core.workspace import PlannerWorkspace
from repro.memory.topology import SystemTopology

_MS = 1e3


def _stamp_tier_precisions(metadata: dict, topology: SystemTopology) -> None:
    """Record the ladder in plan metadata — only when it is quantized,
    so default-precision plans keep their exact pre-precision schema."""
    precisions = topology.tier_precisions
    if any(p != "fp32" for p in precisions):
        metadata["tier_precisions"] = list(precisions)
        metadata["tier_expected_rel_error"] = tier_expected_errors(precisions)


class _TableState:
    """Mutable split state of one table during solving.

    ``step`` indexes the ICDF grid (hot rows in HBM); ``extra_rows``
    counts additional dead/cold rows promoted to HBM purely to satisfy a
    device's host-capacity limit — they serve (almost) no accesses, so
    they do not change the cost estimate.
    """

    __slots__ = (
        "index", "inputs", "step", "extra_rows", "weight",
        "inv_bw_hbm", "inv_bw_uvm", "alloc_rows",
        "hbm_row_bytes", "host_row_bytes",
    )

    def __init__(self, index: int, inputs: TableInputs, batch_size: int,
                 inv_bw_hbm: float, inv_bw_uvm: float,
                 use_coverage: bool, use_pooling: bool, reclaim_dead: bool,
                 hbm_row_bytes: int | None = None,
                 host_row_bytes: int | None = None):
        self.index = index
        self.inputs = inputs
        self.step = 0
        self.extra_rows = 0
        pooling = inputs.avg_pooling if use_pooling else 1.0
        coverage = inputs.coverage if use_coverage else 1.0
        self.weight = coverage * pooling * inputs.row_bytes * batch_size * _MS
        self.inv_bw_hbm = inv_bw_hbm
        self.inv_bw_uvm = inv_bw_uvm
        # Per-tier storage footprint of one row (precision-scaled when
        # the tier is quantized; the raw row bytes otherwise).
        self.hbm_row_bytes = (
            inputs.row_bytes if hbm_row_bytes is None else int(hbm_row_bytes)
        )
        self.host_row_bytes = (
            inputs.row_bytes if host_row_bytes is None else int(host_row_bytes)
        )
        # Rows that must be backed by memory somewhere (dead rows are
        # exempt under reclaim_dead).
        self.alloc_rows = (
            inputs.live_rows if reclaim_dead else inputs.hash_size
        )

    @property
    def fraction(self) -> float:
        return float(self.inputs.icdf.fractions[self.step])

    @property
    def grid_rows(self) -> int:
        return math.ceil(self.inputs.icdf.rows[self.step] - 1e-9)

    @property
    def hbm_rows(self) -> int:
        return min(self.grid_rows + self.extra_rows, self.inputs.hash_size)

    @property
    def hbm_bytes(self) -> int:
        return self.hbm_rows * self.hbm_row_bytes

    def host_bytes(self) -> int:
        return max(0, self.alloc_rows - self.hbm_rows) * self.host_row_bytes

    def min_hbm_rows_for_host(self, host_free: int) -> int:
        """Fewest HBM rows that keep the UVM remainder within ``host_free``."""
        return max(0, self.alloc_rows - host_free // self.host_row_bytes)

    def cost(self) -> float:
        """Expected per-iteration cost (ms) at the current split."""
        if self.inputs.total_accesses <= 0:
            return 0.0
        frac = self.fraction
        return self.weight * (
            frac * self.inv_bw_hbm + (1.0 - frac) * self.inv_bw_uvm
        )

    def next_step_delta(self) -> tuple[float, int] | None:
        """(cost reduction, extra bytes) of advancing one ICDF step."""
        icdf = self.inputs.icdf
        if self.step >= icdf.steps or self.inputs.total_accesses <= 0:
            return None
        d_frac = float(icdf.fractions[self.step + 1] - icdf.fractions[self.step])
        next_rows = math.ceil(icdf.rows[self.step + 1] - 1e-9)
        d_rows = next_rows - self.grid_rows
        # Extra dead rows already in HBM absorb part of the advance.
        d_rows = max(0, d_rows - self.extra_rows)
        d_bytes = d_rows * self.hbm_row_bytes
        d_cost = self.weight * d_frac * (self.inv_bw_uvm - self.inv_bw_hbm)
        return d_cost, d_bytes

    def advance(self) -> None:
        icdf = self.inputs.icdf
        grid_gain = (
            math.ceil(icdf.rows[self.step + 1] - 1e-9) - self.grid_rows
        )
        self.extra_rows = max(0, self.extra_rows - grid_gain)
        self.step += 1


class RecShardFastSharder:
    """Greedy waterfill + LPT + local-search RecShard approximation."""

    def __init__(
        self,
        batch_size: int,
        steps: int = 100,
        use_coverage: bool = True,
        use_pooling: bool = True,
        reclaim_dead: bool = False,
        refine_rounds: int = 400,
        vectorized: bool = True,
        name: str = "RecShard-fast",
    ):
        self.batch_size = int(batch_size)
        self.steps = int(steps)
        self.use_coverage = use_coverage
        self.use_pooling = use_pooling
        self.reclaim_dead = reclaim_dead
        self.refine_rounds = int(refine_rounds)
        self.vectorized = bool(vectorized)
        self.name = name

    # ------------------------------------------------------------------
    def shard(
        self, model, profile, topology: SystemTopology,
        warm_start: ShardingPlan | None = None,
        workspace: PlannerWorkspace | None = None,
    ) -> ShardingPlan:
        """Shard ``model`` from ``profile``.

        With ``warm_start`` (the outgoing plan of a drift replan), the
        build is incremental: each table's split is fast-forwarded to
        the previous plan's cut point before waterfilling the budget
        delta, and the device assignment prefers each table's previous
        home — so a replan mostly *repairs* the old plan instead of
        rebuilding it, which is what keeps replanning cheap enough to
        run off the serving critical path.

        The vectorized path (default) solves on a
        :class:`~repro.core.workspace.PlannerWorkspace`; pass one in to
        amortize the statistics build across calls (replans, sweeps) —
        otherwise a fresh workspace is built for this call.
        """
        if not self.vectorized:
            inputs = RecShardInputs.from_profile(
                model, profile, steps=self.steps
            )
            return self.shard_from_inputs(
                model, inputs, topology, warm_start=warm_start
            )
        if workspace is None:
            workspace = PlannerWorkspace(model, profile, steps=self.steps)
        elif workspace.steps != self.steps:
            raise ValueError(
                f"workspace sampled {workspace.steps} ICDF steps, "
                f"sharder expects {self.steps}"
            )
        return self.shard_from_workspace(
            workspace, topology, warm_start=warm_start
        )

    def shard_from_inputs(
        self, model, inputs: RecShardInputs, topology: SystemTopology,
        warm_start: ShardingPlan | None = None,
    ) -> ShardingPlan:
        if topology.num_tiers != 2:
            raise ValueError("RecShardFastSharder targets two-tier topologies")
        inv_bw_hbm = 1.0 / topology.hbm.bandwidth
        inv_bw_uvm = 1.0 / topology.uvm.bandwidth
        states = [
            _TableState(
                j, t, self.batch_size, inv_bw_hbm, inv_bw_uvm,
                self.use_coverage, self.use_pooling, self.reclaim_dead,
                hbm_row_bytes=topology.hbm.row_bytes_for(t.row_bytes),
                host_row_bytes=topology.uvm.row_bytes_for(t.row_bytes),
            )
            for j, t in enumerate(inputs.tables)
        ]

        hbm_budget = topology.hbm.capacity_bytes * topology.num_devices
        preferred = None
        if warm_start is not None and len(warm_start) == len(states):
            hbm_budget = self._warm_start_splits(states, warm_start, hbm_budget)
            preferred = [warm_start[j].device for j in range(len(states))]
        self._waterfill(states, hbm_budget)
        device_of, loads, hbm_free, host_free = self._assign(
            states, topology, preferred=preferred
        )
        self._refill(states, device_of, hbm_free)
        loads = self._recompute_loads(states, device_of, topology.num_devices)
        self._local_search(states, device_of, loads, hbm_free, host_free)
        # Moves free HBM behind them; one more refill converts it into
        # additional hot rows.
        self._refill(states, device_of, hbm_free)
        return self._emit_plan(states, device_of, topology, inputs, preferred)

    def shard_from_workspace(
        self, workspace: PlannerWorkspace, topology: SystemTopology,
        warm_start: ShardingPlan | None = None,
    ) -> ShardingPlan:
        """Vectorized solve over a prebuilt workspace.

        Same four phases as :meth:`shard_from_inputs`, but waterfill,
        refill, warm start, and local search operate on the workspace
        arrays; only the (cheap) LPT assignment and split resizing are
        shared with the scalar path as-is.  Plans are identical to the
        scalar path's, table for table.
        """
        if topology.num_tiers != 2:
            raise ValueError("RecShardFastSharder targets two-tier topologies")
        ws = workspace
        inputs = ws.inputs
        inv_bw_hbm = 1.0 / topology.hbm.bandwidth
        inv_bw_uvm = 1.0 / topology.uvm.bandwidth
        hbm_rb = ws.tier_row_bytes(topology.hbm.precision)
        host_rb = ws.tier_row_bytes(topology.uvm.precision)
        states = [
            _TableState(
                j, t, self.batch_size, inv_bw_hbm, inv_bw_uvm,
                self.use_coverage, self.use_pooling, self.reclaim_dead,
                hbm_row_bytes=int(hbm_rb[j]), host_row_bytes=int(host_rb[j]),
            )
            for j, t in enumerate(inputs.tables)
        ]
        weight = np.array([s.weight for s in states], dtype=np.float64)

        hbm_budget = topology.hbm.capacity_bytes * topology.num_devices
        preferred = None
        start_steps = np.zeros(ws.num_tables, dtype=np.int64)
        if warm_start is not None and len(warm_start) == len(states):
            start_steps, hbm_budget = self._warm_start_arrays(
                ws, warm_start, hbm_budget, hbm_rb
            )
            preferred = [warm_start[j].device for j in range(len(states))]

        steps = self._waterfill_arrays(
            ws, weight, inv_bw_hbm, inv_bw_uvm, start_steps, hbm_budget,
            hbm_rb,
        )
        for j, state in enumerate(states):
            state.step = int(steps[j])
        device_of, loads, hbm_free, host_free = self._assign(
            states, topology, preferred=preferred
        )
        self._refill_arrays(
            ws, states, weight, inv_bw_hbm, inv_bw_uvm, device_of, hbm_free,
            hbm_rb,
        )
        loads = self._recompute_loads(states, device_of, topology.num_devices)
        self._local_search_arrays(states, device_of, loads, hbm_free, host_free)
        self._refill_arrays(
            ws, states, weight, inv_bw_hbm, inv_bw_uvm, device_of, hbm_free,
            hbm_rb,
        )
        return self._emit_plan(states, device_of, topology, inputs, preferred)

    def _emit_plan(self, states, device_of, topology, inputs, preferred):
        """Materialize placements and metadata (shared by both paths)."""
        placements = []
        for state in states:
            hbm_rows = state.hbm_rows
            placements.append(
                TablePlacement(
                    table_index=state.index,
                    device=device_of[state.index],
                    rows_per_tier=(hbm_rows, state.inputs.hash_size - hbm_rows),
                )
            )
        loads = self._recompute_loads(states, device_of, topology.num_devices)
        metadata = {
            "estimated_max_cost_ms": max(loads),
            "estimated_device_costs_ms": loads,
            "estimated_cost_batch_size": self.batch_size,
            "solver": "fast",
        }
        if preferred is not None:
            metadata["warm_started"] = True
        _stamp_tier_precisions(metadata, topology)
        if self.reclaim_dead:
            metadata["reclaim_dead"] = True
            metadata["dead_rows"] = [
                t.hash_size - t.live_rows for t in inputs.tables
            ]
        return ShardingPlan(
            strategy=self.name, placements=placements, metadata=metadata
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _warm_start_splits(
        states: list[_TableState], previous: ShardingPlan, budget: int
    ) -> int:
        """Fast-forward each split to the previous plan's cut point.

        Advances every table along its (new-profile) ICDF grid while
        the next step stays within the previous plan's HBM row count
        and the aggregate budget — replacing the bulk of the waterfill
        heap's step-by-step work with a straight walk per table.
        Returns the budget left for the regular waterfill to spend on
        drift-induced re-cuts.
        """
        remaining = budget
        for state in states:
            target = previous[state.index].hbm_rows
            while True:
                delta = state.next_step_delta()
                if delta is None:
                    break
                next_rows = math.ceil(
                    state.inputs.icdf.rows[state.step + 1] - 1e-9
                )
                if next_rows > target or delta[1] > remaining:
                    break
                state.advance()
                remaining -= delta[1]
        return remaining

    def _waterfill(self, states: list[_TableState], budget: int) -> None:
        """Spend the aggregate HBM budget on the densest ICDF steps."""
        remaining = budget
        heap: list[tuple[float, int]] = []

        def push(state: _TableState) -> None:
            delta = state.next_step_delta()
            if delta is not None:
                d_cost, d_bytes = delta
                density = d_cost / d_bytes if d_bytes else float("inf")
                heapq.heappush(heap, (-density, state.index))

        for state in states:
            push(state)
        while heap and remaining > 0:
            _, index = heapq.heappop(heap)
            state = states[index]
            delta = state.next_step_delta()
            if delta is None:
                continue
            _, d_bytes = delta
            if d_bytes > remaining:
                continue  # later (smaller) steps may still fit
            state.advance()
            remaining -= d_bytes
            push(state)

    # ------------------------------------------------------------------
    # Vectorized phases (workspace-array equivalents of the scalar ones)
    # ------------------------------------------------------------------
    @staticmethod
    def _bulk_take(
        eff_density, d_bytes, table_ids, step_ids, steps_out, budget,
        stop_on_exhausted,
    ):
        """Admit ICDF steps in heap-pop order against a byte budget.

        ``eff_density`` must be the per-table *running minimum* of the
        raw marginal densities: sorting by ``(-eff, table, step)`` then
        reproduces exactly the pop order of a max-heap holding one
        current step per table (a table's step can only surface after
        its predecessor, so a locally *rising* density pops immediately
        after the dip that hid it — i.e. at the dip's priority).  Steps
        are then taken in bulk: one cumulative sum finds the longest
        admissible prefix, and only budget-blocking steps (which retire
        their whole table, like a dropped heap entry) restart the scan.

        ``stop_on_exhausted`` mirrors the two scalar loops: the global
        waterfill stops once the budget hits zero, the per-device
        refill keeps draining zero-byte steps.

        Updates ``steps_out`` (per-table step reached) in place and
        returns the unspent budget.
        """
        if table_ids.size == 0:
            return budget
        order = np.lexsort((step_ids, table_ids, -eff_density))
        tables = table_ids[order]
        sizes = d_bytes[order]
        steps = step_ids[order]
        alive = np.ones(order.size, dtype=bool)
        remaining = int(budget)
        pos = 0
        while pos < order.size:
            if stop_on_exhausted and remaining <= 0:
                break
            sel = np.flatnonzero(alive[pos:])
            if sel.size == 0:
                break
            sel += pos
            cum = np.cumsum(sizes[sel])
            if stop_on_exhausted:
                take = (cum <= remaining) & ((cum - sizes[sel]) < remaining)
            else:
                take = cum <= remaining
            # Both conditions are prefix-shaped (cum is non-decreasing).
            count = int(np.count_nonzero(take))
            if count:
                taken = sel[:count]
                np.maximum.at(steps_out, tables[taken], steps[taken] + 1)
                remaining -= int(cum[count - 1])
            if count == sel.size:
                break
            if stop_on_exhausted and remaining <= 0:
                break
            blocker = int(sel[count])
            alive[tables == tables[blocker]] = False
            pos = blocker + 1
        return remaining

    def _marginal_density(self, ws, weight, inv_bw_hbm, inv_bw_uvm,
                          d_bytes):
        """Cost reduction per byte for every (table, step) advance."""
        d_cost = (weight[:, None] * ws.d_frac[None, :]) * (
            inv_bw_uvm - inv_bw_hbm
        )
        density = np.full(d_bytes.shape, np.inf)
        np.divide(d_cost, d_bytes, out=density, where=d_bytes > 0)
        return density

    def _waterfill_arrays(
        self, ws, weight, inv_bw_hbm, inv_bw_uvm, start_steps, budget,
        hbm_rb,
    ):
        """Global waterfill on the workspace arrays (one bulk take)."""
        d_bytes = ws.d_grid_rows * hbm_rb[:, None]
        density = self._marginal_density(
            ws, weight, inv_bw_hbm, inv_bw_uvm, d_bytes
        )
        col = np.arange(ws.steps)
        mask = (ws.total_accesses > 0)[:, None] & (
            col[None, :] >= start_steps[:, None]
        )
        # +inf placeholders ahead of each table's start keep the running
        # minimum anchored at the (possibly warm-started) current step.
        eff = np.minimum.accumulate(
            np.where(mask, density, np.inf), axis=1
        )
        flat = np.flatnonzero(mask)
        table_ids, step_ids = np.divmod(flat, ws.steps)
        steps_out = start_steps.copy()
        self._bulk_take(
            eff.ravel()[flat], d_bytes.ravel()[flat], table_ids, step_ids,
            steps_out, budget, stop_on_exhausted=True,
        )
        return steps_out

    def _refill_arrays(
        self, ws, states, weight, inv_bw_hbm, inv_bw_uvm, device_of,
        hbm_free, hbm_rb,
    ):
        """Per-device refill on the workspace arrays.

        Dead rows promoted by the assignment phase (``extra_rows``)
        absorb part of each advance, so the byte cost of every step is
        adjusted by the extra rows still unabsorbed at that step —
        computable in closed form from the grid because consecutive
        ``max(0, extra - gain)`` updates compose.
        """
        steps = np.array([s.step for s in states], dtype=np.int64)
        extra = np.array([s.extra_rows for s in states], dtype=np.int64)
        grid = ws.grid_rows
        base = grid[np.arange(ws.num_tables), steps]
        unabsorbed = np.maximum(
            0, extra[:, None] - (grid[:, :-1] - base[:, None])
        )
        adj_bytes = np.maximum(0, ws.d_grid_rows - unabsorbed) * (
            hbm_rb[:, None]
        )
        density = self._marginal_density(
            ws, weight, inv_bw_hbm, inv_bw_uvm, adj_bytes
        )
        col = np.arange(ws.steps)
        valid = (ws.total_accesses > 0)[:, None] & (
            col[None, :] >= steps[:, None]
        )
        devices = np.asarray(device_of)
        for device in range(len(hbm_free)):
            members = np.flatnonzero(devices == device)
            if members.size == 0:
                continue
            sub_valid = valid[members]
            eff = np.minimum.accumulate(
                np.where(sub_valid, density[members], np.inf), axis=1
            )
            flat = np.flatnonzero(sub_valid)
            member_pos, step_ids = np.divmod(flat, ws.steps)
            hbm_free[device] = self._bulk_take(
                eff.ravel()[flat],
                adj_bytes[members].ravel()[flat],
                members[member_pos],
                step_ids,
                steps,
                hbm_free[device],
                stop_on_exhausted=False,
            )
        new_extra = np.maximum(
            0, extra - (grid[np.arange(ws.num_tables), steps] - base)
        )
        for j, state in enumerate(states):
            state.step = int(steps[j])
            state.extra_rows = int(new_extra[j])

    def _warm_start_arrays(
        self, ws, previous: ShardingPlan, budget: int, hbm_rb
    ):
        """Vectorized :meth:`_warm_start_splits` over the grid arrays.

        A table's walk stops at the first step past the previous plan's
        cut point or past the remaining budget; because per-step bytes
        are cumulative in the grid, both stops reduce to one
        ``searchsorted`` per table over the prefix-byte row.
        """
        grid = ws.grid_rows
        need = (grid - grid[:, :1]) * hbm_rb[:, None]
        targets = np.array(
            [previous[j].hbm_rows for j in range(ws.num_tables)],
            dtype=np.int64,
        )
        caps = (grid <= targets[:, None]).sum(axis=1) - 1
        start = np.zeros(ws.num_tables, dtype=np.int64)
        remaining = int(budget)
        for j in range(ws.num_tables):
            if ws.total_accesses[j] <= 0 or caps[j] <= 0:
                continue
            row = need[j, : caps[j] + 1]
            step = int(np.searchsorted(row, remaining, side="right")) - 1
            if step <= 0:
                continue
            start[j] = step
            remaining -= int(row[step])
        return start, remaining

    def _local_search_arrays(
        self, states, device_of, loads, hbm_free, host_free
    ):
        """Array form of :meth:`_local_search`: same moves, same order.

        Table splits are frozen during the search, so per-table costs
        and footprints become constant vectors; each round's candidate
        scan is then a couple of boolean matrices instead of nested
        Python loops, with the scalar path's first-candidate order
        recovered from a composite rank.
        """
        num_devices = len(loads)
        cost = np.array([s.cost() for s in states], dtype=np.float64)
        hbm_b = np.array([s.hbm_bytes for s in states], dtype=np.int64)
        host_b = np.array([s.host_bytes() for s in states], dtype=np.int64)
        dev = np.array(device_of, dtype=np.int64)
        loads_a = np.array(loads, dtype=np.float64)
        hbm_f = np.array(hbm_free, dtype=np.int64)
        host_f = np.array(host_free, dtype=np.int64)

        def transfer(j, src, dst):
            moved = cost[j]
            dev[j] = dst
            loads_a[src] -= moved
            loads_a[dst] += moved
            hbm_f[src] += hbm_b[j]
            hbm_f[dst] -= hbm_b[j]
            host_f[src] += host_b[j]
            host_f[dst] -= host_b[j]

        def sorted_members(busiest):
            members = np.flatnonzero(dev == busiest)
            members = members[np.argsort(-cost[members], kind="stable")]
            return members[cost[members] > 0]

        def sorted_others(busiest):
            others = np.flatnonzero(np.arange(num_devices) != busiest)
            return others[np.argsort(loads_a[others], kind="stable")]

        def try_move(busiest):
            members = sorted_members(busiest)
            others = sorted_others(busiest)
            if members.size == 0 or others.size == 0:
                return False
            moved = cost[members][:, None]
            fits = (
                (hbm_f[others][None, :] >= hbm_b[members][:, None])
                & (host_f[others][None, :] >= host_b[members][:, None])
            )
            better = (
                np.maximum(
                    loads_a[busiest] - moved, loads_a[others][None, :] + moved
                )
                < loads_a[busiest]
            )
            ok = fits & better
            if not ok.any():
                return False
            first = int(np.argmax(ok))
            i, k = divmod(first, others.size)
            transfer(members[i], busiest, int(others[k]))
            return True

        def try_swap(busiest):
            members = sorted_members(busiest)
            others = sorted_others(busiest)
            if members.size == 0 or others.size == 0:
                return False
            num_tables = cost.size
            target_rank = np.full(num_devices, num_devices, dtype=np.int64)
            target_rank[others] = np.arange(others.size)
            my_cost = cost[members][:, None]
            their_cost = cost[None, :]
            cheaper = their_cost < my_cost
            new_busy = (loads_a[busiest] - cost[members])[:, None] + their_cost
            new_target = (
                (loads_a[dev][None, :] + my_cost) - their_cost
            )
            improves = (
                np.maximum(new_busy, new_target) < loads_a[busiest] - 1e-12
            )
            hbm_ok = (
                (hbm_f[dev][None, :] + hbm_b[None, :] >= hbm_b[members][:, None])
                & ((hbm_f[busiest] + hbm_b[members])[:, None] >= hbm_b[None, :])
            )
            host_ok = (
                (host_f[dev][None, :] + host_b[None, :]
                 >= host_b[members][:, None])
                & ((host_f[busiest] + host_b[members])[:, None]
                   >= host_b[None, :])
            )
            ok = (dev != busiest)[None, :] & cheaper & improves & hbm_ok & host_ok
            if not ok.any():
                return False
            # Scalar scan order: mine (desc cost), then target (asc
            # load), then theirs (table index).
            rank = (
                np.arange(members.size)[:, None] * (num_devices * num_tables)
                + target_rank[dev][None, :] * num_tables
                + np.arange(num_tables)[None, :]
            )
            first = int(
                np.argmin(np.where(ok, rank, np.iinfo(np.int64).max))
            )
            i, j = divmod(first, num_tables)
            target = int(dev[j])
            transfer(j, target, busiest)
            transfer(members[i], busiest, target)
            return True

        for _ in range(self.refine_rounds):
            busiest = int(np.argmax(loads_a))
            if not (try_move(busiest) or try_swap(busiest)):
                break

        device_of[:] = [int(d) for d in dev]
        loads[:] = [float(x) for x in loads_a]
        hbm_free[:] = [int(x) for x in hbm_f]
        host_free[:] = [int(x) for x in host_f]

    def _assign(self, states, topology, preferred=None):
        """LPT placement under per-device HBM and host capacity.

        A device can host a table iff the table's minimum HBM footprint
        required by the device's remaining host space fits the device's
        remaining HBM.  The split is shrunk or padded to fit.  With
        ``preferred`` (per-table device hints from a warm-start plan), a
        table stays on its hinted device whenever the split fits there,
        leaving the local search to repair only drift-induced imbalance.
        """
        num_devices = topology.num_devices
        loads = [0.0] * num_devices
        hbm_free = [topology.hbm.capacity_bytes] * num_devices
        host_free = [topology.uvm.capacity_bytes] * num_devices
        device_of = [0] * len(states)

        for state in sorted(states, key=lambda s: -s.cost()):
            chosen = None
            if preferred is not None:
                hint = preferred[state.index]
                if (
                    hbm_free[hint] >= state.hbm_bytes
                    and host_free[hint] >= state.host_bytes()
                ):
                    chosen = hint
            if chosen is None:
                # Least-loaded device fitting the current split.
                for device in sorted(range(num_devices), key=lambda m: loads[m]):
                    if (
                        hbm_free[device] >= state.hbm_bytes
                        and host_free[device] >= state.host_bytes()
                    ):
                        chosen = device
                        break
            if chosen is None:
                # Adapt the split.  Feasible devices are those where the
                # host-driven minimum HBM rows fit the free HBM.
                feasible = []
                for device in range(num_devices):
                    min_rows = state.min_hbm_rows_for_host(host_free[device])
                    if min_rows * state.hbm_row_bytes <= hbm_free[device]:
                        feasible.append((device, min_rows))
                if not feasible:
                    raise PlanError(
                        f"{self.name}: table {state.index} fits no device "
                        "(HBM and host both exhausted)"
                    )
                device, min_rows = min(feasible, key=lambda d: loads[d[0]])
                self._resize_to_fit(state, min_rows, hbm_free[device])
                chosen = device
            device_of[state.index] = chosen
            loads[chosen] += state.cost()
            hbm_free[chosen] -= state.hbm_bytes
            host_free[chosen] -= state.host_bytes()
        return device_of, loads, hbm_free, host_free

    @staticmethod
    def _resize_to_fit(state: _TableState, min_rows: int, hbm_free: int) -> None:
        """Adjust the split to ``min_rows <= hbm_rows`` within ``hbm_free``."""
        max_rows = hbm_free // state.hbm_row_bytes
        icdf = state.inputs.icdf
        # Largest grid step within max_rows.
        step = state.step
        while step > 0 and math.ceil(icdf.rows[step] - 1e-9) > max_rows:
            step -= 1
        state.step = step
        state.extra_rows = 0
        if state.grid_rows < min_rows:
            state.extra_rows = min(min_rows, max_rows) - state.grid_rows

    def _refill(self, states, device_of, hbm_free) -> None:
        """Spend per-device leftover HBM on that device's own tables."""
        by_device: dict[int, list[_TableState]] = {}
        for state in states:
            by_device.setdefault(device_of[state.index], []).append(state)
        for device, members in by_device.items():
            heap: list[tuple[float, int]] = []
            index_of = {s.index: s for s in members}

            def push(state: _TableState) -> None:
                delta = state.next_step_delta()
                if delta is not None:
                    d_cost, d_bytes = delta
                    density = d_cost / d_bytes if d_bytes else float("inf")
                    heapq.heappush(heap, (-density, state.index))

            for state in members:
                push(state)
            while heap:
                _, idx = heapq.heappop(heap)
                state = index_of[idx]
                delta = state.next_step_delta()
                if delta is None:
                    continue
                _, d_bytes = delta
                if d_bytes > hbm_free[device]:
                    continue
                state.advance()
                hbm_free[device] -= d_bytes
                push(state)

    def _recompute_loads(self, states, device_of, num_devices) -> list[float]:
        loads = [0.0] * num_devices
        for state in states:
            loads[device_of[state.index]] += state.cost()
        return loads

    def _local_search(self, states, device_of, loads, hbm_free, host_free):
        """Reduce the makespan by moving or swapping busiest-device tables."""
        for _ in range(self.refine_rounds):
            busiest = max(range(len(loads)), key=lambda m: loads[m])
            if not (
                self._try_move(states, device_of, loads, hbm_free, host_free, busiest)
                or self._try_swap(
                    states, device_of, loads, hbm_free, host_free, busiest
                )
            ):
                break

    def _transfer(self, state, src, dst, device_of, loads, hbm_free, host_free):
        cost = state.cost()
        device_of[state.index] = dst
        loads[src] -= cost
        loads[dst] += cost
        hbm_free[src] += state.hbm_bytes
        hbm_free[dst] -= state.hbm_bytes
        host_free[src] += state.host_bytes()
        host_free[dst] -= state.host_bytes()

    def _try_move(self, states, device_of, loads, hbm_free, host_free, busiest):
        """One table off the busiest device, if the makespan improves."""
        members = sorted(
            (s for s in states if device_of[s.index] == busiest),
            key=lambda s: -s.cost(),
        )
        others = sorted(
            (m for m in range(len(loads)) if m != busiest),
            key=lambda m: loads[m],
        )
        for state in members:
            cost = state.cost()
            if cost <= 0:
                continue
            for target in others:
                fits = (
                    hbm_free[target] >= state.hbm_bytes
                    and host_free[target] >= state.host_bytes()
                )
                better = (
                    max(loads[busiest] - cost, loads[target] + cost)
                    < loads[busiest]
                )
                if fits and better:
                    self._transfer(
                        state, busiest, target, device_of, loads, hbm_free, host_free
                    )
                    return True
        return False

    def _try_swap(self, states, device_of, loads, hbm_free, host_free, busiest):
        """Exchange a costly busiest-device table for a cheaper one."""
        members = sorted(
            (s for s in states if device_of[s.index] == busiest),
            key=lambda s: -s.cost(),
        )
        others = sorted(
            (m for m in range(len(loads)) if m != busiest),
            key=lambda m: loads[m],
        )
        for mine in members:
            my_cost = mine.cost()
            if my_cost <= 0:
                continue
            for target in others:
                for theirs in states:
                    if device_of[theirs.index] != target:
                        continue
                    their_cost = theirs.cost()
                    if their_cost >= my_cost:
                        continue
                    new_busy = loads[busiest] - my_cost + their_cost
                    new_target = loads[target] + my_cost - their_cost
                    if max(new_busy, new_target) >= loads[busiest] - 1e-12:
                        continue
                    hbm_ok = (
                        hbm_free[target] + theirs.hbm_bytes >= mine.hbm_bytes
                        and hbm_free[busiest] + mine.hbm_bytes >= theirs.hbm_bytes
                    )
                    host_ok = (
                        host_free[target] + theirs.host_bytes() >= mine.host_bytes()
                        and host_free[busiest] + mine.host_bytes()
                        >= theirs.host_bytes()
                    )
                    if not (hbm_ok and host_ok):
                        continue
                    self._transfer(
                        theirs, target, busiest, device_of, loads, hbm_free, host_free
                    )
                    self._transfer(
                        mine, busiest, target, device_of, loads, hbm_free, host_free
                    )
                    return True
        return False
