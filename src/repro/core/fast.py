"""A fast combinatorial approximation of the RecShard MILP.

The MILP is the paper's mechanism, but commercial-solver performance is
not always available.  This sharder exploits the same statistics and the
ICDF convexity to get near-MILP plans in milliseconds:

1. *Global waterfill*: allocate the aggregate HBM budget across tables
   step by step, always taking the step with the best marginal cost
   reduction per byte (optimal for the capacity-relaxed problem because
   per-table marginal densities are non-increasing — ICDF convexity).
2. *LPT assignment*: place tables on devices in descending cost order,
   always onto the least-loaded device where the split fits.  A split
   can be shrunk (fewer hot rows in HBM) to fit a tight device, or
   padded with dead rows (which cost nothing to serve) when the
   device's host slice cannot absorb the table's UVM remainder.
3. *Per-device refill*: spend any HBM left unused on each device on the
   next-best steps of its own tables.
4. *Local search*: move tables off the busiest device while it reduces
   the makespan.

It also serves as the fallback when the MILP backend cannot produce an
incumbent within its time limit.
"""

from __future__ import annotations

import heapq
import math

from repro.core.formulation import RecShardInputs, TableInputs
from repro.core.plan import PlanError, ShardingPlan, TablePlacement
from repro.memory.topology import SystemTopology

_MS = 1e3


class _TableState:
    """Mutable split state of one table during solving.

    ``step`` indexes the ICDF grid (hot rows in HBM); ``extra_rows``
    counts additional dead/cold rows promoted to HBM purely to satisfy a
    device's host-capacity limit — they serve (almost) no accesses, so
    they do not change the cost estimate.
    """

    __slots__ = (
        "index", "inputs", "step", "extra_rows", "weight",
        "inv_bw_hbm", "inv_bw_uvm", "alloc_bytes",
    )

    def __init__(self, index: int, inputs: TableInputs, batch_size: int,
                 inv_bw_hbm: float, inv_bw_uvm: float,
                 use_coverage: bool, use_pooling: bool, reclaim_dead: bool):
        self.index = index
        self.inputs = inputs
        self.step = 0
        self.extra_rows = 0
        pooling = inputs.avg_pooling if use_pooling else 1.0
        coverage = inputs.coverage if use_coverage else 1.0
        self.weight = coverage * pooling * inputs.row_bytes * batch_size * _MS
        self.inv_bw_hbm = inv_bw_hbm
        self.inv_bw_uvm = inv_bw_uvm
        # Bytes that must be backed by memory somewhere (dead rows are
        # exempt under reclaim_dead).
        self.alloc_bytes = (
            inputs.live_bytes if reclaim_dead else inputs.total_bytes
        )

    @property
    def fraction(self) -> float:
        return float(self.inputs.icdf.fractions[self.step])

    @property
    def grid_rows(self) -> int:
        return math.ceil(self.inputs.icdf.rows[self.step] - 1e-9)

    @property
    def hbm_rows(self) -> int:
        return min(self.grid_rows + self.extra_rows, self.inputs.hash_size)

    @property
    def hbm_bytes(self) -> int:
        return self.hbm_rows * self.inputs.row_bytes

    def host_bytes(self) -> int:
        return max(0, self.alloc_bytes - self.hbm_bytes)

    def min_hbm_rows_for_host(self, host_free: int) -> int:
        """Fewest HBM rows that keep the UVM remainder within ``host_free``."""
        deficit = self.alloc_bytes - host_free
        if deficit <= 0:
            return 0
        return math.ceil(deficit / self.inputs.row_bytes)

    def cost(self) -> float:
        """Expected per-iteration cost (ms) at the current split."""
        if self.inputs.total_accesses <= 0:
            return 0.0
        frac = self.fraction
        return self.weight * (
            frac * self.inv_bw_hbm + (1.0 - frac) * self.inv_bw_uvm
        )

    def next_step_delta(self) -> tuple[float, int] | None:
        """(cost reduction, extra bytes) of advancing one ICDF step."""
        icdf = self.inputs.icdf
        if self.step >= icdf.steps or self.inputs.total_accesses <= 0:
            return None
        d_frac = float(icdf.fractions[self.step + 1] - icdf.fractions[self.step])
        next_rows = math.ceil(icdf.rows[self.step + 1] - 1e-9)
        d_rows = next_rows - self.grid_rows
        # Extra dead rows already in HBM absorb part of the advance.
        d_rows = max(0, d_rows - self.extra_rows)
        d_bytes = d_rows * self.inputs.row_bytes
        d_cost = self.weight * d_frac * (self.inv_bw_uvm - self.inv_bw_hbm)
        return d_cost, d_bytes

    def advance(self) -> None:
        icdf = self.inputs.icdf
        grid_gain = (
            math.ceil(icdf.rows[self.step + 1] - 1e-9) - self.grid_rows
        )
        self.extra_rows = max(0, self.extra_rows - grid_gain)
        self.step += 1


class RecShardFastSharder:
    """Greedy waterfill + LPT + local-search RecShard approximation."""

    def __init__(
        self,
        batch_size: int,
        steps: int = 100,
        use_coverage: bool = True,
        use_pooling: bool = True,
        reclaim_dead: bool = False,
        refine_rounds: int = 400,
        name: str = "RecShard-fast",
    ):
        self.batch_size = int(batch_size)
        self.steps = int(steps)
        self.use_coverage = use_coverage
        self.use_pooling = use_pooling
        self.reclaim_dead = reclaim_dead
        self.refine_rounds = int(refine_rounds)
        self.name = name

    # ------------------------------------------------------------------
    def shard(
        self, model, profile, topology: SystemTopology,
        warm_start: ShardingPlan | None = None,
    ) -> ShardingPlan:
        """Shard ``model`` from ``profile``.

        With ``warm_start`` (the outgoing plan of a drift replan), the
        build is incremental: each table's split is fast-forwarded to
        the previous plan's cut point before waterfilling the budget
        delta, and the device assignment prefers each table's previous
        home — so a replan mostly *repairs* the old plan instead of
        rebuilding it, which is what keeps replanning cheap enough to
        run off the serving critical path.
        """
        inputs = RecShardInputs.from_profile(model, profile, steps=self.steps)
        return self.shard_from_inputs(model, inputs, topology, warm_start=warm_start)

    def shard_from_inputs(
        self, model, inputs: RecShardInputs, topology: SystemTopology,
        warm_start: ShardingPlan | None = None,
    ) -> ShardingPlan:
        if topology.num_tiers != 2:
            raise ValueError("RecShardFastSharder targets two-tier topologies")
        inv_bw_hbm = 1.0 / topology.hbm.bandwidth
        inv_bw_uvm = 1.0 / topology.uvm.bandwidth
        states = [
            _TableState(
                j, t, self.batch_size, inv_bw_hbm, inv_bw_uvm,
                self.use_coverage, self.use_pooling, self.reclaim_dead,
            )
            for j, t in enumerate(inputs.tables)
        ]

        hbm_budget = topology.hbm.capacity_bytes * topology.num_devices
        preferred = None
        if warm_start is not None and len(warm_start) == len(states):
            hbm_budget = self._warm_start_splits(states, warm_start, hbm_budget)
            preferred = [warm_start[j].device for j in range(len(states))]
        self._waterfill(states, hbm_budget)
        device_of, loads, hbm_free, host_free = self._assign(
            states, topology, preferred=preferred
        )
        self._refill(states, device_of, hbm_free)
        loads = self._recompute_loads(states, device_of, topology.num_devices)
        self._local_search(states, device_of, loads, hbm_free, host_free)
        # Moves free HBM behind them; one more refill converts it into
        # additional hot rows.
        self._refill(states, device_of, hbm_free)

        placements = []
        for state in states:
            hbm_rows = state.hbm_rows
            placements.append(
                TablePlacement(
                    table_index=state.index,
                    device=device_of[state.index],
                    rows_per_tier=(hbm_rows, state.inputs.hash_size - hbm_rows),
                )
            )
        loads = self._recompute_loads(states, device_of, topology.num_devices)
        metadata = {
            "estimated_max_cost_ms": max(loads),
            "estimated_device_costs_ms": loads,
            "solver": "fast",
        }
        if preferred is not None:
            metadata["warm_started"] = True
        if self.reclaim_dead:
            metadata["reclaim_dead"] = True
            metadata["dead_rows"] = [
                t.hash_size - t.live_rows for t in inputs.tables
            ]
        return ShardingPlan(
            strategy=self.name, placements=placements, metadata=metadata
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _warm_start_splits(
        states: list[_TableState], previous: ShardingPlan, budget: int
    ) -> int:
        """Fast-forward each split to the previous plan's cut point.

        Advances every table along its (new-profile) ICDF grid while
        the next step stays within the previous plan's HBM row count
        and the aggregate budget — replacing the bulk of the waterfill
        heap's step-by-step work with a straight walk per table.
        Returns the budget left for the regular waterfill to spend on
        drift-induced re-cuts.
        """
        remaining = budget
        for state in states:
            target = previous[state.index].hbm_rows
            while True:
                delta = state.next_step_delta()
                if delta is None:
                    break
                next_rows = math.ceil(
                    state.inputs.icdf.rows[state.step + 1] - 1e-9
                )
                if next_rows > target or delta[1] > remaining:
                    break
                state.advance()
                remaining -= delta[1]
        return remaining

    def _waterfill(self, states: list[_TableState], budget: int) -> None:
        """Spend the aggregate HBM budget on the densest ICDF steps."""
        remaining = budget
        heap: list[tuple[float, int]] = []

        def push(state: _TableState) -> None:
            delta = state.next_step_delta()
            if delta is not None:
                d_cost, d_bytes = delta
                density = d_cost / d_bytes if d_bytes else float("inf")
                heapq.heappush(heap, (-density, state.index))

        for state in states:
            push(state)
        while heap and remaining > 0:
            _, index = heapq.heappop(heap)
            state = states[index]
            delta = state.next_step_delta()
            if delta is None:
                continue
            _, d_bytes = delta
            if d_bytes > remaining:
                continue  # later (smaller) steps may still fit
            state.advance()
            remaining -= d_bytes
            push(state)

    def _assign(self, states, topology, preferred=None):
        """LPT placement under per-device HBM and host capacity.

        A device can host a table iff the table's minimum HBM footprint
        required by the device's remaining host space fits the device's
        remaining HBM.  The split is shrunk or padded to fit.  With
        ``preferred`` (per-table device hints from a warm-start plan), a
        table stays on its hinted device whenever the split fits there,
        leaving the local search to repair only drift-induced imbalance.
        """
        num_devices = topology.num_devices
        loads = [0.0] * num_devices
        hbm_free = [topology.hbm.capacity_bytes] * num_devices
        host_free = [topology.uvm.capacity_bytes] * num_devices
        device_of = [0] * len(states)

        for state in sorted(states, key=lambda s: -s.cost()):
            chosen = None
            if preferred is not None:
                hint = preferred[state.index]
                if (
                    hbm_free[hint] >= state.hbm_bytes
                    and host_free[hint] >= state.host_bytes()
                ):
                    chosen = hint
            if chosen is None:
                # Least-loaded device fitting the current split.
                for device in sorted(range(num_devices), key=lambda m: loads[m]):
                    if (
                        hbm_free[device] >= state.hbm_bytes
                        and host_free[device] >= state.host_bytes()
                    ):
                        chosen = device
                        break
            if chosen is None:
                # Adapt the split.  Feasible devices are those where the
                # host-driven minimum HBM rows fit the free HBM.
                feasible = []
                for device in range(num_devices):
                    min_rows = state.min_hbm_rows_for_host(host_free[device])
                    if min_rows * state.inputs.row_bytes <= hbm_free[device]:
                        feasible.append((device, min_rows))
                if not feasible:
                    raise PlanError(
                        f"{self.name}: table {state.index} fits no device "
                        "(HBM and host both exhausted)"
                    )
                device, min_rows = min(feasible, key=lambda d: loads[d[0]])
                self._resize_to_fit(state, min_rows, hbm_free[device])
                chosen = device
            device_of[state.index] = chosen
            loads[chosen] += state.cost()
            hbm_free[chosen] -= state.hbm_bytes
            host_free[chosen] -= state.host_bytes()
        return device_of, loads, hbm_free, host_free

    @staticmethod
    def _resize_to_fit(state: _TableState, min_rows: int, hbm_free: int) -> None:
        """Adjust the split to ``min_rows <= hbm_rows`` within ``hbm_free``."""
        max_rows = hbm_free // state.inputs.row_bytes
        icdf = state.inputs.icdf
        # Largest grid step within max_rows.
        step = state.step
        while step > 0 and math.ceil(icdf.rows[step] - 1e-9) > max_rows:
            step -= 1
        state.step = step
        state.extra_rows = 0
        if state.grid_rows < min_rows:
            state.extra_rows = min(min_rows, max_rows) - state.grid_rows

    def _refill(self, states, device_of, hbm_free) -> None:
        """Spend per-device leftover HBM on that device's own tables."""
        by_device: dict[int, list[_TableState]] = {}
        for state in states:
            by_device.setdefault(device_of[state.index], []).append(state)
        for device, members in by_device.items():
            heap: list[tuple[float, int]] = []
            index_of = {s.index: s for s in members}

            def push(state: _TableState) -> None:
                delta = state.next_step_delta()
                if delta is not None:
                    d_cost, d_bytes = delta
                    density = d_cost / d_bytes if d_bytes else float("inf")
                    heapq.heappush(heap, (-density, state.index))

            for state in members:
                push(state)
            while heap:
                _, idx = heapq.heappop(heap)
                state = index_of[idx]
                delta = state.next_step_delta()
                if delta is None:
                    continue
                _, d_bytes = delta
                if d_bytes > hbm_free[device]:
                    continue
                state.advance()
                hbm_free[device] -= d_bytes
                push(state)

    def _recompute_loads(self, states, device_of, num_devices) -> list[float]:
        loads = [0.0] * num_devices
        for state in states:
            loads[device_of[state.index]] += state.cost()
        return loads

    def _local_search(self, states, device_of, loads, hbm_free, host_free):
        """Reduce the makespan by moving or swapping busiest-device tables."""
        for _ in range(self.refine_rounds):
            busiest = max(range(len(loads)), key=lambda m: loads[m])
            if not (
                self._try_move(states, device_of, loads, hbm_free, host_free, busiest)
                or self._try_swap(states, device_of, loads, hbm_free, host_free, busiest)
            ):
                break

    def _transfer(self, state, src, dst, device_of, loads, hbm_free, host_free):
        cost = state.cost()
        device_of[state.index] = dst
        loads[src] -= cost
        loads[dst] += cost
        hbm_free[src] += state.hbm_bytes
        hbm_free[dst] -= state.hbm_bytes
        host_free[src] += state.host_bytes()
        host_free[dst] -= state.host_bytes()

    def _try_move(self, states, device_of, loads, hbm_free, host_free, busiest):
        """One table off the busiest device, if the makespan improves."""
        members = sorted(
            (s for s in states if device_of[s.index] == busiest),
            key=lambda s: -s.cost(),
        )
        others = sorted(
            (m for m in range(len(loads)) if m != busiest),
            key=lambda m: loads[m],
        )
        for state in members:
            cost = state.cost()
            if cost <= 0:
                continue
            for target in others:
                fits = (
                    hbm_free[target] >= state.hbm_bytes
                    and host_free[target] >= state.host_bytes()
                )
                better = (
                    max(loads[busiest] - cost, loads[target] + cost)
                    < loads[busiest]
                )
                if fits and better:
                    self._transfer(
                        state, busiest, target, device_of, loads, hbm_free, host_free
                    )
                    return True
        return False

    def _try_swap(self, states, device_of, loads, hbm_free, host_free, busiest):
        """Exchange a costly busiest-device table for a cheaper one."""
        members = sorted(
            (s for s in states if device_of[s.index] == busiest),
            key=lambda s: -s.cost(),
        )
        others = sorted(
            (m for m in range(len(loads)) if m != busiest),
            key=lambda m: loads[m],
        )
        for mine in members:
            my_cost = mine.cost()
            if my_cost <= 0:
                continue
            for target in others:
                for theirs in states:
                    if device_of[theirs.index] != target:
                        continue
                    their_cost = theirs.cost()
                    if their_cost >= my_cost:
                        continue
                    new_busy = loads[busiest] - my_cost + their_cost
                    new_target = loads[target] + my_cost - their_cost
                    if max(new_busy, new_target) >= loads[busiest] - 1e-12:
                        continue
                    hbm_ok = (
                        hbm_free[target] + theirs.hbm_bytes >= mine.hbm_bytes
                        and hbm_free[busiest] + mine.hbm_bytes >= theirs.hbm_bytes
                    )
                    host_ok = (
                        host_free[target] + theirs.host_bytes() >= mine.host_bytes()
                        and host_free[busiest] + mine.host_bytes() >= theirs.host_bytes()
                    )
                    if not (hbm_ok and host_ok):
                        continue
                    self._transfer(
                        theirs, target, busiest, device_of, loads, hbm_free, host_free
                    )
                    self._transfer(
                        mine, busiest, target, device_of, loads, hbm_free, host_free
                    )
                    return True
        return False
