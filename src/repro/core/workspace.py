"""Planner workspace: per-profile tensors shared across sharder calls.

The planner's inputs are pure statistics (Section 4.2): per-table ICDF
grids, marginal densities, row geometry, and coverage prefixes.  The
scalar pipeline re-derives all of them from the profile on every
``shard`` call — every drift replan and every sweep point pays the same
per-table Python loops again.  A :class:`PlannerWorkspace` hoists that
state into stacked arrays built once per profile:

* the sampled ICDF as dense ``(tables, steps + 1)`` grids — fractional
  rows (exactly the scalar ``icdf_points`` values, produced by the
  vectorized CDF query) and their ceil'd integer row counts;
* marginal matrices over ``(tables, steps)``: coverage gained and rows
  / bytes spent per ICDF step, the raw material of the waterfill's
  marginal-density selection;
* per-table scalars (row bytes, hash size, live rows, coverage,
  pooling, access totals) as flat vectors;
* the coverage-prefix tensors: every table's ``_cum_fraction`` grid,
  ragged-stacked into one flat array with per-table offsets, powering
  batched ``coverage_of_rows`` gathers for whole plan populations.

The workspace is reused across :class:`~repro.core.fast.RecShardFastSharder`
calls, warm-started drift replans (:meth:`refresh` refills the buffers
in place from a new observed profile — no reallocation), and the
:func:`shard_sweep` grids behind ``repro plan --sweep``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.formulation import RecShardInputs, TableInputs
from repro.core.plan import PlanError
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.stats.cdf import PiecewiseICDF


class PlannerWorkspace:
    """Stacked planner statistics for one (model, profile, steps) triple.

    Args:
        model: the model spec being sharded.
        profile: per-table statistics (:class:`~repro.stats.profiler.ModelProfile`).
        steps: ICDF discretization steps (the paper uses 100).
    """

    def __init__(self, model, profile, steps: int = 100):
        if len(profile) != model.num_tables:
            raise ValueError(
                f"profile has {len(profile)} tables, model has "
                f"{model.num_tables}"
            )
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.model = model
        self.steps = int(steps)
        self.num_tables = model.num_tables
        T, S = self.num_tables, self.steps

        # Geometry is fixed by the model; only the statistics refresh.
        self.row_bytes = np.array(
            [t.row_bytes for t in model.tables], dtype=np.int64
        )
        self._elem_bytes = np.array(
            [getattr(t, "dtype_bytes", 4) for t in model.tables],
            dtype=np.int64,
        )
        self._tier_row_bytes_cache: dict[str, np.ndarray] = {}
        self.hash_sizes = np.array(
            [t.num_rows for t in model.tables], dtype=np.int64
        )
        self.total_bytes = self.hash_sizes * self.row_bytes
        self.row_base = np.zeros(T + 1, dtype=np.int64)
        np.cumsum(self.hash_sizes, out=self.row_base[1:])

        # The sampled coverage fractions are one shared uniform grid.
        self.fractions = np.linspace(0.0, 1.0, S + 1)
        self.d_frac = np.diff(self.fractions)

        self.frac_rows = np.empty((T, S + 1), dtype=np.float64)
        self.grid_rows = np.empty((T, S + 1), dtype=np.int64)
        self.d_grid_rows = np.empty((T, S), dtype=np.int64)
        self.live_rows = np.empty(T, dtype=np.int64)
        self.total_accesses = np.empty(T, dtype=np.float64)
        self.coverage = np.empty(T, dtype=np.float64)
        self.avg_pooling = np.empty(T, dtype=np.float64)
        # The coverage-prefix stack is O(sum of hash sizes) — only the
        # batched evaluator reads it, so it is built lazily on first
        # use (and its buffer reused across refreshes).
        self._cum_fraction_flat: np.ndarray | None = None
        self._cum_fraction_valid = False
        self.refresh(profile)

    # ------------------------------------------------------------------
    def refresh(self, profile) -> None:
        """Refill every statistics buffer in place from ``profile``.

        The model geometry (table count, hash sizes, row bytes) must
        match the workspace's; only the profiled statistics change.
        Reusing the allocated buffers is what keeps drift replans cheap
        — the serving layer calls this once per replan.  Any
        :attr:`inputs` previously handed out alias these buffers and
        must be considered stale after a refresh.
        """
        if len(profile) != self.num_tables:
            raise ValueError(
                f"profile has {len(profile)} tables, workspace holds "
                f"{self.num_tables}"
            )
        for j, stats in enumerate(profile):
            if stats.hash_size != self.hash_sizes[j]:
                raise ValueError(
                    f"table {j}: profile hash size {stats.hash_size} != "
                    f"workspace {self.hash_sizes[j]}"
                )
            cdf = stats.cdf
            self.frac_rows[j] = cdf.fractional_rows_for_coverage_many(
                self.fractions
            )
            self.live_rows[j] = cdf.live_rows
            self.total_accesses[j] = stats.total_accesses
            self.coverage[j] = stats.coverage
            self.avg_pooling[j] = stats.avg_pooling
        # Integer grid rows exactly as every scalar consumer rounds
        # them: ceil(rows - 1e-9).
        self.grid_rows[...] = np.ceil(self.frac_rows - 1e-9)
        self.d_grid_rows[...] = self.grid_rows[:, 1:] - self.grid_rows[:, :-1]
        self.live_bytes = self.live_rows * self.row_bytes
        self._profile = profile
        self._cum_fraction_valid = False
        self._inputs = None

    @property
    def profile(self):
        """The profile the buffers were last refreshed from."""
        return self._profile

    def tier_row_bytes(self, precision: str) -> np.ndarray:
        """Per-table row bytes when stored at ``precision``.

        The vectorized twin of
        :func:`~repro.memory.precision.quantized_row_bytes` — ``fp32``
        returns the raw :attr:`row_bytes` array, keeping the default
        ladder's byte math (and therefore its plans) bit-identical to
        the pre-precision planner.  Cached per precision: geometry is
        fixed for the workspace's lifetime.
        """
        cached = self._tier_row_bytes_cache.get(precision)
        if cached is None:
            from repro.memory.precision import PRECISIONS, validate_precision

            validate_precision(precision)
            if precision == "fp32":
                cached = self.row_bytes
            else:
                bits, overhead = PRECISIONS[precision]
                dim = self.row_bytes // self._elem_bytes
                cached = (dim * bits + 7) // 8 + overhead
            self._tier_row_bytes_cache[precision] = cached
        return cached

    @property
    def cum_fraction_flat(self) -> np.ndarray:
        """Every table's coverage prefix, ragged-stacked (lazy)."""
        if not self._cum_fraction_valid:
            if self._cum_fraction_flat is None:
                self._cum_fraction_flat = np.empty(
                    int(self.row_base[-1]), dtype=np.float64
                )
            for j, stats in enumerate(self._profile):
                self._cum_fraction_flat[
                    self.row_base[j]: self.row_base[j + 1]
                ] = stats.cdf.cum_fraction
            self._cum_fraction_valid = True
        return self._cum_fraction_flat

    # ------------------------------------------------------------------
    @property
    def inputs(self) -> RecShardInputs:
        """The scalar pipeline's :class:`RecShardInputs` view.

        Built lazily (per refresh) from the workspace buffers; the
        per-table ``PiecewiseICDF`` objects are zero-copy views of the
        stacked grids, so the scalar helpers (`LPT assignment`, split
        resizing) the two sharder paths share read the same numbers.
        """
        if self._inputs is None:
            tables = []
            for j, spec in enumerate(self.model.tables):
                tables.append(
                    TableInputs(
                        name=spec.name,
                        row_bytes=int(self.row_bytes[j]),
                        hash_size=int(self.hash_sizes[j]),
                        live_rows=int(self.live_rows[j]),
                        icdf=PiecewiseICDF(
                            fractions=self.fractions,
                            rows=self.frac_rows[j],
                        ),
                        avg_pooling=float(self.avg_pooling[j]),
                        coverage=float(self.coverage[j]),
                        total_accesses=float(self.total_accesses[j]),
                    )
                )
            self._inputs = RecShardInputs(tables=tuple(tables))
        return self._inputs

    # ------------------------------------------------------------------
    def leading_expected_counts(
        self, limits
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expected access counts of each table's leading ranked rows.

        ``limits[j]`` asks for the ``limits[j]`` hottest rows of table
        ``j`` (clipped to the hash size).  Expected counts are read as
        adjacent differences of the coverage-prefix stack scaled by the
        table's access total — one flat gather for all tables, the bulk
        query replica selection (:mod:`repro.core.replicate`) runs
        instead of a per-table ``counts[row_order[:k]]`` gather loop.

        Returns:
            ``(counts, tables, ranks)`` flat arrays: expected count,
            owning table, and frequency rank of every requested row,
            grouped by table in rank order.
        """
        limits = np.clip(np.asarray(limits, dtype=np.int64), 0, self.hash_sizes)
        if limits.shape != (self.num_tables,):
            raise ValueError(
                f"limits must give one row count per table "
                f"({self.num_tables}), got shape {limits.shape}"
            )
        total = int(limits.sum())
        tables = np.repeat(np.arange(self.num_tables), limits)
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return np.empty(0, dtype=np.float64), tables, empty
        starts = np.zeros(self.num_tables, dtype=np.int64)
        np.cumsum(limits[:-1], out=starts[1:])
        ranks = np.arange(total, dtype=np.int64) - np.repeat(starts, limits)
        idx = self.row_base[tables] + ranks
        flat = self.cum_fraction_flat
        cum = flat[idx]
        prev = np.where(ranks > 0, flat[np.maximum(idx - 1, 0)], 0.0)
        counts = (cum - prev) * self.total_accesses[tables]
        return counts, tables, ranks

    # ------------------------------------------------------------------
    def coverage_of_rows_grid(self, rows: np.ndarray) -> np.ndarray:
        """Batched ``coverage_of_rows`` over a ``(..., tables)`` grid.

        ``rows[..., j]`` is a cumulative hot-row count for table ``j``;
        the result matches the scalar method element for element
        (including the 0 / ``hash_size`` edges and zero-access tables).
        One flat gather serves every (plan, table, tier) query of the
        batched evaluator at once.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.shape[-1] != self.num_tables:
            raise ValueError(
                f"last axis must span {self.num_tables} tables, got "
                f"{rows.shape[-1]}"
            )
        idx = self.row_base[:-1] + np.clip(rows - 1, 0, self.hash_sizes - 1)
        out = self.cum_fraction_flat[idx]
        out = np.where(rows <= 0, 0.0, out)
        out = np.where(rows >= self.hash_sizes, 1.0, out)
        return np.where(self.total_accesses > 0, out, 0.0)

    def coverage_of_rows_at(
        self, tables: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """``coverage_of_rows`` at arbitrary ``(table, row)`` pairs.

        Unlike :meth:`coverage_of_rows_grid`, the query is ragged: each
        element names its own table, so callers with a different row
        count per table (the strategy evaluator's twrw cut points) pay
        one flat gather instead of padding to a dense grid.  Edge
        semantics match the scalar method exactly.
        """
        tables = np.asarray(tables, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        if tables.shape != rows.shape:
            raise ValueError(
                f"tables {tables.shape} and rows {rows.shape} must match"
            )
        sizes = self.hash_sizes[tables]
        idx = self.row_base[tables] + np.clip(rows - 1, 0, sizes - 1)
        out = self.cum_fraction_flat[idx]
        out = np.where(rows <= 0, 0.0, out)
        out = np.where(rows >= sizes, 1.0, out)
        return np.where(self.total_accesses[tables] > 0, out, 0.0)


def _scale_hbm(topology: SystemTopology, scale: float) -> SystemTopology:
    """A copy of ``topology`` with the HBM tier's capacity scaled."""
    hbm = topology.tiers[0]
    scaled = MemoryTier(
        name=hbm.name,
        capacity_bytes=int(round(hbm.capacity_bytes * scale)),
        bandwidth=hbm.bandwidth,
    )
    return SystemTopology(
        num_devices=topology.num_devices,
        tiers=(scaled,) + topology.tiers[1:],
    )


def validate_scale_grid(values, name: str, allow_zero: bool = False):
    """Up-front validation of a numeric sweep grid.

    Every point must be finite and positive (or zero, for budgets where
    "none" is a legitimate point).  Raises :class:`PlanError` naming the
    offending point — the waterfill's own failure modes on a bad scale
    (negative capacities, NaN marginal densities) surface deep inside
    the solve with no grid context.
    """
    checked = []
    for value in values:
        scale = float(value)
        ok = math.isfinite(scale) and (
            scale > 0 or (allow_zero and scale == 0)
        )
        if not ok:
            requirement = ">= 0" if allow_zero else "> 0"
            raise PlanError(
                f"sweep point {name}={scale:g}: grid values must be "
                f"finite and {requirement}"
            )
        checked.append(scale)
    return checked


def shard_sweep(
    workspace: PlannerWorkspace,
    *,
    sharder,
    topologies=None,
    budgets=None,
    replicate_gib=None,
    strategies=None,
    precisions=None,
    base_topology: SystemTopology | None = None,
    labels=None,
    replicate_scale: float = 1.0,
):
    """Shard one profile across a grid of topologies or budgets.

    The grid reuses ``workspace`` for every point, so a sweep costs one
    statistics build plus one vectorized solve per point — the access
    pattern behind Figure 12/13-style studies and ``repro plan --sweep``.

    Args:
        workspace: the profile's :class:`PlannerWorkspace`.
        sharder: a :class:`~repro.core.fast.RecShardFastSharder` or
            :class:`~repro.core.multitier.MultiTierSharder` (or any
            object exposing ``shard_from_workspace``).
        topologies: explicit grid of :class:`SystemTopology` points
            (mutually exclusive with the other grids).  Points may
            differ in tier count — the tier-count scaling study of
            Section 4.4.
        budgets: HBM capacity scale factors applied to
            ``base_topology``'s first tier.
        replicate_gib: per-device hot-row replica budgets in GiB — each
            point carves the budget from ``base_topology``'s fastest
            tier, shards the remainder, and spends the carved bytes on
            replicas (:func:`~repro.core.replicate.plan_with_replication`),
            yielding :class:`~repro.core.replicate.ReplicatedPlan`\\ s.
        strategies: grid of per-table strategy sets — each point is one
            token (``row`` / ``table`` / ``column`` / ``twrw`` /
            ``auto``) handed to
            :func:`~repro.core.strategies.plan_with_strategies`,
            yielding :class:`~repro.core.strategies.StrategyPlan`\\ s.
        precisions: grid of cold-tier storage precisions — each point
            is one precision name (``fp32`` / ``fp16`` / ``int8`` /
            ``int4``) applied to every tier of ``base_topology`` except
            the fastest, which keeps its own precision.  ``fp32`` is
            the unquantized baseline point.
        base_topology: required with ``budgets`` / ``replicate_gib`` /
            ``strategies`` / ``precisions``.
        labels: optional explicit ``sweep_key`` per ``topologies`` point
            (e.g. ``tiers=3``); defaults to ``gpus=<n>``.
        replicate_scale: capacity scale applied to the GiB budgets (the
            same shrink factor every other capacity knob uses).

    Returns:
        One plan per grid point, each stamped with a ``sweep_key`` in
        its metadata (``gpus=<n>`` / ``hbm_scale=<s>`` /
        ``replicate_gib=<g>`` / a ``labels`` entry).
    """
    grids = [
        g is not None
        for g in (topologies, budgets, replicate_gib, strategies, precisions)
    ]
    if sum(grids) != 1:
        raise ValueError(
            "provide exactly one of topologies=, budgets=, "
            "replicate_gib=, strategies=, or precisions="
        )
    sharder_steps = getattr(sharder, "steps", None)
    if sharder_steps is not None and sharder_steps != workspace.steps:
        raise ValueError(
            f"workspace sampled {workspace.steps} ICDF steps, sharder "
            f"expects {sharder_steps}"
        )
    if strategies is not None:
        from repro.core.strategies import plan_with_strategies

        if base_topology is None:
            raise ValueError("strategies= requires base_topology=")
        if labels is not None:
            raise ValueError("labels= applies to topologies= grids")
        plans = []
        for token in strategies:
            try:
                plan = plan_with_strategies(
                    sharder, workspace.model, workspace.profile,
                    base_topology, strategies=token, workspace=workspace,
                )
            except (PlanError, ValueError) as error:
                raise PlanError(
                    f"sweep point strategies={token}: {error}"
                ) from error
            plan.metadata["sweep_key"] = f"strategies={token}"
            plans.append(plan)
        return plans
    if replicate_gib is not None:
        from repro.core.replicate import (
            ReplicationPolicy,
            plan_with_replication,
        )
        from repro.memory.presets import GIB

        if base_topology is None:
            raise ValueError("replicate_gib= requires base_topology=")
        if labels is not None:
            raise ValueError("labels= applies to topologies= grids")
        replicate_gib = validate_scale_grid(
            replicate_gib, "replicate_gib", allow_zero=True
        )
        plans = []
        for gib in replicate_gib:
            policy = ReplicationPolicy(
                capacity_bytes=int(gib * GIB * replicate_scale)
            )
            try:
                plan = plan_with_replication(
                    sharder, workspace.model, workspace.profile,
                    base_topology, policy, workspace=workspace,
                )
            except PlanError as error:
                raise PlanError(
                    f"sweep point replicate_gib={gib:g}: {error}"
                ) from error
            plan.metadata["sweep_key"] = f"replicate_gib={gib:g}"
            plans.append(plan)
        return plans
    if precisions is not None:
        from repro.memory.precision import validate_precision

        if base_topology is None:
            raise ValueError("precisions= requires base_topology=")
        if labels is not None:
            raise ValueError("labels= applies to topologies= grids")
        cold = base_topology.tier_names[1:]
        points = []
        for token in precisions:
            try:
                validate_precision(token)
            except ValueError as error:
                raise PlanError(
                    f"sweep point precisions={token}: {error}"
                ) from error
            point = (
                base_topology.with_precisions(dict.fromkeys(cold, token))
                if cold
                else base_topology
            )
            points.append((f"precisions={token}", point))
    elif budgets is not None:
        if base_topology is None:
            raise ValueError("budgets= requires base_topology=")
        if labels is not None:
            raise ValueError("labels= applies to topologies= grids")
        budgets = validate_scale_grid(budgets, "hbm_scale")
        points = [
            (f"hbm_scale={scale:g}", _scale_hbm(base_topology, scale))
            for scale in budgets
        ]
    else:
        topologies = list(topologies)
        if labels is None:
            labels = [f"gpus={t.num_devices}" for t in topologies]
        elif len(labels) != len(topologies):
            raise ValueError(
                f"{len(labels)} labels for {len(topologies)} topologies"
            )
        points = list(zip(labels, topologies))
    plans = []
    for key, topology in points:
        try:
            plan = sharder.shard_from_workspace(workspace, topology)
        except PlanError as error:
            raise PlanError(f"sweep point {key}: {error}") from error
        plan.metadata["sweep_key"] = key
        plans.append(plan)
    return plans
