"""RecShard's MILP formulation (Section 4.2, Constraints 1-12).

Decision structure, following Table 1 and the paper's constraints:

* ``p[m][j]`` — binary: table *j* is assigned to GPU *m* (Constraints 2-3).
* ``pct[j]`` — fraction of table *j*'s accesses served from HBM
  (Constraint 5's split point).
* ``mem[j]`` — HBM bytes needed to cover ``pct[j]`` of accesses, derived
  from the inverse value-frequency CDF (Constraint 4).
* Per-GPU HBM and host-DRAM capacity limits (Constraints 9-10).
* Per-table cost ``c_j`` combining HBM- and UVM-served access fractions
  with the tier bandwidths (Constraint 11), weighted by coverage and
  summed per GPU (Constraint 12); the objective minimizes the maximum
  per-GPU cost ``C`` (Constraint 1).

Two encodings of the ICDF are provided:

* ``"step"`` — the paper's: one binary ``x[i][j]`` per ICDF step
  (Constraints 4-7).
* ``"convex"`` — equivalent, exploiting that every descending-frequency
  ICDF is convex: ``mem[j]`` is bounded below by the chords of the
  sampled ICDF, eliminating the per-step binaries.  See
  :meth:`repro.stats.cdf.PiecewiseICDF.convex_cuts`.

The per-GPU capacity and cost terms multiply the binary ``p[m][j]`` with
the continuous ``pct[j]`` / ``mem[j]``; these bilinear products are
linearized exactly with the standard bounded-product constraints
(``w = p * pct``, ``u = p * mem``), which is what a commercial solver
does internally for such terms.

Units: memory in MiB, time in milliseconds — this keeps the constraint
matrix well-scaled for HiGHS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.model import ModelSpec
from repro.memory.topology import SystemTopology
from repro.milp.model import LinExpr, Model, Var, lin_sum
from repro.stats.cdf import PiecewiseICDF
from repro.stats.profiler import ModelProfile

MIB = 2**20
_MS = 1e3  # seconds -> milliseconds


@dataclass(frozen=True)
class TableInputs:
    """Everything the MILP needs to know about one embedding table."""

    name: str
    row_bytes: int
    hash_size: int
    live_rows: int
    icdf: PiecewiseICDF
    avg_pooling: float
    coverage: float
    total_accesses: float

    @property
    def total_bytes(self) -> int:
        return self.hash_size * self.row_bytes

    @property
    def live_bytes(self) -> int:
        return self.live_rows * self.row_bytes


@dataclass(frozen=True)
class RecShardInputs:
    """MILP inputs for a whole model."""

    tables: tuple[TableInputs, ...]

    @classmethod
    def from_profile(
        cls, model: ModelSpec, profile: ModelProfile, steps: int = 100
    ) -> "RecShardInputs":
        """Derive inputs from a model spec plus its training-data profile."""
        if len(profile) != model.num_tables:
            raise ValueError(
                f"profile has {len(profile)} tables, model has {model.num_tables}"
            )
        tables = []
        for spec, stats in zip(model.tables, profile):
            tables.append(
                TableInputs(
                    name=spec.name,
                    row_bytes=spec.row_bytes,
                    hash_size=spec.num_rows,
                    live_rows=stats.cdf.live_rows,
                    icdf=stats.cdf.icdf_points(steps),
                    avg_pooling=stats.avg_pooling,
                    coverage=stats.coverage,
                    total_accesses=stats.total_accesses,
                )
            )
        return cls(tables=tuple(tables))

    def __len__(self) -> int:
        return len(self.tables)


@dataclass
class FormulationHandles:
    """The built model plus the variables needed to extract a plan."""

    model: Model
    assign: list[list[Var]]  # assign[m][j] == p_mj
    pct: list[Var]  # pct[j], HBM-served access fraction
    mem: list[Var]  # mem[j], HBM MiB
    max_cost: Var  # C, the minimized makespan (ms)
    device_costs: list[LinExpr]  # c_m expressions (ms)


def build_milp(
    inputs: RecShardInputs,
    topology: SystemTopology,
    batch_size: int,
    formulation: str = "convex",
    use_coverage: bool = True,
    use_pooling: bool = True,
    reclaim_dead: bool = False,
    symmetry_breaking: bool = True,
) -> FormulationHandles:
    """Build the two-tier RecShard MILP.

    Args:
        inputs: per-table statistics.
        topology: two-tier (HBM + UVM) system.
        batch_size: training batch size ``B`` (Constraint 11).
        formulation: ``"convex"`` (default) or ``"step"`` (paper-faithful).
        use_coverage: when False, coverage is treated as 1 for every
            table (the Table 6 ablation).
        use_pooling: when False, the average pooling factor is treated
            as 1 for every table (the Table 6 ablation).
        reclaim_dead: when True, rows never observed in the profile are
            not charged against UVM capacity (Section 3.4's reclaim).
        symmetry_breaking: order per-GPU costs to break device symmetry,
            which speeds up branch and bound on homogeneous nodes.
    """
    if topology.num_tiers != 2:
        raise ValueError(
            "build_milp targets the two-tier hierarchy; use MultiTierSharder "
            f"for {topology.num_tiers} tiers"
        )
    if formulation not in ("convex", "step"):
        raise ValueError(f"unknown formulation {formulation!r}")

    num_devices = topology.num_devices
    num_tables = len(inputs)
    cap_hbm_mib = topology.hbm.capacity_bytes / MIB
    cap_host_mib = topology.uvm.capacity_bytes / MIB
    inv_bw_hbm = 1.0 / topology.hbm.bandwidth
    inv_bw_uvm = 1.0 / topology.uvm.bandwidth

    model = Model("recshard")
    max_cost = model.continuous_var(lb=0.0, name="C")

    # p_mj: table -> GPU assignment (Constraints 2-3).
    assign = [
        [model.binary_var(name=f"p[{m}][{j}]") for j in range(num_tables)]
        for m in range(num_devices)
    ]
    for j in range(num_tables):
        model.add(
            lin_sum(assign[m][j] for m in range(num_devices)) == 1,
            name=f"assign_once[{j}]",
        )

    pct: list[Var] = []
    mem: list[Var] = []
    for j, table in enumerate(inputs.tables):
        live_mib = table.live_bytes / MIB
        has_accesses = table.total_accesses > 0
        pct_j = model.continuous_var(
            lb=0.0, ub=1.0 if has_accesses else 0.0, name=f"pct[{j}]"
        )
        mem_j = model.continuous_var(lb=0.0, ub=live_mib, name=f"mem[{j}]")
        pct.append(pct_j)
        mem.append(mem_j)
        if not has_accesses:
            model.add(mem_j <= 0.0, name=f"mem_zero[{j}]")
            continue
        row_mib = table.row_bytes / MIB
        if formulation == "convex":
            # mem >= every chord of the sampled ICDF; the chords' upper
            # envelope equals the piecewise-linear ICDF (convexity).
            for k, (slope, intercept) in enumerate(table.icdf.convex_cuts()):
                model.add(
                    mem_j >= pct_j * (slope * row_mib) + intercept * row_mib,
                    name=f"icdf_cut[{j}][{k}]",
                )
        else:
            # The paper's step binaries (Constraints 4-7).
            steps = table.icdf.steps
            x = [model.binary_var(name=f"x[{i}][{j}]") for i in range(steps + 1)]
            model.add(lin_sum(x) == 1, name=f"one_step[{j}]")
            model.add(
                lin_sum(
                    x[i] * float(table.icdf.fractions[i]) for i in range(steps + 1)
                )
                == pct_j,
                name=f"step_pct[{j}]",
            )
            model.add(
                lin_sum(
                    x[i] * (float(table.icdf.rows[i]) * row_mib)
                    for i in range(steps + 1)
                )
                == mem_j,
                name=f"step_mem[{j}]",
            )

    # Linearized products w = p * pct and u = p * mem, then capacity and
    # cost constraints per device.
    device_costs: list[LinExpr] = []
    for m in range(num_devices):
        hbm_terms: list = []
        host_terms: list = []
        cost_terms: list = []
        for j, table in enumerate(inputs.tables):
            p_mj = assign[m][j]
            live_mib = table.live_bytes / MIB
            uvm_charge_mib = (
                table.live_bytes if reclaim_dead else table.total_bytes
            ) / MIB

            u_mj = model.continuous_var(lb=0.0, ub=live_mib, name=f"u[{m}][{j}]")
            model.add(u_mj <= p_mj * live_mib, name=f"u_on[{m}][{j}]")
            model.add(u_mj <= mem[j] + 0.0, name=f"u_mem[{m}][{j}]")
            model.add(
                u_mj >= mem[j] - (1.0 - p_mj) * live_mib, name=f"u_lb[{m}][{j}]"
            )
            hbm_terms.append(u_mj)
            host_terms.append(p_mj * uvm_charge_mib - u_mj)

            if table.total_accesses <= 0:
                continue
            w_mj = model.continuous_var(lb=0.0, ub=1.0, name=f"w[{m}][{j}]")
            model.add(w_mj <= p_mj + 0.0, name=f"w_on[{m}][{j}]")
            model.add(w_mj <= pct[j] + 0.0, name=f"w_pct[{m}][{j}]")
            model.add(w_mj >= pct[j] + p_mj - 1.0, name=f"w_lb[{m}][{j}]")

            # Constraint 11: per-step demand (pool * dim * bytes * B),
            # split between HBM and UVM by the chosen access fractions.
            pooling = table.avg_pooling if use_pooling else 1.0
            coverage = table.coverage if use_coverage else 1.0
            demand_bytes = pooling * table.row_bytes * batch_size
            weight = coverage * demand_bytes * _MS
            # p*c_j = weight * (w/BW_hbm + (p - w)/BW_uvm)
            cost_terms.append(w_mj * (weight * (inv_bw_hbm - inv_bw_uvm)))
            cost_terms.append(p_mj * (weight * inv_bw_uvm))

        model.add(lin_sum(hbm_terms) <= cap_hbm_mib, name=f"cap_hbm[{m}]")
        model.add(lin_sum(host_terms) <= cap_host_mib, name=f"cap_host[{m}]")
        cost_m = lin_sum(cost_terms)
        device_costs.append(cost_m)
        model.add(cost_m <= max_cost + 0.0, name=f"makespan[{m}]")  # Constraint 1

    if symmetry_breaking:
        # Devices are interchangeable; forcing non-increasing cost order
        # removes the M! permutation symmetry from the search tree.
        for m in range(num_devices - 1):
            model.add(
                device_costs[m] >= device_costs[m + 1], name=f"sym[{m}]"
            )

    # Primary objective: the makespan C (Constraint 1).  A vanishing
    # secondary term rewards HBM coverage on non-critical devices, which
    # the makespan alone leaves unconstrained (solver indifference would
    # otherwise strand free HBM).
    total_cost_scale = sum(
        (t.coverage if use_coverage else 1.0)
        * (t.avg_pooling if use_pooling else 1.0)
        * t.row_bytes
        * batch_size
        * _MS
        * inv_bw_uvm
        for t in inputs.tables
    )
    epsilon = 1e-6 * max(total_cost_scale, 1e-12) / max(1, num_tables)
    model.minimize(max_cost - epsilon * lin_sum(pct))
    return FormulationHandles(
        model=model,
        assign=assign,
        pct=pct,
        mem=mem,
        max_cost=max_cost,
        device_costs=device_costs,
    )
