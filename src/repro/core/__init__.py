"""RecShard core: fine-grained EMB partitioning and placement.

The paper's primary contribution (Section 4): given per-table statistics
(frequency CDF, average pooling factor, coverage) and a tiered memory
topology, solve a MILP that simultaneously picks per-table HBM/UVM row
splits and table-to-GPU assignments minimizing the maximum per-GPU
embedding cost, then remap hashed indices so hot rows are contiguous.
"""

from repro.core.plan import PlanError, ShardingPlan, TablePlacement
from repro.core.remap import RemappingLayer, RemappingTable
from repro.core.formulation import RecShardInputs, TableInputs, build_milp
from repro.core.workspace import PlannerWorkspace, shard_sweep
from repro.core.evaluate import (
    expected_device_costs_ms,
    expected_device_costs_ms_many,
    expected_max_cost_ms,
    stamp_estimated_costs,
)
from repro.core.recshard import RecShardSharder
from repro.core.fast import RecShardFastSharder
from repro.core.multitier import MultiTierSharder

__all__ = [
    "MultiTierSharder",
    "PlanError",
    "PlannerWorkspace",
    "RecShardFastSharder",
    "RecShardInputs",
    "RecShardSharder",
    "RemappingLayer",
    "RemappingTable",
    "ShardingPlan",
    "TableInputs",
    "TablePlacement",
    "build_milp",
    "expected_device_costs_ms",
    "expected_device_costs_ms_many",
    "expected_max_cost_ms",
    "shard_sweep",
    "stamp_estimated_costs",
]
