"""RecShard core: fine-grained EMB partitioning and placement.

The paper's primary contribution (Section 4): given per-table statistics
(frequency CDF, average pooling factor, coverage) and a tiered memory
topology, solve a MILP that simultaneously picks per-table HBM/UVM row
splits and table-to-GPU assignments minimizing the maximum per-GPU
embedding cost, then remap hashed indices so hot rows are contiguous.
"""

from repro.core.plan import PlanError, ShardingPlan, TablePlacement
from repro.core.remap import RemappingLayer, RemappingTable
from repro.core.formulation import RecShardInputs, TableInputs, build_milp
from repro.core.replicate import (
    ReplicatedPlan,
    ReplicationPolicy,
    build_replication,
    carve_replica_budget,
    plan_with_replication,
)
from repro.core.quantize import (
    dequantize_rows,
    expected_rel_error,
    measured_rel_error,
    quantize_by_tiers,
    quantize_dequantize,
    quantize_rows,
)
from repro.core.workspace import (
    PlannerWorkspace,
    shard_sweep,
    validate_scale_grid,
)
from repro.core.evaluate import (
    expected_device_costs_ms,
    expected_device_costs_ms_many,
    expected_max_cost_ms,
    stamp_estimated_costs,
)
from repro.core.strategies import (
    STRATEGY_KINDS,
    StrategyPlan,
    TableStrategy,
    plan_with_strategies,
    proportional_split,
    resolve_strategy_kinds,
    strategy_device_costs_ms,
    twrw_cell_rows,
)
from repro.core.recshard import RecShardSharder
from repro.core.fast import RecShardFastSharder
from repro.core.multitier import MultiTierSharder

__all__ = [
    "MultiTierSharder",
    "PlanError",
    "PlannerWorkspace",
    "RecShardFastSharder",
    "RecShardInputs",
    "RecShardSharder",
    "RemappingLayer",
    "RemappingTable",
    "ReplicatedPlan",
    "ReplicationPolicy",
    "STRATEGY_KINDS",
    "ShardingPlan",
    "StrategyPlan",
    "TableInputs",
    "TablePlacement",
    "TableStrategy",
    "build_milp",
    "build_replication",
    "carve_replica_budget",
    "dequantize_rows",
    "expected_device_costs_ms",
    "expected_device_costs_ms_many",
    "expected_max_cost_ms",
    "expected_rel_error",
    "measured_rel_error",
    "plan_with_replication",
    "plan_with_strategies",
    "proportional_split",
    "quantize_by_tiers",
    "quantize_dequantize",
    "quantize_rows",
    "resolve_strategy_kinds",
    "shard_sweep",
    "stamp_estimated_costs",
    "strategy_device_costs_ms",
    "twrw_cell_rows",
    "validate_scale_grid",
]
