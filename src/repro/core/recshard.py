"""RecShard: the MILP-driven sharder (Section 4).

Ties the pipeline together: per-table statistics in, MILP out, plan
extracted from the solution.  Matches Figure 10's phase 2 ("Embedding
Table Partitioning and Placement"); phase 1 is :mod:`repro.stats` and
phase 3 is :mod:`repro.core.remap`.
"""

from __future__ import annotations

import heapq
import math
import time

import numpy as np

from repro.core.evaluate import expected_device_costs_ms_many
from repro.core.fast import RecShardFastSharder
from repro.core.formulation import MIB, RecShardInputs, build_milp
from repro.core.plan import ShardingPlan, TablePlacement
from repro.core.workspace import PlannerWorkspace
from repro.memory.topology import SystemTopology
from repro.milp.result import SolveResult


class RecShardSharder:
    """Data-driven EMB sharder optimizing max per-GPU embedding cost.

    Args:
        batch_size: training batch size (enters the cost model).
        formulation: ``"convex"`` (default) or ``"step"`` (the paper's
            per-step binaries) — see :mod:`repro.core.formulation`.
        steps: ICDF discretization steps (the paper uses 100).
        backend: MILP backend, ``"highs"`` or ``"branch_bound"``.
        time_limit: solver wall-clock budget in seconds.
        mip_gap: relative optimality gap at which the solver may stop.
        use_coverage / use_pooling: Table 6 ablation switches.
        reclaim_dead: do not charge never-accessed rows against UVM
            capacity (Section 3.4's reclaimable space).
        fallback: when the MILP yields no incumbent in time, fall back
            to :class:`RecShardFastSharder` (None disables).
    """

    def __init__(
        self,
        batch_size: int,
        formulation: str = "convex",
        steps: int = 100,
        backend: str = "highs",
        time_limit: float = 120.0,
        mip_gap: float = 0.02,
        use_coverage: bool = True,
        use_pooling: bool = True,
        reclaim_dead: bool = False,
        symmetry_breaking: bool = True,
        fallback: bool = True,
        name: str = "RecShard",
    ):
        self.batch_size = int(batch_size)
        self.formulation = formulation
        self.steps = int(steps)
        self.backend = backend
        self.time_limit = time_limit
        self.mip_gap = mip_gap
        self.use_coverage = use_coverage
        self.use_pooling = use_pooling
        self.reclaim_dead = reclaim_dead
        self.symmetry_breaking = symmetry_breaking
        self.fallback = fallback
        self.name = name

    # ------------------------------------------------------------------
    def shard(self, model, profile, topology: SystemTopology) -> ShardingPlan:
        """Produce a sharding plan for ``model`` on ``topology``.

        Solves the MILP; when ``fallback`` is on, also runs the fast
        heuristic as a primal bound and returns whichever plan has the
        lower expected makespan (commercial solvers seed branch and
        bound with such heuristics internally; HiGHS via scipy cannot be
        warm-started, so the comparison happens here instead).
        """
        # One workspace feeds everything: its lazily-built inputs view
        # is value-identical to RecShardInputs.from_profile (the parity
        # the planner tests pin), and the fast-fallback solve and the
        # tie-break evaluation below reuse it instead of re-deriving
        # per-table statistics.
        workspace = PlannerWorkspace(model, profile, steps=self.steps)
        inputs = workspace.inputs
        start = time.perf_counter()
        handles = build_milp(
            inputs,
            topology,
            batch_size=self.batch_size,
            formulation=self.formulation,
            use_coverage=self.use_coverage,
            use_pooling=self.use_pooling,
            reclaim_dead=self.reclaim_dead,
            symmetry_breaking=self.symmetry_breaking,
        )
        build_time = time.perf_counter() - start
        result = handles.model.solve(
            backend=self.backend, time_limit=self.time_limit, mip_gap=self.mip_gap
        )

        milp_plan = None
        if result.status.has_solution:
            milp_plan = self._extract_plan(inputs, topology, handles, result)
            milp_plan.metadata.update(
                {
                    "solver": f"milp/{self.backend}/{self.formulation}",
                    "milp_status": result.status.value,
                    "objective_ms": result.objective,
                    "solve_seconds": result.solve_time,
                    "build_seconds": build_time,
                    "mip_gap": result.gap,
                    "variables": len(handles.model.variables),
                    "constraints": len(handles.model.constraints),
                }
            )
        elif not self.fallback:
            raise RuntimeError(
                f"MILP produced no incumbent (status={result.status}); "
                "enable fallback or raise time_limit"
            )

        if not self.fallback:
            return milp_plan

        # The heuristic candidate comes from the vectorized workspace
        # path (plan-parity-identical to the scalar solve, ~15x faster).
        fast_plan = RecShardFastSharder(
            batch_size=self.batch_size,
            steps=self.steps,
            use_coverage=self.use_coverage,
            use_pooling=self.use_pooling,
            reclaim_dead=self.reclaim_dead,
            name=self.name,
        ).shard_from_workspace(workspace, topology)
        if milp_plan is None:
            fast_plan.metadata["solver"] = "fast-fallback"
            fast_plan.metadata["milp_status"] = result.status.value
            return fast_plan

        # Both candidates scored by the batched evaluator in one call —
        # the tie-break between the MILP incumbent and the heuristic is
        # a two-plan population.
        milp_cost, fast_cost = expected_device_costs_ms_many(
            [milp_plan, fast_plan], model, profile, topology,
            self.batch_size, workspace=workspace,
        ).max(axis=1)
        milp_cost, fast_cost = float(milp_cost), float(fast_cost)
        if fast_cost < milp_cost:
            fast_plan.metadata.update(
                {
                    "solver": "fast-beat-milp",
                    "milp_status": result.status.value,
                    "milp_objective_ms": result.objective,
                    "solve_seconds": result.solve_time,
                    "expected_max_cost_ms": fast_cost,
                    "milp_expected_max_cost_ms": milp_cost,
                }
            )
            fast_plan.strategy = self.name
            return fast_plan
        milp_plan.metadata["expected_max_cost_ms"] = milp_cost
        milp_plan.metadata["fast_expected_max_cost_ms"] = fast_cost
        return milp_plan

    # ------------------------------------------------------------------
    def _extract_plan(
        self,
        inputs: RecShardInputs,
        topology: SystemTopology,
        handles,
        result: SolveResult,
    ) -> ShardingPlan:
        """Turn MILP variable values into a concrete, feasible plan.

        Rows for the chosen access fraction come from the piecewise
        ICDF, which lies at or above the true (convex) rows curve, so
        ``ceil(PL(pct))`` rows always cover ``pct`` of accesses; the
        solver's ``mem`` budget caps the result to preserve capacity
        feasibility (float slack is repaired afterwards).
        """
        placements = []
        for j, table in enumerate(inputs.tables):
            device = max(
                range(topology.num_devices),
                key=lambda m: result.value(handles.assign[m][j]),
            )
            mem_bytes = result.value(handles.mem[j]) * MIB + 1e-6
            pct_value = min(1.0, max(0.0, result.value(handles.pct[j])))
            icdf = table.icdf
            wanted = math.ceil(icdf.interpolate_rows(pct_value) - 1e-9)
            budget = int(mem_bytes // table.row_bytes)
            hbm_rows = max(0, min(wanted, budget, table.hash_size))
            placements.append(
                TablePlacement(
                    table_index=j,
                    device=device,
                    rows_per_tier=(hbm_rows, table.hash_size - hbm_rows),
                )
            )
        self._repair_capacity(placements, inputs, topology)
        self._refill_free_hbm(placements, inputs, topology)
        metadata = {}
        if self.reclaim_dead:
            metadata["reclaim_dead"] = True
            metadata["dead_rows"] = [
                t.hash_size - t.live_rows for t in inputs.tables
            ]
        return ShardingPlan(
            strategy=self.name, placements=placements, metadata=metadata
        )

    def _refill_free_hbm(self, placements, inputs, topology) -> None:
        """Spend leftover per-device HBM on the densest remaining splits.

        The makespan objective leaves non-critical devices' splits
        unconstrained; this pass promotes their hottest UVM rows into
        the HBM the solver left free (pure improvement: promotions never
        increase any device's cost).
        """
        cap = topology.hbm.capacity_bytes
        for device in range(topology.num_devices):
            members = [
                (i, p) for i, p in enumerate(placements) if p.device == device
            ]
            free = cap - sum(
                p.hbm_rows * inputs.tables[p.table_index].row_bytes
                for _, p in members
            )
            if free <= 0:
                continue
            # Track each table's current ICDF step (largest grid point at
            # or below its current HBM rows).
            steps = {}
            for i, p in members:
                icdf = inputs.tables[p.table_index].icdf
                step = (
                    int(np.searchsorted(icdf.rows, p.hbm_rows + 1e-9, side="right")) - 1
                )
                steps[i] = max(0, step)

            heap = []

            def push(i: int) -> None:
                placement = placements[i]
                table = inputs.tables[placement.table_index]
                icdf = table.icdf
                step = steps[i]
                if step >= icdf.steps or table.total_accesses <= 0:
                    return
                new_rows = math.ceil(icdf.rows[step + 1] - 1e-9)
                d_rows = new_rows - placement.hbm_rows
                if d_rows <= 0:
                    steps[i] = step + 1
                    push(i)
                    return
                d_frac = float(icdf.fractions[step + 1] - icdf.fractions[step])
                gain = table.coverage * table.avg_pooling * d_frac
                heapq.heappush(heap, (-gain / d_rows, i, d_rows))

            for i, _ in members:
                push(i)
            while heap:
                _, i, d_rows = heapq.heappop(heap)
                placement = placements[i]
                table = inputs.tables[placement.table_index]
                d_bytes = d_rows * table.row_bytes
                if d_bytes > free:
                    continue
                new_hbm = placement.hbm_rows + d_rows
                placements[i] = TablePlacement(
                    table_index=placement.table_index,
                    device=device,
                    rows_per_tier=(new_hbm, table.hash_size - new_hbm),
                )
                free -= d_bytes
                steps[i] += 1
                push(i)

    def _repair_capacity(self, placements, inputs, topology) -> None:
        """Fix up float-tolerance capacity overflows from extraction.

        HBM overflows shave rows off the largest splits; host overflows
        promote cold rows into spare HBM (extraction rounds HBM rows
        down, which can push a fully-packed host slice over by a few
        rows).
        """
        hbm_cap = topology.hbm.capacity_bytes
        host_cap = topology.uvm.capacity_bytes
        for device in range(topology.num_devices):
            members = [
                (i, p) for i, p in enumerate(placements) if p.device == device
            ]
            hbm_used = sum(
                p.hbm_rows * inputs.tables[p.table_index].row_bytes
                for _, p in members
            )
            # Pass 1: trim HBM overflow from the largest splits.
            for i, placement in sorted(members, key=lambda ip: -ip[1].hbm_rows):
                if hbm_used <= hbm_cap:
                    break
                table = inputs.tables[placement.table_index]
                excess_rows = math.ceil((hbm_used - hbm_cap) / table.row_bytes)
                drop = min(excess_rows, placement.hbm_rows)
                new_hbm = placement.hbm_rows - drop
                placements[i] = TablePlacement(
                    table_index=placement.table_index,
                    device=device,
                    rows_per_tier=(new_hbm, table.hash_size - new_hbm),
                )
                hbm_used -= drop * table.row_bytes
            # Pass 2: relieve host overflow by promoting cold rows to HBM.
            members = [
                (i, p) for i, p in enumerate(placements) if p.device == device
            ]
            host_used = sum(
                p.rows_per_tier[1] * inputs.tables[p.table_index].row_bytes
                for _, p in members
            )
            for i, placement in sorted(
                members, key=lambda ip: -ip[1].rows_per_tier[1]
            ):
                if host_used <= host_cap or hbm_used >= hbm_cap:
                    break
                table = inputs.tables[placement.table_index]
                overflow_rows = math.ceil((host_used - host_cap) / table.row_bytes)
                headroom_rows = (hbm_cap - hbm_used) // table.row_bytes
                promote = min(
                    overflow_rows, headroom_rows, placement.rows_per_tier[1]
                )
                if promote <= 0:
                    continue
                new_hbm = placement.hbm_rows + promote
                placements[i] = TablePlacement(
                    table_index=placement.table_index,
                    device=device,
                    rows_per_tier=(new_hbm, table.hash_size - new_hbm),
                )
                hbm_used += promote * table.row_bytes
                host_used -= promote * table.row_bytes
