"""Analytic plan evaluation under the MILP's cost model.

Computes, for any sharding plan, the expected per-device embedding cost
(Constraints 11-12): per-table expected accesses split across tiers by
the profiled frequency CDF and charged at tier bandwidths.  Used to
compare candidate plans (MILP incumbent vs fast heuristic), to
cross-check measured times, and by the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import ShardingPlan
from repro.memory.topology import SystemTopology


def expected_device_costs_ms(
    plan: ShardingPlan,
    model,
    profile,
    topology: SystemTopology,
    batch_size: int,
    use_coverage: bool = True,
    use_pooling: bool = True,
) -> np.ndarray:
    """Expected per-device per-iteration embedding cost in milliseconds."""
    costs = np.zeros(topology.num_devices)
    inv_bw = [1.0 / tier.bandwidth for tier in topology.tiers]
    for placement in plan:
        stats = profile[placement.table_index]
        table = model.tables[placement.table_index]
        if stats.total_accesses <= 0:
            continue
        coverage = stats.coverage if use_coverage else 1.0
        pooling = stats.avg_pooling if use_pooling else 1.0
        expected_accesses = coverage * pooling * batch_size
        cdf = stats.cdf
        prev_cov = 0.0
        rows_seen = 0
        for tier_index, rows in enumerate(placement.rows_per_tier):
            rows_seen += rows
            cov = cdf.coverage_of_rows(rows_seen)
            frac = cov - prev_cov
            prev_cov = cov
            if frac > 0:
                costs[placement.device] += (
                    expected_accesses * frac * table.row_bytes * inv_bw[tier_index]
                )
    return costs * 1e3


def expected_max_cost_ms(
    plan: ShardingPlan,
    model,
    profile,
    topology: SystemTopology,
    batch_size: int,
) -> float:
    """The plan's expected makespan — the quantity RecShard minimizes."""
    return float(
        expected_device_costs_ms(plan, model, profile, topology, batch_size).max()
    )
