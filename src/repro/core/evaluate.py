"""Analytic plan evaluation under the MILP's cost model.

Computes, for any sharding plan, the expected per-device embedding cost
(Constraints 11-12): per-table expected accesses split across tiers by
the profiled frequency CDF and charged at tier bandwidths.  Used to
compare candidate plans (MILP incumbent vs fast heuristic), to
cross-check measured times, and by the ablation benches.

Two entry points share the model:

* :func:`expected_device_costs_ms` — one plan, accumulated placement by
  placement (tier coverage via the vectorized CDF query); the reference
  the batched evaluator is tested against.
* :func:`expected_device_costs_ms_many` — a whole population of
  candidate plans in one shot: ``rows_per_tier`` stacked into a
  ``(plans, tables, tiers)`` tensor, coverage resolved with one flat
  gather over the workspace's coverage-prefix arrays, and per-device
  totals scattered with a single ``bincount``.  This is what plan
  tie-breaks (MILP vs fast), sweeps, and the Table 6 ablation route
  through.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import ShardingPlan
from repro.core.workspace import PlannerWorkspace
from repro.memory.topology import SystemTopology


def _check_tiers(placement, num_tiers: int) -> None:
    """Reject splits listing more tiers than the topology has.

    Without the guard a multi-tier plan evaluated under a two-tier
    topology either crashes on the bandwidth lookup (hot rows in the
    extra tier) or — worse — silently charges the extra tier nothing
    (cold rows whose coverage already saturated), understating the
    plan's cost.
    """
    if len(placement.rows_per_tier) > num_tiers:
        raise ValueError(
            f"table {placement.table_index}: split lists "
            f"{len(placement.rows_per_tier)} tiers but the topology has "
            f"{num_tiers}"
        )


def expected_device_costs_ms(
    plan: ShardingPlan,
    model,
    profile,
    topology: SystemTopology,
    batch_size: int,
    use_coverage: bool = True,
    use_pooling: bool = True,
) -> np.ndarray:
    """Expected per-device per-iteration embedding cost in milliseconds."""
    costs = np.zeros(topology.num_devices)
    inv_bw = np.array([1.0 / tier.bandwidth for tier in topology.tiers])
    for placement in plan:
        _check_tiers(placement, topology.num_tiers)
        stats = profile[placement.table_index]
        table = model.tables[placement.table_index]
        if stats.total_accesses <= 0:
            continue
        coverage = stats.coverage if use_coverage else 1.0
        pooling = stats.avg_pooling if use_pooling else 1.0
        expected_accesses = coverage * pooling * batch_size
        cum_rows = np.cumsum(placement.rows_per_tier)
        cov = stats.cdf.coverage_of_rows_many(cum_rows)
        frac = np.diff(cov, prepend=0.0)
        costs[placement.device] += expected_accesses * table.row_bytes * (
            frac @ inv_bw[: frac.size]
        )
    return costs * 1e3


def expected_device_costs_ms_many(
    plans,
    model,
    profile,
    topology: SystemTopology,
    batch_size: int,
    use_coverage: bool = True,
    use_pooling: bool = True,
    workspace: PlannerWorkspace | None = None,
) -> np.ndarray:
    """Expected per-device costs for many plans in one shot.

    Args:
        plans: candidate :class:`ShardingPlan` objects over the same
            model; every placement must list the same number of tiers,
            no more than the topology has.
        workspace: optional prebuilt
            :class:`~repro.core.workspace.PlannerWorkspace` for the
            profile — reused when given (the sweep / replan path),
            built on the fly otherwise.

    Returns:
        ``(len(plans), topology.num_devices)`` array of expected
        per-iteration milliseconds.
    """
    from repro.core.strategies import StrategyPlan, strategy_device_costs_ms

    plans = list(plans)
    if not plans:
        return np.zeros((0, topology.num_devices))
    for plan in plans:
        for placement in plan:
            _check_tiers(placement, topology.num_tiers)
    if any(isinstance(plan, StrategyPlan) for plan in plans):
        # Mixed populations route strategy plans through the
        # shard-aware evaluator (same cost model, per-shard device
        # attribution); plain plans keep the batched path below.
        strategy_idx = [
            i for i, plan in enumerate(plans)
            if isinstance(plan, StrategyPlan)
        ]
        plain_idx = [
            i for i in range(len(plans)) if i not in set(strategy_idx)
        ]
        costs = np.zeros((len(plans), topology.num_devices))
        if plain_idx:
            costs[plain_idx] = expected_device_costs_ms_many(
                [plans[i] for i in plain_idx], model, profile, topology,
                batch_size, use_coverage=use_coverage,
                use_pooling=use_pooling, workspace=workspace,
            )
        for i in strategy_idx:
            costs[i] = strategy_device_costs_ms(
                plans[i], model, profile, topology, batch_size,
                use_coverage=use_coverage, use_pooling=use_pooling,
                workspace=workspace,
            )
        return costs
    num_tiers = len(plans[0][0].rows_per_tier)
    for plan in plans:
        if any(len(p.rows_per_tier) != num_tiers for p in plan):
            raise ValueError(
                "expected_device_costs_ms_many requires a uniform tier "
                "count across every placement of every plan"
            )
    num_tables = model.num_tables
    rows = np.array(
        [[p.rows_per_tier for p in plan] for plan in plans], dtype=np.int64
    )  # (plans, tables, tiers)
    devices = np.array(
        [[p.device for p in plan] for plan in plans], dtype=np.int64
    )  # (plans, tables)
    cum_rows = np.cumsum(rows, axis=2)
    if workspace is not None:
        # One flat gather per (plan, table, tier) query over the
        # stacked coverage prefixes; tier axis moved last-but-one so
        # the table axis lines up with the workspace layout.
        cov = workspace.coverage_of_rows_grid(
            np.moveaxis(cum_rows, 2, 1).reshape(-1, num_tables)
        ).reshape(len(plans), num_tiers, num_tables)
        total_accesses = workspace.total_accesses
        stat_coverage = workspace.coverage
        stat_pooling = workspace.avg_pooling
        row_bytes = workspace.row_bytes
    else:
        # No workspace to reuse: per-table vectorized CDF takes, no
        # stacked-buffer build for a one-off population.
        cov = np.empty((len(plans), num_tiers, num_tables))
        for j, stats in enumerate(profile):
            cov[:, :, j] = stats.cdf.coverage_of_rows_many(cum_rows[:, j, :])
        total_accesses = np.array([s.total_accesses for s in profile])
        stat_coverage = np.array([s.coverage for s in profile])
        stat_pooling = np.array([s.avg_pooling for s in profile])
        row_bytes = np.array([t.row_bytes for t in model.tables])
    frac = np.diff(cov, axis=1, prepend=0.0)
    inv_bw = np.array([1.0 / tier.bandwidth for tier in topology.tiers])
    coverage = stat_coverage if use_coverage else 1.0
    pooling = stat_pooling if use_pooling else 1.0
    expected_accesses = coverage * pooling * batch_size
    table_weight = np.where(
        total_accesses > 0,
        expected_accesses * row_bytes,
        0.0,
    )
    # (plans, tables): each table's cost on its owning device.
    table_costs = table_weight[None, :] * np.einsum(
        "pkt,k->pt", frac, inv_bw[:num_tiers]
    )
    flat_device = (
        np.arange(len(plans))[:, None] * topology.num_devices + devices
    )
    costs = np.bincount(
        flat_device.ravel(),
        weights=table_costs.ravel(),
        minlength=len(plans) * topology.num_devices,
    ).reshape(len(plans), topology.num_devices)
    return costs * 1e3


def stamp_estimated_costs(
    plan: ShardingPlan,
    model,
    profile,
    topology: SystemTopology,
    batch_size: int,
    workspace: PlannerWorkspace | None = None,
) -> ShardingPlan:
    """Record a plan's expected costs in its metadata, in one place.

    Stamps ``estimated_device_costs_ms``, ``estimated_max_cost_ms``,
    and ``estimated_cost_batch_size`` (the batch size the estimate was
    computed at — the cost model is linear in it, so consumers rescale
    before comparing stamps made at different batch sizes).
    """
    costs = expected_device_costs_ms_many(
        [plan], model, profile, topology, batch_size, workspace=workspace
    )[0]
    plan.metadata["estimated_device_costs_ms"] = [float(c) for c in costs]
    plan.metadata["estimated_max_cost_ms"] = float(costs.max())
    plan.metadata["estimated_cost_batch_size"] = int(batch_size)
    return plan


def expected_max_cost_ms(
    plan: ShardingPlan,
    model,
    profile,
    topology: SystemTopology,
    batch_size: int,
) -> float:
    """The plan's expected makespan — the quantity RecShard minimizes."""
    return float(
        expected_device_costs_ms(plan, model, profile, topology, batch_size).max()
    )
