"""Multi-tier extension of RecShard (Section 4.4).

Each additional memory tier is "a new point on each EMB's CDF": a table
splits at ``T - 1`` boundaries of its ICDF, the hottest block going to
the fastest tier.  Two solving methods are provided:

* ``"milp"`` — the paper-faithful step formulation generalized to T
  tiers (one binary per ICDF step per boundary); exact but intended for
  small instances.
* ``"greedy"`` — sequential per-tier waterfill plus LPT assignment,
  scaling to full-size models (same machinery as
  :class:`~repro.core.fast.RecShardFastSharder`).

Like the two-tier fast sharder, the greedy method has two paths that
produce identical plans:

* **vectorized** (default) — each tier's waterfill runs as one bulk
  admission over the stacked arrays of a
  :class:`~repro.core.workspace.PlannerWorkspace` (the running-minimum
  *effective*-density ordering of
  :meth:`~repro.core.fast.RecShardFastSharder._bulk_take` reproduces
  the per-tier heap's pop order exactly; a tier's marginal gains all
  share the same positive bandwidth-delta factor, so only budgets and
  start boundaries differ between tiers).  This is the path serving
  drift replans and ``shard_sweep`` tier grids take: the workspace is
  built once per profile and every tier boundary after the first
  resumes from the previous tier's boundary array.
* **scalar** (``vectorized=False``) — the original per-step heapq
  waterfill, kept as the parity reference.

``warm_start`` (the outgoing plan of a drift replan) steers the LPT
assignment toward each table's previous device home, so a replan moves
tables only where drift actually changed relative costs.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.evaluate import stamp_estimated_costs
from repro.core.fast import RecShardFastSharder, _stamp_tier_precisions
from repro.core.formulation import MIB, RecShardInputs
from repro.core.plan import PlanError, ShardingPlan, TablePlacement
from repro.core.workspace import PlannerWorkspace
from repro.memory.precision import quantized_row_bytes
from repro.memory.topology import SystemTopology
from repro.milp.model import Model, lin_sum

_MS = 1e3


class MultiTierSharder:
    """RecShard generalized to hierarchies with more than two tiers."""

    def __init__(
        self,
        batch_size: int,
        steps: int = 20,
        method: str = "greedy",
        backend: str = "highs",
        time_limit: float = 60.0,
        mip_gap: float = 0.02,
        vectorized: bool = True,
        name: str = "RecShard-multitier",
    ):
        if method not in ("greedy", "milp"):
            raise ValueError(f"unknown method {method!r}")
        self.batch_size = int(batch_size)
        self.steps = int(steps)
        self.method = method
        self.backend = backend
        self.time_limit = time_limit
        self.mip_gap = mip_gap
        self.vectorized = bool(vectorized)
        self.name = name

    def shard(
        self, model, profile, topology: SystemTopology,
        warm_start: ShardingPlan | None = None,
        workspace: PlannerWorkspace | None = None,
    ) -> ShardingPlan:
        """Shard ``model`` from ``profile`` across ``topology``'s tiers.

        Pass a prebuilt ``workspace`` to amortize the statistics build
        across calls (drift replans, sweeps); ``warm_start`` keeps
        tables on their previous devices where the splits still fit.
        """
        if self.method == "greedy" and self.vectorized:
            if workspace is None:
                workspace = PlannerWorkspace(model, profile, steps=self.steps)
            elif workspace.steps != self.steps:
                raise ValueError(
                    f"workspace sampled {workspace.steps} ICDF steps, "
                    f"sharder expects {self.steps}"
                )
            return self.shard_from_workspace(
                workspace, topology, warm_start=warm_start
            )
        inputs = (
            workspace.inputs
            if workspace is not None
            else RecShardInputs.from_profile(model, profile, steps=self.steps)
        )
        if self.method == "milp":
            plan = self._shard_milp(inputs, topology)
        else:
            plan = self._shard_greedy(inputs, topology, warm_start=warm_start)
        # Score the result under the analytic cost model (batched
        # evaluator handles any tier count) so multi-tier plans report
        # the same estimated-makespan metadata as the two-tier sharders.
        return stamp_estimated_costs(
            plan, model, profile, topology, self.batch_size,
            workspace=workspace,
        )

    # ------------------------------------------------------------------
    # Greedy: sequential waterfill over tiers, then LPT assignment
    # ------------------------------------------------------------------
    def shard_from_workspace(
        self, workspace: PlannerWorkspace, topology: SystemTopology,
        warm_start: ShardingPlan | None = None,
    ) -> ShardingPlan:
        """Vectorized greedy solve over a prebuilt workspace.

        Sequential per-tier waterfill as in :meth:`_shard_greedy`, each
        tier's heap replaced by one bulk admission in effective-density
        order against the tier's aggregate budget.  Plans are identical
        to the scalar path's, table for table.
        """
        ws = workspace
        num_tiers = topology.num_tiers
        inv_bw = [1.0 / t.bandwidth for t in topology.tiers]
        weights = (
            ws.coverage * ws.avg_pooling * ws.row_bytes
            * self.batch_size * _MS
        )
        d_bytes_fp32 = ws.d_grid_rows * ws.row_bytes[:, None]
        # The bandwidth-delta factor is the only per-tier term of the
        # marginal densities; the factor-free matrix is hoisted and the
        # per-tier product kept in the scalar path's evaluation order
        # (base * factor, then / bytes) so densities — and therefore
        # tie-breaks against the heapq reference — stay bit-identical.
        d_cost_base = weights[:, None] * ws.d_frac[None, :]
        density = np.empty(d_bytes_fp32.shape)
        col = np.arange(ws.steps)
        active = ws.total_accesses > 0
        start = np.zeros(ws.num_tables, dtype=np.int64)
        boundary = np.zeros((ws.num_tables, max(num_tiers - 1, 0)), dtype=np.int64)
        for tier in range(num_tiers - 1):
            budget = topology.tiers[tier].capacity_bytes * topology.num_devices
            factor = inv_bw[tier + 1] - inv_bw[tier]
            # Rows admitted into this tier are stored at its precision,
            # so admission is charged at the tier's quantized row bytes.
            precision = topology.tiers[tier].precision
            d_bytes = (
                d_bytes_fp32
                if precision == "fp32"
                else ws.d_grid_rows * ws.tier_row_bytes(precision)[:, None]
            )
            density.fill(np.inf)
            np.divide(d_cost_base * factor, d_bytes, out=density, where=d_bytes > 0)
            mask = active[:, None] & (col[None, :] >= start[:, None])
            eff = np.minimum.accumulate(
                np.where(mask, density, np.inf), axis=1
            )
            flat = np.flatnonzero(mask)
            table_ids, step_ids = np.divmod(flat, ws.steps)
            steps_out = start.copy()
            RecShardFastSharder._bulk_take(
                eff.ravel()[flat], d_bytes.ravel()[flat], table_ids,
                step_ids, steps_out, budget, stop_on_exhausted=True,
            )
            boundary[:, tier] = steps_out
            start = steps_out
        boundary_steps = [[int(b) for b in row] for row in boundary]
        plan = self._finish_greedy(
            ws.inputs, topology, boundary_steps, warm_start
        )
        return stamp_estimated_costs(
            plan, ws.model, ws.profile, topology, self.batch_size,
            workspace=ws,
        )

    def _shard_greedy(
        self, inputs: RecShardInputs, topology,
        warm_start: ShardingPlan | None = None,
    ) -> ShardingPlan:
        num_tiers = topology.num_tiers
        inv_bw = [1.0 / t.bandwidth for t in topology.tiers]
        weights = [
            t.coverage * t.avg_pooling * t.row_bytes * self.batch_size * _MS
            for t in inputs.tables
        ]
        # boundary_steps[j][t] = ICDF step index of boundary t (cumulative).
        boundary_steps = [[0] * (num_tiers - 1) for _ in inputs.tables]

        for tier in range(num_tiers - 1):
            budget = topology.tiers[tier].capacity_bytes * topology.num_devices
            tier_rb = [
                quantized_row_bytes(t.row_bytes, topology.tiers[tier].precision)
                for t in inputs.tables
            ]
            # Bytes already committed to this tier is zero: boundaries are
            # cumulative, so tier t holds rows between boundaries t-1 and t.
            heap: list[tuple[float, int]] = []

            def push(j: int) -> None:
                icdf = inputs.tables[j].icdf
                step = boundary_steps[j][tier]
                if step >= icdf.steps or inputs.tables[j].total_accesses <= 0:
                    return
                d_frac = float(icdf.fractions[step + 1] - icdf.fractions[step])
                d_rows = math.ceil(icdf.rows[step + 1] - 1e-9) - math.ceil(
                    icdf.rows[step] - 1e-9
                )
                d_bytes = d_rows * tier_rb[j]
                gain = weights[j] * d_frac * (inv_bw[tier + 1] - inv_bw[tier])
                density = gain / d_bytes if d_bytes else float("inf")
                heapq.heappush(heap, (-density, j))

            lower = [
                boundary_steps[j][tier - 1] if tier > 0 else 0
                for j in range(len(inputs.tables))
            ]
            for j in range(len(inputs.tables)):
                boundary_steps[j][tier] = lower[j]
                push(j)
            remaining = budget
            while heap and remaining > 0:
                _, j = heapq.heappop(heap)
                icdf = inputs.tables[j].icdf
                step = boundary_steps[j][tier]
                if step >= icdf.steps:
                    continue
                d_rows = math.ceil(icdf.rows[step + 1] - 1e-9) - math.ceil(
                    icdf.rows[step] - 1e-9
                )
                d_bytes = d_rows * tier_rb[j]
                if d_bytes > remaining:
                    continue
                boundary_steps[j][tier] = step + 1
                remaining -= d_bytes
                push(j)

        return self._finish_greedy(inputs, topology, boundary_steps, warm_start)

    def _finish_greedy(
        self, inputs, topology, boundary_steps, warm_start
    ) -> ShardingPlan:
        """Boundary steps -> placements, LPT assignment, plan (shared by
        the scalar and vectorized waterfills)."""
        inv_bw = [1.0 / t.bandwidth for t in topology.tiers]
        weights = [
            t.coverage * t.avg_pooling * t.row_bytes * self.batch_size * _MS
            for t in inputs.tables
        ]
        placements, costs = self._extract(
            inputs, topology, boundary_steps, weights, inv_bw
        )
        preferred = None
        if warm_start is not None and len(warm_start) == len(placements):
            preferred = [warm_start[j].device for j in range(len(placements))]
        device_of = self._assign_lpt(
            inputs, topology, placements, costs, preferred=preferred
        )
        final = [
            TablePlacement(p.table_index, device_of[p.table_index], p.rows_per_tier)
            for p in placements
        ]
        metadata = {"solver": "greedy"}
        if preferred is not None:
            metadata["warm_started"] = True
        _stamp_tier_precisions(metadata, topology)
        return ShardingPlan(
            strategy=self.name, placements=final, metadata=metadata
        )

    def _extract(self, inputs, topology, boundary_steps, weights, inv_bw):
        """Boundary steps -> per-tier row counts and expected costs."""
        num_tiers = topology.num_tiers
        placements = []
        costs = []
        for j, table in enumerate(inputs.tables):
            icdf = table.icdf
            cum_rows = [
                math.ceil(icdf.rows[boundary_steps[j][t]] - 1e-9)
                for t in range(num_tiers - 1)
            ]
            rows = []
            prev = 0
            for t in range(num_tiers - 1):
                rows.append(cum_rows[t] - prev)
                prev = cum_rows[t]
            rows.append(table.hash_size - prev)  # tail + dead rows
            placements.append(
                TablePlacement(table_index=j, device=0, rows_per_tier=tuple(rows))
            )
            fracs = [
                float(icdf.fractions[boundary_steps[j][t]])
                for t in range(num_tiers - 1)
            ]
            fracs.append(1.0)
            cost = 0.0
            prev_frac = 0.0
            for t in range(num_tiers):
                cost += (
                    weights[j] * (fracs[t] - prev_frac) * inv_bw[t]
                    if t < len(fracs)
                    else 0.0
                )
                prev_frac = fracs[t] if t < len(fracs) else prev_frac
            costs.append(cost if table.total_accesses > 0 else 0.0)
        return placements, costs

    def _assign_lpt(self, inputs, topology, placements, costs, preferred=None):
        """Least-loaded placement under per-device per-tier capacities.

        With ``preferred`` (per-table device hints from a warm-start
        plan), a table stays on its hinted device whenever its splits
        fit there.  When no device fits a table's current splits, the
        splits are demoted tier by tier (rows cascade toward slower
        tiers) until the device with the most free space can hold the
        table.
        """
        num_devices = topology.num_devices
        num_tiers = topology.num_tiers
        loads = [0.0] * num_devices
        free = [
            [tier.capacity_bytes for tier in topology.tiers]
            for _ in range(num_devices)
        ]
        device_of = [0] * len(placements)
        order = sorted(range(len(placements)), key=lambda j: -costs[j])
        for j in order:
            placement = placements[j]
            tier_rb = [
                quantized_row_bytes(inputs.tables[j].row_bytes, tier.precision)
                for tier in topology.tiers
            ]
            need = [
                r * tier_rb[t]
                for t, r in enumerate(placement.rows_per_tier)
            ]
            candidates = [
                m
                for m in range(num_devices)
                if all(free[m][t] >= need[t] for t in range(num_tiers))
            ]
            if preferred is not None and preferred[j] in candidates:
                device = preferred[j]
            elif candidates:
                device = min(candidates, key=lambda m: loads[m])
            else:
                # Demote rows toward slower tiers on the roomiest device.
                device = max(
                    range(num_devices), key=lambda m: sum(free[m][:-1])
                )
                rows = list(placement.rows_per_tier)
                for t in range(num_tiers - 1):
                    max_rows = max(0, free[device][t] // tier_rb[t])
                    overflow = rows[t] - max_rows
                    if overflow > 0:
                        rows[t] -= overflow
                        rows[t + 1] += overflow
                if rows[-1] * tier_rb[-1] > free[device][-1]:
                    raise PlanError(
                        f"multi-tier: table {j} fits no device even after "
                        "demotion"
                    )
                placements[j] = TablePlacement(
                    table_index=placement.table_index,
                    device=placement.device,
                    rows_per_tier=tuple(rows),
                )
                need = [r * tier_rb[t] for t, r in enumerate(rows)]
            device_of[j] = device
            loads[device] += costs[j]
            for t, n in enumerate(need):
                free[device][t] -= n
        return device_of

    # ------------------------------------------------------------------
    # MILP: step formulation generalized to T tiers
    # ------------------------------------------------------------------
    def _shard_milp(self, inputs: RecShardInputs, topology) -> ShardingPlan:
        if any(t.precision != "fp32" for t in topology.tiers):
            raise PlanError(
                "multi-tier MILP supports fp32 tiers only; use "
                "method='greedy' for quantized ladders"
            )
        num_tiers = topology.num_tiers
        num_devices = topology.num_devices
        num_boundaries = num_tiers - 1
        inv_bw = [1.0 / t.bandwidth for t in topology.tiers]
        caps_mib = [t.capacity_bytes / MIB for t in topology.tiers]

        milp = Model("recshard-multitier")
        max_cost = milp.continuous_var(lb=0.0, name="C")
        assign = [
            [milp.binary_var(name=f"p[{m}][{j}]") for j in range(len(inputs.tables))]
            for m in range(num_devices)
        ]
        for j in range(len(inputs.tables)):
            milp.add(lin_sum(assign[m][j] for m in range(num_devices)) == 1)

        # Boundary variables per table: q (access fraction) and r (MiB).
        q_vars: list[list] = []
        r_vars: list[list] = []
        for j, table in enumerate(inputs.tables):
            icdf = table.icdf
            row_mib = table.row_bytes / MIB
            q_j, r_j = [], []
            for b in range(num_boundaries):
                q = milp.continuous_var(lb=0.0, ub=1.0, name=f"q[{j}][{b}]")
                r = milp.continuous_var(
                    lb=0.0, ub=table.live_bytes / MIB, name=f"r[{j}][{b}]"
                )
                if table.total_accesses > 0:
                    x = [
                        milp.binary_var(name=f"x[{j}][{b}][{i}]")
                        for i in range(icdf.steps + 1)
                    ]
                    milp.add(lin_sum(x) == 1)
                    milp.add(
                        lin_sum(
                            x[i] * float(icdf.fractions[i])
                            for i in range(icdf.steps + 1)
                        )
                        == q
                    )
                    milp.add(
                        lin_sum(
                            x[i] * (float(icdf.rows[i]) * row_mib)
                            for i in range(icdf.steps + 1)
                        )
                        == r
                    )
                else:
                    milp.add(q <= 0.0)
                    milp.add(r <= 0.0)
                q_j.append(q)
                r_j.append(r)
            for b in range(num_boundaries - 1):
                milp.add(q_j[b] <= q_j[b + 1] + 0.0)
                milp.add(r_j[b] <= r_j[b + 1] + 0.0)
            q_vars.append(q_j)
            r_vars.append(r_j)

        for m in range(num_devices):
            cost_terms = []
            tier_usage: list[list] = [[] for _ in range(num_tiers)]
            for j, table in enumerate(inputs.tables):
                p_mj = assign[m][j]
                live_mib = table.live_bytes / MIB
                weight = (
                    table.coverage
                    * table.avg_pooling
                    * table.row_bytes
                    * self.batch_size
                    * _MS
                )
                # u[t] = p * (r_t - r_{t-1}) per tier; last tier gets the
                # remainder (live tail plus dead rows).
                prev_r = None
                for t in range(num_tiers):
                    if t < num_boundaries:
                        mem_expr = (
                            r_vars[j][t] - prev_r
                            if prev_r is not None
                            else r_vars[j][t]
                        )
                        ub = live_mib
                        u = milp.continuous_var(lb=0.0, ub=ub, name=f"u[{m}][{j}][{t}]")
                        milp.add(u <= p_mj * ub)
                        milp.add(u <= mem_expr + 0.0)
                        milp.add(u >= mem_expr - (1.0 - p_mj) * ub)
                        tier_usage[t].append(u)
                        prev_r = r_vars[j][t]
                    else:
                        total_mib = table.total_bytes / MIB
                        # remainder = total - r_{T-2}; charge via p and -u.
                        u_last = milp.continuous_var(
                            lb=0.0, ub=total_mib, name=f"u[{m}][{j}][{t}]"
                        )
                        last_expr = (
                            p_mj * total_mib - _times_p(milp, p_mj, prev_r, live_mib)
                            if prev_r is not None
                            else p_mj * total_mib
                        )
                        milp.add(u_last >= last_expr, name=f"ulast[{m}][{j}]")
                        tier_usage[t].append(u_last)
                if table.total_accesses > 0:
                    # cost = weight * [sum_b w_b (1/bw_b - 1/bw_{b+1}) + p/bw_last]
                    for b in range(num_boundaries):
                        w = milp.continuous_var(
                            lb=0.0, ub=1.0, name=f"w[{m}][{j}][{b}]"
                        )
                        milp.add(w <= p_mj + 0.0)
                        milp.add(w <= q_vars[j][b] + 0.0)
                        milp.add(w >= q_vars[j][b] + p_mj - 1.0)
                        cost_terms.append(w * (weight * (inv_bw[b] - inv_bw[b + 1])))
                    cost_terms.append(p_mj * (weight * inv_bw[-1]))
            for t in range(num_tiers):
                milp.add(lin_sum(tier_usage[t]) <= caps_mib[t], name=f"cap[{m}][{t}]")
            milp.add(lin_sum(cost_terms) <= max_cost + 0.0, name=f"makespan[{m}]")

        milp.minimize(max_cost)
        result = milp.solve(
            backend=self.backend, time_limit=self.time_limit, mip_gap=self.mip_gap
        )
        if not result.status.has_solution:
            raise RuntimeError(
                f"multi-tier MILP produced no incumbent (status={result.status})"
            )

        placements = []
        for j, table in enumerate(inputs.tables):
            device = max(
                range(num_devices), key=lambda m: result.value(assign[m][j])
            )
            cum_rows = []
            for b in range(num_boundaries):
                mem_bytes = result.value(r_vars[j][b]) * MIB + 1e-6
                rows = int(min(mem_bytes // table.row_bytes, table.hash_size))
                cum_rows.append(rows)
            cum_rows = [min(r, table.hash_size) for r in cum_rows]
            for b in range(1, num_boundaries):
                cum_rows[b] = max(cum_rows[b], cum_rows[b - 1])
            rows_per_tier = []
            prev = 0
            for r in cum_rows:
                rows_per_tier.append(r - prev)
                prev = r
            rows_per_tier.append(table.hash_size - prev)
            placements.append(
                TablePlacement(
                    table_index=j, device=device, rows_per_tier=tuple(rows_per_tier)
                )
            )
        return ShardingPlan(
            strategy=self.name,
            placements=placements,
            metadata={
                "solver": f"milp/{self.backend}",
                "objective_ms": result.objective,
                "solve_seconds": result.solve_time,
                "milp_status": result.status.value,
            },
        )


def _times_p(milp: Model, p, var, ub: float):
    """Auxiliary product p * var for bounded var (standard linearization)."""
    prod = milp.continuous_var(lb=0.0, ub=ub)
    milp.add(prod <= p * ub)
    milp.add(prod <= var + 0.0)
    milp.add(prod >= var - (1.0 - p) * ub)
    return prod
