"""Row codecs for precision-tiered embedding storage.

Each cold tier of a quantized ladder stores its resident rows in a
reduced-precision format (:mod:`repro.memory.precision`); this module
implements the actual codecs and their error model:

* ``fp16`` — a plain half-precision cast.  Relative rounding error per
  element, unit roundoff ``2**-10`` (10 mantissa bits).
* ``int8`` / ``int4`` — symmetric per-row affine quantization: each row
  stores one fp32 scale ``s = amax / qmax`` (``qmax = 2**(bits-1) - 1``)
  and its elements as ``round(w / s)`` clipped to ``[-qmax, qmax]``.
  ``int4`` packs two codes per byte.

The expected reconstruction error has a closed form under the standard
uniform-rounding model: a value rounded to a grid of step ``s`` has
error uniform in ``[-s/2, s/2]``, so the RMS error is ``s / sqrt(12)``.
Relative to the row's max magnitude that is ``1 / (qmax * sqrt(12))``
for the integer codecs, and ``2**-10 / sqrt(12)`` (relative to each
element's own magnitude) for fp16.  :func:`measured_rel_error` checks
the model against a real round-trip; the accuracy harness
(``benchmarks/bench_quantized_tiers.py``) checks it against end-to-end
DLRM quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.memory.precision import PRECISIONS, validate_precision

#: fp16 unit roundoff (10 explicit mantissa bits).
_FP16_EPS = 2.0**-10


def expected_rel_error(precision: str) -> float:
    """Closed-form RMS reconstruction error of one element.

    Relative to the row's max magnitude for the integer codecs (the
    scale anchor) and to the element's own magnitude for fp16; exactly
    0 for fp32.  This is the number stamped into plan metadata and
    serving metrics for every quantized tier.
    """
    validate_precision(precision)
    if precision == "fp32":
        return 0.0
    if precision == "fp16":
        return _FP16_EPS / math.sqrt(12.0)
    bits = PRECISIONS[precision][0]
    qmax = 2 ** (bits - 1) - 1
    return 1.0 / (qmax * math.sqrt(12.0))


def tier_expected_errors(precisions) -> list[float]:
    """Per-tier :func:`expected_rel_error` for a precision ladder."""
    return [expected_rel_error(p) for p in precisions]


@dataclass(frozen=True)
class QuantizedRows:
    """Encoded rows: packed codes plus per-row scales (int codecs)."""

    precision: str
    data: np.ndarray
    scales: np.ndarray | None
    dim: int

    @property
    def num_rows(self) -> int:
        return self.data.shape[0]

    def storage_bytes(self) -> int:
        """Actual bytes held (codes + scales) — matches the planner's
        :func:`~repro.memory.precision.quantized_row_bytes` per row."""
        total = self.data.nbytes
        if self.scales is not None:
            total += self.scales.nbytes
        return total


def _int_scales(weights: np.ndarray, qmax: int) -> np.ndarray:
    amax = np.max(np.abs(weights), axis=1)
    scales = amax / qmax
    # All-zero rows encode to zeros under any positive scale.
    scales[amax == 0] = 1.0
    return scales.astype(np.float32)


def quantize_rows(weights: np.ndarray, precision: str) -> QuantizedRows:
    """Encode ``(rows, dim)`` fp32/fp64 weights at ``precision``."""
    validate_precision(precision)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"expected (rows, dim) weights, got {weights.shape}")
    dim = weights.shape[1]
    if precision == "fp32":
        return QuantizedRows(precision, weights.astype(np.float32), None, dim)
    if precision == "fp16":
        return QuantizedRows(precision, weights.astype(np.float16), None, dim)
    bits = PRECISIONS[precision][0]
    qmax = 2 ** (bits - 1) - 1
    scales = _int_scales(weights, qmax)
    codes = np.clip(
        np.rint(weights / scales[:, None].astype(np.float64)), -qmax, qmax
    ).astype(np.int8)
    if precision == "int4":
        # Two codes per byte, offset to [1, 15] nibbles (code + 8).
        if dim % 2:
            codes = np.concatenate(
                [codes, np.zeros((codes.shape[0], 1), dtype=np.int8)], axis=1
            )
        nibbles = (codes + 8).astype(np.uint8)
        packed = (nibbles[:, 0::2] << 4) | nibbles[:, 1::2]
        return QuantizedRows(precision, packed, scales, dim)
    return QuantizedRows(precision, codes, scales, dim)


def dequantize_rows(q: QuantizedRows) -> np.ndarray:
    """Decode back to fp64 ``(rows, dim)`` weights."""
    if q.precision in ("fp32", "fp16"):
        return q.data.astype(np.float64)
    if q.precision == "int4":
        high = (q.data >> 4).astype(np.int16) - 8
        low = (q.data & 0x0F).astype(np.int16) - 8
        codes = np.empty((q.data.shape[0], q.data.shape[1] * 2), dtype=np.int16)
        codes[:, 0::2] = high
        codes[:, 1::2] = low
        codes = codes[:, : q.dim]
    else:
        codes = q.data.astype(np.int16)
    return codes.astype(np.float64) * q.scales[:, None].astype(np.float64)


def quantize_dequantize(weights: np.ndarray, precision: str) -> np.ndarray:
    """Round-trip ``weights`` through the ``precision`` codec."""
    return dequantize_rows(quantize_rows(weights, precision))


def quantize_by_tiers(
    weights: np.ndarray, rows_per_tier, precisions
) -> np.ndarray:
    """Round-trip contiguous row blocks at their tier's precision.

    ``rows_per_tier`` splits the (frequency-ordered) rows exactly as a
    :class:`~repro.core.plan.TablePlacement` does: the first block is
    tier 0 (stored at ``precisions[0]``), the next block tier 1, and so
    on.  This is the storage transform the accuracy harness applies to
    a trained DLRM's embedding tables to measure a ladder's quality
    cost.
    """
    rows_per_tier = [int(r) for r in rows_per_tier]
    precisions = list(precisions)
    if len(rows_per_tier) != len(precisions):
        raise ValueError(
            f"{len(rows_per_tier)} tiers vs {len(precisions)} precisions"
        )
    if sum(rows_per_tier) != weights.shape[0]:
        raise ValueError(
            f"rows_per_tier sums to {sum(rows_per_tier)}, weights have "
            f"{weights.shape[0]} rows"
        )
    out = np.array(weights, dtype=np.float64, copy=True)
    start = 0
    for rows, precision in zip(rows_per_tier, precisions):
        stop = start + rows
        if rows and precision != "fp32":
            out[start:stop] = quantize_dequantize(out[start:stop], precision)
        start = stop
    return out


def measured_rel_error(weights: np.ndarray, precision: str) -> float:
    """Empirical RMS reconstruction error of one codec round-trip.

    Normalized by the mean per-row max magnitude — the same anchor the
    closed form uses — so for the integer codecs the measurement lands
    on :func:`expected_rel_error` (up to the uniform-rounding model's
    slack) on any non-degenerate weight distribution.
    """
    weights = np.asarray(weights, dtype=np.float64)
    err = weights - quantize_dequantize(weights, precision)
    amax = np.max(np.abs(weights), axis=1)
    anchor = float(np.mean(amax[amax > 0])) if np.any(amax > 0) else 1.0
    return float(np.sqrt(np.mean(err**2))) / anchor
