"""HiGHS backend: compile a :class:`repro.milp.Model` to scipy.optimize.milp."""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.milp.model import Model
from repro.milp.result import SolveResult, SolveStatus

# scipy.optimize.milp status codes (from HiGHS):
#   0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
}


def _build_constraint_matrix(
    compiled,
) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
    """Assemble the sparse row-major constraint matrix and its bounds."""
    data: list[float] = []
    row_idx: list[int] = []
    col_idx: list[int] = []
    lbs: list[float] = []
    ubs: list[float] = []
    for row, (coeffs, lb, ub) in enumerate(compiled.rows):
        for col, coef in coeffs.items():
            if coef != 0.0:
                data.append(coef)
                row_idx.append(row)
                col_idx.append(col)
        lbs.append(lb)
        ubs.append(ub)
    matrix = sparse.csr_matrix(
        (data, (row_idx, col_idx)), shape=(len(compiled.rows), compiled.num_vars)
    )
    return matrix, np.asarray(lbs), np.asarray(ubs)


def solve_with_highs(
    model: Model,
    time_limit: float | None = None,
    mip_gap: float | None = None,
) -> SolveResult:
    """Solve ``model`` with scipy's HiGHS MILP solver."""
    compiled = model.compile()
    start = time.perf_counter()

    options: dict = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_gap is not None:
        options["mip_rel_gap"] = float(mip_gap)

    constraints = None
    if compiled.rows:
        matrix, lbs, ubs = _build_constraint_matrix(compiled)
        constraints = LinearConstraint(matrix, lbs, ubs)

    result = milp(
        c=np.asarray(compiled.objective),
        integrality=np.asarray(compiled.integrality),
        bounds=Bounds(np.asarray(compiled.lower), np.asarray(compiled.upper)),
        constraints=constraints,
        options=options,
    )
    elapsed = time.perf_counter() - start

    if result.x is not None:
        status = _STATUS_MAP.get(result.status, SolveStatus.FEASIBLE)
        # A solution returned under a hit limit is an incumbent, not optimal.
        if result.status == 1:
            status = SolveStatus.FEASIBLE
        values = [float(v) for v in result.x]
        # Snap integer variables that HiGHS leaves at 0.9999999 etc.
        for var in model.variables:
            if var.integer:
                values[var.index] = float(round(values[var.index]))
        return SolveResult(
            status=status,
            objective=float(result.fun),
            values=values,
            solve_time=elapsed,
            gap=getattr(result, "mip_gap", None),
            nodes=getattr(result, "mip_node_count", None),
            message=str(result.message),
        )

    status = _STATUS_MAP.get(result.status, SolveStatus.TIME_LIMIT)
    if result.status == 1:
        status = SolveStatus.TIME_LIMIT
    return SolveResult(
        status=status, solve_time=elapsed, message=str(result.message)
    )
