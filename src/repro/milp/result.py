"""Solver result containers shared by all MILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SolveStatus(enum.Enum):
    """Terminal state of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found, optimality not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"  # time limit hit with no incumbent
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether a usable variable assignment accompanies this status."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveResult:
    """Outcome of solving a :class:`~repro.milp.model.Model`.

    Attributes:
        status: terminal solver state.
        objective: objective value of the incumbent (``None`` without one).
        values: variable values indexed by variable position in the model.
        solve_time: wall-clock seconds spent in the backend.
        gap: relative MIP gap of the incumbent, when the backend reports it.
        nodes: number of branch-and-bound nodes explored, when known.
        message: free-form backend diagnostics.
    """

    status: SolveStatus
    objective: float | None = None
    values: list[float] = field(default_factory=list)
    solve_time: float = 0.0
    gap: float | None = None
    nodes: int | None = None
    message: str = ""

    def value(self, var) -> float:
        """Return the incumbent value of ``var`` (a :class:`Var`)."""
        if not self.status.has_solution:
            raise ValueError(f"no solution available (status={self.status})")
        return self.values[var.index]
