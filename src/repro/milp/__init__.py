"""Mixed integer linear programming substrate.

The paper solves its sharding formulation with Gurobi.  Gurobi is not
available here, so this package provides the equivalent substrate from
scratch: a small modeling language (:class:`~repro.milp.model.Model`,
:class:`~repro.milp.model.Var`, :class:`~repro.milp.model.LinExpr`) that
compiles to either scipy's HiGHS MILP solver or to a pure-Python
branch-and-bound solver built on HiGHS LP relaxations.
"""

from repro.milp.model import Constraint, LinExpr, Model, Var
from repro.milp.result import SolveResult, SolveStatus

__all__ = [
    "Constraint",
    "LinExpr",
    "Model",
    "SolveResult",
    "SolveStatus",
    "Var",
]
