"""A pure-Python branch-and-bound MILP solver.

Built on HiGHS LP relaxations through :func:`scipy.optimize.linprog`.  It
exists as an independent substrate (the paper depends on a commercial
solver) and as a cross-check of the scipy MILP backend on small models.
It uses best-first search with most-fractional branching and a simple
LP-rounding primal heuristic.

It is intended for models with tens of integer variables; the full
RecShard formulations should use the ``"highs"`` backend.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.milp.model import Model
from repro.milp.result import SolveResult, SolveStatus

_INF = float("inf")
_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    bound: float
    tiebreak: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)


class _CooBuilder:
    """Accumulates constraint rows as COO triplets, then emits CSR."""

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._data: list[float] = []
        self._rhs: list[float] = []

    def add_row(self, coeffs: dict, rhs: float, sign: float = 1.0) -> None:
        row = len(self._rhs)
        for col, coef in coeffs.items():
            self._rows.append(row)
            self._cols.append(col)
            self._data.append(sign * coef)
        self._rhs.append(rhs)

    def build(self):
        """CSR matrix + rhs vector, or (None, None) when no rows exist."""
        if not self._rhs:
            return None, None
        matrix = sparse.coo_matrix(
            (self._data, (self._rows, self._cols)),
            shape=(len(self._rhs), self.num_vars),
        ).tocsr()
        return matrix, np.array(self._rhs)


def _solve_lp(objective, a_ub, b_ub, a_eq, b_eq, lower, upper):
    """Solve one LP relaxation; returns (objective, x) or (None, None)."""
    result = linprog(
        c=objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=np.column_stack([lower, upper]),
        method="highs",
    )
    if not result.success:
        return None, None
    return float(result.fun), result.x


def solve_branch_bound(
    model: Model,
    time_limit: float | None = None,
    mip_gap: float | None = None,
    node_limit: int | None = None,
) -> SolveResult:
    """Solve ``model`` by best-first branch and bound."""
    compiled = model.compile()
    start = time.perf_counter()
    deadline = start + time_limit if time_limit is not None else None
    max_nodes = node_limit if node_limit is not None else 200_000
    gap_target = mip_gap if mip_gap is not None else 1e-6

    objective = np.asarray(compiled.objective)
    int_mask = np.asarray(compiled.integrality, dtype=bool)
    base_lower = np.asarray(compiled.lower, dtype=float)
    base_upper = np.asarray(compiled.upper, dtype=float)

    # Split two-sided rows into <= / == matrices once, assembling COO
    # triplets directly — never materializing a dense num_vars-wide row
    # per constraint (the formulations are ~99% sparse at paper scale).
    ub = _CooBuilder(compiled.num_vars)
    eq = _CooBuilder(compiled.num_vars)
    for coeffs, row_lb, row_ub in compiled.rows:
        if row_lb == row_ub:
            eq.add_row(coeffs, row_lb, sign=1.0)
            continue
        if row_ub < _INF:
            ub.add_row(coeffs, row_ub, sign=1.0)
        if row_lb > -_INF:
            ub.add_row(coeffs, -row_lb, sign=-1.0)
    a_ub, b_ub = ub.build()
    a_eq, b_eq = eq.build()

    counter = itertools.count()
    root_obj, root_x = _solve_lp(
        objective, a_ub, b_ub, a_eq, b_eq, base_lower, base_upper
    )
    if root_x is None:
        return SolveResult(
            status=SolveStatus.INFEASIBLE,
            solve_time=time.perf_counter() - start,
            message="root LP infeasible",
        )

    best_obj = _INF
    best_x: np.ndarray | None = None
    heap: list[_Node] = [_Node(root_obj, next(counter), base_lower, base_upper)]
    explored = 0

    def _try_incumbent(x: np.ndarray) -> None:
        """Round integers and accept the point if it stays feasible."""
        nonlocal best_obj, best_x
        candidate = x.copy()
        candidate[int_mask] = np.round(candidate[int_mask])
        values = [float(v) for v in candidate]
        if model.check_feasible(values, tol=1e-6):
            obj = float(objective @ candidate)
            if obj < best_obj:
                best_obj = obj
                best_x = candidate

    while heap:
        if deadline is not None and time.perf_counter() > deadline:
            break
        if explored >= max_nodes:
            break
        node = heapq.heappop(heap)
        if node.bound >= best_obj - abs(best_obj) * gap_target:
            continue  # pruned by incumbent
        lp_obj, lp_x = _solve_lp(
            objective, a_ub, b_ub, a_eq, b_eq, node.lower, node.upper
        )
        explored += 1
        if lp_x is None or lp_obj >= best_obj:
            continue

        fractional = np.where(
            int_mask & (np.abs(lp_x - np.round(lp_x)) > _INT_TOL)
        )[0]
        if fractional.size == 0:
            if lp_obj < best_obj:
                best_obj = lp_obj
                best_x = lp_x.copy()
                best_x[int_mask] = np.round(best_x[int_mask])
            continue

        _try_incumbent(lp_x)

        # Branch on the most fractional integer variable.
        fracs = np.abs(lp_x[fractional] - np.round(lp_x[fractional]))
        branch_var = int(fractional[np.argmax(np.minimum(fracs, 1 - fracs))])
        floor_val = np.floor(lp_x[branch_var])

        down_upper = node.upper.copy()
        down_upper[branch_var] = floor_val
        if node.lower[branch_var] <= floor_val:
            heapq.heappush(heap, _Node(lp_obj, next(counter), node.lower, down_upper))

        up_lower = node.lower.copy()
        up_lower[branch_var] = floor_val + 1
        if up_lower[branch_var] <= node.upper[branch_var]:
            heapq.heappush(heap, _Node(lp_obj, next(counter), up_lower, node.upper))

    elapsed = time.perf_counter() - start
    if best_x is None:
        status = SolveStatus.TIME_LIMIT if heap else SolveStatus.INFEASIBLE
        return SolveResult(status=status, solve_time=elapsed, nodes=explored)

    remaining_bound = min((n.bound for n in heap), default=best_obj)
    gap = abs(best_obj - remaining_bound) / max(1e-12, abs(best_obj))
    status = (
        SolveStatus.OPTIMAL if not heap or gap <= gap_target else SolveStatus.FEASIBLE
    )
    return SolveResult(
        status=status,
        objective=best_obj,
        values=[float(v) for v in best_x],
        solve_time=elapsed,
        gap=gap,
        nodes=explored,
    )
