"""A small MILP modeling language.

This is the substrate standing in for Gurobi's modeling API.  It supports
exactly what the RecShard formulation needs: bounded continuous and binary
variables, linear expressions with operator overloading, linear
constraints in ``<=``, ``>=`` and ``==`` senses, and a linear objective.

Models compile to a standard sparse matrix form and are solved by one of
two backends:

* ``"highs"`` — scipy's HiGHS MILP solver (:func:`scipy.optimize.milp`),
  the default and the one used for all experiments.
* ``"branch_bound"`` — a pure-Python best-first branch and bound over
  HiGHS LP relaxations (:mod:`repro.milp.branch_bound`), useful for tiny
  models and as an independent cross-check of the HiGHS backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.milp.result import SolveResult

_INF = float("inf")


class Var:
    """A decision variable.

    Create variables through :meth:`Model.continuous_var`,
    :meth:`Model.integer_var` or :meth:`Model.binary_var`; the model
    assigns the ``index`` used in the compiled matrix form.
    """

    __slots__ = ("name", "lb", "ub", "integer", "index")

    def __init__(self, name: str, lb: float, ub: float, integer: bool, index: int):
        self.name = name
        self.lb = lb
        self.ub = ub
        self.integer = integer
        self.index = index

    def __repr__(self) -> str:
        kind = "int" if self.integer else "cont"
        return f"Var({self.name!r}, [{self.lb}, {self.ub}], {kind})"

    # Arithmetic builds LinExpr objects; Var itself stays immutable.
    def _as_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other):
        return self._as_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._as_expr() - other

    def __rsub__(self, other):
        return (-1.0 * self._as_expr()) + other

    def __mul__(self, scalar):
        return self._as_expr() * scalar

    __rmul__ = __mul__

    def __neg__(self):
        return self._as_expr() * -1.0

    def __le__(self, other):
        return self._as_expr() <= other

    def __ge__(self, other):
        return self._as_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._as_expr() == other

    def __hash__(self):
        return id(self)


class LinExpr:
    """A linear expression ``sum(coeff_i * var_i) + constant``.

    Internally a mapping from variable index to coefficient.  Supports
    ``+``, ``-``, scalar ``*`` and comparison operators that produce
    :class:`Constraint` objects.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: dict[int, float] | None = None, constant: float = 0.0):
        self.coeffs = coeffs if coeffs is not None else {}
        self.constant = constant

    @staticmethod
    def _coerce(other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return other._as_expr()
        if isinstance(other, (int, float)):
            return LinExpr({}, float(other))
        raise TypeError(f"cannot use {type(other).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    def __add__(self, other):
        other = self._coerce(other)
        merged = dict(self.coeffs)
        for idx, coef in other.coeffs.items():
            merged[idx] = merged.get(idx, 0.0) + coef
        return LinExpr(merged, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other):
        return self._coerce(other) + (self * -1.0)

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinExpr only supports multiplication by scalars")
        scalar = float(scalar)
        return LinExpr(
            {idx: coef * scalar for idx, coef in self.coeffs.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    def __le__(self, other):
        return Constraint(self - self._coerce(other), "<=")

    def __ge__(self, other):
        return Constraint(self - self._coerce(other), ">=")

    def __eq__(self, other):  # type: ignore[override]
        return Constraint(self - self._coerce(other), "==")

    def __hash__(self):
        return id(self)

    def value(self, values: list[float]) -> float:
        """Evaluate the expression against a variable value vector."""
        total = self.constant
        for idx, coef in self.coeffs.items():
            total += coef * values[idx]
        return total

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


def lin_sum(terms: Iterable) -> LinExpr:
    """Sum variables/expressions efficiently (avoids quadratic dict merges)."""
    coeffs: dict[int, float] = {}
    constant = 0.0
    for term in terms:
        if isinstance(term, Var):
            coeffs[term.index] = coeffs.get(term.index, 0.0) + 1.0
        elif isinstance(term, LinExpr):
            for idx, coef in term.coeffs.items():
                coeffs[idx] = coeffs.get(idx, 0.0) + coef
            constant += term.constant
        else:
            constant += float(term)
    return LinExpr(coeffs, constant)


@dataclass
class Constraint:
    """A linear constraint ``expr (sense) 0`` with the rhs folded in."""

    expr: LinExpr
    sense: str  # one of "<=", ">=", "=="
    name: str = ""

    def __post_init__(self):
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"invalid constraint sense: {self.sense!r}")

    def violation(self, values: list[float]) -> float:
        """Amount by which ``values`` violates this constraint (0 if satisfied)."""
        lhs = self.expr.value(values)
        if self.sense == "<=":
            return max(0.0, lhs)
        if self.sense == ">=":
            return max(0.0, -lhs)
        return abs(lhs)


@dataclass
class _CompiledModel:
    """Model lowered to matrix form (built lazily by the backends)."""

    num_vars: int
    objective: list[float]
    integrality: list[int]
    lower: list[float]
    upper: list[float]
    rows: list[tuple[dict[int, float], float, float]]  # (coeffs, lb, ub)


class Model:
    """A minimization MILP under construction."""

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()

    # ------------------------------------------------------------------
    # Variable creation
    # ------------------------------------------------------------------
    def continuous_var(self, lb: float = 0.0, ub: float = _INF, name: str = "") -> Var:
        return self._add_var(lb, ub, integer=False, name=name)

    def integer_var(self, lb: float = 0.0, ub: float = _INF, name: str = "") -> Var:
        return self._add_var(lb, ub, integer=True, name=name)

    def binary_var(self, name: str = "") -> Var:
        return self._add_var(0.0, 1.0, integer=True, name=name)

    def _add_var(self, lb: float, ub: float, integer: bool, name: str) -> Var:
        if lb > ub:
            raise ValueError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Var(
            name or f"x{len(self.variables)}", lb, ub, integer, len(self.variables)
        )
        self.variables.append(var)
        return var

    # ------------------------------------------------------------------
    # Constraints and objective
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "Model.add expects a Constraint (built from expr <= / >= / == rhs)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr) -> None:
        self._objective = LinExpr._coerce(expr).copy()

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def num_binary(self) -> int:
        return sum(1 for v in self.variables if v.integer and v.lb == 0 and v.ub == 1)

    def compile(self) -> _CompiledModel:
        """Lower to matrix form for the backends."""
        num_vars = len(self.variables)
        objective = [0.0] * num_vars
        for idx, coef in self._objective.coeffs.items():
            objective[idx] = coef
        integrality = [1 if v.integer else 0 for v in self.variables]
        lower = [v.lb for v in self.variables]
        upper = [v.ub for v in self.variables]
        rows: list[tuple[dict[int, float], float, float]] = []
        for con in self.constraints:
            rhs = -con.expr.constant
            if con.sense == "<=":
                rows.append((con.expr.coeffs, -_INF, rhs))
            elif con.sense == ">=":
                rows.append((con.expr.coeffs, rhs, _INF))
            else:
                rows.append((con.expr.coeffs, rhs, rhs))
        return _CompiledModel(num_vars, objective, integrality, lower, upper, rows)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        backend: str = "highs",
        time_limit: float | None = None,
        mip_gap: float | None = None,
        node_limit: int | None = None,
    ) -> SolveResult:
        """Solve the model and return a :class:`SolveResult`.

        Args:
            backend: ``"highs"`` (scipy) or ``"branch_bound"`` (pure Python).
            time_limit: wall-clock limit in seconds.
            mip_gap: relative optimality gap at which to stop early.
            node_limit: node cap for the branch-and-bound backend.
        """
        if backend == "highs":
            from repro.milp.scipy_backend import solve_with_highs

            return solve_with_highs(self, time_limit=time_limit, mip_gap=mip_gap)
        if backend == "branch_bound":
            from repro.milp.branch_bound import solve_branch_bound

            return solve_branch_bound(
                self, time_limit=time_limit, mip_gap=mip_gap, node_limit=node_limit
            )
        raise ValueError(f"unknown backend {backend!r}")

    def check_feasible(self, values: list[float], tol: float = 1e-6) -> bool:
        """Whether ``values`` satisfies every constraint and bound."""
        for var in self.variables:
            val = values[var.index]
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.integer and abs(val - round(val)) > tol:
                return False
        return all(con.violation(values) <= tol for con in self.constraints)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={len(self.variables)} "
            f"(int={sum(v.integer for v in self.variables)}), "
            f"constraints={len(self.constraints)})"
        )
