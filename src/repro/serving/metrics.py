"""Serving-side metrics: request latency, throughput, device load.

The training engine reports per-iteration times (:mod:`repro.engine.metrics`);
serving cares about a different set of figures — per-request latency
distribution (p50/p99), sustained queries per second, and how evenly the
simulated devices are loaded.  :class:`ServingMetrics` accumulates raw
per-request and per-batch records during a run and derives those views.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ServingMetrics:
    """Accumulated measurements of one serving run.

    All timestamps are simulated milliseconds on the server's clock.
    Populated incrementally via :meth:`record_batch` /
    :meth:`record_replan`; the derived views (QPS, percentiles,
    utilization) can be read at any point.
    """

    num_devices: int
    arrival_ms: list[float] = field(default_factory=list)
    start_ms: list[float] = field(default_factory=list)
    finish_ms: list[float] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)
    batch_lookups: list[int] = field(default_factory=list)
    replan_ms: list[float] = field(default_factory=list)
    device_busy_ms: np.ndarray = None

    def __post_init__(self):
        if self.device_busy_ms is None:
            self.device_busy_ms = np.zeros(self.num_devices, dtype=np.float64)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_batch(
        self,
        arrivals_ms: list[float],
        start_ms: float,
        finish_ms: float,
        device_times_ms: np.ndarray,
        total_lookups: int,
    ) -> None:
        """Record one executed microbatch.

        Args:
            arrivals_ms: arrival timestamp of each request in the batch.
            start_ms: when the batch started executing.
            finish_ms: when the batch completed (all requests finish
                together — the engine is model-parallel across tables,
                so the slowest device bounds the batch).
            device_times_ms: per-device execution time of this batch.
            total_lookups: embedding rows touched by the batch.
        """
        self.arrival_ms.extend(arrivals_ms)
        self.start_ms.extend([start_ms] * len(arrivals_ms))
        self.finish_ms.extend([finish_ms] * len(arrivals_ms))
        self.batch_sizes.append(len(arrivals_ms))
        self.batch_lookups.append(int(total_lookups))
        self.device_busy_ms += np.asarray(device_times_ms, dtype=np.float64)

    def record_replan(self, now_ms: float) -> None:
        """Record a drift-triggered re-shard at ``now_ms``."""
        self.replan_ms.append(float(now_ms))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.arrival_ms)

    @property
    def num_batches(self) -> int:
        return len(self.batch_sizes)

    @property
    def horizon_ms(self) -> float:
        """Span from first arrival to last completion."""
        if not self.arrival_ms:
            return 0.0
        return float(max(self.finish_ms) - min(self.arrival_ms))

    def latencies_ms(self) -> np.ndarray:
        """Per-request end-to-end latency (queue wait + execution)."""
        return np.asarray(self.finish_ms) - np.asarray(self.arrival_ms)

    def queue_waits_ms(self) -> np.ndarray:
        """Per-request time spent waiting for batchmates and the engine
        (the batching-delay component of latency)."""
        return np.asarray(self.start_ms) - np.asarray(self.arrival_ms)

    def latency_percentile_ms(self, percentile: float) -> float:
        """A latency percentile in ms (e.g. 50 for p50, 99 for p99)."""
        if not self.arrival_ms:
            return 0.0
        return float(np.percentile(self.latencies_ms(), percentile))

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile_ms(99)

    @property
    def qps(self) -> float:
        """Sustained completions per second over the run horizon."""
        horizon = self.horizon_ms
        if horizon <= 0:
            return 0.0
        return float(self.num_requests / horizon * 1e3)

    @property
    def lookups_per_second(self) -> float:
        """Embedding rows served per second — the engine-level rate."""
        horizon = self.horizon_ms
        if horizon <= 0:
            return 0.0
        return float(sum(self.batch_lookups) / horizon * 1e3)

    @property
    def avg_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def device_utilization(self) -> np.ndarray:
        """Per-device busy fraction of the run horizon."""
        horizon = self.horizon_ms
        if horizon <= 0:
            return np.zeros(self.num_devices)
        return self.device_busy_ms / horizon

    @property
    def num_replans(self) -> int:
        return len(self.replan_ms)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """All headline numbers as one dict (stable keys, for tests/CLI)."""
        utilization = self.device_utilization()
        return {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "avg_batch_size": self.avg_batch_size,
            "qps": self.qps,
            "lookups_per_second": self.lookups_per_second,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_wait_ms": (
                float(self.queue_waits_ms().mean()) if self.arrival_ms else 0.0
            ),
            "max_device_utilization": float(utilization.max(initial=0.0)),
            "mean_device_utilization": float(utilization.mean()) if utilization.size else 0.0,
            "replans": self.num_replans,
        }

    def format_report(self) -> str:
        """Human-readable multi-line report of :meth:`summary`."""
        s = self.summary()
        lines = [
            f"requests served:   {s['requests']} in {self.horizon_ms:.1f} ms "
            f"({s['batches']} batches, avg size {s['avg_batch_size']:.1f})",
            f"throughput:        {s['qps']:.0f} QPS "
            f"({s['lookups_per_second']:.2e} lookups/s)",
            f"latency:           p50 {s['p50_ms']:.3f} ms, "
            f"p99 {s['p99_ms']:.3f} ms "
            f"(mean queue wait {s['mean_wait_ms']:.3f} ms)",
            f"device load:       mean {s['mean_device_utilization']:.1%}, "
            f"max {s['max_device_utilization']:.1%}",
        ]
        if self.num_replans:
            at = ", ".join(f"{t:.0f}" for t in self.replan_ms)
            lines.append(f"drift replans:     {self.num_replans} (at ms: {at})")
        return "\n".join(lines)
