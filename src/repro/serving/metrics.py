"""Serving-side metrics: request latency, throughput, device load.

The training engine reports per-iteration times (:mod:`repro.engine.metrics`);
serving cares about a different set of figures — per-request latency
distribution (p50/p99), sustained queries per second, and how evenly the
simulated devices are loaded.  :class:`ServingMetrics` accumulates raw
per-batch records during a run and derives those views.

Storage is columnar: arrivals are kept as one float64 chunk per
recorded batch, and start/finish are stored once per batch (every
request in a microbatch starts and finishes with its batch), so
recording costs O(1) Python objects per *batch* rather than per
request.  Per-request views (:meth:`latencies_ms`,
:meth:`queue_waits_ms`) are expanded on demand with ``np.repeat``.

Per-tier access accounting (Table 5, online): each recorded batch may
carry the engine's ``(tiers, devices)`` access matrix; the metrics keep
the per-batch chunks plus a running total, so a serving run reports
where its lookups were physically served — the same per-tier counts the
offline Table 5 replay produces for the same trace content, regardless
of how admission sliced the stream into microbatches.
"""

from __future__ import annotations

import numpy as np

_EMPTY = np.empty(0, dtype=np.float64)


class ServingMetrics:
    """Accumulated measurements of one serving run.

    All timestamps are simulated milliseconds on the server's clock.
    Populated incrementally via :meth:`record_batch` /
    :meth:`record_replan`; the derived views (QPS, percentiles,
    utilization) can be read at any point.

    ``replan_build_ms`` is the one *wall-clock* series: how long each
    drift replan took to build off the critical path (plan + remapper +
    executor).  It surfaces the re-shard cost the simulated clock
    deliberately treats as free, and is therefore excluded from
    determinism/parity comparisons.
    """

    def __init__(
        self,
        num_devices: int,
        tier_names=None,
        priority_names=None,
        tier_precisions=None,
    ):
        self.num_devices = int(num_devices)
        self.tier_names: tuple[str, ...] = tuple(tier_names or ())
        self.priority_names: tuple[str, ...] = tuple(priority_names or ())
        # Per-tier storage precisions; summary keys are conditional on
        # any tier being quantized, so fp32 schemas are unchanged.
        self.tier_precisions: tuple[str, ...] = tuple(tier_precisions or ())
        self._arrival_chunks: list[np.ndarray] = []
        self._batch_start: list[float] = []
        self._batch_finish: list[float] = []
        self.batch_sizes: list[int] = []
        self.batch_lookups: list[int] = []
        self.replan_ms: list[float] = []
        self.replan_build_ms: list[float] = []
        self.device_busy_ms = np.zeros(self.num_devices, dtype=np.float64)
        # Per-batch (tiers, devices) access chunks plus a running total;
        # populated only when record_batch receives tier matrices.
        self._tier_access_chunks: list[np.ndarray] = []
        self._tier_access_total: np.ndarray | None = None
        # Per-batch replica-lane access vectors (devices,), when the
        # executor routes a hot-row replica set.
        self._replica_chunks: list[np.ndarray] = []
        self._replica_total: np.ndarray | None = None
        self._num_requests = 0
        # Requests rejected by overload shedding, split by cause
        # (overflow / deadline / priority) and by priority class; 0 in
        # every closed-loop/parity run, and surfaced in the summary
        # only when nonzero so those schemas are unchanged.
        self.shed_requests = 0
        self.shed_by_cause: dict[str, int] = {}
        self._shed_by_class: dict[int, int] = {}
        # Per-batch QoS chunks, aligned with the arrival chunks; None
        # entries mark batches without the columns.
        self._deadline_chunks: list[np.ndarray | None] = []
        self._priority_chunks: list[np.ndarray | None] = []
        self._has_deadlines = False
        self._has_priorities = False
        # Brownout degraded-mode accounting: cold-tier lookups skipped
        # while browned out, per (tier, device), plus the active-mode
        # timeline ([start_ms, end_ms] windows; end None while open).
        self._browned_total: np.ndarray | None = None
        self.brownout_windows: list[list] = []
        # Fault/recovery timeline (chaos drills).  All empty/None on a
        # healthy run, and every derived summary key is conditional on
        # faults having fired — so no-fault schemas are unchanged.
        self._fault_events: list[dict] = []
        self._recoveries: list[dict] = []
        # [start_ms, end_ms] per failure window; end is None while open.
        self.fault_windows: list[list] = []
        self._dropped_total: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_batch(
        self,
        arrivals_ms,
        start_ms: float,
        finish_ms: float,
        device_times_ms: np.ndarray,
        total_lookups: int,
        tier_accesses: np.ndarray | None = None,
        replica_accesses: np.ndarray | None = None,
        dropped_lookups: np.ndarray | None = None,
        deadlines_ms=None,
        priorities=None,
        browned_lookups: np.ndarray | None = None,
    ) -> None:
        """Record one executed microbatch.

        Args:
            arrivals_ms: arrival timestamp of each request in the batch
                (list or ndarray; copied into the metrics' own storage).
            start_ms: when the batch started executing.
            finish_ms: when the batch completed (all requests finish
                together — the engine is model-parallel across tables,
                so the slowest device bounds the batch).
            device_times_ms: per-device execution time of this batch.
            total_lookups: embedding rows touched by the batch.
            tier_accesses: optional ``(tiers, devices)`` access-count
                matrix of this batch (copied; accumulated into the
                per-tier serving totals).
            replica_accesses: optional ``(devices,)`` count of lookups
                this batch served from the hot-row replica lane (a
                subset of the fastest tier's counts; copied and
                accumulated like the tier matrices).
            dropped_lookups: optional ``(devices,)`` count of lookups
                this batch *dropped* on failed devices (chaos drills;
                accumulated per device — callers pass it only while a
                device fault is active).
            deadlines_ms: optional per-request absolute deadlines
                (aligned with ``arrivals_ms``); enables the goodput
                (served-within-deadline) views.
            priorities: optional per-request priority classes; enables
                the per-class latency/shed views.
            browned_lookups: optional ``(tiers, devices)`` count of
                cold-tier lookups this batch *skipped* under brownout
                (the degraded mode's measured quality cost).
        """
        arrivals = np.array(arrivals_ms, dtype=np.float64)
        self._arrival_chunks.append(arrivals)
        self._batch_start.append(float(start_ms))
        self._batch_finish.append(float(finish_ms))
        self.batch_sizes.append(arrivals.size)
        self.batch_lookups.append(int(total_lookups))
        self.device_busy_ms += np.asarray(device_times_ms, dtype=np.float64)
        if tier_accesses is not None:
            chunk = np.array(tier_accesses, dtype=np.int64)
            self._tier_access_chunks.append(chunk)
            if self._tier_access_total is None:
                self._tier_access_total = chunk.copy()
            else:
                self._tier_access_total += chunk
        if replica_accesses is not None:
            replica = np.array(replica_accesses, dtype=np.int64)
            self._replica_chunks.append(replica)
            if self._replica_total is None:
                self._replica_total = replica.copy()
            else:
                self._replica_total += replica
        if dropped_lookups is not None:
            dropped = np.array(dropped_lookups, dtype=np.int64)
            if self._dropped_total is None:
                self._dropped_total = dropped.copy()
            else:
                self._dropped_total += dropped
        if deadlines_ms is not None:
            self._deadline_chunks.append(
                np.array(deadlines_ms, dtype=np.float64)
            )
            self._has_deadlines = True
        else:
            self._deadline_chunks.append(None)
        if priorities is not None:
            self._priority_chunks.append(np.array(priorities, dtype=np.int64))
            self._has_priorities = True
        else:
            self._priority_chunks.append(None)
        if browned_lookups is not None:
            browned = np.array(browned_lookups, dtype=np.int64)
            if self._browned_total is None:
                self._browned_total = browned.copy()
            else:
                self._browned_total += browned
        self._num_requests += arrivals.size

    def record_shed(
        self, count: int, cause: str = "overflow", priorities=None
    ) -> None:
        """Record ``count`` requests rejected by overload shedding.

        Shed requests never execute: they appear in no latency, QPS, or
        access figure, only in these counters — so
        ``offered == num_requests + shed_requests`` holds exactly for a
        paced or admission-controlled run (the accounting the overload
        tests pin), and the per-cause counts sum to the total by
        construction.

        Args:
            count: requests shed in this decision.
            cause: why — ``"overflow"`` (queue bound), ``"deadline"``
                (predicted doomed), or ``"priority"`` (class shed).
            priorities: optional per-request priority classes of the
                shed requests (length ``count``), for per-class
                accounting.
        """
        if count < 0:
            raise ValueError("shed count must be >= 0")
        self.shed_requests += int(count)
        if count:
            self.shed_by_cause[cause] = (
                self.shed_by_cause.get(cause, 0) + int(count)
            )
            if priorities is not None:
                classes, per_class = np.unique(
                    np.asarray(priorities, dtype=np.int64),
                    return_counts=True,
                )
                for cls, shed in zip(classes.tolist(), per_class.tolist()):
                    self._shed_by_class[cls] = (
                        self._shed_by_class.get(cls, 0) + shed
                    )

    def record_brownout(self, at_ms: float, active: bool) -> None:
        """Record a brownout mode transition at simulated ``at_ms``."""
        if active:
            self.brownout_windows.append([float(at_ms), None])
        else:
            for window in reversed(self.brownout_windows):
                if window[1] is None:
                    window[1] = float(at_ms)
                    return
            raise ValueError("no open brownout window to close")

    def record_replan(self, now_ms: float, build_wall_ms: float = 0.0) -> None:
        """Record a drift-triggered re-shard at simulated ``now_ms``.

        ``build_wall_ms`` is the wall-clock cost of building the new
        plan/executor (0 when the caller does not measure it).
        """
        self.replan_ms.append(float(now_ms))
        self.replan_build_ms.append(float(build_wall_ms))

    # ------------------------------------------------------------------
    # Fault/recovery timeline (chaos drills)
    # ------------------------------------------------------------------
    def record_fault(
        self, at_ms: float, kind: str, target: int, description: str = ""
    ) -> None:
        """Record a fault event observed at simulated ``at_ms``."""
        self._fault_events.append(
            {
                "at_ms": float(at_ms),
                "kind": str(kind),
                "target": int(target),
                "description": str(description),
            }
        )

    def record_recovery(
        self,
        kind: str,
        fault_ms: float,
        done_ms: float,
        wall_ms: float = 0.0,
    ) -> None:
        """Record one recovery milestone after a fault.

        ``kind`` names the milestone (``"reroute"`` — replicated
        lookups steered off the dead device; ``"replan"`` — emergency
        warm-start plan committed; ``"respawn"`` — worker process
        replaced).  ``fault_ms``/``done_ms`` are simulated timestamps;
        ``wall_ms`` the off-path wall-clock cost, when measured.
        """
        self._recoveries.append(
            {
                "kind": str(kind),
                "fault_ms": float(fault_ms),
                "done_ms": float(done_ms),
                "elapsed_ms": float(done_ms) - float(fault_ms),
                "wall_ms": float(wall_ms),
            }
        )

    def open_fault_window(self, start_ms: float) -> None:
        """Mark the start of a degraded-service window."""
        self.fault_windows.append([float(start_ms), None])

    def close_fault_window(self, end_ms: float) -> None:
        """Close the most recent open degraded-service window."""
        for window in reversed(self.fault_windows):
            if window[1] is None:
                window[1] = float(end_ms)
                return
        raise ValueError("no open fault window to close")

    @property
    def fault_events(self) -> tuple[dict, ...]:
        return tuple(self._fault_events)

    @property
    def recoveries(self) -> tuple[dict, ...]:
        return tuple(self._recoveries)

    def _recovery_elapsed(self, kind: str) -> float | None:
        for entry in self._recoveries:
            if entry["kind"] == kind:
                return entry["elapsed_ms"]
        return None

    @property
    def time_to_reroute_ms(self) -> float | None:
        """Fault → first batch with the dead device masked out of the
        replica routing lane (simulated; ``None`` until recorded)."""
        return self._recovery_elapsed("reroute")

    @property
    def time_to_replan_ms(self) -> float | None:
        """Fault → emergency warm-start replan committed (simulated
        clock, but derived from the build's wall cost unless the server
        pins a commit delay; ``None`` until recorded)."""
        return self._recovery_elapsed("replan")

    @property
    def dropped_lookups(self) -> int:
        """Lookups dropped on failed devices over the whole run."""
        if self._dropped_total is None:
            return 0
        return int(self._dropped_total.sum())

    @property
    def dropped_per_device(self) -> np.ndarray:
        if self._dropped_total is None:
            return np.zeros(self.num_devices, dtype=np.int64)
        return self._dropped_total

    # ------------------------------------------------------------------
    # Overload-control views (QoS, shedding, brownout)
    # ------------------------------------------------------------------
    @property
    def offered_requests(self) -> int:
        """Requests offered to the server: served plus shed."""
        return self._num_requests + self.shed_requests

    @property
    def served_within_deadline(self) -> int:
        """Served requests that finished at or before their deadline.

        Batches recorded without deadline columns count fully (no
        deadline means no way to miss one).
        """
        within = 0
        for finish, size, chunk in zip(
            self._batch_finish, self.batch_sizes, self._deadline_chunks
        ):
            if chunk is None:
                within += size
            else:
                within += int(np.count_nonzero(finish <= chunk))
        return within

    @property
    def goodput_fraction(self) -> float:
        """Served-within-deadline over *offered* — the figure overload
        control defends (sheds and deadline misses both count against
        it)."""
        offered = self.offered_requests
        if not offered:
            return 0.0
        return self.served_within_deadline / offered

    def priority_class_name(self, cls: int) -> str:
        if 0 <= cls < len(self.priority_names):
            return self.priority_names[cls]
        return f"class{cls}"

    def priority_class_stats(self) -> dict:
        """Per-class served/latency/shed breakdown, keyed by class name.

        Classes appear if any served batch carried priority columns or
        any shed was recorded with them; within a class, latency
        percentiles cover the *served* requests only (shed requests
        have no latency — they count in ``shed``).
        """
        latencies: dict[int, list] = {}
        for finish, arrivals, chunk in zip(
            self._batch_finish, self._arrival_chunks, self._priority_chunks
        ):
            if chunk is None:
                continue
            per_request = finish - arrivals
            for cls in np.unique(chunk).tolist():
                latencies.setdefault(cls, []).append(
                    per_request[chunk == cls]
                )
        classes = sorted(set(latencies) | set(self._shed_by_class))
        stats = {}
        for cls in classes:
            values = (
                np.concatenate(latencies[cls])
                if cls in latencies
                else _EMPTY
            )
            stats[self.priority_class_name(cls)] = {
                "requests": int(values.size),
                "p50_ms": (
                    float(np.percentile(values, 50)) if values.size else 0.0
                ),
                "p99_ms": (
                    float(np.percentile(values, 99)) if values.size else 0.0
                ),
                "shed": self._shed_by_class.get(cls, 0),
            }
        return stats

    @property
    def browned_out_lookups(self) -> int:
        """Cold-tier lookups skipped under brownout over the whole run."""
        if self._browned_total is None:
            return 0
        return int(self._browned_total.sum())

    @property
    def browned_totals(self) -> np.ndarray:
        """Brownout-skipped lookups per (tier, device)."""
        if self._browned_total is None:
            return np.zeros(
                (len(self.tier_names), self.num_devices), dtype=np.int64
            )
        return self._browned_total

    @property
    def browned_per_device(self) -> np.ndarray:
        return self.browned_totals.sum(axis=0)

    def windowed_latency(self) -> dict:
        """p50/p99 by failure phase: before / during / after.

        A batch is *during* if it started inside any fault window
        (open windows extend to the end of the run), *before* if it
        started ahead of the first window, *after* otherwise.  Phases
        with no batches report zero requests and zero percentiles.
        """
        phases = {
            name: {"requests": 0, "p50_ms": 0.0, "p99_ms": 0.0}
            for name in ("before", "during", "after")
        }
        if not self.batch_sizes:
            return phases
        starts = np.asarray(self._batch_start, dtype=np.float64)
        during = np.zeros(starts.size, dtype=bool)
        for begin, end in self.fault_windows:
            upper = np.inf if end is None else end
            during |= (starts >= begin) & (starts < upper)
        first = (
            min(w[0] for w in self.fault_windows)
            if self.fault_windows
            else np.inf
        )
        before = ~during & (starts < first)
        after = ~during & ~before
        latencies = self.latencies_ms()
        request_phase = np.repeat(
            np.where(during, 1, np.where(before, 0, 2)), self.batch_sizes
        )
        for code, name in enumerate(("before", "during", "after")):
            values = latencies[request_phase == code]
            phases[name] = {
                "requests": int(values.size),
                "p50_ms": (
                    float(np.percentile(values, 50)) if values.size else 0.0
                ),
                "p99_ms": (
                    float(np.percentile(values, 99)) if values.size else 0.0
                ),
            }
        return phases

    # ------------------------------------------------------------------
    # Columnar views
    # ------------------------------------------------------------------
    @property
    def arrival_ms(self) -> np.ndarray:
        """Per-request arrival timestamps, in recording order."""
        if not self._arrival_chunks:
            return _EMPTY
        return np.concatenate(self._arrival_chunks)

    @property
    def start_ms(self) -> np.ndarray:
        """Per-request execution-start timestamps (batch-expanded)."""
        if not self.batch_sizes:
            return _EMPTY
        return np.repeat(self._batch_start, self.batch_sizes)

    @property
    def finish_ms(self) -> np.ndarray:
        """Per-request completion timestamps (batch-expanded)."""
        if not self.batch_sizes:
            return _EMPTY
        return np.repeat(self._batch_finish, self.batch_sizes)

    @property
    def tier_access_chunks(self) -> list[np.ndarray]:
        """Per-batch ``(tiers, devices)`` access matrices, recording order."""
        return self._tier_access_chunks

    @property
    def tier_access_totals(self) -> np.ndarray:
        """Accesses served per (tier, device) over the whole run.

        Shape ``(num_tiers, num_devices)``; all zeros (with zero tiers)
        when no batch carried tier matrices.
        """
        if self._tier_access_total is None:
            return np.zeros((len(self.tier_names), self.num_devices), dtype=np.int64)
        return self._tier_access_total

    def tier_access_fraction(self, tier) -> float:
        """Fraction of all served accesses landing on ``tier``.

        ``tier`` is a tier name (when the metrics were built with
        ``tier_names``) or a tier index.
        """
        totals = self.tier_access_totals
        total = totals.sum()
        if total == 0:
            return 0.0
        index = self.tier_names.index(tier) if isinstance(tier, str) else tier
        return float(totals[index].sum() / total)

    @property
    def replica_access_chunks(self) -> list[np.ndarray]:
        """Per-batch ``(devices,)`` replica-lane vectors, recording order."""
        return self._replica_chunks

    @property
    def replica_access_totals(self) -> np.ndarray:
        """Replica-lane accesses served per device over the whole run."""
        if self._replica_total is None:
            return np.zeros(self.num_devices, dtype=np.int64)
        return self._replica_total

    @property
    def device_access_totals(self) -> np.ndarray:
        """Accesses served per device, summed over tiers."""
        return self.tier_access_totals.sum(axis=0)

    @property
    def load_imbalance(self) -> float:
        """Max/mean per-device access counts — the serving-side skew the
        hot-row replica lane attacks (1.0 is perfectly balanced; 0.0
        when no batch carried tier matrices)."""
        totals = self.device_access_totals
        mean = totals.mean() if totals.size else 0.0
        if mean <= 0:
            return 0.0
        return float(totals.max() / mean)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return self._num_requests

    @property
    def num_batches(self) -> int:
        return len(self.batch_sizes)

    @property
    def horizon_ms(self) -> float:
        """Span from first arrival to last completion."""
        if not self._num_requests:
            return 0.0
        first_arrival = min(
            chunk.min() for chunk in self._arrival_chunks if chunk.size
        )
        return float(max(self._batch_finish) - first_arrival)

    def latencies_ms(self) -> np.ndarray:
        """Per-request end-to-end latency (queue wait + execution)."""
        return self.finish_ms - self.arrival_ms

    def queue_waits_ms(self) -> np.ndarray:
        """Per-request time spent waiting for batchmates and the engine
        (the batching-delay component of latency)."""
        return self.start_ms - self.arrival_ms

    def latency_percentile_ms(self, percentile: float) -> float:
        """A latency percentile in ms (e.g. 50 for p50, 99 for p99)."""
        if not self._num_requests:
            return 0.0
        return float(np.percentile(self.latencies_ms(), percentile))

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile_ms(99)

    @property
    def qps(self) -> float:
        """Sustained completions per second over the run horizon."""
        horizon = self.horizon_ms
        if horizon <= 0:
            return 0.0
        return float(self.num_requests / horizon * 1e3)

    @property
    def lookups_per_second(self) -> float:
        """Embedding rows served per second — the engine-level rate."""
        horizon = self.horizon_ms
        if horizon <= 0:
            return 0.0
        return float(sum(self.batch_lookups) / horizon * 1e3)

    @property
    def avg_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def device_utilization(self) -> np.ndarray:
        """Per-device busy fraction of the run horizon."""
        horizon = self.horizon_ms
        if horizon <= 0:
            return np.zeros(self.num_devices)
        return self.device_busy_ms / horizon

    @property
    def num_replans(self) -> int:
        return len(self.replan_ms)

    @property
    def replan_build_total_ms(self) -> float:
        """Total wall-clock spent building replacement plans (off-path)."""
        return float(sum(self.replan_build_ms))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self, deterministic_only: bool = False) -> dict:
        """All headline numbers as one dict (stable keys, for tests/CLI).

        With ``deterministic_only`` the wall-clock entries (replan build
        cost) are dropped, leaving exactly the values two serving paths
        replaying the same seeded stream must agree on bit for bit.
        """
        utilization = self.device_utilization()
        out = {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "avg_batch_size": self.avg_batch_size,
            "qps": self.qps,
            "lookups_per_second": self.lookups_per_second,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_wait_ms": (
                float(self.queue_waits_ms().mean()) if self._num_requests else 0.0
            ),
            "max_device_utilization": float(utilization.max(initial=0.0)),
            "mean_device_utilization": (
                float(utilization.mean()) if utilization.size else 0.0
            ),
            "replans": self.num_replans,
        }
        if self._tier_access_total is not None:
            names = self.tier_names or tuple(
                f"tier{t}" for t in range(self._tier_access_total.shape[0])
            )
            out["tier_accesses"] = {
                name: int(self._tier_access_total[t].sum())
                for t, name in enumerate(names)
            }
            out["load_imbalance"] = self.load_imbalance
        if self._replica_total is not None:
            out["replica_hits"] = int(self._replica_total.sum())
        if any(p != "fp32" for p in self.tier_precisions):
            from repro.core.quantize import tier_expected_errors

            out["tier_precisions"] = list(self.tier_precisions)
            out["tier_expected_rel_error"] = tier_expected_errors(
                self.tier_precisions
            )
        if self.shed_requests:
            out["shed_requests"] = self.shed_requests
            out["shed_by_cause"] = dict(self.shed_by_cause)
        if self._has_deadlines:
            out["goodput"] = self.served_within_deadline
            out["goodput_fraction"] = self.goodput_fraction
        if self._has_priorities or self._shed_by_class:
            out["priority_classes"] = self.priority_class_stats()
        if self._browned_total is not None:
            out["browned_out_lookups"] = self.browned_out_lookups
            out["brownout_windows"] = len(self.brownout_windows)
        if self._fault_events:
            out["faults"] = len(self._fault_events)
            out["dropped_lookups"] = self.dropped_lookups
            out["latency_phases"] = self.windowed_latency()
            if self.time_to_reroute_ms is not None:
                out["time_to_reroute_ms"] = self.time_to_reroute_ms
        if not deterministic_only:
            out["replan_build_total_ms"] = self.replan_build_total_ms
            if self.time_to_replan_ms is not None:
                out["time_to_replan_ms"] = self.time_to_replan_ms
        return out

    def format_report(self) -> str:
        """Human-readable multi-line report of :meth:`summary`."""
        s = self.summary()
        lines = [
            f"requests served:   {s['requests']} in {self.horizon_ms:.1f} ms "
            f"({s['batches']} batches, avg size {s['avg_batch_size']:.1f})",
            f"throughput:        {s['qps']:.0f} QPS "
            f"({s['lookups_per_second']:.2e} lookups/s)",
            f"latency:           p50 {s['p50_ms']:.3f} ms, "
            f"p99 {s['p99_ms']:.3f} ms "
            f"(mean queue wait {s['mean_wait_ms']:.3f} ms)",
            f"device load:       mean {s['mean_device_utilization']:.1%}, "
            f"max {s['max_device_utilization']:.1%}",
        ]
        if "tier_accesses" in s:
            total = sum(s["tier_accesses"].values())
            shares = ", ".join(
                f"{name} {count / total:.2%}" if total else f"{name} 0"
                for name, count in s["tier_accesses"].items()
            )
            lines.append(f"tier accesses:     {shares}")
            lines.append(
                f"device imbalance:  {s['load_imbalance']:.2f}x max/mean "
                f"accesses"
            )
        if "replica_hits" in s:
            total = sum(s.get("tier_accesses", {}).values())
            share = s["replica_hits"] / total if total else 0.0
            lines.append(
                f"replica lane:      {s['replica_hits']} lookups "
                f"({share:.2%}) routed least-loaded"
            )
        if "tier_precisions" in s:
            names = self.tier_names or tuple(
                f"tier{t}" for t in range(len(self.tier_precisions))
            )
            ladder = ", ".join(
                f"{name} {precision}"
                for name, precision in zip(names, s["tier_precisions"])
            )
            lines.append(f"tier precisions:   {ladder}")
        if self.shed_requests:
            offered = self.num_requests + self.shed_requests
            causes = ", ".join(
                f"{cause} {count}"
                for cause, count in self.shed_by_cause.items()
            )
            lines.append(
                f"overload shedding: {self.shed_requests} of {offered} "
                f"offered requests rejected "
                f"({self.shed_requests / offered:.2%}; {causes})"
            )
        if self._has_deadlines:
            lines.append(
                f"goodput:           {self.served_within_deadline} of "
                f"{self.offered_requests} offered served within deadline "
                f"({self.goodput_fraction:.2%})"
            )
        if self._has_priorities or self._shed_by_class:
            for name, stat in self.priority_class_stats().items():
                lines.append(
                    f"class {name:<12} {stat['requests']} served "
                    f"(p50 {stat['p50_ms']:.3f} ms, "
                    f"p99 {stat['p99_ms']:.3f} ms), "
                    f"{stat['shed']} shed"
                )
        if self._browned_total is not None:
            windows = ", ".join(
                f"[{w[0]:.0f}, {'open' if w[1] is None else f'{w[1]:.0f}'}]"
                for w in self.brownout_windows
            )
            lines.append(
                f"brownout:          {self.browned_out_lookups} cold-tier "
                f"lookups skipped over {len(self.brownout_windows)} "
                f"window(s) (ms: {windows})"
            )
        if self.num_replans:
            at = ", ".join(f"{t:.0f}" for t in self.replan_ms)
            lines.append(f"drift replans:     {self.num_replans} (at ms: {at})")
            lines.append(
                f"replan build cost: {self.replan_build_total_ms:.1f} ms "
                f"wall-clock, off the serving critical path"
            )
        if self._fault_events:
            timeline = "; ".join(
                e["description"]
                or f"t={e['at_ms']:g}ms {e['kind']} -> {e['target']}"
                for e in self._fault_events
            )
            lines.append(f"faults injected:   {timeline}")
            lines.append(
                f"dropped lookups:   {self.dropped_lookups} on failed "
                f"devices"
            )
            for entry in self._recoveries:
                lines.append(
                    f"recovery:          {entry['kind']} "
                    f"{entry['elapsed_ms']:.3f} ms after fault"
                    + (
                        f" ({entry['wall_ms']:.1f} ms wall off-path)"
                        if entry["wall_ms"]
                        else ""
                    )
                )
            phases = self.windowed_latency()
            lines.append(
                "latency by phase:  "
                + ", ".join(
                    f"{name} p99 {phase['p99_ms']:.3f} ms "
                    f"({phase['requests']} reqs)"
                    for name, phase in phases.items()
                )
            )
        return "\n".join(lines)
