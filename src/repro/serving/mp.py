"""Multi-process serving runtime: worker pool over shared-memory arenas.

Everything the repo measured before this module ran in one Python
process, so every QPS figure was simulated-clock only.  This runtime
puts the columnar fast path under *real* concurrency, in the shape
production stacks use (TorchRec inference: a batching queue feeding a
pool of executor workers):

* the **front-end** (one process) runs the shared admission pass
  (:func:`~repro.serving.queue.iter_microbatch_arenas`), packs each
  released microbatch into a shared-memory segment
  (:meth:`~repro.serving.arena.RequestArena.to_shm`), and dispatches
  ``(seq, handle)`` tasks on a bounded MPMC queue;
* each **worker** process attaches the segment zero-copy, runs the
  executor's stateless *classification* lanes (tier binning, cache and
  staging fast lanes, replica-cut membership) on the batch, and ships
  the small per-table count matrices back on a results queue;
* the front-end **aggregator** replays the stateful *reduction* — count
  pooling, least-loaded replica routing, the single simulated engine
  clock — strictly in release (``seq``) order.

That classification/reduction split is what makes worker count a pure
throughput knob: replica routing and the busy-clock are sequential
cross-batch state, so they stay in one place, and the merged
:class:`~repro.serving.metrics.ServingMetrics` are **bit-identical** to
a single-process :meth:`~repro.serving.server.LookupServer.serve_arenas`
run of the same stream at any worker count — the parity the
cross-process test suite pins.  The processes parallelize the physical
CPU work (the per-lookup classification, which dominates), not the
simulated topology.

Two serving modes:

* :meth:`MultiProcessServer.serve_arenas` — closed-loop/throughput
  mode: dispatch as fast as the bounded queue admits.  Wall-clock QPS
  of this mode is what ``bench_serving_mp`` gates on.
* :meth:`MultiProcessServer.serve_paced` — open-loop mode: each
  microbatch is offered at the wall-clock time its simulated release
  dictates; when the task queue is full the batch is **shed** (rejected
  newest-first, at batch granularity) instead of queued, so overload
  keeps the queue bounded by construction and
  ``offered == served + shed`` exactly.

The plan is fixed for the lifetime of the pool (drift-triggered
replanning remains a single-process feature; a replan would invalidate
every worker's executor mid-stream).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from typing import Iterable, Iterator

import numpy as np

from repro.engine.executor import ShardedExecutor
from repro.engine.ranked import RankRemapper
from repro.serving.arena import RequestArena, ShmArena
from repro.serving.metrics import ServingMetrics
from repro.serving.queue import iter_microbatch_arenas
from repro.serving.server import LookupServer, ServingConfig


class WorkerCrashError(RuntimeError):
    """A worker process died while the front-end still owed it work.

    Raised by the front-end instead of blocking forever on the results
    queue — the hang-free failure mode the stress suite asserts.  The
    chaos drill that *recovers* from this (reroute the dead worker's
    share via the PR-5 replicas) is ROADMAP item 5; surfacing the crash
    promptly is its prerequisite.
    """


def _worker_main(worker_id, spec, task_queue, result_queue):
    """Worker process body: classify microbatches until told to stop.

    Builds its own :class:`~repro.engine.executor.ShardedExecutor` from
    the picklable ``spec`` (spawn-safe; under fork this is cheap and
    keeps the code path identical), then loops: attach the task's
    shared-memory arena, run the stateless classification lanes, close
    the mapping, ship the count matrices back.  A ``None`` task is the
    shutdown sentinel.  Per-task exceptions are reported as ``err``
    results rather than killing the worker; only queue-level failures
    end the loop.
    """
    model, plan, profile, topology, cache, staging, vectorized = spec
    executor = ShardedExecutor(
        model, plan, profile, topology,
        cache=cache, staging=staging,
        vectorized=vectorized, ranker=RankRemapper(profile),
    )
    while True:
        task = task_queue.get()
        if task is None:
            break
        seq, handle = task
        try:
            shm = ShmArena.attach(handle)
            try:
                counts, hits, replicas = executor.classify_batch(
                    shm.arena.batch
                )
            finally:
                shm.close()
            result_queue.put(("ok", seq, worker_id, counts, hits, replicas))
        except Exception as exc:  # surfaced, never swallowed into a hang
            result_queue.put(
                ("err", seq, worker_id, f"{type(exc).__name__}: {exc}")
            )


class MultiProcessServer:
    """Serve a fixed sharding plan with a pool of worker processes.

    Construction mirrors :class:`~repro.serving.server.LookupServer`
    (same ``plan=``/``sharder=`` choice, cache/staging/replication
    lanes, :class:`~repro.serving.server.ServingConfig` tunables) — a
    ``sharder`` is used once to build the initial plan and then
    dropped, because the pool serves a frozen plan.  The front-end
    keeps an in-process :class:`LookupServer` as the aggregation spine:
    its executor performs the sequential reductions and its metrics
    object accumulates the merged results, so summaries and reports
    come out in exactly the single-process schema.

    Args:
        model, profile, topology, plan, sharder, config, cache,
        staging, replication, vectorized: as for ``LookupServer``.
        workers: worker process count (>= 1).
        queue_depth: task-queue bound (default ``2 * workers``) — the
            backpressure knob; also what overload shedding pushes
            against in paced mode.
        start_method: multiprocessing start method (``"fork"``,
            ``"spawn"``, ...); ``None`` uses the platform default.
        result_timeout_s: longest the front-end will wait on the
            results queue with work outstanding before declaring the
            pool wedged (:class:`WorkerCrashError`).
    """

    #: poll granularity for result waits and crash checks (seconds).
    _POLL_S = 0.05

    def __init__(
        self,
        model,
        profile,
        topology,
        plan=None,
        sharder=None,
        config: ServingConfig | None = None,
        cache=None,
        staging=None,
        replication=None,
        vectorized: bool = True,
        workers: int = 2,
        queue_depth: int | None = None,
        start_method: str | None = None,
        result_timeout_s: float = 30.0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        spine = LookupServer(
            model, profile, topology,
            plan=plan, sharder=sharder, config=config,
            cache=cache, staging=staging, replication=replication,
            vectorized=vectorized,
        )
        # Freeze the plan: the pool never replans, so the spine's drift
        # machinery (monitor, profiler, sharder) is dropped and its
        # _execute-equivalent below skips the observation branch.
        spine.sharder = None
        spine.monitor = None
        spine._profiler = None
        self._spine = spine
        self.workers = int(workers)
        self.queue_depth = (
            int(queue_depth) if queue_depth is not None else 2 * self.workers
        )
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.result_timeout_s = float(result_timeout_s)
        self._ctx = (
            mp.get_context(start_method)
            if start_method is not None
            else mp.get_context()
        )
        self._spec = (
            model, spine.plan, spine.profile, topology,
            cache, staging, bool(vectorized),
        )
        self._procs: list = []
        self._task_q = None
        self._result_q = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    @property
    def config(self) -> ServingConfig:
        return self._spine.config

    @property
    def plan(self):
        return self._spine.plan

    @property
    def metrics(self) -> ServingMetrics:
        return self._spine.metrics

    def reset_serving_state(self) -> None:
        """Start an independent stream on the same plan and worker pool.

        Resets the aggregator spine (metrics, simulated clock, replica
        routing history) without restarting workers — their classify
        pass is stateless, so only the front-end carries stream state.
        """
        self._spine.reset_serving_state()

    def start(self) -> "MultiProcessServer":
        """Spawn the worker pool (idempotent)."""
        if self.started:
            return self
        # Start the parent's shared-memory resource tracker *before*
        # forking, so workers inherit it instead of lazily spawning
        # their own: attach-side registrations then collapse (set
        # semantics) with the owner's, and the owner's unlink clears
        # the single entry — no spurious "leaked shared_memory object"
        # warnings at worker exit, while the tracker's crash-cleanup
        # net stays intact.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._task_q = self._ctx.Queue(maxsize=self.queue_depth)
        self._result_q = self._ctx.Queue()
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(i, self._spec, self._task_q, self._result_q),
                daemon=True,
                name=f"recshard-worker-{i}",
            )
            for i in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        return self

    def close(self, timeout_s: float = 5.0) -> None:
        """Shut the pool down cleanly (idempotent).

        Live workers get one ``None`` sentinel each and a join window;
        stragglers (and already-crashed workers) are terminated.  Queues
        are drained and closed so their feeder threads exit.
        """
        if not self.started:
            return
        deadline = time.perf_counter() + timeout_s
        # One sentinel per live worker.  The task queue may be shallower
        # than the pool (queue_depth < workers), so retry as workers
        # drain it rather than dropping sentinels on a Full queue —
        # a dropped sentinel would leave a worker blocked in get() for
        # the whole join window.
        sentinels = sum(1 for p in self._procs if p.is_alive())
        while sentinels and time.perf_counter() < deadline:
            try:
                self._task_q.put(None, timeout=0.05)
                sentinels -= 1
            except queue_mod.Full:
                pass
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.perf_counter()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            try:
                while True:
                    q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                pass
            q.close()
            q.join_thread()
        self._procs = []
        self._task_q = None
        self._result_q = None

    def kill_worker(self, index: int) -> None:
        """Chaos hook: hard-kill one worker (SIGKILL, no cleanup)."""
        if not self.started:
            raise ValueError("pool is not started")
        self._procs[index].kill()
        self._procs[index].join(timeout=5.0)

    def __enter__(self) -> "MultiProcessServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving modes
    # ------------------------------------------------------------------
    def serve_arenas(self, arenas: Iterable[RequestArena]) -> ServingMetrics:
        """Closed-loop mode: dispatch as fast as the queue admits.

        Batch formation, execution semantics, and merged metrics are
        bit-identical to the single-process
        :meth:`~repro.serving.server.LookupServer.serve_arenas` on the
        same stream; only the wall-clock cost of classification is
        spread across the pool.  Raises :class:`WorkerCrashError` if a
        worker dies (or the pool hangs) with work outstanding.
        """
        self.start()
        released = iter_microbatch_arenas(
            arenas, self.config.max_batch_size, self.config.max_delay_ms
        )
        return self._run(released, paced=False, speed=1.0)

    def serve_paced(
        self, arenas: Iterable[RequestArena], speed: float = 1.0
    ) -> ServingMetrics:
        """Open-loop mode: offer batches on the simulated release clock.

        Each microbatch is offered at the wall-clock time its simulated
        ``trigger_ms`` maps to (``speed`` simulated ms per wall ms; 2.0
        replays a stream twice as fast).  A full task queue sheds the
        offered batch — reject-newest, batch granularity, counted via
        :meth:`~repro.serving.metrics.ServingMetrics.record_shed` — so
        sustained overload keeps queueing bounded instead of unbounded.
        Shed batches never execute; accounting stays exact:
        ``offered == metrics.num_requests + metrics.shed_requests``.
        """
        if speed <= 0:
            raise ValueError("speed must be > 0")
        self.start()
        released = iter_microbatch_arenas(
            arenas, self.config.max_batch_size, self.config.max_delay_ms
        )
        return self._run(released, paced=True, speed=speed)

    # ------------------------------------------------------------------
    # Front-end event loop
    # ------------------------------------------------------------------
    def _run(
        self,
        released: Iterator[tuple[RequestArena, float]],
        paced: bool,
        speed: float,
    ) -> ServingMetrics:
        """Dispatch released microbatches, merge results in seq order.

        ``pending`` holds each in-flight batch's owner-side segment plus
        the accounting inputs (arrivals, trigger); ``results`` holds
        classified counts that arrived out of order.  The aggregation
        cursor advances over consecutive sequence numbers only, so
        reductions replay in release order no matter which worker
        finishes first.  All exits — normal, worker crash, worker error
        — unlink every in-flight segment before returning or raising
        (the no-orphaned-``/dev/shm`` invariant the leak tests scan
        for).
        """
        pending: dict[int, tuple[ShmArena, np.ndarray, float]] = {}
        results: dict[int, tuple] = {}
        cursor = 0  # next seq to account
        seq = 0
        wall_start = None
        first_trigger = None
        try:
            for arena, trigger in released:
                if paced:
                    if wall_start is None:
                        wall_start = time.perf_counter()
                        first_trigger = trigger
                    due = wall_start + (trigger - first_trigger) / (
                        1e3 * speed
                    )
                    while True:
                        now = time.perf_counter()
                        if now >= due:
                            break
                        cursor = self._drain(pending, results, cursor)
                        self._check_workers(pending)
                        time.sleep(min(self._POLL_S, due - now))
                owner = arena.to_shm()
                entry = (owner, np.array(arena.arrival_ms), trigger)
                task = (seq, owner.handle)
                if paced:
                    try:
                        self._task_q.put_nowait(task)
                    except queue_mod.Full:
                        # Overload: reject the newest batch outright.
                        # Its seq is reused by the next dispatched batch
                        # (shed batches never enter the in-order
                        # accounting stream).
                        owner.close()
                        owner.unlink()
                        self.metrics.record_shed(arena.num_requests)
                        continue
                    pending[seq] = entry
                else:
                    pending[seq] = entry
                    while True:
                        try:
                            self._task_q.put(task, timeout=self._POLL_S)
                            break
                        except queue_mod.Full:
                            cursor = self._drain(pending, results, cursor)
                            self._check_workers(pending)
                seq += 1
                cursor = self._drain(pending, results, cursor)
            # Stream exhausted: wait out the in-flight tail.
            waited = 0.0
            while pending or results:
                advanced = self._drain(
                    pending, results, cursor, block_s=self._POLL_S
                )
                waited = 0.0 if advanced != cursor else waited + self._POLL_S
                cursor = advanced
                self._check_workers(pending)
                if waited >= self.result_timeout_s:
                    raise WorkerCrashError(
                        f"no results for {self.result_timeout_s:.1f} s with "
                        f"{len(pending)} batches outstanding"
                    )
        except BaseException:
            self._abort(pending)
            raise
        return self.metrics

    def _drain(
        self,
        pending: dict,
        results: dict,
        cursor: int,
        block_s: float = 0.0,
    ) -> int:
        """Pull available results, release their segments, account in order.

        Returns the advanced sequence cursor.  A worker-reported ``err``
        result aborts the run (after segment cleanup, via the caller's
        except path).
        """
        while True:
            try:
                if block_s > 0:
                    item = self._result_q.get(timeout=block_s)
                    block_s = 0.0  # only the first get blocks
                else:
                    item = self._result_q.get_nowait()
            except queue_mod.Empty:
                break
            if item[0] == "err":
                _, err_seq, worker_id, message = item
                raise RuntimeError(
                    f"worker {worker_id} failed on batch {err_seq}: {message}"
                )
            _, got_seq, _, counts, hits, replicas = item
            # The worker is done with the segment; the owner retires it.
            owner, _, _ = pending[got_seq]
            owner.close()
            owner.unlink()
            results[got_seq] = (counts, hits, replicas)
        while cursor in results:
            counts, hits, replicas = results.pop(cursor)
            _, arrivals, trigger = pending.pop(cursor)
            self._account(counts, hits, replicas, trigger, arrivals)
            cursor += 1
        return cursor

    def _account(self, counts, hits, replicas, trigger_ms, arrivals_ms):
        """Reduce one classified batch on the spine (sequential state).

        Mirrors ``LookupServer._execute`` exactly, with the executor's
        :meth:`~repro.engine.executor.ShardedExecutor.reduce_classified`
        standing in for ``run_batch`` — same busy-clock advance, same
        ``record_batch`` call — which is why the merged metrics match
        the single-process run bit for bit.
        """
        spine = self._spine
        start = max(trigger_ms, spine._busy_until_ms)
        device_times, accesses, _, reps = spine.executor.reduce_classified(
            counts, hits, replicas
        )
        service = (
            float(device_times.max()) + spine.config.overhead_ms_per_batch
        )
        finish = start + service
        spine._busy_until_ms = finish
        spine.metrics.record_batch(
            arrivals_ms,
            start_ms=start,
            finish_ms=finish,
            device_times_ms=device_times,
            total_lookups=int(accesses.sum()),
            tier_accesses=accesses,
            replica_accesses=(
                reps if spine.executor.replication is not None else None
            ),
        )

    def _check_workers(self, pending: dict) -> None:
        """Raise :class:`WorkerCrashError` if a worker died mid-stream."""
        dead = [
            (proc.name, proc.exitcode)
            for proc in self._procs
            if not proc.is_alive()
        ]
        if dead:
            detail = ", ".join(
                f"{name} (exit {code})" for name, code in dead
            )
            raise WorkerCrashError(
                f"worker(s) died with {len(pending)} batches in flight: "
                f"{detail}"
            )

    def _abort(self, pending: dict) -> None:
        """Error-path cleanup: no orphaned segments, no wedged pool."""
        for owner, _, _ in pending.values():
            owner.close()
            owner.unlink()
        pending.clear()
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self.close(timeout_s=1.0)
